#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace shoal::util {

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          const std::string& help) {
  flags_[name] = Flag{Type::kInt64, help, std::to_string(default_value)};
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  flags_[name] = Flag{Type::kDouble, help, FormatDouble(default_value, 9)};
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  flags_[name] = Flag{Type::kBool, help, default_value ? "true" : "false"};
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  flags_[name] = Flag{Type::kString, help, default_value};
}

Status FlagParser::SetValue(const std::string& name, const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt64: {
      char* end = nullptr;
      (void)std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + text +
                                       "'");
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      (void)std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + text +
                                       "'");
      }
      break;
    }
    case Type::kBool:
      if (text != "true" && text != "false" && text != "1" && text != "0") {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + text +
                                       "'");
      }
      break;
    case Type::kString:
      break;
  }
  flag.value = text;
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      std::printf("%s", Usage(argv[0]).c_str());
      help_requested_ = true;
      return Status::OK();
    }
    size_t eq = body.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare --flag enables a bool
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " missing value");
      }
    }
    SHOAL_RETURN_IF_ERROR(SetValue(name, value));
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::GetChecked(const std::string& name,
                                               Type type) const {
  auto it = flags_.find(name);
  SHOAL_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  SHOAL_CHECK(it->second.type == type) << "flag --" << name << " type mismatch";
  return it->second;
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  return std::strtoll(GetChecked(name, Type::kInt64).value.c_str(), nullptr,
                      10);
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::strtod(GetChecked(name, Type::kDouble).value.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& v = GetChecked(name, Type::kBool).value;
  return v == "true" || v == "1";
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetChecked(name, Type::kString).value;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += StringPrintf("  --%-24s %s (default: %s)\n", name.c_str(),
                        flag.help.c_str(), flag.value.c_str());
  }
  return out;
}

}  // namespace shoal::util
