#ifndef SHOAL_UTIL_STATS_H_
#define SHOAL_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace shoal::util {

// Streaming summary statistics (Welford's online algorithm).
// NaN/Inf samples are counted separately in `non_finite_count()` and do
// not touch the moments — a single poisoned sample must not turn every
// downstream mean/variance into NaN.
class RunningStats {
 public:
  void Add(double x);

  // Finite samples only.
  size_t count() const { return count_; }
  // NaN / +-Inf samples rejected by Add.
  size_t non_finite_count() const { return non_finite_count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  size_t non_finite_count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket histogram over [lo, hi); out-of-range *finite* samples
// clamp to the first/last bucket, while NaN/Inf samples are counted in
// `non_finite()` instead of being clamped silently. Used for degree and
// similarity distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  // Finite samples only.
  size_t total() const { return total_; }
  // NaN / +-Inf samples rejected by Add.
  size_t non_finite() const { return non_finite_; }
  const std::vector<size_t>& buckets() const { return counts_; }

  // Approximate quantile (linear within the bucket).
  double Quantile(double q) const;

  // Multi-line ASCII rendering for logs/bench output.
  std::string ToString(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
  size_t non_finite_ = 0;
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_STATS_H_
