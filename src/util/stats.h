#ifndef SHOAL_UTIL_STATS_H_
#define SHOAL_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace shoal::util {

// Streaming summary statistics (Welford's online algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
// first/last bucket. Used for degree and similarity distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t total() const { return total_; }
  const std::vector<size_t>& buckets() const { return counts_; }

  // Approximate quantile (linear within the bucket).
  double Quantile(double q) const;

  // Multi-line ASCII rendering for logs/bench output.
  std::string ToString(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_STATS_H_
