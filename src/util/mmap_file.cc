#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace shoal::util {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IoError(util::StringPrintf(
        "cannot open %s: %s", path.c_str(), std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string message = util::StringPrintf(
        "cannot stat %s: %s", path.c_str(), std::strerror(errno));
    ::close(fd);
    return Status::IoError(message);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(path + ": not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MmapFile(nullptr, 0);
  }
  void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (mapped == MAP_FAILED) {
    return Status::IoError(util::StringPrintf(
        "cannot mmap %s (%zu bytes): %s", path.c_str(), size,
        std::strerror(errno)));
  }
  return MmapFile(static_cast<const uint8_t*>(mapped), size);
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

}  // namespace shoal::util
