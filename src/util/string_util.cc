#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace shoal::util {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int digits) {
  std::string s = StringPrintf("%.*f", digits, value);
  // Strip trailing zeros, then a trailing dot.
  size_t dot = s.find('.');
  if (dot != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (last == dot) --last;
    s.erase(last + 1);
  }
  return s;
}

std::string FormatWithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace shoal::util
