#ifndef SHOAL_UTIL_STATUS_H_
#define SHOAL_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace shoal::util {

// Error categories used across the library. Follows the RocksDB/Arrow
// convention: library code never throws; fallible operations return a
// `Status` (or a `Result<T>`, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kUnimplemented = 8,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

// A cheap value type describing the outcome of an operation.
//
//   Status s = DoThing();
//   if (!s.ok()) return s;
//
// The OK status carries no allocation; error statuses carry a message.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace shoal::util

// Propagates a non-OK status to the caller.
#define SHOAL_RETURN_IF_ERROR(expr)                          \
  do {                                                       \
    ::shoal::util::Status _shoal_status = (expr);            \
    if (!_shoal_status.ok()) return _shoal_status;           \
  } while (false)

#endif  // SHOAL_UTIL_STATUS_H_
