#ifndef SHOAL_UTIL_RCU_H_
#define SHOAL_UTIL_RCU_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace shoal::util {

// Epoch-based read-copy-update support for RcuCell<T>. The full
// reclamation argument lives in DESIGN.md §12; the short version:
//
//  * Every reader thread owns one cache-line-sized slot in a global,
//    never-freed registry. A slot's `era` is 0 outside a read-side
//    critical section and a copy of the global era inside one.
//  * ReadLock stores the global era into the slot and then re-checks the
//    global until the two agree — after that loop, any writer that
//    advanced the era past the pinned value is guaranteed to observe the
//    pin (all accesses are seq_cst, so the store and re-check load are
//    ordered against the writer's era bump and slot scan).
//  * Synchronize (writer side) advances the global era and spins until
//    every claimed slot is either unpinned (0) or pinned at/after the
//    new era. Anything unlinked before Synchronize is unreachable by
//    readers after it, so the writer can free it.
//
// Slots are claimed per thread on first use and recycled when the
// thread exits; the registry itself is intentionally immortal (reachable
// from a global, so leak checkers stay quiet) because a dying thread
// can never safely free a slot a concurrent Synchronize may be reading.
namespace rcu_internal {

struct alignas(64) ReaderSlot {
  // 0 = not in a critical section; otherwise the pinned global era.
  std::atomic<uint64_t> era{0};
  // Claimed by a live thread; released (for reuse) on thread exit.
  std::atomic<bool> claimed{false};
  ReaderSlot* next = nullptr;  // immutable after the slot is linked in
};

// This thread's slot, claimed (or allocated and linked) on first use.
ReaderSlot* ThreadSlot();

// Enters / leaves a read-side critical section on `slot`.
void ReadLock(ReaderSlot* slot);
void ReadUnlock(ReaderSlot* slot);

// Waits until every read-side critical section that began before this
// call has finished. O(#slots) spin; writer-path only.
void Synchronize();

// Process-unique id for an RcuCell instance (never reused, so a stale
// thread-local cache entry can never alias a new cell at an old
// address).
uint64_t NextCellId();

}  // namespace rcu_internal

// A single shared_ptr-valued cell with lock-free, wait-free-in-practice
// reads and grace-period-based writer-side reclamation — the publication
// point for the live ServingIndex. Any number of threads may call
// Read() concurrently with writers; Read never takes a mutex and in the
// steady state (no write since this thread's last read) performs exactly
// one atomic load plus one reference-count increment.
//
//   RcuCell<const Index> live(initial);
//   std::shared_ptr<const Index> snap = live.Read();   // request path
//   live.Write(next);                                  // reload path
//
// Semantics:
//  * Read returns the value of some Write that happened at or after the
//    previous Write observed by this thread (monotonic per thread), and
//    the returned shared_ptr keeps that value alive for as long as the
//    caller holds it — a concurrent Write never invalidates it.
//  * Write publishes `next`, waits for a grace period, and only then
//    frees the *publication box* of the previous value. The previous
//    value itself dies when the last reader drops its shared_ptr, so
//    in-flight requests finish on the version they started with.
//  * Writes are serialized internally (writers may block; readers never
//    do).
//
// The per-thread cache means a thread that stops calling Read can keep
// the previously published value alive until its next Read (or thread
// exit). For index hot-reload this is bounded by one request per
// serving thread — acceptable; callers needing prompt reclamation can
// call Read once per thread after a swap.
template <typename T>
class RcuCell {
 public:
  explicit RcuCell(std::shared_ptr<T> initial = nullptr)
      : box_(new std::shared_ptr<T>(std::move(initial))) {}

  ~RcuCell() {
    // No readers may be in flight at destruction (standard ownership
    // rule); Synchronize makes the teardown race-free even if a reader
    // just left.
    rcu_internal::Synchronize();
    delete box_.load(std::memory_order_acquire);
  }

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  // Lock-free snapshot of the current value.
  std::shared_ptr<T> Read() const {
    // Fast path: nothing was published since this thread's last Read of
    // this cell — one acquire load validates the cached snapshot.
    static thread_local struct {
      uint64_t cell_id = 0;
      uint64_t epoch = 0;
      std::shared_ptr<T> value;
    } cache;
    const uint64_t epoch = epoch_.load(std::memory_order_acquire);
    if (cache.cell_id == id_ && cache.epoch == epoch) return cache.value;

    // Slow path: pin this thread's reader slot so the writer's grace
    // period waits for us, then copy the shared_ptr out of the current
    // box. The epoch is sampled *before* the box, so the cached pair is
    // conservative: the box is at least as new as the epoch claims.
    rcu_internal::ReaderSlot* slot = rcu_internal::ThreadSlot();
    rcu_internal::ReadLock(slot);
    std::shared_ptr<T>* box = box_.load(std::memory_order_seq_cst);
    std::shared_ptr<T> value = *box;
    rcu_internal::ReadUnlock(slot);
    cache.cell_id = id_;
    cache.epoch = epoch;
    cache.value = value;
    return value;
  }

  // Publishes `next` and reclaims the previous publication box after
  // all in-flight readers drain. Serialized against other writers.
  void Write(std::shared_ptr<T> next) {
    auto* fresh = new std::shared_ptr<T>(std::move(next));
    std::lock_guard<std::mutex> lock(write_mu_);
    std::shared_ptr<T>* old = box_.exchange(fresh, std::memory_order_seq_cst);
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    rcu_internal::Synchronize();
    delete old;  // readers that copied it still hold the value
  }

  // Number of Writes published so far (starts at 1 for the initial
  // value) — exported as the serve.index.epoch gauge.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  const uint64_t id_ = rcu_internal::NextCellId();
  std::atomic<std::shared_ptr<T>*> box_;
  std::atomic<uint64_t> epoch_{1};
  std::mutex write_mu_;  // writers only; never touched by Read
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_RCU_H_
