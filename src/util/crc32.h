#ifndef SHOAL_UTIL_CRC32_H_
#define SHOAL_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace shoal::util {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`, continuing from
// `seed` (pass the previous return value to checksum in chunks; the
// default starts a fresh checksum). Used to detect torn or bit-flipped
// checkpoint snapshots before any state is restored from them.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace shoal::util

#endif  // SHOAL_UTIL_CRC32_H_
