#include "util/rcu.h"

#include <thread>

namespace shoal::util::rcu_internal {

namespace {

// Head of the global slot list. Slots are pushed once and never
// unlinked or freed: a concurrent Synchronize may be walking the list,
// and the registry stays reachable from this global so leak checkers
// treat it as live. Thread exit merely releases `claimed`.
std::atomic<ReaderSlot*> g_slots{nullptr};

// The global era. Starts at 1 so a pinned era is never 0 (0 means
// "not reading").
std::atomic<uint64_t> g_era{1};

ReaderSlot* ClaimSlot() {
  // Reuse a slot left behind by an exited thread if one is free.
  for (ReaderSlot* slot = g_slots.load(std::memory_order_acquire);
       slot != nullptr; slot = slot->next) {
    bool expected = false;
    if (slot->claimed.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
      return slot;
    }
  }
  auto* slot = new ReaderSlot();
  slot->claimed.store(true, std::memory_order_relaxed);
  ReaderSlot* head = g_slots.load(std::memory_order_acquire);
  do {
    slot->next = head;
  } while (!g_slots.compare_exchange_weak(head, slot,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire));
  return slot;
}

// Claims on first use, releases (never frees) on thread exit.
struct SlotHolder {
  ReaderSlot* slot = ClaimSlot();
  ~SlotHolder() {
    slot->era.store(0, std::memory_order_seq_cst);
    slot->claimed.store(false, std::memory_order_release);
  }
};

}  // namespace

ReaderSlot* ThreadSlot() {
  static thread_local SlotHolder holder;
  return holder.slot;
}

void ReadLock(ReaderSlot* slot) {
  // Pin the current era, then re-check until the global agrees with the
  // pin. Everything is seq_cst, so once this loop exits, any writer
  // whose era bump preceded our final re-check load will observe our
  // pinned era during its slot scan (the pin store precedes the re-check
  // load in the single total order), and any writer whose bump follows
  // it published its new value before we load the box.
  uint64_t era = g_era.load(std::memory_order_seq_cst);
  while (true) {
    slot->era.store(era, std::memory_order_seq_cst);
    const uint64_t now = g_era.load(std::memory_order_seq_cst);
    if (now == era) return;
    era = now;
  }
}

void ReadUnlock(ReaderSlot* slot) {
  slot->era.store(0, std::memory_order_seq_cst);
}

void Synchronize() {
  const uint64_t target = g_era.fetch_add(1, std::memory_order_seq_cst) + 1;
  for (ReaderSlot* slot = g_slots.load(std::memory_order_seq_cst);
       slot != nullptr; slot = slot->next) {
    // Wait out any critical section pinned before `target`. Readers are
    // a handful of atomic ops, so this spin is nanoseconds in practice;
    // yield keeps it polite under oversubscription.
    while (true) {
      const uint64_t era = slot->era.load(std::memory_order_seq_cst);
      if (era == 0 || era >= target) break;
      std::this_thread::yield();
    }
  }
}

uint64_t NextCellId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace shoal::util::rcu_internal
