#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace shoal::util {

namespace {
std::atomic<uint64_t> g_total_threads_created{0};
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  g_total_threads_created.fetch_add(num_threads, std::memory_order_relaxed);
}

uint64_t ThreadPool::TotalThreadsCreated() {
  return g_total_threads_created.load(std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunked(n, [&fn](size_t begin, size_t end, size_t /*worker*/) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunked(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, workers_.size());
  if (chunks == 1) {
    // A single chunk gains nothing from a worker handoff, and the
    // wake/wait round trip dominates on small frontiers; run it inline
    // on the calling thread. Stats account for it like any other task.
    const auto start = std::chrono::steady_clock::now();
    fn(0, n, 0);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::unique_lock<std::mutex> lock(mu_);
    ++tasks_executed_;
    total_task_seconds_ += seconds;
    max_task_seconds_ = std::max(max_task_seconds_, seconds);
    return;
  }
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    const size_t end = begin + len;
    Submit([&fn, begin, end, c] { fn(begin, end, c); });
    begin = end;
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++tasks_executed_;
      total_task_seconds_ += seconds;
      max_task_seconds_ = std::max(max_task_seconds_, seconds);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPoolStats ThreadPool::GetStats() const {
  std::unique_lock<std::mutex> lock(mu_);
  ThreadPoolStats stats;
  stats.tasks_executed = tasks_executed_;
  stats.queue_depth = queue_.size();
  stats.peak_queue_depth = peak_queue_depth_;
  stats.total_task_seconds = total_task_seconds_;
  stats.max_task_seconds = max_task_seconds_;
  return stats;
}

}  // namespace shoal::util
