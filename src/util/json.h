#ifndef SHOAL_UTIL_JSON_H_
#define SHOAL_UTIL_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace shoal::util {

// Minimal JSON document model: enough to emit the observability
// artefacts (metrics snapshots, Chrome trace files, stats dumps) and to
// parse them back in tests and the `json_lint` smoke validator. Object
// member order is preserved, numbers are doubles (integral values are
// rendered without a decimal point), and the parser rejects anything
// RFC 8259 would.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; SHOAL_CHECK on type mismatch.
  bool bool_value() const;
  double number() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<Member>& members() const;

  // Array building.
  void Append(JsonValue value);

  // Object building; `Set` appends (callers do not repeat keys).
  void Set(std::string key, JsonValue value);

  // First member with `key`, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;

  // Serializes the value. indent < 0 renders compact single-line JSON;
  // indent >= 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

  // Strict parse of a complete JSON document (trailing garbage is an
  // error). Nesting deeper than ~200 levels is rejected.
  static Result<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

// Appends the RFC 8259 escaped form of `text` (without surrounding
// quotes) to `out`. Exposed for streaming writers that bypass JsonValue.
void JsonEscape(std::string_view text, std::string& out);

// Renders a double as a JSON number token: integral values without a
// decimal point, non-finite values as null (JSON has no NaN/Inf).
std::string JsonNumberToString(double value);

// Writes `value` to `path`, pretty-printed with `indent` spaces per
// level, followed by a trailing newline.
Status WriteJsonFile(const std::string& path, const JsonValue& value,
                     int indent = 2);

}  // namespace shoal::util

#endif  // SHOAL_UTIL_JSON_H_
