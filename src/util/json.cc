#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace shoal::util {

namespace {

constexpr int kMaxDepth = 200;

void AppendUtf8(uint32_t codepoint, std::string& out) {
  if (codepoint < 0x80) {
    out.push_back(static_cast<char>(codepoint));
  } else if (codepoint < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
    out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
    out.push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  }
}

// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    JsonValue value;
    SHOAL_RETURN_IF_ERROR(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StringPrintf("JSON parse error at offset %zu: %s", pos_,
                     what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        *out = JsonValue::Null();
        return Status::OK();
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        *out = JsonValue::Bool(false);
        return Status::OK();
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(depth, out);
      case '{':
        return ParseObject(depth, out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    if (!Consume('"')) return Error("expected '\"'");
    std::string value;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        value.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': value.push_back('"'); break;
        case '\\': value.push_back('\\'); break;
        case '/': value.push_back('/'); break;
        case 'b': value.push_back('\b'); break;
        case 'f': value.push_back('\f'); break;
        case 'n': value.push_back('\n'); break;
        case 'r': value.push_back('\r'); break;
        case 't': value.push_back('\t'); break;
        case 'u': {
          uint32_t codepoint = 0;
          SHOAL_RETURN_IF_ERROR(ParseHex4(&codepoint));
          // Surrogate pairs are not needed by our own emitters; accept
          // a lone surrogate as the replacement character rather than
          // failing on third-party files.
          if (codepoint >= 0xD800 && codepoint <= 0xDFFF) codepoint = 0xFFFD;
          AppendUtf8(codepoint, value);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    *out = JsonValue::Str(std::move(value));
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // sign consumed
    }
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_]))) {
        return Error("invalid number: digits required after '.'");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(
              static_cast<unsigned char>(text_[pos_]))) {
        return Error("invalid number: digits required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    *out = JsonValue::Number(std::strtod(token.c_str(), nullptr));
    return Status::OK();
  }

  Status ParseArray(int depth, JsonValue* out) {
    Consume('[');
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      *out = std::move(array);
      return Status::OK();
    }
    while (true) {
      JsonValue element;
      SHOAL_RETURN_IF_ERROR(ParseValue(depth + 1, &element));
      array.Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
    *out = std::move(array);
    return Status::OK();
  }

  Status ParseObject(int depth, JsonValue* out) {
    Consume('{');
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      *out = std::move(object);
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      JsonValue key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      SHOAL_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      JsonValue value;
      SHOAL_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      object.Set(key.string_value(), std::move(value));
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
    *out = std::move(object);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

void JsonEscape(std::string_view text, std::string& out) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
}

std::string JsonNumberToString(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 9.0e15) {
    return StringPrintf("%lld",
                        static_cast<long long>(static_cast<int64_t>(value)));
  }
  // %.17g round-trips doubles exactly; shorter forms stay short.
  std::string text = StringPrintf("%.17g", value);
  // Prefer a shorter representation when it parses back identically.
  std::string shorter = StringPrintf("%.12g", value);
  if (std::strtod(shorter.c_str(), nullptr) == value) return shorter;
  return text;
}

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::bool_value() const {
  SHOAL_CHECK(type_ == Type::kBool);
  return bool_;
}

double JsonValue::number() const {
  SHOAL_CHECK(type_ == Type::kNumber);
  return number_;
}

const std::string& JsonValue::string_value() const {
  SHOAL_CHECK(type_ == Type::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  SHOAL_CHECK(type_ == Type::kArray);
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  SHOAL_CHECK(type_ == Type::kObject);
  return members_;
}

void JsonValue::Append(JsonValue value) {
  SHOAL_CHECK(type_ == Type::kArray);
  items_.push_back(std::move(value));
}

void JsonValue::Set(std::string key, JsonValue value) {
  SHOAL_CHECK(type_ == Type::kObject);
  members_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  SHOAL_CHECK(type_ == Type::kObject);
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent * depth), ' ')
             : std::string();
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out += JsonNumberToString(number_);
      break;
    case Type::kString:
      out.push_back('"');
      JsonEscape(string_, out);
      out.push_back('"');
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) {
          out.push_back('\n');
          out += pad;
        }
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        out.push_back('\n');
        out += close_pad;
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) {
          out.push_back('\n');
          out += pad;
        }
        out.push_back('"');
        JsonEscape(members_[i].first, out);
        out += pretty ? "\": " : "\":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        out.push_back('\n');
        out += close_pad;
      }
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

Status WriteJsonFile(const std::string& path, const JsonValue& value,
                     int indent) {
  std::string text = value.Dump(indent);
  text.push_back('\n');
  return AtomicWriteFile(path, text);
}

}  // namespace shoal::util
