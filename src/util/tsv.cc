#include "util/tsv.h"

#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/string_util.h"

namespace shoal::util {

Result<std::vector<std::vector<std::string>>> ReadTsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    rows.push_back(Split(line, '\t'));
  }
  return rows;
}

Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows) {
  // Rendered to memory first so the file write is all-or-nothing: a
  // validation error or crash leaves any previous file intact.
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].find('\t') != std::string::npos ||
          row[i].find('\n') != std::string::npos) {
        return Status::InvalidArgument("TSV field contains tab or newline: " +
                                       row[i]);
      }
      if (i > 0) out.push_back('\t');
      out.append(row[i]);
    }
    out.push_back('\n');
  }
  return AtomicWriteFile(path, out);
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  return AtomicWriteFile(path, contents);
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace shoal::util
