#include "util/atomic_file.h"

#include <atomic>
#include <cstdio>
#include <filesystem>

#ifdef __unix__
#include <unistd.h>
#endif

#include "util/fault.h"
#include "util/string_util.h"

namespace shoal::util {

namespace {

// Unique-enough temp sibling: PID guards against two processes writing
// the same target, the counter against two threads in this process.
std::string TempPathFor(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
#ifdef __unix__
  const unsigned long pid = static_cast<unsigned long>(::getpid());
#else
  const unsigned long pid = 0;
#endif
  return StringPrintf("%s.tmp.%lu.%llu", path.c_str(), pid,
                      static_cast<unsigned long long>(
                          counter.fetch_add(1, std::memory_order_relaxed)));
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = TempPathFor(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(
        StringPrintf("cannot open %s for writing", tmp.c_str()));
  }
  const size_t written =
      contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), f);
  bool flushed = std::fflush(f) == 0;
#ifdef __unix__
  // The rename is only atomic *and durable* if the data reaches disk
  // before the directory entry flips.
  if (flushed && ::fsync(::fileno(f)) != 0) flushed = false;
#endif
  const bool closed = std::fclose(f) == 0;
  if (written != contents.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::IoError(StringPrintf("short write to %s", tmp.c_str()));
  }

  if (FaultInjector::Global().ShouldFailWrite()) {
    // Simulated crash mid-write: the temp vanishes, the target is
    // untouched — indistinguishable from dying before the rename.
    std::remove(tmp.c_str());
    return Status::IoError(
        StringPrintf("fault injected: write of %s failed", path.c_str()));
  }

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError(StringPrintf("cannot rename %s -> %s: %s",
                                        tmp.c_str(), path.c_str(),
                                        ec.message().c_str()));
  }
  return Status::OK();
}

}  // namespace shoal::util
