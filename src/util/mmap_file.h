#ifndef SHOAL_UTIL_MMAP_FILE_H_
#define SHOAL_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace shoal::util {

// A read-only memory-mapped file. The mapping lives as long as the
// object (moves transfer ownership), so consumers can hold raw pointers
// into data() for the object's lifetime — the serving index uses this to
// serve straight out of the page cache with zero copies and O(1) setup.
//
// The mapping is MAP_PRIVATE + PROT_READ: writes through other handles
// to the same file do not tear pages under us once they are faulted in,
// and the publisher side always replaces files atomically (rename), so a
// mapped index never changes beneath the server.
class MmapFile {
 public:
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  // Page-aligned start of the mapping; nullptr for an empty file.
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MmapFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_MMAP_FILE_H_
