#ifndef SHOAL_UTIL_BOUNDED_QUEUE_H_
#define SHOAL_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace shoal::util {

// Bounded multi-producer/multi-consumer FIFO queue connecting the
// stages of a streaming pipeline (entity-graph LSH candidate
// generation: signature producers -> bucket inserter -> pair emitters).
// Push blocks while the queue is at capacity, which is the whole point:
// backpressure keeps a fast producer stage from materializing the
// entire intermediate stream in memory.
//
// Close() wakes every waiter and turns further Pushes into no-ops;
// Pop drains the remaining items and then returns false. Elements are
// moved through the queue, so T is typically a batch (vector) rather
// than a single record — the mutex is taken once per batch.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until there is room (or the queue is closed). Returns false
  // iff the queue was closed, in which case `item` was not enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available (or the queue is closed *and*
  // drained). Returns false only when no item will ever arrive again.
  bool Pop(T* item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Idempotent. Pending Pops drain the queue; pending Pushes give up.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_BOUNDED_QUEUE_H_
