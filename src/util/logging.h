#ifndef SHOAL_UTIL_LOGGING_H_
#define SHOAL_UTIL_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace shoal::util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Process-wide minimum level; messages below it are dropped. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug" / "info" / "warning" (or "warn") / "error" / "fatal",
// case-insensitively, for --log-level flags. Returns false (leaving
// `level` untouched) on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* level);

// Internal: streams one log record to stderr on destruction. Use the
// SHOAL_LOG macro rather than this class directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace shoal::util

// Usage: SHOAL_LOG(kInfo) << "built graph with " << n << " nodes";
#define SHOAL_LOG(severity)                                             \
  ::shoal::util::LogMessage(::shoal::util::LogLevel::severity, __FILE__, \
                            __LINE__)                                   \
      .stream()

// Always-on invariant check; aborts with a message on failure. Used for
// programmer errors, not for data-dependent failures (those return Status).
#define SHOAL_CHECK(cond)                                                  \
  if (!(cond))                                                             \
  ::shoal::util::LogMessage(::shoal::util::LogLevel::kFatal, __FILE__,     \
                            __LINE__)                                      \
      .stream()                                                            \
      << "Check failed: " #cond " "

#endif  // SHOAL_UTIL_LOGGING_H_
