#ifndef SHOAL_UTIL_FLAGS_H_
#define SHOAL_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace shoal::util {

// Minimal command-line flag parser for the bench and example binaries.
//
//   FlagParser flags;
//   flags.AddInt64("entities", 5000, "number of item entities");
//   flags.AddDouble("alpha", 0.7, "similarity mix weight");
//   SHOAL_CHECK(flags.Parse(argc, argv).ok());
//   int64_t n = flags.GetInt64("entities");
//
// Accepts --name=value and --name value; --help prints usage.
class FlagParser {
 public:
  void AddInt64(const std::string& name, int64_t default_value,
                const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);

  // Parses argv; unknown flags produce InvalidArgument. If --help is seen,
  // prints usage to stdout and returns OK with help_requested() true.
  Status Parse(int argc, char** argv);

  bool help_requested() const { return help_requested_; }

  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    std::string value;  // canonical textual form
  };

  Status SetValue(const std::string& name, const std::string& text);
  const Flag& GetChecked(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_FLAGS_H_
