#ifndef SHOAL_UTIL_THREAD_POOL_H_
#define SHOAL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shoal::util {

// Execution statistics a pool accumulates over its lifetime. Queue depth
// is the number of tasks waiting (excluding running ones); task seconds
// are wall-clock per task body. The counters cost two clock reads and a
// few arithmetic ops per task — tasks are chunk-sized (one per worker
// per ParallelFor), so this is noise next to the queue mutex itself.
// Consumers (BSP engine, entity-graph builder) bridge a snapshot into
// `obs::MetricsRegistry` gauges after each run; util deliberately does
// not depend on obs.
struct ThreadPoolStats {
  uint64_t tasks_executed = 0;
  size_t queue_depth = 0;       // at snapshot time
  size_t peak_queue_depth = 0;  // high-water mark since construction
  double total_task_seconds = 0.0;
  double max_task_seconds = 0.0;
};

// Fixed-size worker pool with a simple FIFO queue. Used by the BSP engine
// and by Hogwild word2vec training. Tasks must not throw.
class ThreadPool {
 public:
  // `num_threads` == 0 means "hardware concurrency, at least 1".
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Work is divided into contiguous chunks, one per worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Runs fn(chunk_begin, chunk_end, worker_index) once per chunk.
  void ParallelForChunked(
      size_t n,
      const std::function<void(size_t, size_t, size_t)>& fn);

  // Consistent snapshot of the pool's execution statistics.
  ThreadPoolStats GetStats() const;

  // Total worker threads spawned by all pools in this process since
  // startup. Lets tests assert that a component given a borrowed pool
  // did not quietly construct its own.
  static uint64_t TotalThreadsCreated();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  // Guarded by mu_ (updated where the queue lock is already held).
  uint64_t tasks_executed_ = 0;
  size_t peak_queue_depth_ = 0;
  double total_task_seconds_ = 0.0;
  double max_task_seconds_ = 0.0;
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_THREAD_POOL_H_
