#ifndef SHOAL_UTIL_THREAD_POOL_H_
#define SHOAL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shoal::util {

// Fixed-size worker pool with a simple FIFO queue. Used by the BSP engine
// and by Hogwild word2vec training. Tasks must not throw.
class ThreadPool {
 public:
  // `num_threads` == 0 means "hardware concurrency, at least 1".
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Work is divided into contiguous chunks, one per worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Runs fn(chunk_begin, chunk_end, worker_index) once per chunk.
  void ParallelForChunked(
      size_t n,
      const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_THREAD_POOL_H_
