#ifndef SHOAL_UTIL_RESULT_H_
#define SHOAL_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace shoal::util {

// Value-or-error holder, in the style of arrow::Result<T>.
//
//   Result<Taxonomy> r = BuildTaxonomy(...);
//   if (!r.ok()) return r.status();
//   Taxonomy t = std::move(r).value();
//
// Constructing from an OK status is a programming error (asserted).
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : repr_(std::in_place_index<0>, std::move(value)) {}
  Result(Status status) : repr_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(repr_).ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return repr_.index() == 0; }

  // Returns the error status; OK when the result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<0>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<0>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace shoal::util

// Assigns the value of a Result expression to `lhs`, or returns its status.
#define SHOAL_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto SHOAL_CONCAT_(_shoal_result_, __LINE__) = (expr);       \
  if (!SHOAL_CONCAT_(_shoal_result_, __LINE__).ok())           \
    return SHOAL_CONCAT_(_shoal_result_, __LINE__).status();   \
  lhs = std::move(SHOAL_CONCAT_(_shoal_result_, __LINE__)).value()

#define SHOAL_CONCAT_(a, b) SHOAL_CONCAT_IMPL_(a, b)
#define SHOAL_CONCAT_IMPL_(a, b) a##b

#endif  // SHOAL_UTIL_RESULT_H_
