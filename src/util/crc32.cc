#include "util/crc32.h"

#include <array>

namespace shoal::util {

namespace {

constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace shoal::util
