#include "util/fault.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/string_util.h"

namespace shoal::util {

namespace {

// SplitMix64: a deterministic, well-mixed hash of the write counter so
// `fail_write:P` reproduces exactly across runs and threads.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool ParseSize(std::string_view text, size_t* out) {
  if (text.empty()) return false;
  size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  round_action_ = Action::kNone;
  round_trigger_ = 0;
  superstep_action_ = Action::kNone;
  superstep_trigger_ = 0;
  stage_action_ = Action::kNone;
  stage_trigger_.clear();
  fail_write_probability_ = 0.0;
  fail_write_at_ = 0;
  supersteps_seen_.store(0, std::memory_order_relaxed);
  writes_seen_.store(0, std::memory_order_relaxed);
}

Status FaultInjector::Configure(std::string_view spec) {
  Reset();
  std::string_view trimmed = Trim(spec);
  if (trimmed.empty() || trimmed == "off") return Status::OK();

  std::lock_guard<std::mutex> lock(mu_);
  bool any = false;
  for (const std::string& directive : Split(trimmed, ',')) {
    std::string_view d = Trim(directive);
    if (d.empty()) continue;
    const size_t colon = d.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument(
          "fault directive missing ':': " + std::string(d));
    }
    const std::string_view name = d.substr(0, colon);
    const std::string_view arg = d.substr(colon + 1);
    if (name == "crash_at_round" || name == "abort_at_round") {
      if (!ParseSize(arg, &round_trigger_)) {
        return Status::InvalidArgument("bad round: " + std::string(d));
      }
      round_action_ =
          name[0] == 'c' ? Action::kCrash : Action::kAbort;
    } else if (name == "crash_at_superstep" || name == "abort_at_superstep") {
      if (!ParseSize(arg, &superstep_trigger_)) {
        return Status::InvalidArgument("bad superstep: " + std::string(d));
      }
      superstep_action_ =
          name[0] == 'c' ? Action::kCrash : Action::kAbort;
    } else if (name == "crash_at_stage" || name == "abort_at_stage") {
      if (arg.empty()) {
        return Status::InvalidArgument("bad stage: " + std::string(d));
      }
      stage_trigger_ = std::string(arg);
      stage_action_ =
          name[0] == 'c' ? Action::kCrash : Action::kAbort;
    } else if (name == "fail_write") {
      char* end = nullptr;
      const std::string text(arg);
      fail_write_probability_ = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0' ||
          fail_write_probability_ < 0.0 || fail_write_probability_ > 1.0) {
        return Status::InvalidArgument(
            "fail_write probability must be in [0,1]: " + std::string(d));
      }
    } else if (name == "fail_write_at") {
      size_t n = 0;
      if (!ParseSize(arg, &n) || n == 0) {
        return Status::InvalidArgument(
            "fail_write_at expects a 1-based count: " + std::string(d));
      }
      fail_write_at_ = n;
    } else {
      return Status::InvalidArgument(
          "unknown fault directive: " + std::string(d));
    }
    any = true;
  }
  armed_.store(any, std::memory_order_release);
  return Status::OK();
}

Status FaultInjector::ConfigureFromEnv() {
  const char* spec = std::getenv("SHOAL_FAULT");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return Configure(spec);
}

void FaultInjector::Crash(const std::string& what) {
  // Simulate a killed worker: no flushing, no atexit — whatever the
  // atomic-write protocol has committed is all that survives.
  std::fprintf(stderr, "shoal: injected crash (%s)\n", what.c_str());
  std::fflush(stderr);
  std::_Exit(kCrashExitCode);
}

Status FaultInjector::OnHacRoundSlow(size_t round) {
  if (round_action_ == Action::kNone || round != round_trigger_) {
    return Status::OK();
  }
  if (round_action_ == Action::kCrash) {
    Crash(StringPrintf("crash_at_round:%zu", round));
  }
  return Status::Internal(
      StringPrintf("fault injected: abort_at_round:%zu", round));
}

Status FaultInjector::OnBspSuperstepSlow(size_t superstep) {
  if (superstep_action_ == Action::kNone) return Status::OK();
  const uint64_t seen =
      supersteps_seen_.fetch_add(1, std::memory_order_relaxed);
  if (seen != superstep_trigger_) return Status::OK();
  if (superstep_action_ == Action::kCrash) {
    Crash(StringPrintf("crash_at_superstep:%llu (engine superstep %zu)",
                       static_cast<unsigned long long>(seen), superstep));
  }
  return Status::Internal(
      StringPrintf("fault injected: abort_at_superstep:%llu",
                   static_cast<unsigned long long>(seen)));
}

Status FaultInjector::OnStageSlow(std::string_view stage) {
  if (stage_action_ == Action::kNone || stage != stage_trigger_) {
    return Status::OK();
  }
  if (stage_action_ == Action::kCrash) {
    Crash("crash_at_stage:" + std::string(stage));
  }
  return Status::Internal("fault injected: abort_at_stage:" +
                          std::string(stage));
}

bool FaultInjector::ShouldFailWriteSlow() {
  const uint64_t count =
      writes_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (fail_write_at_ != 0 && count == fail_write_at_) return true;
  if (fail_write_probability_ > 0.0) {
    const double draw =
        static_cast<double>(Mix64(count) >> 11) * 0x1.0p-53;
    if (draw < fail_write_probability_) return true;
  }
  return false;
}

}  // namespace shoal::util
