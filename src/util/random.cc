#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace shoal::util {

double Rng::Gaussian() {
  // Box-Muller; draw until u1 is nonzero to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

int Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  const double limit = std::exp(-mean);
  double product = UniformDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= UniformDouble();
  }
  return count;
}

ZipfDistribution::ZipfDistribution(size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = acc;
  }
  for (double& v : cdf_) v /= acc;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  double r = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace shoal::util
