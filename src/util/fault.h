#ifndef SHOAL_UTIL_FAULT_H_
#define SHOAL_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace shoal::util {

// Process-wide fault injection for crash-safety testing. Disabled it
// costs one relaxed atomic load per hook call; the pipeline threads hook
// calls through the HAC round loop, the BSP superstep loop, the
// stage boundaries of BuildShoal, and every atomic file write.
//
// A fault spec is a comma-separated list of directives:
//
//   crash_at_round:N        _Exit(kCrashExitCode) entering HAC round N
//   abort_at_round:N        same point, but return an Internal Status
//   crash_at_superstep:N    _Exit at the Nth BSP superstep (cumulative
//   abort_at_superstep:N      across engine runs), or fail cleanly
//   crash_at_stage:NAME     _Exit after pipeline stage NAME completes
//   abort_at_stage:NAME       (word2vec, entity_graph, hac, taxonomy,
//                             describe, correlation), or fail cleanly
//   fail_write:P            each atomic file write fails independently
//                             with probability P (deterministic hash of
//                             the write counter, so runs reproduce)
//   fail_write_at:N         exactly the Nth atomic write fails (1-based)
//
// The crash_* variants simulate a killed worker: the process exits
// immediately without flushing or running atexit handlers, so whatever
// is on disk is exactly what the atomic-write protocol guarantees. The
// abort_* variants return a clean error Status instead, which lets
// in-process tests exercise the identical recovery path.
//
// CLI binaries arm the injector from the SHOAL_FAULT environment
// variable at startup; tests call Configure()/Reset() directly.
class FaultInjector {
 public:
  // Exit code used by crash_* faults, checked by the CI crash-recovery
  // smoke job to distinguish an injected crash from a real failure.
  static constexpr int kCrashExitCode = 42;

  static FaultInjector& Global();

  // Parses and arms `spec`. An empty spec (or "off") disarms. On a
  // malformed spec the injector is left disarmed and an error returned.
  Status Configure(std::string_view spec);

  // Configure() from the SHOAL_FAULT environment variable (no-op when
  // unset or empty).
  Status ConfigureFromEnv();

  // Disarms and clears all counters.
  void Reset();

  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // --- hook points -------------------------------------------------------
  // Called at the top of each HAC round with the cumulative round index.
  Status OnHacRound(size_t round) {
    if (!armed()) return Status::OK();
    return OnHacRoundSlow(round);
  }
  // Called at the top of each BSP superstep (the injector counts calls
  // cumulatively — `superstep` resets per engine run and is only used
  // for the error message).
  Status OnBspSuperstep(size_t superstep) {
    if (!armed()) return Status::OK();
    return OnBspSuperstepSlow(superstep);
  }
  // Called after pipeline stage `stage` completes.
  Status OnStage(std::string_view stage) {
    if (!armed()) return Status::OK();
    return OnStageSlow(stage);
  }
  // Consulted by AtomicWriteFile after the temp file is written but
  // before the rename: true means this write must fail (the temp file
  // is discarded and the target left untouched).
  bool ShouldFailWrite() {
    if (!armed()) return false;
    return ShouldFailWriteSlow();
  }

 private:
  enum class Action : uint8_t { kNone, kCrash, kAbort };

  Status OnHacRoundSlow(size_t round);
  Status OnBspSuperstepSlow(size_t superstep);
  Status OnStageSlow(std::string_view stage);
  bool ShouldFailWriteSlow();

  [[noreturn]] static void Crash(const std::string& what);

  // Configuration, written under `mu_` before `armed_` is released.
  mutable std::mutex mu_;
  Action round_action_ = Action::kNone;
  size_t round_trigger_ = 0;
  Action superstep_action_ = Action::kNone;
  size_t superstep_trigger_ = 0;
  Action stage_action_ = Action::kNone;
  std::string stage_trigger_;
  double fail_write_probability_ = 0.0;
  uint64_t fail_write_at_ = 0;

  // Runtime counters (hooks may run concurrently).
  std::atomic<uint64_t> supersteps_seen_{0};
  std::atomic<uint64_t> writes_seen_{0};
  std::atomic<bool> armed_{false};
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_FAULT_H_
