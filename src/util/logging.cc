#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace shoal::util {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                         : c);
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else if (lower == "fatal") {
    *level = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace shoal::util
