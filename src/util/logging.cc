#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace shoal::util {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace shoal::util
