#ifndef SHOAL_UTIL_STRING_UTIL_H_
#define SHOAL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace shoal::util {

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delim);

// Splits on runs of ASCII whitespace; no empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

// ASCII lower-casing.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Renders a double with `digits` significant decimal places, no trailing
// noise ("0.3", "1.25").
std::string FormatDouble(double value, int digits = 4);

// "1234567" -> "1,234,567" (for human-readable bench output).
std::string FormatWithCommas(uint64_t value);

}  // namespace shoal::util

#endif  // SHOAL_UTIL_STRING_UTIL_H_
