#ifndef SHOAL_UTIL_RANDOM_H_
#define SHOAL_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace shoal::util {

// SplitMix64: used to seed the main generator and for cheap hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Deterministic, fast PRNG (xoshiro256**). Every stochastic component in
// shoal takes an explicit seed so that datasets, training runs and
// experiments are exactly reproducible.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eedULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  // True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Standard normal via Box-Muller (one value per call; no caching to keep
  // the generator state trajectory simple and reproducible).
  double Gaussian();

  // Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // Samples an index in [0, weights.size()) proportional to weights.
  // Weights must be non-negative and not all zero.
  size_t Categorical(const std::vector<double>& weights);

  // Poisson-distributed count with the given mean (Knuth's method; fine for
  // the small means used by the data generators).
  int Poisson(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

// Samples ranks 1..n with P(rank k) proportional to 1/k^exponent.
// Precomputes the CDF once; sampling is O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double exponent);

  // Returns a 0-based index in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_RANDOM_H_
