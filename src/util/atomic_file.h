#ifndef SHOAL_UTIL_ATOMIC_FILE_H_
#define SHOAL_UTIL_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace shoal::util {

// Crash-safe file write: `contents` goes to a unique temp file in the
// same directory (so the final rename stays within one filesystem), is
// flushed to disk, and then renamed over `path`. At every instant the
// target either holds its previous bytes or the complete new bytes —
// a crash can never leave a torn file, only at worst a stale `*.tmp.*`
// sibling, which readers never look at.
//
// All artefact writers in the pipeline (TSV, JSON, trace, graph,
// embedding and checkpoint snapshots) funnel through this function, so
// it is also the single choke point for FaultInjector's fail_write
// directives: an injected failure discards the temp file and returns
// IoError with the target untouched, exactly like a crash mid-write.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

}  // namespace shoal::util

#endif  // SHOAL_UTIL_ATOMIC_FILE_H_
