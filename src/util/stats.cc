#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace shoal::util {

void RunningStats::Add(double x) {
  if (!std::isfinite(x)) {
    ++non_finite_count_;
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::Add(double x) {
  if (!std::isfinite(x)) {
    ++non_finite_;
    return;
  }
  double idx = (x - lo_) / bucket_width_;
  long i = static_cast<long>(idx);
  i = std::clamp<long>(i, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(i)];
  ++total_;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total_);
  double acc = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = acc + static_cast<double>(counts_[i]);
    if (next >= target) {
      double frac = counts_[i] == 0
                        ? 0.0
                        : (target - acc) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * bucket_width_;
    }
    acc = next;
  }
  return hi_;
}

std::string Histogram::ToString(size_t max_width) const {
  size_t peak = 0;
  for (size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double bucket_lo = lo_ + static_cast<double>(i) * bucket_width_;
    size_t bar =
        peak == 0 ? 0 : (counts_[i] * max_width + peak - 1) / peak;
    out += StringPrintf("[%8.3f, %8.3f) %8zu ", bucket_lo,
                        bucket_lo + bucket_width_, counts_[i]);
    out.append(bar, '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace shoal::util
