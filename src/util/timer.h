#ifndef SHOAL_UTIL_TIMER_H_
#define SHOAL_UTIL_TIMER_H_

#include <chrono>

namespace shoal::util {

// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace shoal::util

#endif  // SHOAL_UTIL_TIMER_H_
