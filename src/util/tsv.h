#ifndef SHOAL_UTIL_TSV_H_
#define SHOAL_UTIL_TSV_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace shoal::util {

// Reads a tab-separated file into rows of string fields. Lines starting
// with '#' and blank lines are skipped.
Result<std::vector<std::vector<std::string>>> ReadTsv(
    const std::string& path);

// Writes rows as tab-separated lines; fields must not contain tabs or
// newlines (checked).
Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows);

// Writes raw text to a file (used by the report writer).
Status WriteTextFile(const std::string& path, const std::string& contents);

// Reads an entire file into a string.
Result<std::string> ReadTextFile(const std::string& path);

}  // namespace shoal::util

#endif  // SHOAL_UTIL_TSV_H_
