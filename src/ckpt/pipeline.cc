#include "ckpt/pipeline.h"

#include <memory>
#include <utility>

#include "ckpt/snapshot.h"
#include "util/logging.h"

namespace shoal::ckpt {

util::Status AttachCheckpointing(const std::string& dir,
                                 size_t checkpoint_every, bool resume,
                                 core::ShoalOptions& options,
                                 const CheckpointOptions& checkpoint) {
  if (checkpoint_every == 0) {
    return util::Status::InvalidArgument(
        "checkpoint_every must be >= 1 when checkpointing is attached");
  }
  auto opened = CheckpointWriter::Open(dir, resume, checkpoint);
  if (!opened.ok()) return opened.status();
  auto writer =
      std::make_shared<CheckpointWriter>(std::move(opened).value());

  options.entity_graph_checkpoint_hook =
      [writer](const graph::WeightedGraph& graph) {
        return writer->WriteEntityGraph(graph);
      };
  // Fingerprint captured by value now; BuildShoal may later override
  // thread counts, but those are deliberately not part of the
  // fingerprint (results are thread-count invariant).
  const core::ParallelHacOptions hac_options = options.hac;
  options.hac.checkpoint_every = checkpoint_every;
  options.hac.checkpoint_hook = [writer, hac_options](
                                    const core::HacProgress& progress) {
    return writer->WriteHacSnapshot(
        CaptureHacSnapshot(progress, hac_options));
  };
  return util::Status::OK();
}

util::Result<core::ShoalModel> ResumeShoal(
    const core::ShoalInput& input, core::ShoalOptions options,
    const std::string& dir, size_t checkpoint_every,
    const CheckpointOptions& checkpoint) {
  SHOAL_ASSIGN_OR_RETURN(LoadedCheckpoint loaded, LoadCheckpoint(dir));
  if (!loaded.has_entity_graph) {
    // Nothing usable was persisted before the interruption: the resumed
    // run is simply a fresh build (still checkpointed).
    SHOAL_LOG(kWarning)
        << "checkpoint directory " << dir
        << " has no readable entity-graph snapshot; rebuilding from scratch";
  }

  core::ShoalResumeState resume;
  resume.has_entity_graph = loaded.has_entity_graph;
  resume.entity_graph = std::move(loaded.entity_graph);
  if (loaded.hac.has_value()) {
    if (!resume.has_entity_graph) {
      return util::Status::InvalidArgument(
          "checkpoint has a HAC snapshot but no entity graph; the "
          "directory is incomplete and cannot be resumed");
    }
    auto state = RestoreHacState(*loaded.hac, options.hac);
    if (!state.ok()) return state.status();
    resume.hac = std::move(state).value();
    SHOAL_LOG(kInfo) << "resuming HAC from round "
                     << resume.hac->rounds_done << " ("
                     << resume.hac->dendrogram.num_merges()
                     << " merges replayed)";
  }

  SHOAL_RETURN_IF_ERROR(AttachCheckpointing(dir, checkpoint_every,
                                            /*resume=*/true, options,
                                            checkpoint));
  return core::BuildShoal(input, options, &resume);
}

}  // namespace shoal::ckpt
