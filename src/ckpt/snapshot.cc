#include "ckpt/snapshot.h"

#include <utility>

#include "ckpt/binary_io.h"
#include "util/crc32.h"
#include "util/atomic_file.h"
#include "util/string_util.h"
#include "util/tsv.h"

namespace shoal::ckpt {

namespace {

constexpr char kMagic[8] = {'S', 'H', 'O', 'A', 'L', 'S', 'N', 'P'};

bool ValidKind(uint32_t kind) {
  return kind == static_cast<uint32_t>(SnapshotKind::kEntityGraph) ||
         kind == static_cast<uint32_t>(SnapshotKind::kHacState) ||
         kind == static_cast<uint32_t>(SnapshotKind::kDaemonWindow);
}

}  // namespace

const char* SnapshotKindName(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kEntityGraph:
      return "entity_graph";
    case SnapshotKind::kHacState:
      return "hac_state";
    case SnapshotKind::kDaemonWindow:
      return "daemon_window";
  }
  return "unknown";
}

std::string EncodeEntityGraph(const graph::WeightedGraph& graph) {
  BinaryWriter writer;
  writer.WriteU64(graph.num_vertices());
  const auto edges = graph.AllEdges();
  writer.WriteU64(edges.size());
  for (const auto& e : edges) {
    writer.WriteU32(e.u);
    writer.WriteU32(e.v);
    writer.WriteF64(e.weight);
  }
  return writer.Take();
}

util::Result<graph::WeightedGraph> DecodeEntityGraph(
    std::string_view payload) {
  BinaryReader reader(payload);
  SHOAL_ASSIGN_OR_RETURN(uint64_t num_vertices, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(uint64_t num_edges, reader.ReadU64());
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_edges, 16));
  if (num_vertices > static_cast<uint64_t>(graph::kInvalidVertex)) {
    return util::Status::InvalidArgument(
        "entity graph snapshot names more vertices than VertexId can hold");
  }
  graph::WeightedGraph graph(num_vertices);
  for (uint64_t i = 0; i < num_edges; ++i) {
    SHOAL_ASSIGN_OR_RETURN(uint32_t u, reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(uint32_t v, reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(double weight, reader.ReadF64());
    if (u >= num_vertices || v >= num_vertices) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "entity graph snapshot edge %llu (%u, %u) is out of range",
          static_cast<unsigned long long>(i), u, v));
    }
    SHOAL_RETURN_IF_ERROR(graph.AddEdge(u, v, weight));
  }
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "entity graph snapshot has trailing bytes");
  }
  return graph;
}

std::string EncodeHacSnapshot(const HacSnapshotData& data) {
  BinaryWriter writer;
  writer.WriteU64(data.rounds_done);
  writer.WriteU8(data.finished ? 1 : 0);

  writer.WriteU64(data.stats.rounds);
  writer.WriteU64(data.stats.total_merges);
  writer.WriteU64(data.stats.total_messages);
  writer.WriteU64(data.stats.total_supersteps);
  writer.WriteU64(data.stats.merges_per_round.size());
  for (size_t m : data.stats.merges_per_round) writer.WriteU64(m);

  writer.WriteF64(data.threshold);
  writer.WriteU32(data.linkage);
  writer.WriteU64(data.diffusion_iterations);

  writer.WriteU64(data.num_leaves);
  writer.WriteU64(data.merges.size());
  for (const auto& m : data.merges) {
    writer.WriteU32(m.left);
    writer.WriteU32(m.right);
    writer.WriteF64(m.similarity);
  }

  const core::ClusterGraphState& state = data.clusters;
  writer.WriteU64(state.rows.size());
  for (size_t c = 0; c < state.rows.size(); ++c) {
    writer.WriteU8(state.active[c]);
    writer.WriteU32(state.sizes[c]);
    writer.WriteU32(state.mergeable_count[c]);
    writer.WriteU64(state.rows[c].size());
    for (const core::ClusterEdge& e : state.rows[c]) {
      writer.WriteU32(e.id);
      writer.WriteF64(e.similarity);
    }
  }
  writer.WriteU64(state.frontier.size());
  for (uint32_t c : state.frontier) writer.WriteU32(c);
  writer.WriteF64(state.track_threshold);
  return writer.Take();
}

util::Result<HacSnapshotData> DecodeHacSnapshot(std::string_view payload) {
  BinaryReader reader(payload);
  HacSnapshotData data;
  SHOAL_ASSIGN_OR_RETURN(data.rounds_done, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(uint8_t finished, reader.ReadU8());
  if (finished > 1) {
    return util::Status::InvalidArgument(
        "HAC snapshot has a non-boolean finished flag");
  }
  data.finished = finished != 0;

  SHOAL_ASSIGN_OR_RETURN(data.stats.rounds, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(data.stats.total_merges, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(data.stats.total_messages, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(data.stats.total_supersteps, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(uint64_t num_round_entries, reader.ReadU64());
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_round_entries, 8));
  data.stats.merges_per_round.resize(num_round_entries);
  for (uint64_t i = 0; i < num_round_entries; ++i) {
    SHOAL_ASSIGN_OR_RETURN(uint64_t m, reader.ReadU64());
    data.stats.merges_per_round[i] = m;
  }

  SHOAL_ASSIGN_OR_RETURN(data.threshold, reader.ReadF64());
  SHOAL_ASSIGN_OR_RETURN(data.linkage, reader.ReadU32());
  SHOAL_ASSIGN_OR_RETURN(data.diffusion_iterations, reader.ReadU64());

  SHOAL_ASSIGN_OR_RETURN(data.num_leaves, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(uint64_t num_merges, reader.ReadU64());
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_merges, 16));
  data.merges.resize(num_merges);
  for (uint64_t i = 0; i < num_merges; ++i) {
    SHOAL_ASSIGN_OR_RETURN(data.merges[i].left, reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(data.merges[i].right, reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(data.merges[i].similarity, reader.ReadF64());
  }

  SHOAL_ASSIGN_OR_RETURN(uint64_t num_nodes, reader.ReadU64());
  // 10 bytes of fixed fields per node before its row entries.
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_nodes, 17));
  core::ClusterGraphState& state = data.clusters;
  state.rows.resize(num_nodes);
  state.sizes.resize(num_nodes);
  state.active.resize(num_nodes);
  state.mergeable_count.resize(num_nodes);
  for (uint64_t c = 0; c < num_nodes; ++c) {
    SHOAL_ASSIGN_OR_RETURN(state.active[c], reader.ReadU8());
    SHOAL_ASSIGN_OR_RETURN(state.sizes[c], reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(state.mergeable_count[c], reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(uint64_t row_len, reader.ReadU64());
    SHOAL_RETURN_IF_ERROR(reader.CheckCount(row_len, 12));
    state.rows[c].resize(row_len);
    for (uint64_t e = 0; e < row_len; ++e) {
      SHOAL_ASSIGN_OR_RETURN(state.rows[c][e].id, reader.ReadU32());
      SHOAL_ASSIGN_OR_RETURN(state.rows[c][e].similarity, reader.ReadF64());
    }
  }
  SHOAL_ASSIGN_OR_RETURN(uint64_t frontier_len, reader.ReadU64());
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(frontier_len, 4));
  state.frontier.resize(frontier_len);
  for (uint64_t i = 0; i < frontier_len; ++i) {
    SHOAL_ASSIGN_OR_RETURN(state.frontier[i], reader.ReadU32());
  }
  SHOAL_ASSIGN_OR_RETURN(state.track_threshold, reader.ReadF64());
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "HAC snapshot has trailing bytes");
  }
  return data;
}

std::string EncodeDaemonWindow(const DaemonWindowData& data) {
  BinaryWriter writer;
  writer.WriteF64(data.alpha);
  writer.WriteF64(data.similarity_threshold);
  writer.WriteU64(data.max_items_per_query);
  writer.WriteU64(data.max_degree);
  writer.WriteF64(data.hac_threshold);
  writer.WriteU32(data.hac_linkage);
  writer.WriteU64(data.diffusion_iterations);
  writer.WriteU64(data.num_queries);
  writer.WriteU64(data.num_entities);

  writer.WriteU64(data.cycles_done);
  writer.WriteU64(data.published_version);

  writer.WriteU64(data.window.size());
  for (const auto& day : data.window) {
    writer.WriteString(day.name);
    writer.WriteU64(day.pairs.size());
    for (const auto& pair : day.pairs) {
      writer.WriteU32(pair.query);
      writer.WriteU32(pair.entity);
      writer.WriteU32(pair.count);
    }
  }

  writer.WriteU64(data.num_leaves);
  writer.WriteU64(data.merges.size());
  for (const auto& m : data.merges) {
    writer.WriteU32(m.left);
    writer.WriteU32(m.right);
    writer.WriteF64(m.similarity);
  }

  writer.WriteU64(data.rankings.size());
  for (const auto& topic : data.rankings) {
    writer.WriteU32(topic.dendro_node);
    writer.WriteU64(topic.ranking.size());
    for (const auto& q : topic.ranking) {
      writer.WriteU32(q.query);
      writer.WriteF64(q.representativeness);
      writer.WriteF64(q.popularity);
      writer.WriteF64(q.concentration);
    }
  }
  return writer.Take();
}

util::Result<DaemonWindowData> DecodeDaemonWindow(std::string_view payload) {
  BinaryReader reader(payload);
  DaemonWindowData data;
  SHOAL_ASSIGN_OR_RETURN(data.alpha, reader.ReadF64());
  SHOAL_ASSIGN_OR_RETURN(data.similarity_threshold, reader.ReadF64());
  SHOAL_ASSIGN_OR_RETURN(data.max_items_per_query, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(data.max_degree, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(data.hac_threshold, reader.ReadF64());
  SHOAL_ASSIGN_OR_RETURN(data.hac_linkage, reader.ReadU32());
  SHOAL_ASSIGN_OR_RETURN(data.diffusion_iterations, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(data.num_queries, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(data.num_entities, reader.ReadU64());

  SHOAL_ASSIGN_OR_RETURN(data.cycles_done, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(data.published_version, reader.ReadU64());

  SHOAL_ASSIGN_OR_RETURN(uint64_t num_days, reader.ReadU64());
  // name length + pair count per day at minimum.
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_days, 16));
  data.window.resize(num_days);
  for (uint64_t d = 0; d < num_days; ++d) {
    auto& day = data.window[d];
    SHOAL_ASSIGN_OR_RETURN(day.name, reader.ReadString());
    SHOAL_ASSIGN_OR_RETURN(uint64_t num_pairs, reader.ReadU64());
    SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_pairs, 12));
    day.pairs.resize(num_pairs);
    for (uint64_t i = 0; i < num_pairs; ++i) {
      auto& pair = day.pairs[i];
      SHOAL_ASSIGN_OR_RETURN(pair.query, reader.ReadU32());
      SHOAL_ASSIGN_OR_RETURN(pair.entity, reader.ReadU32());
      SHOAL_ASSIGN_OR_RETURN(pair.count, reader.ReadU32());
      if (pair.query >= data.num_queries || pair.entity >= data.num_entities) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "daemon window snapshot: day %llu pair %llu (%u, %u) is out "
            "of catalog range",
            static_cast<unsigned long long>(d),
            static_cast<unsigned long long>(i), pair.query, pair.entity));
      }
      if (pair.count == 0) {
        return util::Status::InvalidArgument(
            "daemon window snapshot holds a zero-count pair");
      }
      if (i > 0 && !(day.pairs[i - 1].query < pair.query ||
                     (day.pairs[i - 1].query == pair.query &&
                      day.pairs[i - 1].entity < pair.entity))) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "daemon window snapshot: day %llu pairs are not sorted",
            static_cast<unsigned long long>(d)));
      }
    }
  }

  SHOAL_ASSIGN_OR_RETURN(data.num_leaves, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(uint64_t num_merges, reader.ReadU64());
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_merges, 16));
  data.merges.resize(num_merges);
  for (uint64_t i = 0; i < num_merges; ++i) {
    SHOAL_ASSIGN_OR_RETURN(data.merges[i].left, reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(data.merges[i].right, reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(data.merges[i].similarity, reader.ReadF64());
  }

  SHOAL_ASSIGN_OR_RETURN(uint64_t num_rankings, reader.ReadU64());
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_rankings, 12));
  data.rankings.resize(num_rankings);
  for (uint64_t t = 0; t < num_rankings; ++t) {
    auto& topic = data.rankings[t];
    SHOAL_ASSIGN_OR_RETURN(topic.dendro_node, reader.ReadU32());
    if (t > 0 && data.rankings[t - 1].dendro_node >= topic.dendro_node) {
      return util::Status::InvalidArgument(
          "daemon window snapshot: rankings are not sorted by dendro node");
    }
    SHOAL_ASSIGN_OR_RETURN(uint64_t num_queries, reader.ReadU64());
    SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_queries, 28));
    topic.ranking.resize(num_queries);
    for (uint64_t i = 0; i < num_queries; ++i) {
      auto& q = topic.ranking[i];
      SHOAL_ASSIGN_OR_RETURN(q.query, reader.ReadU32());
      SHOAL_ASSIGN_OR_RETURN(q.representativeness, reader.ReadF64());
      SHOAL_ASSIGN_OR_RETURN(q.popularity, reader.ReadF64());
      SHOAL_ASSIGN_OR_RETURN(q.concentration, reader.ReadF64());
      if (q.query >= data.num_queries) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "daemon window snapshot: ranking %llu names unknown query %u",
            static_cast<unsigned long long>(t), q.query));
      }
    }
  }
  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "daemon window snapshot has trailing bytes");
  }
  return data;
}

HacSnapshotData CaptureHacSnapshot(const core::HacProgress& progress,
                                   const core::ParallelHacOptions& options) {
  HacSnapshotData data;
  data.rounds_done = progress.rounds_done;
  data.finished = progress.finished;
  if (progress.stats != nullptr) data.stats = *progress.stats;
  data.threshold = options.hac.threshold;
  data.linkage = static_cast<uint32_t>(options.hac.linkage);
  data.diffusion_iterations = options.diffusion_iterations;

  const core::Dendrogram& dendrogram = *progress.dendrogram;
  data.num_leaves = dendrogram.num_leaves();
  data.merges.reserve(dendrogram.num_merges());
  for (uint32_t id = dendrogram.num_leaves(); id < dendrogram.num_nodes();
       ++id) {
    const auto& node = dendrogram.node(id);
    data.merges.push_back({node.left, node.right, node.merge_similarity});
  }
  data.clusters = progress.clusters->ExportState();
  return data;
}

util::Result<core::HacResumeState> RestoreHacState(
    const HacSnapshotData& data, const core::ParallelHacOptions& options) {
  if (data.threshold != options.hac.threshold ||
      data.linkage != static_cast<uint32_t>(options.hac.linkage) ||
      data.diffusion_iterations != options.diffusion_iterations) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "snapshot was captured under different clustering options "
        "(threshold %g linkage %u diffusion %llu vs configured %g %u %llu); "
        "resuming would not reproduce the uninterrupted run",
        data.threshold, data.linkage,
        static_cast<unsigned long long>(data.diffusion_iterations),
        options.hac.threshold, static_cast<uint32_t>(options.hac.linkage),
        static_cast<unsigned long long>(options.diffusion_iterations)));
  }

  core::HacResumeState state;
  state.rounds_done = data.rounds_done;
  state.stats = data.stats;

  core::Dendrogram dendrogram(data.num_leaves);
  for (size_t i = 0; i < data.merges.size(); ++i) {
    const auto& m = data.merges[i];
    auto merged = dendrogram.Merge(m.left, m.right, m.similarity);
    if (!merged.ok()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "snapshot merge %zu (%u, %u) does not replay: %s", i, m.left,
          m.right, merged.status().message().c_str()));
    }
  }
  state.dendrogram = std::move(dendrogram);

  core::ClusterGraphState cluster_state = data.clusters;
  SHOAL_ASSIGN_OR_RETURN(state.clusters, core::ClusterGraph::FromState(
                                             std::move(cluster_state)));
  if (state.clusters.num_nodes() != state.dendrogram.num_nodes()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "snapshot is inconsistent: cluster graph has %zu nodes but the "
        "dendrogram replays to %zu",
        state.clusters.num_nodes(), state.dendrogram.num_nodes()));
  }
  return state;
}

util::Status WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                               std::string_view payload) {
  BinaryWriter writer;
  std::string framed;
  framed.reserve(sizeof(kMagic) + 20 + payload.size());
  framed.append(kMagic, sizeof(kMagic));
  writer.WriteU32(kSnapshotVersion);
  writer.WriteU32(static_cast<uint32_t>(kind));
  writer.WriteU64(payload.size());
  writer.WriteU32(util::Crc32(payload.data(), payload.size()));
  framed += writer.data();
  framed.append(payload.data(), payload.size());
  return util::AtomicWriteFile(path, framed);
}

util::Result<SnapshotFile> ReadSnapshotFile(const std::string& path) {
  SHOAL_ASSIGN_OR_RETURN(std::string bytes, util::ReadTextFile(path));
  if (bytes.size() < sizeof(kMagic) ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument(path +
                                         ": not a SHOAL snapshot file");
  }
  BinaryReader reader(
      std::string_view(bytes).substr(sizeof(kMagic)));
  SHOAL_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kSnapshotVersion) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%s: snapshot format version %u, this build reads version %u",
        path.c_str(), version, kSnapshotVersion));
  }
  SHOAL_ASSIGN_OR_RETURN(uint32_t kind, reader.ReadU32());
  if (!ValidKind(kind)) {
    return util::Status::InvalidArgument(
        util::StringPrintf("%s: unknown snapshot kind %u", path.c_str(),
                           kind));
  }
  SHOAL_ASSIGN_OR_RETURN(uint64_t payload_size, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(uint32_t expected_crc, reader.ReadU32());
  if (payload_size != reader.remaining()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%s: header claims %llu payload bytes but %zu are present",
        path.c_str(), static_cast<unsigned long long>(payload_size),
        reader.remaining()));
  }
  SnapshotFile file;
  file.kind = static_cast<SnapshotKind>(kind);
  file.payload.assign(bytes, bytes.size() - payload_size, payload_size);
  const uint32_t actual_crc =
      util::Crc32(file.payload.data(), file.payload.size());
  if (actual_crc != expected_crc) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%s: payload CRC mismatch (stored %08x, computed %08x) — the "
        "snapshot is corrupt",
        path.c_str(), expected_crc, actual_crc));
  }
  return file;
}

}  // namespace shoal::ckpt
