#ifndef SHOAL_CKPT_PIPELINE_H_
#define SHOAL_CKPT_PIPELINE_H_

#include <cstddef>
#include <string>

#include "ckpt/checkpoint.h"
#include "core/shoal.h"
#include "util/result.h"
#include "util/status.h"

namespace shoal::ckpt {

// Installs checkpointing hooks into a ShoalOptions: the entity graph is
// snapshotted once when built, and HAC state every `checkpoint_every`
// rounds plus once when HAC finishes. Call AFTER every other option
// field is final — the hooks capture the HAC options fingerprint
// (threshold, linkage, diffusion iterations) at attach time, and a
// later change would make resumed runs reject the snapshots.
//
// The underlying CheckpointWriter is shared by the installed hooks and
// kept alive by them; the options struct stays copyable.
util::Status AttachCheckpointing(const std::string& dir,
                                 size_t checkpoint_every, bool resume,
                                 core::ShoalOptions& options,
                                 const CheckpointOptions& checkpoint = {});

// Resumes an interrupted `shoal_cli build`-style run: loads the best
// state from `dir` (entity graph plus the newest readable HAC
// snapshot), re-attaches checkpointing so the continued run keeps
// writing snapshots, and runs BuildShoal from there. Stages never
// started are simply run; the result is byte-identical to the
// uninterrupted build. NotFound when `dir` has no manifest.
util::Result<core::ShoalModel> ResumeShoal(
    const core::ShoalInput& input, core::ShoalOptions options,
    const std::string& dir, size_t checkpoint_every = 5,
    const CheckpointOptions& checkpoint = {});

}  // namespace shoal::ckpt

#endif  // SHOAL_CKPT_PIPELINE_H_
