#ifndef SHOAL_CKPT_CHECKPOINT_H_
#define SHOAL_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"
#include "graph/weighted_graph.h"
#include "util/result.h"
#include "util/status.h"

namespace shoal::ckpt {

struct CheckpointOptions {
  // HAC snapshots retained on disk; older ones are pruned after each
  // successful write. The entity-graph snapshot is never pruned. Must
  // be >= 1.
  size_t keep_last = 3;
};

// One committed snapshot, as recorded in MANIFEST.json.
struct ManifestEntry {
  std::string file;  // name relative to the checkpoint directory
  SnapshotKind kind = SnapshotKind::kEntityGraph;
  uint64_t rounds_done = 0;  // 0 for entity-graph snapshots
  bool finished = false;     // true for the post-HAC snapshot
  uint64_t bytes = 0;
  uint32_t crc32 = 0;  // payload CRC, duplicated for quick audits
};

// Owns a checkpoint directory: writes snapshot files atomically, then
// commits each one by rewriting MANIFEST.json (also atomically). A crash
// between the two leaves an uncommitted-but-valid snapshot file that the
// next run simply overwrites — readers only trust the manifest, so the
// directory is never observed in a torn state.
class CheckpointWriter {
 public:
  // Creates `dir` (and parents) when missing. With `resume` false any
  // existing manifest is superseded by an empty one (a fresh run owns
  // the directory); with `resume` true existing entries are loaded so
  // the continued run appends and prunes as if never interrupted.
  static util::Result<CheckpointWriter> Open(
      const std::string& dir, bool resume,
      const CheckpointOptions& options = {});

  util::Status WriteEntityGraph(const graph::WeightedGraph& graph);
  util::Status WriteHacSnapshot(const HacSnapshotData& data);

  const std::string& dir() const { return dir_; }
  const std::vector<ManifestEntry>& entries() const { return entries_; }

 private:
  CheckpointWriter(std::string dir, CheckpointOptions options)
      : dir_(std::move(dir)), options_(options) {}

  util::Status Commit(ManifestEntry entry);
  util::Status WriteManifest() const;
  void PruneHacSnapshots();

  std::string dir_;
  CheckpointOptions options_;
  std::vector<ManifestEntry> entries_;
};

// Best valid state recoverable from a checkpoint directory. `hac` is the
// highest-round HAC snapshot that reads back clean; corrupt files are
// skipped in favour of the next-newest (losing at most the rounds since
// that snapshot, never the run).
struct LoadedCheckpoint {
  bool has_entity_graph = false;
  graph::WeightedGraph entity_graph;
  std::optional<HacSnapshotData> hac;
  // Files named by the manifest that failed to read back; informational.
  std::vector<std::string> corrupt_files;
};

// Reads MANIFEST.json and the snapshots it names. NotFound when the
// directory or manifest is missing; a syntactically broken manifest is
// InvalidArgument. Individual corrupt snapshots degrade gracefully as
// described on LoadedCheckpoint.
util::Result<LoadedCheckpoint> LoadCheckpoint(const std::string& dir);

// Parses a manifest document (exposed for tests).
util::Result<std::vector<ManifestEntry>> ParseManifest(
    std::string_view text);

}  // namespace shoal::ckpt

#endif  // SHOAL_CKPT_CHECKPOINT_H_
