#include "ckpt/binary_io.h"

#include <cstring>

#include "util/string_util.h"

namespace shoal::ckpt {

void BinaryWriter::WriteU32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void BinaryWriter::WriteU64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void BinaryWriter::WriteF64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  buffer_.append(s.data(), s.size());
}

util::Result<uint8_t> BinaryReader::ReadU8() {
  if (remaining() < 1) {
    return util::Status::OutOfRange("snapshot truncated reading u8");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

util::Result<uint32_t> BinaryReader::ReadU32() {
  if (remaining() < 4) {
    return util::Status::OutOfRange("snapshot truncated reading u32");
  }
  uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << shift;
  }
  return v;
}

util::Result<uint64_t> BinaryReader::ReadU64() {
  if (remaining() < 8) {
    return util::Status::OutOfRange("snapshot truncated reading u64");
  }
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << shift;
  }
  return v;
}

util::Result<double> BinaryReader::ReadF64() {
  SHOAL_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

util::Result<std::string> BinaryReader::ReadString() {
  SHOAL_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > remaining()) {
    return util::Status::OutOfRange(util::StringPrintf(
        "snapshot truncated: string of %llu bytes but only %zu remain",
        static_cast<unsigned long long>(len), remaining()));
  }
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

util::Status BinaryReader::CheckCount(uint64_t count,
                                      size_t min_element_bytes) const {
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (count > remaining() / min_element_bytes) {
    return util::Status::OutOfRange(util::StringPrintf(
        "snapshot corrupt: count %llu exceeds the %zu remaining bytes",
        static_cast<unsigned long long>(count), remaining()));
  }
  return util::Status::OK();
}

}  // namespace shoal::ckpt
