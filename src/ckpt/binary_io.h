#ifndef SHOAL_CKPT_BINARY_IO_H_
#define SHOAL_CKPT_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace shoal::ckpt {

// Append-only encoder for the snapshot wire format. All integers are
// written little-endian regardless of host order, and doubles are
// written as their raw IEEE-754 bit pattern — snapshots must restore
// similarities bit-exactly or a resumed HAC run could tie-break a merge
// differently and diverge from the uninterrupted dendrogram.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteF64(double v);
  // u64 byte length followed by the raw bytes.
  void WriteString(std::string_view s);

  const std::string& data() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

// Bounds-checked decoder over a byte span. Every read returns OutOfRange
// instead of walking past the end, so a truncated snapshot surfaces as a
// clean Status, never as undefined behaviour.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  util::Result<uint8_t> ReadU8();
  util::Result<uint32_t> ReadU32();
  util::Result<uint64_t> ReadU64();
  util::Result<double> ReadF64();
  util::Result<std::string> ReadString();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  // Guard before resizing a container to a length read from the stream:
  // OK only when `count` elements of at least `min_element_bytes` each
  // could still follow, which bounds allocations by the file size and
  // turns a corrupted length field into a clean error instead of an OOM.
  util::Status CheckCount(uint64_t count, size_t min_element_bytes) const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace shoal::ckpt

#endif  // SHOAL_CKPT_BINARY_IO_H_
