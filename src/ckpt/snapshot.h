#ifndef SHOAL_CKPT_SNAPSHOT_H_
#define SHOAL_CKPT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/parallel_hac.h"
#include "graph/weighted_graph.h"
#include "util/result.h"
#include "util/status.h"

namespace shoal::ckpt {

// What a snapshot file contains. Values are part of the wire format.
enum class SnapshotKind : uint32_t {
  kEntityGraph = 1,  // the Sec 2.1 item entity graph, written once
  kHacState = 2,     // mid- (or post-) HAC state, written every K rounds
};

const char* SnapshotKindName(SnapshotKind kind);

// Format version stamped into every snapshot header. Readers reject any
// other value — resuming across format changes silently would risk a
// wrong-but-plausible restore.
inline constexpr uint32_t kSnapshotVersion = 1;

// Everything ResumeParallelHac needs, in serializable form, plus a
// fingerprint of the options the run was started with so a resume under
// different clustering parameters is rejected instead of producing a
// taxonomy that matches neither configuration.
struct HacSnapshotData {
  uint64_t rounds_done = 0;
  bool finished = false;
  core::ParallelHacStats stats;

  // Options fingerprint.
  double threshold = 0.0;
  uint32_t linkage = 0;
  uint64_t diffusion_iterations = 0;

  // Dendrogram as leaf count + ordered merge list; replaying the list
  // through Dendrogram::Merge reproduces it exactly.
  uint64_t num_leaves = 0;
  struct MergeRecord {
    uint32_t left = 0;
    uint32_t right = 0;
    double similarity = 0.0;
  };
  std::vector<MergeRecord> merges;

  core::ClusterGraphState clusters;
};

// --- payload codecs ------------------------------------------------------

std::string EncodeEntityGraph(const graph::WeightedGraph& graph);
util::Result<graph::WeightedGraph> DecodeEntityGraph(
    std::string_view payload);

std::string EncodeHacSnapshot(const HacSnapshotData& data);
util::Result<HacSnapshotData> DecodeHacSnapshot(std::string_view payload);

// Deep-copies a live HAC run's progress view into serializable form,
// stamping the options fingerprint from `options`.
HacSnapshotData CaptureHacSnapshot(const core::HacProgress& progress,
                                   const core::ParallelHacOptions& options);

// Rebuilds the in-memory resume state: replays the merge list into a
// fresh Dendrogram and revalidates the ClusterGraph invariants. Fails
// with InvalidArgument when the snapshot's options fingerprint does not
// match `options` or the snapshot is internally inconsistent.
util::Result<core::HacResumeState> RestoreHacState(
    const HacSnapshotData& data, const core::ParallelHacOptions& options);

// --- framed snapshot files ----------------------------------------------
// Layout: 8-byte magic "SHOALSNP", u32 version, u32 kind, u64 payload
// size, u32 CRC-32 of the payload, payload bytes. The file is written
// through AtomicWriteFile, so on disk it is either complete or absent;
// the CRC catches bit rot and torn copies made outside that protocol.

util::Status WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                               std::string_view payload);

struct SnapshotFile {
  SnapshotKind kind = SnapshotKind::kEntityGraph;
  std::string payload;
};

// Reads and verifies a snapshot file: magic, version, kind validity,
// payload size vs file size, and CRC. Any mismatch is a clean
// InvalidArgument/OutOfRange Status — never undefined behaviour.
util::Result<SnapshotFile> ReadSnapshotFile(const std::string& path);

}  // namespace shoal::ckpt

#endif  // SHOAL_CKPT_SNAPSHOT_H_
