#ifndef SHOAL_CKPT_SNAPSHOT_H_
#define SHOAL_CKPT_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/parallel_hac.h"
#include "core/topic_describer.h"
#include "graph/weighted_graph.h"
#include "util/result.h"
#include "util/status.h"

namespace shoal::ckpt {

// What a snapshot file contains. Values are part of the wire format.
enum class SnapshotKind : uint32_t {
  kEntityGraph = 1,   // the Sec 2.1 item entity graph, written once
  kHacState = 2,      // mid- (or post-) HAC state, written every K rounds
  kDaemonWindow = 3,  // the daemon's standing sliding-window state
};

const char* SnapshotKindName(SnapshotKind kind);

// Format version stamped into every snapshot header. Readers reject any
// other value — resuming across format changes silently would risk a
// wrong-but-plausible restore.
inline constexpr uint32_t kSnapshotVersion = 1;

// Everything ResumeParallelHac needs, in serializable form, plus a
// fingerprint of the options the run was started with so a resume under
// different clustering parameters is rejected instead of producing a
// taxonomy that matches neither configuration.
struct HacSnapshotData {
  uint64_t rounds_done = 0;
  bool finished = false;
  core::ParallelHacStats stats;

  // Options fingerprint.
  double threshold = 0.0;
  uint32_t linkage = 0;
  uint64_t diffusion_iterations = 0;

  // Dendrogram as leaf count + ordered merge list; replaying the list
  // through Dendrogram::Merge reproduces it exactly.
  uint64_t num_leaves = 0;
  struct MergeRecord {
    uint32_t left = 0;
    uint32_t right = 0;
    double similarity = 0.0;
  };
  std::vector<MergeRecord> merges;

  core::ClusterGraphState clusters;
};

// The taxonomy daemon's standing state between cycles (DESIGN.md §13):
// the window's per-day click aggregates (from which the scored edge
// store is a deterministic function), the standing dendrogram as a
// merge list, and the carried per-topic description rankings keyed by
// the topic's backing dendrogram node. A killed daemon restores this,
// replays each day's aggregate as a delta to rebuild the edge store,
// replays the merges, and resumes at the first spool file that sorts
// after the newest window day — re-running an interrupted cycle from
// its start.
struct DaemonWindowData {
  // Options fingerprint: a daemon restarted with different scoring or
  // clustering knobs (or against a different catalog) must rebuild from
  // the spool, not resume into an inconsistent store.
  double alpha = 0.0;
  double similarity_threshold = 0.0;
  uint64_t max_items_per_query = 0;
  uint64_t max_degree = 0;
  double hac_threshold = 0.0;
  uint32_t hac_linkage = 0;
  uint64_t diffusion_iterations = 0;
  uint64_t num_queries = 0;
  uint64_t num_entities = 0;

  uint64_t cycles_done = 0;
  uint64_t published_version = 0;

  // One entry per day currently in the window, oldest first. Pairs are
  // the day's aggregated (query, entity) click counts, sorted by
  // (query, entity).
  struct WindowDay {
    std::string name;  // spool day-file name, e.g. "day-0003.clicks.tsv"
    struct Pair {
      uint32_t query = 0;
      uint32_t entity = 0;
      uint32_t count = 0;
    };
    std::vector<Pair> pairs;
  };
  std::vector<WindowDay> window;

  // Standing dendrogram as leaf count + ordered merge list.
  uint64_t num_leaves = 0;
  std::vector<HacSnapshotData::MergeRecord> merges;

  // Carried per-topic rankings, ascending by dendro_node. Descriptions
  // are not stored: a topic's description is by construction the top
  // query texts of its ranking, so the restore regenerates them.
  struct TopicRanking {
    uint32_t dendro_node = 0;
    std::vector<core::ScoredQuery> ranking;
  };
  std::vector<TopicRanking> rankings;
};

// --- payload codecs ------------------------------------------------------

std::string EncodeEntityGraph(const graph::WeightedGraph& graph);
util::Result<graph::WeightedGraph> DecodeEntityGraph(
    std::string_view payload);

std::string EncodeHacSnapshot(const HacSnapshotData& data);
util::Result<HacSnapshotData> DecodeHacSnapshot(std::string_view payload);

std::string EncodeDaemonWindow(const DaemonWindowData& data);
util::Result<DaemonWindowData> DecodeDaemonWindow(std::string_view payload);

// Deep-copies a live HAC run's progress view into serializable form,
// stamping the options fingerprint from `options`.
HacSnapshotData CaptureHacSnapshot(const core::HacProgress& progress,
                                   const core::ParallelHacOptions& options);

// Rebuilds the in-memory resume state: replays the merge list into a
// fresh Dendrogram and revalidates the ClusterGraph invariants. Fails
// with InvalidArgument when the snapshot's options fingerprint does not
// match `options` or the snapshot is internally inconsistent.
util::Result<core::HacResumeState> RestoreHacState(
    const HacSnapshotData& data, const core::ParallelHacOptions& options);

// --- framed snapshot files ----------------------------------------------
// Layout: 8-byte magic "SHOALSNP", u32 version, u32 kind, u64 payload
// size, u32 CRC-32 of the payload, payload bytes. The file is written
// through AtomicWriteFile, so on disk it is either complete or absent;
// the CRC catches bit rot and torn copies made outside that protocol.

util::Status WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                               std::string_view payload);

struct SnapshotFile {
  SnapshotKind kind = SnapshotKind::kEntityGraph;
  std::string payload;
};

// Reads and verifies a snapshot file: magic, version, kind validity,
// payload size vs file size, and CRC. Any mismatch is a clean
// InvalidArgument/OutOfRange Status — never undefined behaviour.
util::Result<SnapshotFile> ReadSnapshotFile(const std::string& path);

}  // namespace shoal::ckpt

#endif  // SHOAL_CKPT_SNAPSHOT_H_
