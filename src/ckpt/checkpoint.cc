#include "ckpt/checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/tsv.h"

namespace shoal::ckpt {

namespace {

constexpr char kManifestName[] = "MANIFEST.json";
constexpr char kEntityGraphFile[] = "entity_graph.snap";

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

std::string HacSnapshotName(uint64_t rounds_done) {
  return util::StringPrintf("hac-%06llu.snap",
                            static_cast<unsigned long long>(rounds_done));
}

void RecordWriteMetrics(uint64_t bytes, double seconds,
                        uint64_t rounds_done) {
  auto& metrics = obs::MetricsRegistry::Global();
  if (!metrics.enabled()) return;
  metrics.GetCounter("ckpt.writes").Increment();
  metrics.GetCounter("ckpt.bytes").Increment(bytes);
  metrics.GetHistogram("ckpt.write_seconds").Record(seconds);
  metrics.GetGauge("ckpt.last_round")
      .Set(static_cast<double>(rounds_done));
}

}  // namespace

util::Result<CheckpointWriter> CheckpointWriter::Open(
    const std::string& dir, bool resume, const CheckpointOptions& options) {
  if (dir.empty()) {
    return util::Status::InvalidArgument(
        "checkpoint directory must not be empty");
  }
  if (options.keep_last == 0) {
    return util::Status::InvalidArgument(
        "CheckpointOptions::keep_last must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create checkpoint directory " +
                                 dir + ": " + ec.message());
  }
  CheckpointWriter writer(dir, options);
  const std::string manifest_path = JoinPath(dir, kManifestName);
  if (resume && std::filesystem::exists(manifest_path)) {
    SHOAL_ASSIGN_OR_RETURN(std::string text,
                           util::ReadTextFile(manifest_path));
    SHOAL_ASSIGN_OR_RETURN(writer.entries_, ParseManifest(text));
  } else {
    // A fresh run owns the directory: start from an empty manifest so a
    // stale one can never mix snapshots of two different runs. Old
    // snapshot files are left behind and get overwritten round by round.
    SHOAL_RETURN_IF_ERROR(writer.WriteManifest());
  }
  return writer;
}

util::Status CheckpointWriter::WriteEntityGraph(
    const graph::WeightedGraph& graph) {
  util::Stopwatch stopwatch;
  const std::string payload = EncodeEntityGraph(graph);
  ManifestEntry entry;
  entry.file = kEntityGraphFile;
  entry.kind = SnapshotKind::kEntityGraph;
  entry.bytes = payload.size();
  entry.crc32 = util::Crc32(payload.data(), payload.size());
  SHOAL_RETURN_IF_ERROR(WriteSnapshotFile(
      JoinPath(dir_, entry.file), SnapshotKind::kEntityGraph, payload));
  SHOAL_RETURN_IF_ERROR(Commit(std::move(entry)));
  RecordWriteMetrics(payload.size(), stopwatch.ElapsedSeconds(), 0);
  return util::Status::OK();
}

util::Status CheckpointWriter::WriteHacSnapshot(const HacSnapshotData& data) {
  util::Stopwatch stopwatch;
  const std::string payload = EncodeHacSnapshot(data);
  ManifestEntry entry;
  entry.file = HacSnapshotName(data.rounds_done);
  entry.kind = SnapshotKind::kHacState;
  entry.rounds_done = data.rounds_done;
  entry.finished = data.finished;
  entry.bytes = payload.size();
  entry.crc32 = util::Crc32(payload.data(), payload.size());
  SHOAL_RETURN_IF_ERROR(WriteSnapshotFile(
      JoinPath(dir_, entry.file), SnapshotKind::kHacState, payload));
  SHOAL_RETURN_IF_ERROR(Commit(std::move(entry)));
  RecordWriteMetrics(payload.size(), stopwatch.ElapsedSeconds(),
                     data.rounds_done);
  return util::Status::OK();
}

util::Status CheckpointWriter::Commit(ManifestEntry entry) {
  // Same file name (e.g. the finished snapshot re-written at the final
  // round count) replaces its entry instead of duplicating it.
  auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const ManifestEntry& e) { return e.file == entry.file; });
  if (it != entries_.end()) {
    *it = std::move(entry);
  } else {
    entries_.push_back(std::move(entry));
  }
  PruneHacSnapshots();
  return WriteManifest();
}

void CheckpointWriter::PruneHacSnapshots() {
  std::vector<size_t> hac_indices;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].kind == SnapshotKind::kHacState) hac_indices.push_back(i);
  }
  if (hac_indices.size() <= options_.keep_last) return;
  // Oldest first (lowest round); keep the newest keep_last.
  std::sort(hac_indices.begin(), hac_indices.end(),
            [&](size_t a, size_t b) {
              return entries_[a].rounds_done < entries_[b].rounds_done;
            });
  const size_t drop = hac_indices.size() - options_.keep_last;
  std::vector<bool> dead(entries_.size(), false);
  for (size_t i = 0; i < drop; ++i) {
    const ManifestEntry& entry = entries_[hac_indices[i]];
    std::error_code ec;
    std::filesystem::remove(JoinPath(dir_, entry.file), ec);
    // A file that cannot be removed is only wasted disk, not an error;
    // it is no longer named by the manifest either way.
    dead[hac_indices[i]] = true;
  }
  std::vector<ManifestEntry> kept;
  kept.reserve(entries_.size() - drop);
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(entries_[i]));
  }
  entries_ = std::move(kept);
}

util::Status CheckpointWriter::WriteManifest() const {
  util::JsonValue doc = util::JsonValue::Object();
  doc.Set("version", util::JsonValue::Number(1));
  util::JsonValue list = util::JsonValue::Array();
  for (const ManifestEntry& entry : entries_) {
    util::JsonValue e = util::JsonValue::Object();
    e.Set("file", util::JsonValue::Str(entry.file));
    e.Set("kind", util::JsonValue::Str(SnapshotKindName(entry.kind)));
    e.Set("rounds_done",
          util::JsonValue::Number(static_cast<double>(entry.rounds_done)));
    e.Set("finished", util::JsonValue::Bool(entry.finished));
    e.Set("bytes",
          util::JsonValue::Number(static_cast<double>(entry.bytes)));
    e.Set("crc32",
          util::JsonValue::Number(static_cast<double>(entry.crc32)));
    list.Append(std::move(e));
  }
  doc.Set("entries", std::move(list));
  return util::WriteJsonFile(JoinPath(dir_, kManifestName), doc);
}

util::Result<std::vector<ManifestEntry>> ParseManifest(
    std::string_view text) {
  SHOAL_ASSIGN_OR_RETURN(util::JsonValue doc, util::JsonValue::Parse(text));
  if (!doc.is_object()) {
    return util::Status::InvalidArgument("manifest is not a JSON object");
  }
  const util::JsonValue* version = doc.Find("version");
  if (version == nullptr || !version->is_number() ||
      version->number() != 1.0) {
    return util::Status::InvalidArgument(
        "manifest version missing or unsupported");
  }
  const util::JsonValue* list = doc.Find("entries");
  if (list == nullptr || !list->is_array()) {
    return util::Status::InvalidArgument("manifest has no entries array");
  }
  std::vector<ManifestEntry> entries;
  entries.reserve(list->items().size());
  for (const util::JsonValue& item : list->items()) {
    if (!item.is_object()) {
      return util::Status::InvalidArgument(
          "manifest entry is not an object");
    }
    ManifestEntry entry;
    const util::JsonValue* file = item.Find("file");
    const util::JsonValue* kind = item.Find("kind");
    const util::JsonValue* rounds = item.Find("rounds_done");
    const util::JsonValue* finished = item.Find("finished");
    const util::JsonValue* bytes = item.Find("bytes");
    const util::JsonValue* crc = item.Find("crc32");
    if (file == nullptr || !file->is_string() || kind == nullptr ||
        !kind->is_string() || rounds == nullptr || !rounds->is_number() ||
        finished == nullptr || !finished->is_bool() || bytes == nullptr ||
        !bytes->is_number() || crc == nullptr || !crc->is_number()) {
      return util::Status::InvalidArgument(
          "manifest entry has missing or mistyped fields");
    }
    entry.file = file->string_value();
    if (entry.file.empty() ||
        entry.file.find('/') != std::string::npos ||
        entry.file.find("..") != std::string::npos) {
      return util::Status::InvalidArgument(
          "manifest entry file name must be a plain name: " + entry.file);
    }
    if (kind->string_value() == "entity_graph") {
      entry.kind = SnapshotKind::kEntityGraph;
    } else if (kind->string_value() == "hac_state") {
      entry.kind = SnapshotKind::kHacState;
    } else {
      return util::Status::InvalidArgument("manifest entry has unknown kind " +
                                           kind->string_value());
    }
    entry.rounds_done = static_cast<uint64_t>(rounds->number());
    entry.finished = finished->bool_value();
    entry.bytes = static_cast<uint64_t>(bytes->number());
    entry.crc32 = static_cast<uint32_t>(crc->number());
    entries.push_back(std::move(entry));
  }
  return entries;
}

util::Result<LoadedCheckpoint> LoadCheckpoint(const std::string& dir) {
  const std::string manifest_path = JoinPath(dir, kManifestName);
  if (!std::filesystem::exists(manifest_path)) {
    return util::Status::NotFound("no checkpoint manifest at " +
                                  manifest_path);
  }
  SHOAL_ASSIGN_OR_RETURN(std::string text,
                         util::ReadTextFile(manifest_path));
  SHOAL_ASSIGN_OR_RETURN(std::vector<ManifestEntry> entries,
                         ParseManifest(text));

  LoadedCheckpoint loaded;
  util::Stopwatch stopwatch;

  for (const ManifestEntry& entry : entries) {
    if (entry.kind != SnapshotKind::kEntityGraph) continue;
    auto file = ReadSnapshotFile(JoinPath(dir, entry.file));
    if (!file.ok()) {
      loaded.corrupt_files.push_back(entry.file);
      SHOAL_LOG(kWarning) << "checkpoint " << entry.file
                          << " unreadable: " << file.status().ToString();
      continue;
    }
    if (file.value().kind != SnapshotKind::kEntityGraph) {
      loaded.corrupt_files.push_back(entry.file);
      continue;
    }
    auto graph = DecodeEntityGraph(file.value().payload);
    if (!graph.ok()) {
      loaded.corrupt_files.push_back(entry.file);
      SHOAL_LOG(kWarning) << "checkpoint " << entry.file
                          << " corrupt: " << graph.status().ToString();
      continue;
    }
    loaded.entity_graph = std::move(graph).value();
    loaded.has_entity_graph = true;
    break;
  }

  // Newest HAC snapshot that reads back clean; descending fallback so a
  // corrupt latest file costs rounds, not the whole run.
  std::vector<const ManifestEntry*> hac_entries;
  for (const ManifestEntry& entry : entries) {
    if (entry.kind == SnapshotKind::kHacState) hac_entries.push_back(&entry);
  }
  std::sort(hac_entries.begin(), hac_entries.end(),
            [](const ManifestEntry* a, const ManifestEntry* b) {
              if (a->finished != b->finished) return a->finished > b->finished;
              return a->rounds_done > b->rounds_done;
            });
  for (const ManifestEntry* entry : hac_entries) {
    auto file = ReadSnapshotFile(JoinPath(dir, entry->file));
    if (!file.ok() || file.value().kind != SnapshotKind::kHacState) {
      loaded.corrupt_files.push_back(entry->file);
      SHOAL_LOG(kWarning) << "checkpoint " << entry->file
                          << " unreadable, falling back to an older one: "
                          << file.status().ToString();
      continue;
    }
    auto data = DecodeHacSnapshot(file.value().payload);
    if (!data.ok()) {
      loaded.corrupt_files.push_back(entry->file);
      SHOAL_LOG(kWarning) << "checkpoint " << entry->file
                          << " corrupt, falling back to an older one: "
                          << data.status().ToString();
      continue;
    }
    loaded.hac = std::move(data).value();
    break;
  }

  auto& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled()) {
    metrics.GetCounter("ckpt.restores").Increment();
    metrics.GetHistogram("ckpt.restore_seconds")
        .Record(stopwatch.ElapsedSeconds());
  }
  return loaded;
}

}  // namespace shoal::ckpt
