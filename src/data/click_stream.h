#ifndef SHOAL_DATA_CLICK_STREAM_H_
#define SHOAL_DATA_CLICK_STREAM_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "graph/bipartite_graph.h"
#include "util/result.h"

namespace shoal::data {

// Streaming maintenance of the query-item interaction counts inside a
// sliding time window — the production shape of "a sliding window
// containing search queries in the last seven days" (Sec 3). Events are
// ingested in timestamp order; events older than the window are evicted
// lazily as time advances; a bipartite-graph snapshot can be
// materialised at any moment for a taxonomy rebuild.
class SlidingWindowLog {
 public:
  // `window_sec` is the window length; ids must stay below the given
  // bounds (matching the platform's query/item id spaces).
  SlidingWindowLog(uint64_t window_sec, size_t num_queries,
                   size_t num_items);

  // Ingests one click. Events must arrive in non-decreasing timestamp
  // order (out-of-order events are rejected with InvalidArgument, as a
  // real ingestion pipeline would dead-letter them).
  util::Status Ingest(const ClickEvent& event);

  // Advances the clock without an event (e.g. a quiet period), evicting
  // everything older than now - window.
  util::Status AdvanceTo(uint64_t now_sec);

  // Number of events currently inside the window.
  size_t size() const { return events_.size(); }
  uint64_t now_sec() const { return now_sec_; }

  // Interaction count of a (query, item) pair within the window.
  uint32_t Count(uint32_t query, uint32_t item) const;

  // Materialises the current window as a query-item bipartite graph.
  graph::BipartiteGraph Snapshot() const;

 private:
  static uint64_t Key(uint32_t query, uint32_t item) {
    return (static_cast<uint64_t>(query) << 32) | item;
  }

  void Evict();

  uint64_t window_sec_;
  size_t num_queries_;
  size_t num_items_;
  uint64_t now_sec_ = 0;
  std::deque<ClickEvent> events_;                 // ordered by timestamp
  std::unordered_map<uint64_t, uint32_t> counts_; // live pair counts
};

}  // namespace shoal::data

#endif  // SHOAL_DATA_CLICK_STREAM_H_
