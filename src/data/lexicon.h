#ifndef SHOAL_DATA_LEXICON_H_
#define SHOAL_DATA_LEXICON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/vocabulary.h"
#include "util/random.h"

namespace shoal::data {

// Word supply for the synthetic corpus. Provides
//  * curated word lists (shopping-scenario themes, sub-scenario modifiers,
//    product nouns, generic filler) so small demos read naturally, and
//  * unlimited deterministic pseudo-words ("zorelka", "mabrid") so large
//    datasets never run out of distinct vocabulary.
//
// All words used by the generators are interned into a text::Vocabulary so
// that titles/queries are id sequences usable by word2vec and BM25.
class Lexicon {
 public:
  explicit Lexicon(uint64_t seed);

  text::Vocabulary& vocab() { return vocab_; }
  const text::Vocabulary& vocab() const { return vocab_; }

  // i-th scenario theme name, e.g. "beach trip"; cycles through the
  // curated list and appends a numeric suffix beyond it.
  std::string ScenarioName(size_t i) const;

  // i-th sub-scenario modifier, e.g. "family".
  std::string Modifier(size_t i) const;

  // i-th product noun, e.g. "sunblock".
  std::string ProductNoun(size_t i) const;

  // Generates `count` fresh pseudo-words and interns them; returned ids
  // are unique across calls.
  std::vector<uint32_t> MintTopicWords(size_t count);

  // Shared filler words ("new", "hot", "sale", ...) interned on first use.
  const std::vector<uint32_t>& FillerWords();

  // Interns every token of `phrase` and returns the ids.
  std::vector<uint32_t> InternPhrase(const std::string& phrase);

 private:
  std::string MakePseudoWord();

  text::Vocabulary vocab_;
  util::Rng rng_;
  std::vector<uint32_t> filler_;
  size_t minted_ = 0;
};

}  // namespace shoal::data

#endif  // SHOAL_DATA_LEXICON_H_
