#include "data/click_stream.h"

#include "util/string_util.h"

namespace shoal::data {

SlidingWindowLog::SlidingWindowLog(uint64_t window_sec, size_t num_queries,
                                   size_t num_items)
    : window_sec_(window_sec),
      num_queries_(num_queries),
      num_items_(num_items) {}

util::Status SlidingWindowLog::Ingest(const ClickEvent& event) {
  if (event.query >= num_queries_ || event.entity >= num_items_) {
    return util::Status::OutOfRange(util::StringPrintf(
        "click (%u,%u) outside id spaces (%zu,%zu)", event.query,
        event.entity, num_queries_, num_items_));
  }
  if (event.timestamp_sec < now_sec_) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "out-of-order event at %llu (clock at %llu)",
        static_cast<unsigned long long>(event.timestamp_sec),
        static_cast<unsigned long long>(now_sec_)));
  }
  now_sec_ = event.timestamp_sec;
  events_.push_back(event);
  ++counts_[Key(event.query, event.entity)];
  Evict();
  return util::Status::OK();
}

util::Status SlidingWindowLog::AdvanceTo(uint64_t now_sec) {
  if (now_sec < now_sec_) {
    return util::Status::InvalidArgument("clock cannot move backwards");
  }
  now_sec_ = now_sec;
  Evict();
  return util::Status::OK();
}

void SlidingWindowLog::Evict() {
  const uint64_t horizon =
      now_sec_ >= window_sec_ ? now_sec_ - window_sec_ : 0;
  while (!events_.empty() && events_.front().timestamp_sec < horizon) {
    const ClickEvent& old = events_.front();
    uint64_t key = Key(old.query, old.entity);
    auto it = counts_.find(key);
    if (it != counts_.end() && --it->second == 0) counts_.erase(it);
    events_.pop_front();
  }
}

uint32_t SlidingWindowLog::Count(uint32_t query, uint32_t item) const {
  auto it = counts_.find(Key(query, item));
  return it == counts_.end() ? 0 : it->second;
}

graph::BipartiteGraph SlidingWindowLog::Snapshot() const {
  graph::BipartiteGraph snapshot(num_queries_, num_items_);
  for (const auto& [key, count] : counts_) {
    uint32_t query = static_cast<uint32_t>(key >> 32);
    uint32_t item = static_cast<uint32_t>(key & 0xffffffffULL);
    auto status = snapshot.AddInteraction(query, item, count);
    (void)status;  // ids validated at ingest
  }
  return snapshot;
}

}  // namespace shoal::data
