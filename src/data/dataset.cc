#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace shoal::data {

namespace {

// Joins interned word ids back into a display string.
std::string Render(const text::Vocabulary& vocab,
                   const std::vector<uint32_t>& words) {
  std::string out;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += vocab.WordOf(words[i]);
  }
  return out;
}

}  // namespace

std::vector<uint32_t> Dataset::EntityIntentLabels() const {
  std::vector<uint32_t> labels(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) labels[i] = entities[i].intent;
  return labels;
}

std::vector<uint32_t> Dataset::EntityRootIntentLabels() const {
  std::vector<uint32_t> labels(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) {
    labels[i] = intents.RootOf(entities[i].intent);
  }
  return labels;
}

bool Dataset::CategoriesRelated(uint32_t c1, uint32_t c2) const {
  if (c1 == c2) return true;
  for (uint32_t root : intents.roots()) {
    // A root intent's categories are the union over its leaf intents.
    bool has1 = false;
    bool has2 = false;
    for (uint32_t leaf : intents.intent(root).children) {
      for (uint32_t c : intents.intent(leaf).categories) {
        has1 = has1 || c == c1;
        has2 = has2 || c == c2;
      }
    }
    // Roots that are themselves leaves (flat hierarchies).
    for (uint32_t c : intents.intent(root).categories) {
      has1 = has1 || c == c1;
      has2 = has2 || c == c2;
    }
    if (has1 && has2) return true;
  }
  return false;
}

util::Result<Dataset> GenerateDataset(const DatasetOptions& options) {
  if (options.num_root_intents == 0 || options.children_per_root == 0) {
    return util::Status::InvalidArgument("intent tree must be non-empty");
  }
  if (options.num_departments == 0 || options.leaves_per_department == 0) {
    return util::Status::InvalidArgument("ontology must be non-empty");
  }
  if (options.num_entities == 0 || options.num_queries == 0) {
    return util::Status::InvalidArgument("need entities and queries");
  }
  if (options.click_noise < 0.0 || options.click_noise > 1.0) {
    return util::Status::InvalidArgument("click_noise must be in [0,1]");
  }

  Dataset ds;
  ds.options = options;
  ds.lexicon = Lexicon(options.seed ^ 0xfeedbeefULL);
  util::Rng rng(options.seed);

  // ---- Ontology -------------------------------------------------------
  std::vector<std::string> department_names;
  std::vector<std::vector<std::string>> leaf_names;
  size_t noun_serial = 0;
  for (size_t d = 0; d < options.num_departments; ++d) {
    department_names.push_back("department " + std::to_string(d + 1));
    std::vector<std::string> leaves;
    for (size_t l = 0; l < options.leaves_per_department; ++l) {
      leaves.push_back(ds.lexicon.ProductNoun(noun_serial++));
    }
    leaf_names.push_back(std::move(leaves));
  }
  ds.ontology = Ontology::BuildThreeLevel(department_names, leaf_names);
  const auto& leaf_categories = ds.ontology.leaves();

  // Topical words for each leaf category (its name token + minted words).
  std::vector<std::vector<uint32_t>> category_words(ds.ontology.size());
  for (uint32_t leaf : leaf_categories) {
    category_words[leaf] =
        ds.lexicon.InternPhrase(ds.ontology.node(leaf).name);
    auto minted = ds.lexicon.MintTopicWords(options.words_per_category);
    category_words[leaf].insert(category_words[leaf].end(), minted.begin(),
                                minted.end());
  }

  // ---- Intent hierarchy ----------------------------------------------
  size_t modifier_serial = 0;
  for (size_t r = 0; r < options.num_root_intents; ++r) {
    Intent root;
    root.name = ds.lexicon.ScenarioName(r);
    root.vocabulary = ds.lexicon.InternPhrase(root.name);
    auto minted = ds.lexicon.MintTopicWords(options.words_per_root_intent);
    root.vocabulary.insert(root.vocabulary.end(), minted.begin(),
                           minted.end());
    uint32_t root_id = ds.intents.AddRoot(std::move(root));

    // The root's category pool: sampled once so that sibling leaf intents
    // overlap in categories (they share a scenario), giving the root-topic
    // co-occurrence signal that Sec 2.4 mines.
    size_t pool_size = std::min(leaf_categories.size(),
                                options.categories_per_intent * 2);
    std::vector<uint32_t> pool(leaf_categories);
    rng.Shuffle(pool);
    pool.resize(pool_size);

    for (size_t c = 0; c < options.children_per_root; ++c) {
      Intent child;
      child.name = ds.lexicon.Modifier(modifier_serial++) + " " +
                   ds.intents.intent(root_id).name;
      child.vocabulary = ds.lexicon.InternPhrase(child.name);
      auto child_minted =
          ds.lexicon.MintTopicWords(options.words_per_leaf_intent);
      child.vocabulary.insert(child.vocabulary.end(), child_minted.begin(),
                              child_minted.end());

      // Choose categories from the root's pool with Zipf-ish weights.
      std::vector<uint32_t> shuffled(pool);
      rng.Shuffle(shuffled);
      size_t k = std::min(options.categories_per_intent, shuffled.size());
      for (size_t i = 0; i < k; ++i) {
        child.categories.push_back(shuffled[i]);
        child.category_weights.push_back(1.0 / static_cast<double>(i + 1));
      }
      ds.intents.AddChild(root_id, std::move(child));
    }
  }
  const auto& leaf_intents = ds.intents.leaves();

  // ---- Item entities --------------------------------------------------
  ds.lexicon.FillerWords();  // intern the filler pool up front
  ds.entities.reserve(options.num_entities);
  ds.entities_by_intent.assign(ds.intents.size(), {});
  for (size_t i = 0; i < options.num_entities; ++i) {
    ItemEntity entity;
    entity.id = static_cast<uint32_t>(i);
    entity.intent = leaf_intents[rng.Uniform(leaf_intents.size())];
    const Intent& intent = ds.intents.intent(entity.intent);
    entity.category =
        intent.categories[rng.Categorical(intent.category_weights)];
    entity.group_size = 1 + static_cast<uint32_t>(rng.Poisson(2.0));
    entity.price = std::exp(rng.Gaussian(3.0, 0.8));

    // Title: category words + intent words (incl. ancestors) + filler.
    auto intent_vocab = ds.intents.EffectiveVocabulary(entity.intent);
    const auto& cat_vocab = category_words[entity.category];
    std::vector<uint32_t> title;
    size_t cat_tokens = 2 + rng.Uniform(2);
    size_t intent_tokens = 3 + rng.Uniform(2);
    for (size_t t = 0; t < cat_tokens; ++t) {
      title.push_back(cat_vocab[rng.Uniform(cat_vocab.size())]);
    }
    for (size_t t = 0; t < intent_tokens; ++t) {
      title.push_back(intent_vocab[rng.Uniform(intent_vocab.size())]);
    }
    const auto& filler = ds.lexicon.FillerWords();
    size_t filler_tokens = rng.Uniform(3);
    for (size_t t = 0; t < filler_tokens; ++t) {
      title.push_back(filler[rng.Uniform(filler.size())]);
    }
    rng.Shuffle(title);
    for (uint32_t w : title) ds.lexicon.vocab().AddWord(
        ds.lexicon.vocab().WordOf(w));  // bump corpus frequency
    entity.title_words = title;
    entity.title = Render(ds.lexicon.vocab(), title);
    ds.entities_by_intent[entity.intent].push_back(entity.id);
    ds.entities.push_back(std::move(entity));
  }

  // Every leaf intent must own at least one entity so ground-truth
  // clusters are non-degenerate; reassign from the largest if needed.
  for (uint32_t leaf : leaf_intents) {
    if (!ds.entities_by_intent[leaf].empty()) continue;
    uint32_t donor = leaf;
    for (uint32_t other : leaf_intents) {
      if (ds.entities_by_intent[other].size() >
          ds.entities_by_intent[donor].size()) {
        donor = other;
      }
    }
    if (ds.entities_by_intent[donor].size() < 2) continue;
    uint32_t moved = ds.entities_by_intent[donor].back();
    ds.entities_by_intent[donor].pop_back();
    ds.entities[moved].intent = leaf;
    ds.entities_by_intent[leaf].push_back(moved);
  }

  // ---- Queries ---------------------------------------------------------
  ds.queries.reserve(options.num_queries);
  std::unordered_set<std::string> seen_queries;
  for (size_t q = 0; q < options.num_queries; ++q) {
    SearchQuery query;
    query.id = static_cast<uint32_t>(q);
    query.intent = leaf_intents[rng.Uniform(leaf_intents.size())];
    auto intent_vocab = ds.intents.EffectiveVocabulary(query.intent);
    const Intent& intent = ds.intents.intent(query.intent);

    // 1-3 intent words; sometimes a category word for navigational
    // queries ("beach dress" = intent word + category noun).
    std::vector<uint32_t> words;
    size_t n_words = 1 + rng.Uniform(3);
    for (size_t t = 0; t < n_words; ++t) {
      words.push_back(intent_vocab[rng.Uniform(intent_vocab.size())]);
    }
    if (rng.Bernoulli(0.4) && !intent.categories.empty()) {
      uint32_t cat = intent.categories[rng.Uniform(intent.categories.size())];
      const auto& cw = category_words[cat];
      words.push_back(cw[rng.Uniform(cw.size())]);
    }
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    rng.Shuffle(words);
    query.words = words;
    query.text = Render(ds.lexicon.vocab(), words);
    if (!seen_queries.insert(query.text).second) {
      // Duplicate text: still keep the query (real logs repeat strings);
      // its id disambiguates.
    }
    for (uint32_t w : words) {
      ds.lexicon.vocab().AddWord(ds.lexicon.vocab().WordOf(w));
    }
    ds.queries.push_back(std::move(query));
  }

  // ---- Click log -------------------------------------------------------
  util::ZipfDistribution query_popularity(ds.queries.size(),
                                          options.query_zipf_exponent);
  const uint64_t span_sec =
      static_cast<uint64_t>(options.log_days * 86400.0);
  const uint64_t begin_sec = options.log_end_time_sec - span_sec;
  ds.clicks.reserve(options.num_clicks);
  for (size_t c = 0; c < options.num_clicks; ++c) {
    ClickEvent event;
    event.query = static_cast<uint32_t>(query_popularity.Sample(rng));
    const SearchQuery& query = ds.queries[event.query];
    if (rng.Bernoulli(options.click_noise) ||
        ds.entities_by_intent[query.intent].empty()) {
      event.entity =
          static_cast<uint32_t>(rng.Uniform(ds.entities.size()));
    } else {
      const auto& pool = ds.entities_by_intent[query.intent];
      event.entity = pool[rng.Uniform(pool.size())];
    }
    event.timestamp_sec = begin_sec + rng.Uniform(span_sec);
    ds.clicks.push_back(event);
  }
  std::sort(ds.clicks.begin(), ds.clicks.end(),
            [](const ClickEvent& a, const ClickEvent& b) {
              return a.timestamp_sec < b.timestamp_sec;
            });
  return ds;
}

graph::BipartiteGraph BuildQueryItemGraph(const Dataset& dataset,
                                          uint64_t window_begin_sec,
                                          uint64_t window_end_sec) {
  graph::BipartiteGraph graph(dataset.queries.size(),
                              dataset.entities.size());
  for (const ClickEvent& event : dataset.clicks) {
    if (event.timestamp_sec < window_begin_sec ||
        event.timestamp_sec >= window_end_sec) {
      continue;
    }
    auto status = graph.AddInteraction(event.query, event.entity);
    SHOAL_CHECK(status.ok()) << status.ToString();
  }
  return graph;
}

graph::BipartiteGraph BuildRecentQueryItemGraph(const Dataset& dataset,
                                                double days) {
  uint64_t end = dataset.options.log_end_time_sec;
  uint64_t span = static_cast<uint64_t>(days * 86400.0);
  uint64_t begin = span > end ? 0 : end - span;
  return BuildQueryItemGraph(dataset, begin, end);
}

std::vector<std::vector<uint32_t>> BuildTrainingCorpus(
    const Dataset& dataset) {
  std::vector<std::vector<uint32_t>> corpus;
  corpus.reserve(dataset.entities.size() + dataset.queries.size());
  for (const ItemEntity& entity : dataset.entities) {
    corpus.push_back(entity.title_words);
  }
  for (const SearchQuery& query : dataset.queries) {
    corpus.push_back(query.words);
  }
  return corpus;
}

}  // namespace shoal::data
