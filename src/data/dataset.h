#ifndef SHOAL_DATA_DATASET_H_
#define SHOAL_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/intent_model.h"
#include "data/lexicon.h"
#include "data/ontology.h"
#include "graph/bipartite_graph.h"
#include "util/result.h"

namespace shoal::data {

// One item entity: a group of items with near-equivalent attributes and
// price (Sec 2.1). Generated entities carry their planted leaf intent and
// their ontology leaf category.
struct ItemEntity {
  uint32_t id = 0;
  uint32_t category = kNoCategory;     // ontology leaf
  uint32_t intent = kNoIntent;         // planted leaf intent (ground truth)
  uint32_t group_size = 1;             // items represented by this entity
  double price = 0.0;
  std::string title;
  std::vector<uint32_t> title_words;   // ids in dataset.lexicon.vocab()
};

// One distinct search query string with its planted intent.
struct SearchQuery {
  uint32_t id = 0;
  uint32_t intent = kNoIntent;         // planted leaf intent (ground truth)
  std::string text;
  std::vector<uint32_t> words;
};

// One click event: a user searched `query` and clicked an item of
// `entity` at `timestamp_sec` (epoch seconds in simulated time).
struct ClickEvent {
  uint32_t query = 0;
  uint32_t entity = 0;
  uint64_t timestamp_sec = 0;
};

// Knobs for the synthetic workload. The defaults produce a dataset small
// enough for unit tests; benches scale them up.
struct DatasetOptions {
  // Intent hierarchy: `num_root_intents` scenarios, each with
  // `children_per_root` leaf intents (the fine-grained topics).
  size_t num_root_intents = 8;
  size_t children_per_root = 3;
  // Ontology: departments x leaves each.
  size_t num_departments = 6;
  size_t leaves_per_department = 8;
  // Each leaf intent shops across this many leaf categories.
  size_t categories_per_intent = 4;
  // Topical pseudo-words minted per root intent / leaf intent / category.
  size_t words_per_root_intent = 6;
  size_t words_per_leaf_intent = 8;
  size_t words_per_category = 6;

  // Click volume matters: the query-coalition signal (Eq. 1) needs dense
  // co-click overlap, as production logs have. ~50 clicks per entity
  // makes same-intent Jaccard strong enough for Eq. 3 at alpha = 0.7.
  size_t num_entities = 2000;
  size_t num_queries = 1500;
  size_t num_clicks = 100000;

  // Probability that a click lands on an item outside the query's intent
  // (exploration / accidental clicks).
  double click_noise = 0.05;
  // Zipf exponent for query popularity.
  double query_zipf_exponent = 0.9;
  // Log spans this many simulated days ending at `log_end_time_sec`.
  double log_days = 10.0;
  uint64_t log_end_time_sec = 1'500'000'000;

  uint64_t seed = 2019;
};

// The full generated bundle, including every piece of hidden ground truth
// the evaluation harness scores against.
struct Dataset {
  DatasetOptions options;
  Lexicon lexicon{0};
  Ontology ontology;
  IntentModel intents;
  std::vector<ItemEntity> entities;
  std::vector<SearchQuery> queries;
  std::vector<ClickEvent> clicks;  // sorted by timestamp

  // entities per leaf intent (ground-truth clusters).
  std::vector<std::vector<uint32_t>> entities_by_intent;

  // Ground-truth leaf-intent label per entity (= entities[i].intent).
  std::vector<uint32_t> EntityIntentLabels() const;
  // Ground-truth *root*-intent label per entity.
  std::vector<uint32_t> EntityRootIntentLabels() const;

  // True category relatedness: categories co-attached to the same root
  // intent. Used to score mined correlations (Sec 2.4).
  bool CategoriesRelated(uint32_t c1, uint32_t c2) const;
};

// Generates the dataset. Deterministic in `options.seed`.
util::Result<Dataset> GenerateDataset(const DatasetOptions& options);

// Builds the query-item bipartite graph (Figure 2) from the clicks that
// fall inside [window_begin_sec, window_end_sec). The paper uses a 7-day
// sliding window over the live log.
graph::BipartiteGraph BuildQueryItemGraph(const Dataset& dataset,
                                          uint64_t window_begin_sec,
                                          uint64_t window_end_sec);

// Convenience: the trailing `days`-day window of the dataset's log.
graph::BipartiteGraph BuildRecentQueryItemGraph(const Dataset& dataset,
                                                double days = 7.0);

// Sentence corpus for word2vec training: one sentence per entity title
// plus one per query.
std::vector<std::vector<uint32_t>> BuildTrainingCorpus(const Dataset& dataset);

}  // namespace shoal::data

#endif  // SHOAL_DATA_DATASET_H_
