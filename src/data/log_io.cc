#include "data/log_io.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "text/tokenizer.h"
#include "util/string_util.h"
#include "util/tsv.h"

namespace shoal::data {

namespace {

std::string PathOf(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

uint32_t ParseU32(const std::string& text) {
  return static_cast<uint32_t>(std::strtoul(text.c_str(), nullptr, 10));
}

}  // namespace

util::Status ExportSearchLog(const Dataset& dataset,
                             const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create directory " + dir + ": " +
                                 ec.message());
  }
  std::vector<std::vector<std::string>> items;
  items.push_back({"# item_id", "category_id", "title"});
  for (const ItemEntity& entity : dataset.entities) {
    items.push_back({std::to_string(entity.id),
                     std::to_string(entity.category), entity.title});
  }
  std::vector<std::vector<std::string>> queries;
  queries.push_back({"# query_id", "text"});
  for (const SearchQuery& query : dataset.queries) {
    queries.push_back({std::to_string(query.id), query.text});
  }
  std::vector<std::vector<std::string>> clicks;
  clicks.push_back({"# query_id", "item_id", "timestamp_sec"});
  for (const ClickEvent& click : dataset.clicks) {
    clicks.push_back({std::to_string(click.query),
                      std::to_string(click.entity),
                      std::to_string(click.timestamp_sec)});
  }
  SHOAL_RETURN_IF_ERROR(util::WriteTsv(PathOf(dir, "items.tsv"), items));
  SHOAL_RETURN_IF_ERROR(util::WriteTsv(PathOf(dir, "queries.tsv"), queries));
  SHOAL_RETURN_IF_ERROR(util::WriteTsv(PathOf(dir, "clicks.tsv"), clicks));
  return util::Status::OK();
}

util::Result<SearchLog> ImportSearchLog(const std::string& dir) {
  SearchLog log;

  SHOAL_ASSIGN_OR_RETURN(auto item_rows,
                         util::ReadTsv(PathOf(dir, "items.tsv")));
  for (const auto& row : item_rows) {
    if (row.size() != 3) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "items.tsv: expected 3 fields, got %zu", row.size()));
    }
    ItemEntity item;
    item.id = ParseU32(row[0]);
    if (item.id != log.items.size()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "items.tsv: ids must be dense; got %u at row %zu", item.id,
          log.items.size()));
    }
    item.category = ParseU32(row[1]);
    item.title = row[2];
    for (const std::string& token : text::Tokenize(item.title)) {
      item.title_words.push_back(log.vocab.AddWord(token));
    }
    log.items.push_back(std::move(item));
  }
  if (log.items.empty()) {
    return util::Status::InvalidArgument("items.tsv has no items");
  }

  SHOAL_ASSIGN_OR_RETURN(auto query_rows,
                         util::ReadTsv(PathOf(dir, "queries.tsv")));
  for (const auto& row : query_rows) {
    if (row.size() != 2) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "queries.tsv: expected 2 fields, got %zu", row.size()));
    }
    SearchQuery query;
    query.id = ParseU32(row[0]);
    if (query.id != log.queries.size()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "queries.tsv: ids must be dense; got %u at row %zu", query.id,
          log.queries.size()));
    }
    query.text = row[1];
    for (const std::string& token : text::Tokenize(query.text)) {
      query.words.push_back(log.vocab.AddWord(token));
    }
    log.queries.push_back(std::move(query));
  }
  if (log.queries.empty()) {
    return util::Status::InvalidArgument("queries.tsv has no queries");
  }

  SHOAL_ASSIGN_OR_RETURN(auto click_rows,
                         util::ReadTsv(PathOf(dir, "clicks.tsv")));
  for (const auto& row : click_rows) {
    if (row.size() != 3) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "clicks.tsv: expected 3 fields, got %zu", row.size()));
    }
    ClickEvent click;
    click.query = ParseU32(row[0]);
    click.entity = ParseU32(row[1]);
    click.timestamp_sec = std::strtoull(row[2].c_str(), nullptr, 10);
    if (click.query >= log.queries.size()) {
      return util::Status::InvalidArgument("clicks.tsv: unknown query id");
    }
    if (click.entity >= log.items.size()) {
      return util::Status::InvalidArgument("clicks.tsv: unknown item id");
    }
    log.clicks.push_back(click);
  }
  std::sort(log.clicks.begin(), log.clicks.end(),
            [](const ClickEvent& a, const ClickEvent& b) {
              return a.timestamp_sec < b.timestamp_sec;
            });
  return log;
}

ShoalInputBundle MakeShoalInputFromLog(const SearchLog& log,
                                       double window_days) {
  ShoalInputBundle bundle;
  uint64_t end = log.clicks.empty() ? 0 : log.clicks.back().timestamp_sec + 1;
  uint64_t span = static_cast<uint64_t>(window_days * 86400.0);
  uint64_t begin = span > end ? 0 : end - span;

  bundle.query_item_graph =
      graph::BipartiteGraph(log.queries.size(), log.items.size());
  for (const ClickEvent& click : log.clicks) {
    if (click.timestamp_sec < begin || click.timestamp_sec >= end) continue;
    auto status =
        bundle.query_item_graph.AddInteraction(click.query, click.entity);
    (void)status;  // ids validated at import
  }
  bundle.entity_title_words.reserve(log.items.size());
  bundle.entity_categories.reserve(log.items.size());
  for (const ItemEntity& item : log.items) {
    bundle.entity_title_words.push_back(item.title_words);
    bundle.entity_categories.push_back(item.category);
  }
  bundle.query_words.reserve(log.queries.size());
  bundle.query_texts.reserve(log.queries.size());
  for (const SearchQuery& query : log.queries) {
    bundle.query_words.push_back(query.words);
    bundle.query_texts.push_back(query.text);
  }
  bundle.vocab = &log.vocab;
  return bundle;
}

}  // namespace shoal::data
