#include "data/lexicon.h"

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace shoal::data {

namespace {

// Conceptual shopping scenarios, mirroring the paper's examples
// ("Trip to the beach", "Mountaineering", "Outdoor activities").
const char* const kScenarioThemes[] = {
    "beach trip",      "mountaineering", "home office",    "baby care",
    "fitness",         "camping",        "wedding",        "winter commute",
    "gaming setup",    "pet care",       "breakfast",      "running",
    "yoga",            "fishing",        "barbecue",       "road trip",
    "gardening",       "skiing",         "cycling",        "diving",
    "picnic",          "dorm life",      "kitchen refresh", "home cinema",
    "rainy season",    "summer cooling", "new year party", "school season",
    "photography",     "hiking",         "swimming",       "travel abroad",
    "night market",    "tea ceremony",   "coffee corner",  "cleaning day",
    "car care",        "crafting",       "painting",       "skincare routine",
    "men fashion",     "street dance",   "board games",    "bird watching",
    "home bakery",     "city festival",  "baby shower",    "work commute",
};

const char* const kModifiers[] = {
    "family", "budget",  "luxury", "outdoor", "mini",   "pro",
    "urban",  "classic", "smart",  "compact", "deluxe", "eco",
    "travel", "night",   "summer", "winter",  "daily",  "weekend",
};

const char* const kProductNouns[] = {
    "dress",      "sunblock",   "swimwear",   "sunglasses", "backpack",
    "alpenstock", "jacket",     "boots",      "tent",       "lantern",
    "stove",      "chair",      "desk",       "monitor",    "keyboard",
    "router",     "headset",    "stroller",   "bottle",     "diaper",
    "formula",    "dumbbell",   "treadmill",  "mat",        "leggings",
    "sneakers",   "rod",        "reel",       "bait",       "grill",
    "skewer",     "charcoal",   "trowel",     "seeds",      "planter",
    "skis",       "goggles",    "helmet",     "gloves",     "wetsuit",
    "fins",       "basket",     "blanket",    "thermos",    "kettle",
    "toaster",    "projector",  "speaker",    "umbrella",   "raincoat",
    "fan",        "cooler",     "balloon",    "notebook",   "pencil",
    "camera",     "tripod",     "lens",       "towel",      "shampoo",
    "serum",      "cleanser",   "tie",        "blazer",     "cap",
    "puzzle",     "binoculars", "flour",      "oven",       "whisk",
    "collar",     "leash",      "kennel",     "cereal",     "jam",
    "espresso",   "grinder",    "mop",        "polish",     "wax",
};

const char* const kFillerWords[] = {
    "new",   "hot",     "sale",   "premium", "official", "2019",
    "style", "edition", "series", "brand",   "quality",  "original",
};

constexpr size_t kNumThemes = sizeof(kScenarioThemes) / sizeof(char*);
constexpr size_t kNumModifiers = sizeof(kModifiers) / sizeof(char*);
constexpr size_t kNumNouns = sizeof(kProductNouns) / sizeof(char*);
constexpr size_t kNumFiller = sizeof(kFillerWords) / sizeof(char*);

const char* const kOnsets[] = {"b", "d", "f", "g", "k", "l", "m",
                               "n", "p", "r", "s", "t", "v", "z",
                               "br", "dr", "gr", "kl", "pl", "st"};
const char* const kVowels[] = {"a", "e", "i", "o", "u", "ai", "ou"};
const char* const kCodas[] = {"", "n", "r", "s", "l", "k", "x"};

}  // namespace

Lexicon::Lexicon(uint64_t seed) : rng_(seed) {}

std::string Lexicon::ScenarioName(size_t i) const {
  std::string base = kScenarioThemes[i % kNumThemes];
  size_t round = i / kNumThemes;
  if (round > 0) base += " " + std::to_string(round + 1);
  return base;
}

std::string Lexicon::Modifier(size_t i) const {
  std::string base = kModifiers[i % kNumModifiers];
  size_t round = i / kNumModifiers;
  if (round > 0) base += std::to_string(round + 1);
  return base;
}

std::string Lexicon::ProductNoun(size_t i) const {
  std::string base = kProductNouns[i % kNumNouns];
  size_t round = i / kNumNouns;
  if (round > 0) base += std::to_string(round + 1);
  return base;
}

std::string Lexicon::MakePseudoWord() {
  std::string word;
  size_t syllables = 2 + rng_.Uniform(2);
  for (size_t s = 0; s < syllables; ++s) {
    word += kOnsets[rng_.Uniform(sizeof(kOnsets) / sizeof(char*))];
    word += kVowels[rng_.Uniform(sizeof(kVowels) / sizeof(char*))];
    word += kCodas[rng_.Uniform(sizeof(kCodas) / sizeof(char*))];
  }
  return word;
}

std::vector<uint32_t> Lexicon::MintTopicWords(size_t count) {
  std::vector<uint32_t> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Suffix with a serial number so minted words never collide with each
    // other or with curated words.
    std::string word = MakePseudoWord() + std::to_string(minted_++);
    ids.push_back(vocab_.AddWord(word, 0));
  }
  return ids;
}

const std::vector<uint32_t>& Lexicon::FillerWords() {
  if (filler_.empty()) {
    for (size_t i = 0; i < kNumFiller; ++i) {
      filler_.push_back(vocab_.AddWord(kFillerWords[i], 0));
    }
  }
  return filler_;
}

std::vector<uint32_t> Lexicon::InternPhrase(const std::string& phrase) {
  std::vector<uint32_t> ids;
  for (const std::string& token : text::Tokenize(phrase)) {
    ids.push_back(vocab_.AddWord(token, 0));
  }
  return ids;
}

}  // namespace shoal::data
