#ifndef SHOAL_DATA_DRIFT_LOG_H_
#define SHOAL_DATA_DRIFT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/bipartite_graph.h"
#include "util/result.h"

namespace shoal::data {

// Multi-day synthetic click log with per-day drift, the workload the
// incremental maintenance daemon (src/daemon) is tested and benched on.
// Reproducible from a single seed.
//
// Day-over-day structure mirrors a production log:
//   * a *stationary background* — a fixed multiset of (query, item)
//     click pairs emitted every day with identical per-day counts, so a
//     sliding window that drops one day and ingests the next sees no
//     aggregate change on these pairs (the stable head of traffic);
//   * *hot intents* — a small rotating set of leaf intents whose
//     queries receive a burst of extra clicks that day (trending
//     demand; these are the edges a cycle actually changes);
//   * *births* — a slice of catalog entities/queries first appears on
//     each day after day 0, seeded with introduction clicks (new
//     listings / first-seen queries, exercising the daemon's LSH-
//     assisted discovery of brand-new entities).
//
// The catalog (entity titles, query texts, ontology) is static across
// days: day d > 0 reveals pre-generated rows rather than minting new
// ids, so every artefact of every cycle indexes one id space.
struct DriftOptions {
  // The static catalog universe (entities/queries across ALL days).
  // `catalog.num_clicks` is ignored — clicks come from the day streams.
  DatasetOptions catalog;

  size_t num_days = 9;

  // Stationary background: this many (query, item) pairs, each clicked
  // `1 + Poisson(background_extra_mean)` times per day (the per-pair
  // count is drawn once and reused every day — that invariance is what
  // keeps untouched topics bit-identical across cycles).
  size_t background_pairs = 12000;
  double background_extra_mean = 1.5;

  // Per-day drift burst.
  size_t hot_intents_per_day = 2;
  size_t drift_clicks_per_day = 4000;
  // Probability a drift click lands on a random active entity instead
  // of the hot intent's pool.
  double click_noise = 0.02;

  // Fraction of the catalog born on each day after day 0 (day 0 gets
  // the remainder). Newborns are drawn from the day's hot intents when
  // possible (new listings follow trending demand) — this keeps the
  // day's churn concentrated, which is what makes the incremental path
  // worth having; spreading births uniformly would dirty almost every
  // cluster every day. Newborns receive `intro_clicks` clicks on their
  // birth day.
  double new_entity_fraction = 0.002;
  double new_query_fraction = 0.002;
  size_t intro_clicks = 8;

  // Day d covers [day_zero_sec + d*86400, day_zero_sec + (d+1)*86400).
  uint64_t day_zero_sec = 1'600'000'000;
};

// One emitted day, with the ground truth of what drifted.
struct DriftDay {
  std::vector<ClickEvent> clicks;        // sorted (timestamp, query, entity)
  std::vector<uint32_t> hot_intents;     // leaf intents burst this day
  std::vector<uint32_t> born_entities;   // first active this day
  std::vector<uint32_t> born_queries;
};

struct DriftLog {
  DriftOptions options;
  Dataset catalog;  // clicks empty; the full static universe
  std::vector<uint32_t> entity_birth_day;  // per entity id
  std::vector<uint32_t> query_birth_day;   // per query id
  std::vector<DriftDay> days;

  uint64_t DayBeginSec(size_t day) const {
    return options.day_zero_sec + day * 86400ull;
  }
  uint64_t DayEndSec(size_t day) const { return DayBeginSec(day + 1); }
};

// Generates the drift log. Deterministic in `options.catalog.seed`.
util::Result<DriftLog> GenerateDriftLog(const DriftOptions& options);

// Query-item bipartite graph over days [begin_day, end_day) — the
// from-scratch reference for a window the daemon maintained
// incrementally.
graph::BipartiteGraph BuildWindowGraph(const DriftLog& log, size_t begin_day,
                                       size_t end_day);

// ---- spool export ---------------------------------------------------------
// On-disk form consumed by shoal_daemon: the static catalog in the
// log_io exchange format (items.tsv + queries.tsv, no clicks.tsv) plus
// one clicks file per day, dropped into a spool directory as the day
// "arrives":
//
//   <dir>/items.tsv              item_id  category_id  title
//   <dir>/queries.tsv            query_id  text
//   <dir>/day-0000.clicks.tsv    query_id  item_id  timestamp_sec
//
// Day files sort lexicographically in day order; the daemon processes
// them in that order.

// "day-%04zu.clicks.tsv".
std::string DriftDayFileName(size_t day);

// Writes items.tsv + queries.tsv for the full catalog.
util::Status ExportDriftCatalog(const DriftLog& log, const std::string& dir);

// Writes one day's clicks file (atomically enough for the spool: the
// file appears fully written under its final name).
util::Status ExportDriftDay(const DriftLog& log, size_t day,
                            const std::string& dir);

}  // namespace shoal::data

#endif  // SHOAL_DATA_DRIFT_LOG_H_
