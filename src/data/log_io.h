#ifndef SHOAL_DATA_LOG_IO_H_
#define SHOAL_DATA_LOG_IO_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/shoal_adapter.h"
#include "util/result.h"

namespace shoal::data {

// Raw search-log exchange format — what an e-commerce platform would
// dump from its own systems to run SHOAL on real data:
//
//   <dir>/items.tsv    item_id  category_id  title
//   <dir>/queries.tsv  query_id  text
//   <dir>/clicks.tsv   query_id  item_id  timestamp_sec
//
// Ids must be dense ([0, N) in file order is checked). Categories are
// free integers (an external taxonomy's leaf ids).

// Exports a synthetic dataset's observable part (no ground truth) in
// the exchange format. Useful for demos and round-trip testing.
util::Status ExportSearchLog(const Dataset& dataset, const std::string& dir);

// A raw log loaded from the exchange format, plus the vocabulary built
// from its text (needed by the pipeline).
struct SearchLog {
  std::vector<ItemEntity> items;     // intent fields left kNoIntent
  std::vector<SearchQuery> queries;  // intent fields left kNoIntent
  std::vector<ClickEvent> clicks;    // sorted by timestamp
  text::Vocabulary vocab;
};

// Loads and validates the exchange format.
util::Result<SearchLog> ImportSearchLog(const std::string& dir);

// Builds a pipeline-ready input bundle from a raw log: tokenises
// titles/queries against the log's vocabulary and assembles the
// query-item bipartite graph from clicks in the trailing
// `window_days`-day window (relative to the newest click).
// The SearchLog must outlive the bundle (the vocab is borrowed).
ShoalInputBundle MakeShoalInputFromLog(const SearchLog& log,
                                       double window_days = 7.0);

}  // namespace shoal::data

#endif  // SHOAL_DATA_LOG_IO_H_
