#ifndef SHOAL_DATA_ONTOLOGY_H_
#define SHOAL_DATA_ONTOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace shoal::data {

inline constexpr uint32_t kNoCategory = static_cast<uint32_t>(-1);

// One node of the ontology-driven category tree (Figure 1(a)): a root,
// departments ("Ladies' wear"), and leaf categories ("Dress").
struct Category {
  uint32_t id = kNoCategory;
  uint32_t parent = kNoCategory;
  std::string name;
  uint32_t depth = 0;
  std::vector<uint32_t> children;

  bool is_leaf() const { return children.empty(); }
};

// Dictionary-based ontology taxonomy: a rooted tree of categories. This
// is the *existing* taxonomy SHOAL complements; the control arm of the
// A/B experiment recommends within it.
class Ontology {
 public:
  // Builds a 3-level tree: root -> `num_departments` departments ->
  // `leaves_per_department` leaf categories each. Names come from the
  // caller (generator composes them from the lexicon).
  static Ontology BuildThreeLevel(
      const std::vector<std::string>& department_names,
      const std::vector<std::vector<std::string>>& leaf_names);

  size_t size() const { return nodes_.size(); }
  const Category& node(uint32_t id) const { return nodes_[id]; }
  uint32_t root() const { return 0; }

  const std::vector<uint32_t>& leaves() const { return leaves_; }

  // Department (depth-1 ancestor) of a category; the root maps to itself.
  uint32_t DepartmentOf(uint32_t id) const;

  // Path of category names from the root to `id`, e.g.
  // {"all", "ladies wear", "dress"}.
  std::vector<std::string> PathNames(uint32_t id) const;

  // Leaf categories sharing the department of `leaf` (including itself) —
  // what an ontology-driven recommender considers "related".
  std::vector<uint32_t> SiblingLeaves(uint32_t leaf) const;

 private:
  std::vector<Category> nodes_;
  std::vector<uint32_t> leaves_;
};

}  // namespace shoal::data

#endif  // SHOAL_DATA_ONTOLOGY_H_
