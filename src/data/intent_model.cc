#include "data/intent_model.h"

#include "util/logging.h"

namespace shoal::data {

uint32_t IntentModel::AddRoot(Intent intent) {
  intent.id = static_cast<uint32_t>(intents_.size());
  intent.parent = kNoIntent;
  intent.depth = 0;
  intents_.push_back(std::move(intent));
  roots_.push_back(intents_.back().id);
  RefreshLeaves();
  return intents_.back().id;
}

uint32_t IntentModel::AddChild(uint32_t parent, Intent intent) {
  SHOAL_CHECK(parent < intents_.size()) << "parent intent out of range";
  intent.id = static_cast<uint32_t>(intents_.size());
  intent.parent = parent;
  intent.depth = intents_[parent].depth + 1;
  intents_.push_back(std::move(intent));
  intents_[parent].children.push_back(intents_.back().id);
  RefreshLeaves();
  return intents_.back().id;
}

uint32_t IntentModel::RootOf(uint32_t id) const {
  SHOAL_CHECK(id < intents_.size()) << "intent id out of range";
  uint32_t cur = id;
  while (intents_[cur].parent != kNoIntent) cur = intents_[cur].parent;
  return cur;
}

std::vector<uint32_t> IntentModel::EffectiveVocabulary(uint32_t id) const {
  SHOAL_CHECK(id < intents_.size()) << "intent id out of range";
  std::vector<uint32_t> vocab;
  uint32_t cur = id;
  while (true) {
    const Intent& node = intents_[cur];
    vocab.insert(vocab.end(), node.vocabulary.begin(), node.vocabulary.end());
    if (node.parent == kNoIntent) break;
    cur = node.parent;
  }
  return vocab;
}

void IntentModel::RefreshLeaves() {
  leaves_.clear();
  for (const Intent& intent : intents_) {
    if (intent.is_leaf()) leaves_.push_back(intent.id);
  }
}

}  // namespace shoal::data
