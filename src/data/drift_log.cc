#include "data/drift_log.h"

#include <algorithm>
#include <filesystem>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/tsv.h"

namespace shoal::data {

namespace {

// One stationary-background pair: clicked `count` times on every day.
struct BackgroundPair {
  uint32_t query = 0;
  uint32_t entity = 0;
  uint32_t count = 0;
};

void SortDay(std::vector<ClickEvent>& clicks) {
  std::sort(clicks.begin(), clicks.end(),
            [](const ClickEvent& a, const ClickEvent& b) {
              if (a.timestamp_sec != b.timestamp_sec) {
                return a.timestamp_sec < b.timestamp_sec;
              }
              if (a.query != b.query) return a.query < b.query;
              return a.entity < b.entity;
            });
}

std::string PathOf(const std::string& dir, const std::string& file) {
  return (std::filesystem::path(dir) / file).string();
}

}  // namespace

util::Result<DriftLog> GenerateDriftLog(const DriftOptions& options) {
  if (options.num_days == 0) {
    return util::Status::InvalidArgument("num_days must be >= 1");
  }
  if (options.hot_intents_per_day == 0) {
    return util::Status::InvalidArgument("hot_intents_per_day must be >= 1");
  }

  DriftLog log;
  log.options = options;

  DatasetOptions catalog_options = options.catalog;
  catalog_options.num_clicks = 0;  // clicks come from the day streams
  SHOAL_ASSIGN_OR_RETURN(log.catalog, GenerateDataset(catalog_options));

  const size_t num_entities = log.catalog.entities.size();
  const size_t num_queries = log.catalog.queries.size();
  const size_t births_e = static_cast<size_t>(
      options.new_entity_fraction * static_cast<double>(num_entities));
  const size_t births_q = static_cast<size_t>(
      options.new_query_fraction * static_cast<double>(num_queries));
  if (births_e * (options.num_days - 1) >= num_entities ||
      births_q * (options.num_days - 1) >= num_queries) {
    return util::Status::InvalidArgument(
        "birth fractions leave no day-0 cohort");
  }

  // Independent stream from the catalog generator's so the catalog is
  // byte-identical whether or not a drift log is layered on top.
  util::Rng rng(options.catalog.seed ^ 0xd21f7106ULL);

  // ---- hot intents (chosen first: births follow trending demand) --------
  log.days.resize(options.num_days);
  {
    std::vector<uint32_t> rotation(log.catalog.intents.leaves());
    for (size_t d = 0; d < options.num_days; ++d) {
      rng.Shuffle(rotation);
      const size_t num_hot =
          std::min(options.hot_intents_per_day, rotation.size());
      log.days[d].hot_intents.assign(rotation.begin(),
                                     rotation.begin() + num_hot);
      std::sort(log.days[d].hot_intents.begin(),
                log.days[d].hot_intents.end());
    }
  }

  // ---- birth days --------------------------------------------------------
  // Newborns are drawn from the day's hot intents first so day-over-day
  // churn stays concentrated; only if a day's hot intents run out of
  // unborn members does it fall back to an arbitrary unborn row.
  log.entity_birth_day.assign(num_entities, 0);
  log.query_birth_day.assign(num_queries, 0);
  {
    auto assign_births = [&](size_t count_per_day, auto intent_of,
                             std::vector<uint32_t>& birth_day, size_t universe,
                             auto record) {
      std::vector<bool> born_late(universe, false);
      std::vector<uint32_t> fallback(universe);
      std::iota(fallback.begin(), fallback.end(), 0u);
      rng.Shuffle(fallback);
      size_t fallback_next = 0;
      for (size_t d = 1; d < options.num_days; ++d) {
        std::vector<bool> hot(log.catalog.intents.size(), false);
        for (uint32_t intent : log.days[d].hot_intents) hot[intent] = true;
        std::vector<uint32_t> pool;
        for (uint32_t id = 0; id < universe; ++id) {
          if (!born_late[id] && hot[intent_of(id)]) pool.push_back(id);
        }
        rng.Shuffle(pool);
        size_t taken = 0;
        for (uint32_t id : pool) {
          if (taken == count_per_day) break;
          born_late[id] = true;
          birth_day[id] = static_cast<uint32_t>(d);
          record(d, id);
          ++taken;
        }
        while (taken < count_per_day && fallback_next < universe) {
          const uint32_t id = fallback[fallback_next++];
          if (born_late[id]) continue;
          born_late[id] = true;
          birth_day[id] = static_cast<uint32_t>(d);
          record(d, id);
          ++taken;
        }
      }
    };
    assign_births(
        births_e,
        [&](uint32_t e) { return log.catalog.entities[e].intent; },
        log.entity_birth_day, num_entities,
        [&](size_t d, uint32_t e) { log.days[d].born_entities.push_back(e); });
    assign_births(
        births_q, [&](uint32_t q) { return log.catalog.queries[q].intent; },
        log.query_birth_day, num_queries,
        [&](size_t d, uint32_t q) { log.days[d].born_queries.push_back(q); });
    for (DriftDay& day : log.days) {
      std::sort(day.born_entities.begin(), day.born_entities.end());
      std::sort(day.born_queries.begin(), day.born_queries.end());
    }
  }

  // Day-0 cohort and per-intent active pools (grown as days pass).
  const size_t num_intents = log.catalog.intents.size();
  std::vector<std::vector<uint32_t>> active_entities_of(num_intents);
  std::vector<std::vector<uint32_t>> active_queries_of(num_intents);
  std::vector<uint32_t> active_entities;
  std::vector<uint32_t> active_queries;
  auto activate_entity = [&](uint32_t e) {
    active_entities.push_back(e);
    active_entities_of[log.catalog.entities[e].intent].push_back(e);
  };
  auto activate_query = [&](uint32_t q) {
    active_queries.push_back(q);
    active_queries_of[log.catalog.queries[q].intent].push_back(q);
  };
  for (uint32_t e = 0; e < num_entities; ++e) {
    if (log.entity_birth_day[e] == 0) activate_entity(e);
  }
  for (uint32_t q = 0; q < num_queries; ++q) {
    if (log.query_birth_day[q] == 0) activate_query(q);
  }
  if (active_entities.empty() || active_queries.empty()) {
    return util::Status::InvalidArgument("day-0 cohort is empty");
  }

  // ---- stationary background --------------------------------------------
  // Drawn from the day-0 cohort only (always active), with a per-pair
  // daily count fixed once: every day contributes the same aggregate.
  std::vector<BackgroundPair> background;
  background.reserve(options.background_pairs);
  util::ZipfDistribution head(active_queries.size(),
                              options.catalog.query_zipf_exponent);
  for (size_t i = 0; i < options.background_pairs; ++i) {
    BackgroundPair pair;
    pair.query = active_queries[head.Sample(rng)];
    const uint32_t intent = log.catalog.queries[pair.query].intent;
    const auto& pool = active_entities_of[intent];
    pair.entity = pool.empty()
                      ? active_entities[rng.Uniform(active_entities.size())]
                      : pool[rng.Uniform(pool.size())];
    pair.count =
        1 + static_cast<uint32_t>(rng.Poisson(options.background_extra_mean));
    background.push_back(pair);
  }

  // ---- day streams -------------------------------------------------------
  for (size_t d = 0; d < options.num_days; ++d) {
    DriftDay& day = log.days[d];
    const uint64_t begin = log.DayBeginSec(d);
    const size_t num_hot = day.hot_intents.size();

    for (uint32_t e : day.born_entities) activate_entity(e);
    for (uint32_t q : day.born_queries) activate_query(q);

    auto stamp = [&](uint32_t q, uint32_t e) {
      ClickEvent event;
      event.query = q;
      event.entity = e;
      event.timestamp_sec = begin + rng.Uniform(86400);
      day.clicks.push_back(event);
    };

    // Background: identical (query, entity, count) multiset every day.
    for (const BackgroundPair& pair : background) {
      for (uint32_t c = 0; c < pair.count; ++c) stamp(pair.query, pair.entity);
    }

    // Drift burst on the day's hot intents.
    for (size_t c = 0; c < options.drift_clicks_per_day; ++c) {
      const uint32_t intent = day.hot_intents[rng.Uniform(num_hot)];
      const auto& qpool = active_queries_of[intent];
      const uint32_t q = qpool.empty()
                             ? active_queries[rng.Uniform(active_queries.size())]
                             : qpool[rng.Uniform(qpool.size())];
      const auto& epool = active_entities_of[intent];
      uint32_t e;
      if (rng.Bernoulli(options.click_noise) || epool.empty()) {
        e = active_entities[rng.Uniform(active_entities.size())];
      } else {
        e = epool[rng.Uniform(epool.size())];
      }
      stamp(q, e);
    }

    // Introduction clicks for the day's newborns.
    for (uint32_t e : day.born_entities) {
      const uint32_t intent = log.catalog.entities[e].intent;
      const auto& qpool = active_queries_of[intent];
      for (size_t c = 0; c < options.intro_clicks; ++c) {
        const uint32_t q =
            qpool.empty() ? active_queries[rng.Uniform(active_queries.size())]
                          : qpool[rng.Uniform(qpool.size())];
        stamp(q, e);
      }
    }
    for (uint32_t q : day.born_queries) {
      const uint32_t intent = log.catalog.queries[q].intent;
      const auto& epool = active_entities_of[intent];
      for (size_t c = 0; c < options.intro_clicks; ++c) {
        const uint32_t e =
            epool.empty() ? active_entities[rng.Uniform(active_entities.size())]
                          : epool[rng.Uniform(epool.size())];
        stamp(q, e);
      }
    }

    SortDay(day.clicks);
  }
  return log;
}

graph::BipartiteGraph BuildWindowGraph(const DriftLog& log, size_t begin_day,
                                       size_t end_day) {
  graph::BipartiteGraph graph(log.catalog.queries.size(),
                              log.catalog.entities.size());
  for (size_t d = begin_day; d < end_day && d < log.days.size(); ++d) {
    for (const ClickEvent& event : log.days[d].clicks) {
      auto status = graph.AddInteraction(event.query, event.entity);
      SHOAL_CHECK(status.ok()) << status.ToString();
    }
  }
  return graph;
}

std::string DriftDayFileName(size_t day) {
  return util::StringPrintf("day-%04zu.clicks.tsv", day);
}

util::Status ExportDriftCatalog(const DriftLog& log, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create directory " + dir + ": " +
                                 ec.message());
  }
  std::vector<std::vector<std::string>> items;
  items.push_back({"# item_id", "category_id", "title"});
  for (const ItemEntity& entity : log.catalog.entities) {
    items.push_back({std::to_string(entity.id),
                     std::to_string(entity.category), entity.title});
  }
  std::vector<std::vector<std::string>> queries;
  queries.push_back({"# query_id", "text"});
  for (const SearchQuery& query : log.catalog.queries) {
    queries.push_back({std::to_string(query.id), query.text});
  }
  SHOAL_RETURN_IF_ERROR(util::WriteTsv(PathOf(dir, "items.tsv"), items));
  SHOAL_RETURN_IF_ERROR(util::WriteTsv(PathOf(dir, "queries.tsv"), queries));
  return util::Status::OK();
}

util::Status ExportDriftDay(const DriftLog& log, size_t day,
                            const std::string& dir) {
  if (day >= log.days.size()) {
    return util::Status::InvalidArgument(
        util::StringPrintf("day %zu out of range (%zu days)", day,
                           log.days.size()));
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create directory " + dir + ": " +
                                 ec.message());
  }
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"# query_id", "item_id", "timestamp_sec"});
  for (const ClickEvent& click : log.days[day].clicks) {
    rows.push_back({std::to_string(click.query), std::to_string(click.entity),
                    std::to_string(click.timestamp_sec)});
  }
  return util::WriteTsv(PathOf(dir, DriftDayFileName(day)), rows);
}

}  // namespace shoal::data
