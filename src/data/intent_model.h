#ifndef SHOAL_DATA_INTENT_MODEL_H_
#define SHOAL_DATA_INTENT_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace shoal::data {

inline constexpr uint32_t kNoIntent = static_cast<uint32_t>(-1);

// A planted shopping intent ("Trip to the beach" / "family camping").
// The intent tree is the *hidden ground truth* that the generators embed
// into titles, queries and clicks, and that SHOAL is expected to recover
// as its topic hierarchy. Leaf intents correspond to fine-grained topics;
// root intents to conceptual shopping scenarios.
struct Intent {
  uint32_t id = kNoIntent;
  uint32_t parent = kNoIntent;
  uint32_t depth = 0;
  std::string name;
  std::vector<uint32_t> children;

  // Topical vocabulary (word ids) characteristic of this intent. Children
  // also draw from their ancestors' vocabulary.
  std::vector<uint32_t> vocabulary;

  // Leaf ontology categories this intent shops across, with sampling
  // weights (the cross-category structure of Figure 1(b)).
  std::vector<uint32_t> categories;
  std::vector<double> category_weights;

  bool is_leaf() const { return children.empty(); }
};

// The planted intent hierarchy.
class IntentModel {
 public:
  size_t size() const { return intents_.size(); }
  const Intent& intent(uint32_t id) const { return intents_[id]; }
  Intent& intent(uint32_t id) { return intents_[id]; }

  const std::vector<uint32_t>& roots() const { return roots_; }
  const std::vector<uint32_t>& leaves() const { return leaves_; }

  uint32_t AddRoot(Intent intent);
  uint32_t AddChild(uint32_t parent, Intent intent);

  // Root ancestor of any intent.
  uint32_t RootOf(uint32_t id) const;

  // Vocabulary of the intent plus all its ancestors.
  std::vector<uint32_t> EffectiveVocabulary(uint32_t id) const;

 private:
  std::vector<Intent> intents_;
  std::vector<uint32_t> roots_;
  std::vector<uint32_t> leaves_;

  void RefreshLeaves();
};

}  // namespace shoal::data

#endif  // SHOAL_DATA_INTENT_MODEL_H_
