#ifndef SHOAL_DATA_SHOAL_ADAPTER_H_
#define SHOAL_DATA_SHOAL_ADAPTER_H_

#include <string>
#include <vector>

#include "core/shoal.h"
#include "data/dataset.h"
#include "graph/bipartite_graph.h"

namespace shoal::data {

// Owns the materialised views a synthetic Dataset needs to feed the
// SHOAL pipeline (core::ShoalInput only holds pointers).
struct ShoalInputBundle {
  graph::BipartiteGraph query_item_graph{0, 0};
  std::vector<std::vector<uint32_t>> entity_title_words;
  std::vector<uint32_t> entity_categories;
  std::vector<std::vector<uint32_t>> query_words;
  std::vector<std::string> query_texts;
  const text::Vocabulary* vocab = nullptr;  // borrowed from the Dataset

  // A view over this bundle; valid while the bundle is alive.
  core::ShoalInput View() const;
};

// Extracts the trailing `window_days` of the dataset's click log into a
// pipeline-ready bundle. The Dataset must outlive the bundle (the vocab
// is borrowed).
ShoalInputBundle MakeShoalInput(const Dataset& dataset,
                                double window_days = 7.0);

}  // namespace shoal::data

#endif  // SHOAL_DATA_SHOAL_ADAPTER_H_
