#include "data/ontology.h"

#include <algorithm>

#include "util/logging.h"

namespace shoal::data {

Ontology Ontology::BuildThreeLevel(
    const std::vector<std::string>& department_names,
    const std::vector<std::vector<std::string>>& leaf_names) {
  SHOAL_CHECK(department_names.size() == leaf_names.size())
      << "one leaf-name list per department required";
  Ontology ontology;
  Category root;
  root.id = 0;
  root.name = "all";
  root.depth = 0;
  ontology.nodes_.push_back(root);

  for (size_t d = 0; d < department_names.size(); ++d) {
    Category dept;
    dept.id = static_cast<uint32_t>(ontology.nodes_.size());
    dept.parent = 0;
    dept.name = department_names[d];
    dept.depth = 1;
    ontology.nodes_.push_back(dept);
    ontology.nodes_[0].children.push_back(dept.id);
    for (const std::string& leaf_name : leaf_names[d]) {
      Category leaf;
      leaf.id = static_cast<uint32_t>(ontology.nodes_.size());
      leaf.parent = dept.id;
      leaf.name = leaf_name;
      leaf.depth = 2;
      ontology.nodes_.push_back(leaf);
      ontology.nodes_[dept.id].children.push_back(leaf.id);
      ontology.leaves_.push_back(leaf.id);
    }
  }
  return ontology;
}

uint32_t Ontology::DepartmentOf(uint32_t id) const {
  SHOAL_CHECK(id < nodes_.size()) << "category id out of range";
  uint32_t cur = id;
  while (nodes_[cur].depth > 1) cur = nodes_[cur].parent;
  return cur;
}

std::vector<std::string> Ontology::PathNames(uint32_t id) const {
  SHOAL_CHECK(id < nodes_.size()) << "category id out of range";
  std::vector<std::string> path;
  uint32_t cur = id;
  while (true) {
    path.push_back(nodes_[cur].name);
    if (cur == root()) break;
    cur = nodes_[cur].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<uint32_t> Ontology::SiblingLeaves(uint32_t leaf) const {
  SHOAL_CHECK(leaf < nodes_.size()) << "category id out of range";
  uint32_t dept = DepartmentOf(leaf);
  std::vector<uint32_t> out;
  for (uint32_t child : nodes_[dept].children) {
    if (nodes_[child].is_leaf()) out.push_back(child);
  }
  return out;
}

}  // namespace shoal::data
