#include "data/shoal_adapter.h"

namespace shoal::data {

core::ShoalInput ShoalInputBundle::View() const {
  core::ShoalInput input;
  input.query_item_graph = &query_item_graph;
  input.entity_title_words = &entity_title_words;
  input.entity_categories = &entity_categories;
  input.query_words = &query_words;
  input.query_texts = &query_texts;
  input.vocab = vocab;
  return input;
}

ShoalInputBundle MakeShoalInput(const Dataset& dataset, double window_days) {
  ShoalInputBundle bundle;
  bundle.query_item_graph = BuildRecentQueryItemGraph(dataset, window_days);
  bundle.entity_title_words.reserve(dataset.entities.size());
  bundle.entity_categories.reserve(dataset.entities.size());
  for (const ItemEntity& entity : dataset.entities) {
    bundle.entity_title_words.push_back(entity.title_words);
    bundle.entity_categories.push_back(entity.category);
  }
  bundle.query_words.reserve(dataset.queries.size());
  bundle.query_texts.reserve(dataset.queries.size());
  for (const SearchQuery& query : dataset.queries) {
    bundle.query_words.push_back(query.words);
    bundle.query_texts.push_back(query.text);
  }
  bundle.vocab = &dataset.lexicon.vocab();
  return bundle;
}

}  // namespace shoal::data
