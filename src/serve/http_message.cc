#include "serve/http_message.h"

#include <cctype>

#include "util/string_util.h"

namespace shoal::serve {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string* HttpRequest::Param(std::string_view name) const {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size() &&
               HexDigit(text[i + 1]) >= 0 && HexDigit(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexDigit(text[i + 1]) * 16 +
                                      HexDigit(text[i + 2])));
      i += 2;
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

HttpRequest ParseRequestTarget(std::string method, std::string target) {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  std::string_view rest = request.target;
  const size_t question = rest.find('?');
  request.path = UrlDecode(rest.substr(0, question));
  if (question != std::string_view::npos) {
    for (std::string_view pair_text :
         util::Split(rest.substr(question + 1), '&')) {
      if (pair_text.empty()) continue;
      const size_t eq = pair_text.find('=');
      if (eq == std::string_view::npos) {
        request.params.emplace_back(UrlDecode(pair_text), "");
      } else {
        request.params.emplace_back(UrlDecode(pair_text.substr(0, eq)),
                                    UrlDecode(pair_text.substr(eq + 1)));
      }
    }
  }
  return request;
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

}  // namespace shoal::serve
