#include "serve/http_message.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>

#include "util/string_util.h"

namespace shoal::serve {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string* HttpRequest::Param(std::string_view name) const {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out.push_back(' ');
    } else if (text[i] == '%' && i + 2 < text.size() &&
               HexDigit(text[i + 1]) >= 0 && HexDigit(text[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexDigit(text[i + 1]) * 16 +
                                      HexDigit(text[i + 2])));
      i += 2;
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

HttpRequest ParseRequestTarget(std::string method, std::string target) {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  std::string_view rest = request.target;
  const size_t question = rest.find('?');
  request.path = UrlDecode(rest.substr(0, question));
  if (question != std::string_view::npos) {
    for (std::string_view pair_text :
         util::Split(rest.substr(question + 1), '&')) {
      if (pair_text.empty()) continue;
      const size_t eq = pair_text.find('=');
      if (eq == std::string_view::npos) {
        request.params.emplace_back(UrlDecode(pair_text), "");
      } else {
        request.params.emplace_back(UrlDecode(pair_text.substr(0, eq)),
                                    UrlDecode(pair_text.substr(eq + 1)));
      }
    }
  }
  return request;
}

std::string GenerateRequestId() {
  // Sequence the counter, then mix with SplitMix64 so consecutive ids
  // look unrelated (useful when grepping logs for one request).
  static std::atomic<uint64_t> counter{0x5eedf00d};
  uint64_t x = counter.fetch_add(1, std::memory_order_relaxed);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  static const char* kHex = "0123456789abcdef";
  std::string id(16, '0');
  for (int i = 15; i >= 0; --i) {
    id[i] = kHex[x & 0xf];
    x >>= 4;
  }
  return id;
}

std::string SanitizeRequestId(std::string_view id) {
  std::string out;
  out.reserve(std::min<size_t>(id.size(), 64));
  for (char c : id.substr(0, 64)) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

}  // namespace shoal::serve
