#ifndef SHOAL_SERVE_HTTP_MESSAGE_H_
#define SHOAL_SERVE_HTTP_MESSAGE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shoal::serve {

// The transport-independent request/response model the endpoint layer
// works on. The socket server (http_server.h) parses wire bytes into an
// HttpRequest and renders an HttpResponse back out; the in-process bench
// and unit tests construct HttpRequests directly and skip the kernel.

struct HttpRequest {
  std::string method;  // "GET", "POST", ... (upper case)
  std::string target;  // raw request target, e.g. "/v1/query?q=red+dress"
  std::string path;    // decoded path component
  // Decoded query parameters in order of appearance.
  std::vector<std::pair<std::string, std::string>> params;

  // First value of `name`, or nullptr.
  const std::string* Param(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

// Percent-decoding plus '+' -> space (application/x-www-form-urlencoded
// query conventions). Malformed %-escapes are kept verbatim.
std::string UrlDecode(std::string_view text);

// Splits a raw request target into decoded path + parameters.
HttpRequest ParseRequestTarget(std::string method, std::string target);

// Canonical reason phrase for the status codes the service emits.
std::string_view HttpReasonPhrase(int status);

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_HTTP_MESSAGE_H_
