#ifndef SHOAL_SERVE_HTTP_MESSAGE_H_
#define SHOAL_SERVE_HTTP_MESSAGE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace shoal::serve {

// The transport-independent request/response model the endpoint layer
// works on. The socket server (http_server.h) parses wire bytes into an
// HttpRequest and renders an HttpResponse back out; the in-process bench
// and unit tests construct HttpRequests directly and skip the kernel.

struct HttpRequest {
  std::string method;  // "GET", "POST", ... (upper case)
  std::string target;  // raw request target, e.g. "/v1/query?q=red+dress"
  std::string path;    // decoded path component
  // Decoded query parameters in order of appearance.
  std::vector<std::pair<std::string, std::string>> params;
  // Caller-supplied X-Request-Id (sanitized), or empty — the service
  // generates one so every response and access-log line carries an id.
  std::string request_id;

  // First value of `name`, or nullptr.
  const std::string* Param(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  // Echoed back as the X-Request-Id response header by the socket
  // layer; filled by ServingService::Handle on every request.
  std::string request_id;
};

// Percent-decoding plus '+' -> space (application/x-www-form-urlencoded
// query conventions). Malformed %-escapes are kept verbatim.
std::string UrlDecode(std::string_view text);

// Splits a raw request target into decoded path + parameters.
HttpRequest ParseRequestTarget(std::string method, std::string target);

// Canonical reason phrase for the status codes the service emits.
std::string_view HttpReasonPhrase(int status);

// Process-unique request id: 16 lowercase hex digits, cheap enough for
// the per-request hot path (one relaxed atomic increment + SplitMix64).
std::string GenerateRequestId();

// Clamps a caller-supplied request id to something safe to echo into
// headers and JSONL logs: [A-Za-z0-9._-] only (others become '_'),
// truncated to 64 characters. Empty stays empty.
std::string SanitizeRequestId(std::string_view id);

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_HTTP_MESSAGE_H_
