#include "serve/access_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/json.h"
#include "util/string_util.h"

namespace shoal::serve {

namespace {

void AppendStringField(std::string& out, const char* key,
                       const std::string& value, bool first = false) {
  if (!first) out += ", ";
  out += '"';
  out += key;
  out += "\": \"";
  util::JsonEscape(value, out);
  out += '"';
}

}  // namespace

util::Result<std::unique_ptr<AccessLog>> AccessLog::Open(
    const std::string& path) {
  int fd;
  if (path == "-") {
    fd = ::dup(STDERR_FILENO);
  } else {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  }
  if (fd < 0) {
    return util::Status::IoError(util::StringPrintf(
        "cannot open access log %s: %s", path.c_str(),
        std::strerror(errno)));
  }
  return std::unique_ptr<AccessLog>(new AccessLog(path, fd));
}

AccessLog::AccessLog(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

AccessLog::~AccessLog() { ::close(fd_); }

std::string AccessLog::Render(const AccessLogEntry& entry) {
  // Hand-rolled rendering keeps this one allocation-light pass instead
  // of building a JsonValue tree per request.
  std::string out = "{";
  out += "\"unix_ms\": ";
  out += util::JsonNumberToString(static_cast<double>(entry.unix_ms));
  AppendStringField(out, "request_id", entry.request_id);
  AppendStringField(out, "method", entry.method);
  AppendStringField(out, "target", entry.target);
  AppendStringField(out, "endpoint", entry.endpoint);
  out += util::StringPrintf(", \"status\": %d", entry.status);
  out += ", \"latency_us\": ";
  out += util::JsonNumberToString(entry.latency_us);
  out += entry.cache_hit ? ", \"cache_hit\": true" : ", \"cache_hit\": false";
  out += util::StringPrintf(
      ", \"index_version\": %llu, \"bytes\": %llu}\n",
      static_cast<unsigned long long>(entry.index_version),
      static_cast<unsigned long long>(entry.bytes));
  return out;
}

void AccessLog::Write(const AccessLogEntry& entry) {
  const std::string line = Render(entry);
  std::lock_guard<std::mutex> lock(mu_);
  // One write(2) per line: O_APPEND makes the offset update atomic, so
  // even a second process appending to the same file cannot interleave
  // partial lines (short writes are the only tear risk; count them).
  const ssize_t n = ::write(fd_, line.data(), line.size());
  if (n == static_cast<ssize_t>(line.size())) {
    ++lines_written_;
  } else {
    ++write_errors_;
  }
}

uint64_t AccessLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_written_;
}

uint64_t AccessLog::write_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_errors_;
}

}  // namespace shoal::serve
