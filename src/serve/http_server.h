#ifndef SHOAL_SERVE_HTTP_SERVER_H_
#define SHOAL_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/service.h"
#include "util/result.h"
#include "util/status.h"

namespace shoal::obs {
class Gauge;
}  // namespace shoal::obs

namespace shoal::serve {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  // 0 asks the kernel for an ephemeral port; read it back via port().
  uint16_t port = 0;
  // Epoll reactor threads (0 = hardware concurrency). Each reactor owns
  // an epoll set and runs accept + parse + dispatch + write for its
  // connections. Connections never pin a thread: an idle keep-alive
  // socket costs one epoll registration, so open connections scale far
  // past the thread count.
  size_t threads = 4;
  size_t listen_backlog = 128;
  // Request line + headers larger than this earn a 431.
  size_t max_header_bytes = 16 * 1024;
  // Request bodies larger than this earn a 400 (bodies are read and
  // discarded; every endpoint takes its input from the target).
  size_t max_body_bytes = 1 << 20;
  // Keep-alive connections idle longer than this are swept and closed
  // by their reactor.
  int idle_timeout_sec = 30;
  // Stop() flushes in-flight responses for at most this long before
  // force-closing what remains.
  int drain_timeout_ms = 2000;
  // Test hook: cap bytes per ::send and yield to EPOLLOUT between
  // chunks (0 = unlimited). Forces the partial-write resume path that
  // slow or lossy peers exercise in production.
  size_t max_write_chunk = 0;
};

// Minimal dependency-free HTTP/1.1 server on an epoll event loop. Each
// of options.threads reactor threads owns an epoll instance; the listen
// socket is registered with every reactor (EPOLLEXCLUSIVE where the
// kernel supports it) so accepts spread without a dedicated accept
// thread. Connections are nonblocking state machines — header
// accumulation, body discard, inline dispatch through
// ServingService::Handle (the service is thread-safe; all parallelism
// lives here), then buffered writes completed via EPOLLOUT. HTTP/1.1
// keep-alive and pipelining are supported; idle connections are swept
// on the reactor's timer tick. Stop() is graceful: accepting ends
// immediately, queued responses flush (bounded by drain_timeout_ms),
// and reactors join before Stop returns.
//
// Metrics: the serve.connections.open gauge tracks currently accepted
// sockets across all reactors.
class HttpServer {
 public:
  // `service` must outlive the server.
  HttpServer(ServingService* service, HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds + listens + starts the reactor threads. Fails cleanly if the
  // port is taken.
  util::Status Start();

  // Graceful shutdown; idempotent. Safe to call from signal-driven code
  // paths (the actual work happens on the calling thread).
  void Stop();

  // The bound port (resolves option port 0 after Start()).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

 private:
  struct Connection;
  struct Reactor;

  void ReactorLoop(Reactor* reactor);
  void AcceptReady(Reactor* reactor);
  void ReadReady(Reactor* reactor, Connection* conn);
  void ProcessInput(Connection* conn);
  void DispatchRequest(Connection* conn);
  void FlushOutput(Reactor* reactor, Connection* conn);
  void SetWantWrite(Reactor* reactor, Connection* conn, bool want);
  void CloseConnection(Reactor* reactor, Connection* conn);
  void SweepIdle(Reactor* reactor);
  void UpdateConnectionGauge(int64_t delta);

  ServingService* service_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> open_connections_{0};
  obs::Gauge* connections_gauge_ = nullptr;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::mutex lifecycle_mu_;  // serializes Start/Stop, never the data plane
};

struct HttpFetchResult {
  int status = 0;
  std::string body;
  // Response headers with lower-cased names, in wire order.
  std::vector<std::pair<std::string, std::string>> headers;

  // First value of lower-case `name`, or nullptr.
  const std::string* Header(std::string_view name) const;
};

// Tiny blocking HTTP/1.1 GET client for tests, the selftest harness and
// the load generator. Sends `Connection: close` and reads to EOF.
// `extra_headers` are emitted verbatim as `Name: value` request lines
// (e.g. {{"X-Request-Id", "abc"}}).
util::Result<HttpFetchResult> HttpFetch(
    const std::string& host, uint16_t port, const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {});

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_HTTP_SERVER_H_
