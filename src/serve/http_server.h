#ifndef SHOAL_SERVE_HTTP_SERVER_H_
#define SHOAL_SERVE_HTTP_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "serve/service.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shoal::serve {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  // 0 asks the kernel for an ephemeral port; read it back via port().
  uint16_t port = 0;
  // Request worker threads (0 = hardware concurrency). Each live
  // connection occupies one worker for its keep-alive lifetime, so this
  // also bounds concurrent connections; excess accepts queue.
  size_t threads = 4;
  size_t listen_backlog = 128;
  // Request line + headers larger than this earn a 431.
  size_t max_header_bytes = 16 * 1024;
  // Request bodies larger than this earn a 400 (bodies are read and
  // discarded; every endpoint takes its input from the target).
  size_t max_body_bytes = 1 << 20;
  // Keep-alive connections idle longer than this are closed so they do
  // not pin worker threads forever.
  int idle_timeout_sec = 30;
};

// Minimal dependency-free HTTP/1.1 server: POSIX sockets + the repo's
// util::ThreadPool. One dedicated accept thread hands each connection to
// a pool worker, which serves keep-alive requests serially through
// ServingService::Handle (the service is thread-safe; all parallelism
// lives here). Stop() is graceful: the listener closes first, live
// sockets get shutdown(SHUT_RD) so in-flight responses still flush, and
// workers drain before Stop returns.
class HttpServer {
 public:
  // `service` must outlive the server.
  HttpServer(ServingService* service, HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds + listens + starts the accept loop. Fails cleanly if the port
  // is taken.
  util::Status Start();

  // Graceful shutdown; idempotent. Safe to call from signal-driven code
  // paths (the actual work happens on the calling thread).
  void Stop();

  // The bound port (resolves option port 0 after Start()).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  ServingService* service_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::mutex conn_mu_;
  std::set<int> active_fds_;
};

struct HttpFetchResult {
  int status = 0;
  std::string body;
  // Response headers with lower-cased names, in wire order.
  std::vector<std::pair<std::string, std::string>> headers;

  // First value of lower-case `name`, or nullptr.
  const std::string* Header(std::string_view name) const;
};

// Tiny blocking HTTP/1.1 GET client for tests, the selftest harness and
// the load generator. Sends `Connection: close` and reads to EOF.
// `extra_headers` are emitted verbatim as `Name: value` request lines
// (e.g. {{"X-Request-Id", "abc"}}).
util::Result<HttpFetchResult> HttpFetch(
    const std::string& host, uint16_t port, const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {});

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_HTTP_SERVER_H_
