#include "serve/serving_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <new>
#include <utility>

#include "ckpt/binary_io.h"
#include "text/normalize.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/string_util.h"
#include "util/tsv.h"

namespace shoal::serve {

namespace {

// The flat image is read in place with native loads, so the on-disk
// format is little-endian by definition.
static_assert(std::endian::native == std::endian::little,
              "the serving index v2 image is little-endian");

constexpr char kMagic[8] = {'S', 'H', 'O', 'A', 'L', 'I', 'D', 'X'};

// ---- v2 image geometry ----------------------------------------------------
//
//   [0,8)     magic "SHOALIDX"
//   [8,12)    u32 format version (2)
//   [12,16)   u32 CRC-32 of bytes [16, file end)
//   [16,120)  13 u64 header fields (HeaderField order)
//   [120,440) section table: kNumSections x { u64 offset, u64 bytes }
//   [448,...) sections, each 64-byte aligned, SectionId order, no gaps
//             beyond alignment padding
//
// The table is recomputable from the header counts; validation exploits
// that by recomputing the expected layout and requiring an exact match,
// which subsumes alignment, overlap, and bounds checking in one shot.

enum HeaderField : size_t {
  kHdrIndexVersion = 0,
  kHdrFileBytes,
  kHdrNumTopics,
  kHdrNumEntities,
  kHdrNumQueries,
  kHdrNumChildren,
  kHdrNumRoots,
  kHdrNumPostings,
  kHdrNumDescriptions,
  kHdrDescArenaBytes,
  kHdrTextArenaBytes,
  kHdrNormArenaBytes,
  kHdrNormalizerFingerprint,
  kNumHeaderFields,
};

enum SectionId : size_t {
  kSecParent = 0,      // u32[T]
  kSecLevel,           // u32[T]
  kSecTopicSize,       // u32[T]
  kSecDescOffsets,     // u64[T+1] into the description-bounds array
  kSecDescBounds,      // u64[D+1] byte offsets into the description arena
  kSecDescArena,       // char[desc_arena_bytes]
  kSecEntityTopic,     // u32[E]
  kSecEntityCategory,  // u32[E]
  kSecTextBounds,      // u64[Q+1]
  kSecTextArena,       // char[text_arena_bytes]
  kSecNormBounds,      // u64[Q+1]
  kSecNormArena,       // char[norm_arena_bytes]
  kSecPostOffsets,     // u64[Q+1]
  kSecPostTopics,      // u32[P]
  kSecPostScores,      // f64[P]
  kSecChildOffsets,    // u64[T+1]
  kSecChildIds,        // u32[C]
  kSecRoots,           // u32[R]
  kSecExactOrder,      // u32[Q]
  kSecNormOrder,       // u32[Q]
  kNumSections,
};

constexpr size_t kHeaderOffset = 16;
constexpr size_t kTableOffset = kHeaderOffset + kNumHeaderFields * 8;
constexpr size_t kSectionAlign = 64;

constexpr size_t Align64(size_t n) {
  return (n + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

constexpr size_t kSectionsStart =
    Align64(kTableOffset + kNumSections * 16);

struct Layout {
  uint64_t offsets[kNumSections];
  uint64_t bytes[kNumSections];
  uint64_t total = 0;
};

// The unique section layout implied by the header counts.
Layout ComputeLayout(const uint64_t* hdr) {
  const uint64_t T = hdr[kHdrNumTopics];
  const uint64_t E = hdr[kHdrNumEntities];
  const uint64_t Q = hdr[kHdrNumQueries];
  const uint64_t C = hdr[kHdrNumChildren];
  const uint64_t R = hdr[kHdrNumRoots];
  const uint64_t P = hdr[kHdrNumPostings];
  const uint64_t D = hdr[kHdrNumDescriptions];
  Layout layout;
  layout.bytes[kSecParent] = 4 * T;
  layout.bytes[kSecLevel] = 4 * T;
  layout.bytes[kSecTopicSize] = 4 * T;
  layout.bytes[kSecDescOffsets] = 8 * (T + 1);
  layout.bytes[kSecDescBounds] = 8 * (D + 1);
  layout.bytes[kSecDescArena] = hdr[kHdrDescArenaBytes];
  layout.bytes[kSecEntityTopic] = 4 * E;
  layout.bytes[kSecEntityCategory] = 4 * E;
  layout.bytes[kSecTextBounds] = 8 * (Q + 1);
  layout.bytes[kSecTextArena] = hdr[kHdrTextArenaBytes];
  layout.bytes[kSecNormBounds] = 8 * (Q + 1);
  layout.bytes[kSecNormArena] = hdr[kHdrNormArenaBytes];
  layout.bytes[kSecPostOffsets] = 8 * (Q + 1);
  layout.bytes[kSecPostTopics] = 4 * P;
  layout.bytes[kSecPostScores] = 8 * P;
  layout.bytes[kSecChildOffsets] = 8 * (T + 1);
  layout.bytes[kSecChildIds] = 4 * C;
  layout.bytes[kSecRoots] = 4 * R;
  layout.bytes[kSecExactOrder] = 4 * Q;
  layout.bytes[kSecNormOrder] = 4 * Q;
  uint64_t at = kSectionsStart;
  for (size_t i = 0; i < kNumSections; ++i) {
    at = Align64(at);
    layout.offsets[i] = at;
    at += layout.bytes[i];
  }
  layout.total = at;
  return layout;
}

template <typename T>
T LoadScalar(const uint8_t* at) {
  T value;
  std::memcpy(&value, at, sizeof(value));
  return value;
}

template <typename T>
void StoreScalar(std::string* image, size_t at, T value) {
  std::memcpy(image->data() + at, &value, sizeof(value));
}

// Fingerprint of the live query normalizer over a fixed probe set — an
// O(1) stand-in for re-normalizing every stored query at load time. A
// serving binary whose normalizer drifted from the compiler's produces
// a different fingerprint and the index is rejected (silent lookup
// misses are the failure mode this guards against).
uint64_t NormalizerFingerprint() {
  static const uint64_t fingerprint = [] {
    static constexpr const char* kProbes[] = {
        "",
        "Beach  Chair",
        "ROUTER-42 pro",
        "  Mixed   CASE query ",
        "caf\xC3\xA9 au lait",
        "a-b_c.d/e 123\tx",
    };
    uint64_t h = 1469598103934665603ull;  // FNV-1a 64
    for (const char* probe : kProbes) {
      const std::string normalized = text::NormalizeQuery(probe);
      for (unsigned char c : normalized) {
        h = (h ^ c) * 1099511628211ull;
      }
      h = (h ^ 0xffu) * 1099511628211ull;  // probe separator
    }
    return h;
  }();
  return fingerprint;
}

// Sorts query ids by their text, ties towards the smaller id, so
// duplicate texts resolve deterministically to the first intern.
std::vector<uint32_t> OrderByText(const std::vector<std::string>& texts) {
  std::vector<uint32_t> order(texts.size());
  for (uint32_t i = 0; i < texts.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (texts[a] != texts[b]) return texts[a] < texts[b];
    return a < b;
  });
  return order;
}

uint8_t* AllocateAligned(size_t bytes) {
  return static_cast<uint8_t*>(
      ::operator new[](bytes, std::align_val_t(kSectionAlign)));
}

void FreeAligned(uint8_t* at) {
  ::operator delete[](at, std::align_val_t(kSectionAlign));
}

}  // namespace

// ---- flat index -----------------------------------------------------------

ServingIndex::~ServingIndex() { Release(); }

void ServingIndex::Release() {
  if (owned_ != nullptr) {
    FreeAligned(owned_);
    owned_ = nullptr;
  }
  mapped_ = util::MmapFile();
  base_ = nullptr;
  size_ = 0;
}

void ServingIndex::StealFrom(ServingIndex& other) {
  mapped_ = std::move(other.mapped_);
  owned_ = std::exchange(other.owned_, nullptr);
  mmap_backed_ = other.mmap_backed_;
  base_ = std::exchange(other.base_, nullptr);
  size_ = std::exchange(other.size_, 0);
  version_ = other.version_;
  num_topics_ = other.num_topics_;
  num_entities_ = other.num_entities_;
  num_queries_ = other.num_queries_;
  num_roots_ = other.num_roots_;
  parent_ = other.parent_;
  level_ = other.level_;
  topic_size_ = other.topic_size_;
  desc_offsets_ = other.desc_offsets_;
  desc_bounds_ = other.desc_bounds_;
  desc_arena_ = other.desc_arena_;
  entity_topic_ = other.entity_topic_;
  entity_category_ = other.entity_category_;
  text_bounds_ = other.text_bounds_;
  text_arena_ = other.text_arena_;
  norm_bounds_ = other.norm_bounds_;
  norm_arena_ = other.norm_arena_;
  post_offsets_ = other.post_offsets_;
  post_topics_ = other.post_topics_;
  post_scores_ = other.post_scores_;
  child_offsets_ = other.child_offsets_;
  child_ids_ = other.child_ids_;
  roots_ = other.roots_;
  exact_order_ = other.exact_order_;
  norm_order_ = other.norm_order_;
}

ServingIndex::ServingIndex(ServingIndex&& other) noexcept {
  StealFrom(other);
}

ServingIndex& ServingIndex::operator=(ServingIndex&& other) noexcept {
  if (this != &other) {
    Release();
    StealFrom(other);
  }
  return *this;
}

util::Status ServingIndex::Bind(const LoadOptions& options,
                                const std::string& origin) {
  auto fail = [&origin](const std::string& message) {
    return util::Status::InvalidArgument(origin + ": " + message);
  };
  if (size_ < kSectionsStart) {
    return fail(util::StringPrintf(
        "serving index image of %zu bytes is smaller than the %zu-byte "
        "v2 preamble — truncated",
        size_, kSectionsStart));
  }
  if (std::memcmp(base_, kMagic, sizeof(kMagic)) != 0) {
    return fail("not a SHOAL serving index file");
  }
  const uint32_t format = LoadScalar<uint32_t>(base_ + 8);
  if (format != kServingIndexFormatVersion) {
    return fail(util::StringPrintf(
        "serving index format version %u, the flat loader reads version %u",
        format, kServingIndexFormatVersion));
  }
  if (options.verify_crc) {
    const uint32_t stored = LoadScalar<uint32_t>(base_ + 12);
    const uint32_t actual =
        util::Crc32(base_ + kHeaderOffset, size_ - kHeaderOffset);
    if (stored != actual) {
      return fail(util::StringPrintf(
          "image CRC mismatch (stored %08x, computed %08x) — the serving "
          "index is corrupt",
          stored, actual));
    }
  }

  uint64_t hdr[kNumHeaderFields];
  std::memcpy(hdr, base_ + kHeaderOffset, sizeof(hdr));
  if (hdr[kHdrFileBytes] != size_) {
    return fail(util::StringPrintf(
        "header claims %llu image bytes but %zu are present",
        static_cast<unsigned long long>(hdr[kHdrFileBytes]), size_));
  }
  // Oversized-count guard: every section must also physically fit, so a
  // lying count can never size a pointer past the image. The 2^32 cap
  // makes the layout arithmetic below overflow-free.
  for (size_t field = kHdrNumTopics; field <= kHdrNormArenaBytes; ++field) {
    if (hdr[field] >= (1ull << 32) || hdr[field] > size_) {
      return fail(util::StringPrintf(
          "header count %zu is oversized (%llu for a %zu-byte image)", field,
          static_cast<unsigned long long>(hdr[field]), size_));
    }
  }
  if (hdr[kHdrNumChildren] + hdr[kHdrNumRoots] != hdr[kHdrNumTopics]) {
    return fail("children + roots do not account for every topic");
  }

  const Layout layout = ComputeLayout(hdr);
  if (layout.total != size_) {
    return fail(util::StringPrintf(
        "header counts imply a %llu-byte image but %zu bytes are present",
        static_cast<unsigned long long>(layout.total), size_));
  }
  for (size_t i = 0; i < kNumSections; ++i) {
    const uint64_t offset = LoadScalar<uint64_t>(base_ + kTableOffset + i * 16);
    const uint64_t bytes =
        LoadScalar<uint64_t>(base_ + kTableOffset + i * 16 + 8);
    if (offset != layout.offsets[i] || bytes != layout.bytes[i]) {
      return fail(util::StringPrintf(
          "section %zu at offset %llu (%llu bytes) disagrees with the "
          "layout implied by the header (offset %llu, %llu bytes) — "
          "misaligned or corrupt section table",
          i, static_cast<unsigned long long>(offset),
          static_cast<unsigned long long>(bytes),
          static_cast<unsigned long long>(layout.offsets[i]),
          static_cast<unsigned long long>(layout.bytes[i])));
    }
  }

  version_ = hdr[kHdrIndexVersion];
  num_topics_ = static_cast<size_t>(hdr[kHdrNumTopics]);
  num_entities_ = static_cast<size_t>(hdr[kHdrNumEntities]);
  num_queries_ = static_cast<size_t>(hdr[kHdrNumQueries]);
  num_roots_ = static_cast<size_t>(hdr[kHdrNumRoots]);
  auto section = [&](SectionId id) { return base_ + layout.offsets[id]; };
  parent_ = reinterpret_cast<const uint32_t*>(section(kSecParent));
  level_ = reinterpret_cast<const uint32_t*>(section(kSecLevel));
  topic_size_ = reinterpret_cast<const uint32_t*>(section(kSecTopicSize));
  desc_offsets_ = reinterpret_cast<const uint64_t*>(section(kSecDescOffsets));
  desc_bounds_ = reinterpret_cast<const uint64_t*>(section(kSecDescBounds));
  desc_arena_ = reinterpret_cast<const char*>(section(kSecDescArena));
  entity_topic_ = reinterpret_cast<const uint32_t*>(section(kSecEntityTopic));
  entity_category_ =
      reinterpret_cast<const uint32_t*>(section(kSecEntityCategory));
  text_bounds_ = reinterpret_cast<const uint64_t*>(section(kSecTextBounds));
  text_arena_ = reinterpret_cast<const char*>(section(kSecTextArena));
  norm_bounds_ = reinterpret_cast<const uint64_t*>(section(kSecNormBounds));
  norm_arena_ = reinterpret_cast<const char*>(section(kSecNormArena));
  post_offsets_ = reinterpret_cast<const uint64_t*>(section(kSecPostOffsets));
  post_topics_ = reinterpret_cast<const uint32_t*>(section(kSecPostTopics));
  post_scores_ = reinterpret_cast<const double*>(section(kSecPostScores));
  child_offsets_ =
      reinterpret_cast<const uint64_t*>(section(kSecChildOffsets));
  child_ids_ = reinterpret_cast<const uint32_t*>(section(kSecChildIds));
  roots_ = reinterpret_cast<const uint32_t*>(section(kSecRoots));
  exact_order_ = reinterpret_cast<const uint32_t*>(section(kSecExactOrder));
  norm_order_ = reinterpret_cast<const uint32_t*>(section(kSecNormOrder));

  // Structural sweep: after this, every accessor is provably in bounds
  // and every parent walk terminates, even on an image whose CRC was
  // skipped or forged. Streaming reads, no allocation.
  const uint64_t num_children = hdr[kHdrNumChildren];
  const uint64_t num_postings = hdr[kHdrNumPostings];
  const uint64_t num_descriptions = hdr[kHdrNumDescriptions];
  for (uint32_t t = 0; t < num_topics_; ++t) {
    if (parent_[t] == core::kNoTopic) {
      if (level_[t] != 0) {
        return fail(util::StringPrintf(
            "root topic %u has level %u", t, level_[t]));
      }
    } else {
      if (parent_[t] >= t) {
        return fail(util::StringPrintf(
            "topic %u does not follow its parent %u", t, parent_[t]));
      }
      if (level_[t] != level_[parent_[t]] + 1) {
        return fail(util::StringPrintf(
            "topic %u level %u is not parent level %u + 1", t, level_[t],
            level_[parent_[t]]));
      }
    }
  }
  auto check_monotone = [&](const uint64_t* bounds, uint64_t count,
                            uint64_t limit, const char* what) {
    if (bounds[0] != 0) {
      return fail(util::StringPrintf("%s does not start at 0", what));
    }
    for (uint64_t i = 0; i < count; ++i) {
      if (bounds[i + 1] < bounds[i]) {
        return fail(util::StringPrintf("%s is not monotone at %llu", what,
                                       static_cast<unsigned long long>(i)));
      }
    }
    if (bounds[count] != limit) {
      return fail(util::StringPrintf(
          "%s ends at %llu, expected %llu", what,
          static_cast<unsigned long long>(bounds[count]),
          static_cast<unsigned long long>(limit)));
    }
    return util::Status::OK();
  };
  SHOAL_RETURN_IF_ERROR(check_monotone(desc_offsets_, num_topics_,
                                       num_descriptions,
                                       "description offsets"));
  SHOAL_RETURN_IF_ERROR(check_monotone(desc_bounds_, num_descriptions,
                                       hdr[kHdrDescArenaBytes],
                                       "description bounds"));
  SHOAL_RETURN_IF_ERROR(check_monotone(text_bounds_, num_queries_,
                                       hdr[kHdrTextArenaBytes],
                                       "query text bounds"));
  SHOAL_RETURN_IF_ERROR(check_monotone(norm_bounds_, num_queries_,
                                       hdr[kHdrNormArenaBytes],
                                       "normalized query bounds"));
  SHOAL_RETURN_IF_ERROR(check_monotone(post_offsets_, num_queries_,
                                       num_postings, "posting offsets"));
  SHOAL_RETURN_IF_ERROR(check_monotone(child_offsets_, num_topics_,
                                       num_children, "children offsets"));
  for (size_t e = 0; e < num_entities_; ++e) {
    if (entity_topic_[e] != core::kNoTopic && entity_topic_[e] >= num_topics_) {
      return fail(util::StringPrintf(
          "entity %zu names topic %u of %zu", e, entity_topic_[e],
          num_topics_));
    }
  }
  for (uint64_t p = 0; p < num_postings; ++p) {
    if (post_topics_[p] >= num_topics_) {
      return fail(util::StringPrintf(
          "posting %llu names topic %u of %zu",
          static_cast<unsigned long long>(p), post_topics_[p], num_topics_));
    }
    if (!std::isfinite(post_scores_[p]) || post_scores_[p] < 0.0) {
      return fail(util::StringPrintf(
          "posting %llu has a non-finite or negative score",
          static_cast<unsigned long long>(p)));
    }
  }
  for (uint32_t q = 0; q < num_queries_; ++q) {
    const PostingSpan span = postings(q);
    for (size_t i = 1; i < span.size(); ++i) {
      const bool ordered =
          span.score(i - 1) > span.score(i) ||
          (span.score(i - 1) == span.score(i) &&
           span.topic(i - 1) < span.topic(i));
      if (!ordered) {
        return fail(util::StringPrintf(
            "query %u posting list is not sorted by (score desc, topic "
            "asc) at entry %zu",
            q, i));
      }
    }
    if (exact_order_[q] >= num_queries_ || norm_order_[q] >= num_queries_) {
      return fail(util::StringPrintf(
          "dictionary order entry %u names query %u of %zu", q,
          std::max(exact_order_[q], norm_order_[q]), num_queries_));
    }
  }
  for (uint64_t c = 0; c < num_children; ++c) {
    if (child_ids_[c] >= num_topics_) {
      return fail("children CSR names a topic out of range");
    }
  }
  for (size_t r = 0; r < num_roots_; ++r) {
    if (roots_[r] >= num_topics_) {
      return fail("root list names a topic out of range");
    }
  }
  if (hdr[kHdrNormalizerFingerprint] != NormalizerFingerprint()) {
    return fail(
        "index was compiled with a different query normalizer than this "
        "binary serves with — recompile the index");
  }

  if (options.deep_validate) {
    // Re-derive what the compiler wrote; an intact CRC already implies
    // all of this, so it is off the install path by default.
    for (uint32_t t = 0; t < num_topics_; ++t) {
      auto [first, last] = children(t);
      for (const uint32_t* child = first; child != last; ++child) {
        if (parent_[*child] != t) {
          return fail("children CSR disagrees with the parent array");
        }
      }
    }
    size_t root_at = 0;
    for (uint32_t t = 0; t < num_topics_; ++t) {
      if (parent_[t] != core::kNoTopic) continue;
      if (root_at >= num_roots_ || roots_[root_at++] != t) {
        return fail("root list disagrees with the parent array");
      }
    }
    for (uint32_t q = 0; q + 1 < num_queries_; ++q) {
      if (query_text(exact_order_[q]) > query_text(exact_order_[q + 1]) ||
          query_norm(norm_order_[q]) > query_norm(norm_order_[q + 1])) {
        return fail("dictionary sort orders are not sorted");
      }
    }
  }
  return util::Status::OK();
}

std::vector<uint32_t> ServingIndex::PathToRoot(uint32_t t) const {
  std::vector<uint32_t> path;
  for (uint32_t cur = t; cur != core::kNoTopic; cur = parent_[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ServingIndex::Lookup ServingIndex::Find(const std::string& raw_query) const {
  // Binary search through a sort permutation; returns the smallest
  // matching query id or kNoQuery.
  auto find_ordered = [this](const uint32_t* order, auto text_of,
                             std::string_view needle) {
    const uint32_t* last = order + num_queries_;
    const uint32_t* it = std::lower_bound(
        order, last, needle,
        [&](uint32_t q, std::string_view want) { return text_of(q) < want; });
    if (it == last || text_of(*it) != needle) return kNoQuery;
    return *it;
  };
  Lookup result;
  result.query = find_ordered(
      exact_order_, [this](uint32_t q) { return query_text(q); }, raw_query);
  if (result.query != kNoQuery) {
    result.match = Lookup::Match::kExact;
    return result;
  }
  const std::string normalized = text::NormalizeQuery(raw_query);
  if (!normalized.empty()) {
    result.query = find_ordered(
        norm_order_, [this](uint32_t q) { return query_norm(q); }, normalized);
    if (result.query != kNoQuery) {
      result.match = Lookup::Match::kNormalized;
      return result;
    }
  }
  result.match = Lookup::Match::kNone;
  return result;
}

// ---- builder --------------------------------------------------------------

util::Status ServingIndexData::Validate() const {
  const size_t num_topics = parent.size();
  if (level.size() != num_topics || topic_size.size() != num_topics ||
      descriptions.size() != num_topics) {
    return util::Status::InvalidArgument(
        "serving index topic arrays disagree on the topic count");
  }
  for (uint32_t t = 0; t < num_topics; ++t) {
    if (parent[t] == core::kNoTopic) {
      if (level[t] != 0) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "serving index root topic %u has level %u", t, level[t]));
      }
    } else {
      if (parent[t] >= t) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "serving index topic %u does not follow its parent %u", t,
            parent[t]));
      }
      if (level[t] != level[parent[t]] + 1) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "serving index topic %u level %u is not parent level %u + 1", t,
            level[t], level[parent[t]]));
      }
    }
  }
  if (entity_category.size() != entity_topic.size()) {
    return util::Status::InvalidArgument(
        "serving index entity arrays disagree on the entity count");
  }
  for (size_t e = 0; e < entity_topic.size(); ++e) {
    if (entity_topic[e] != core::kNoTopic && entity_topic[e] >= num_topics) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "serving index entity %zu names topic %u of %zu", e,
          entity_topic[e], num_topics));
    }
  }
  if (query_norm.size() != query_text.size() ||
      posting_list.size() != query_text.size()) {
    return util::Status::InvalidArgument(
        "serving index query arrays disagree on the query count");
  }
  for (size_t q = 0; q < query_text.size(); ++q) {
    // The stored normalized form must match what the serve-time
    // normalizer produces NOW — a compiler/server normalization skew
    // would otherwise turn into silent lookup misses.
    if (query_norm[q] != text::NormalizeQuery(query_text[q])) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "serving index query %zu: stored normalized form '%s' does not "
          "match NormalizeQuery('%s') — index was compiled with a "
          "different normalizer",
          q, query_norm[q].c_str(), query_text[q].c_str()));
    }
    const auto& postings = posting_list[q];
    for (size_t i = 0; i < postings.size(); ++i) {
      if (postings[i].topic >= num_topics) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "serving index query %zu posting %zu names topic %u of %zu", q,
            i, postings[i].topic, num_topics));
      }
      if (!std::isfinite(postings[i].score) || postings[i].score < 0.0) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "serving index query %zu posting %zu has a non-finite or "
            "negative score",
            q, i));
      }
      if (i > 0) {
        const Posting& prev = postings[i - 1];
        const bool ordered =
            prev.score > postings[i].score ||
            (prev.score == postings[i].score &&
             prev.topic < postings[i].topic);
        if (!ordered) {
          return util::Status::InvalidArgument(util::StringPrintf(
              "serving index query %zu posting list is not sorted by "
              "(score desc, topic asc) at entry %zu",
              q, i));
        }
      }
    }
  }
  return util::Status::OK();
}

// Factory shared by Build() and the file loaders: takes ownership of
// whichever backing store is live, binds + validates, and returns the
// ready index.
util::Result<ServingIndex> BindServingImage(util::MmapFile mapped,
                                            std::string owned,
                                            const LoadOptions& options,
                                            const std::string& origin) {
  ServingIndex index;
  if (mapped.size() > 0) {
    index.mapped_ = std::move(mapped);
    index.base_ = index.mapped_.data();
    index.size_ = index.mapped_.size();
    index.mmap_backed_ = true;
  } else {
    index.owned_ = AllocateAligned(owned.size());
    std::memcpy(index.owned_, owned.data(), owned.size());
    index.base_ = index.owned_;
    index.size_ = owned.size();
    index.mmap_backed_ = false;
  }
  SHOAL_RETURN_IF_ERROR(index.Bind(options, origin));
  return index;
}

util::Result<std::string> EncodeServingIndexFile(const ServingIndexData& data) {
  SHOAL_RETURN_IF_ERROR(data.Validate());

  const uint64_t T = data.parent.size();
  const uint64_t E = data.entity_topic.size();
  const uint64_t Q = data.query_text.size();

  // Derived structures are computed once here and persisted, so loading
  // never rebuilds them: children CSR + roots from the parent array,
  // and the two dictionary sort permutations.
  std::vector<uint64_t> child_offsets(T + 1, 0);
  std::vector<uint32_t> roots;
  for (uint32_t t = 0; t < T; ++t) {
    if (data.parent[t] == core::kNoTopic) {
      roots.push_back(t);
    } else {
      ++child_offsets[data.parent[t] + 1];
    }
  }
  for (size_t t = 1; t <= T; ++t) child_offsets[t] += child_offsets[t - 1];
  std::vector<uint32_t> child_ids(child_offsets[T], 0);
  std::vector<uint64_t> cursor(child_offsets.begin(),
                               child_offsets.begin() + T);
  for (uint32_t t = 0; t < T; ++t) {
    if (data.parent[t] != core::kNoTopic) {
      child_ids[cursor[data.parent[t]]++] = t;  // ascending t => ascending ids
    }
  }
  const std::vector<uint32_t> exact_order = OrderByText(data.query_text);
  const std::vector<uint32_t> norm_order = OrderByText(data.query_norm);

  uint64_t hdr[kNumHeaderFields] = {0};
  hdr[kHdrIndexVersion] = data.version;
  hdr[kHdrNumTopics] = T;
  hdr[kHdrNumEntities] = E;
  hdr[kHdrNumQueries] = Q;
  hdr[kHdrNumChildren] = child_ids.size();
  hdr[kHdrNumRoots] = roots.size();
  hdr[kHdrNormalizerFingerprint] = NormalizerFingerprint();
  uint64_t num_descriptions = 0;
  uint64_t desc_arena_bytes = 0;
  for (const auto& topic_descriptions : data.descriptions) {
    num_descriptions += topic_descriptions.size();
    for (const std::string& d : topic_descriptions) {
      desc_arena_bytes += d.size();
    }
  }
  hdr[kHdrNumDescriptions] = num_descriptions;
  hdr[kHdrDescArenaBytes] = desc_arena_bytes;
  uint64_t num_postings = 0;
  for (const auto& postings : data.posting_list) {
    num_postings += postings.size();
  }
  hdr[kHdrNumPostings] = num_postings;
  for (const std::string& text : data.query_text) {
    hdr[kHdrTextArenaBytes] += text.size();
  }
  for (const std::string& norm : data.query_norm) {
    hdr[kHdrNormArenaBytes] += norm.size();
  }

  const Layout layout = ComputeLayout(hdr);
  hdr[kHdrFileBytes] = layout.total;

  std::string image(layout.total, '\0');
  std::memcpy(image.data(), kMagic, sizeof(kMagic));
  StoreScalar<uint32_t>(&image, 8, kServingIndexFormatVersion);
  std::memcpy(image.data() + kHeaderOffset, hdr, sizeof(hdr));
  for (size_t i = 0; i < kNumSections; ++i) {
    StoreScalar<uint64_t>(&image, kTableOffset + i * 16, layout.offsets[i]);
    StoreScalar<uint64_t>(&image, kTableOffset + i * 16 + 8, layout.bytes[i]);
  }

  auto fill = [&image, &layout](SectionId id, const void* from,
                                size_t bytes) {
    if (bytes > 0) std::memcpy(image.data() + layout.offsets[id], from, bytes);
  };
  fill(kSecParent, data.parent.data(), 4 * T);
  fill(kSecLevel, data.level.data(), 4 * T);
  fill(kSecTopicSize, data.topic_size.data(), 4 * T);
  {
    std::vector<uint64_t> desc_offsets(T + 1, 0);
    std::vector<uint64_t> desc_bounds(num_descriptions + 1, 0);
    std::string arena;
    arena.reserve(desc_arena_bytes);
    uint64_t d = 0;
    for (uint32_t t = 0; t < T; ++t) {
      desc_offsets[t] = d;
      for (const std::string& description : data.descriptions[t]) {
        desc_bounds[d] = arena.size();
        arena += description;
        ++d;
      }
    }
    desc_offsets[T] = d;
    desc_bounds[num_descriptions] = arena.size();
    fill(kSecDescOffsets, desc_offsets.data(), 8 * (T + 1));
    fill(kSecDescBounds, desc_bounds.data(), 8 * (num_descriptions + 1));
    fill(kSecDescArena, arena.data(), arena.size());
  }
  fill(kSecEntityTopic, data.entity_topic.data(), 4 * E);
  fill(kSecEntityCategory, data.entity_category.data(), 4 * E);
  auto fill_strings = [&](SectionId bounds_id, SectionId arena_id,
                          const std::vector<std::string>& strings) {
    std::vector<uint64_t> bounds(strings.size() + 1, 0);
    std::string arena;
    for (size_t i = 0; i < strings.size(); ++i) {
      bounds[i] = arena.size();
      arena += strings[i];
    }
    bounds[strings.size()] = arena.size();
    fill(bounds_id, bounds.data(), 8 * (strings.size() + 1));
    fill(arena_id, arena.data(), arena.size());
  };
  fill_strings(kSecTextBounds, kSecTextArena, data.query_text);
  fill_strings(kSecNormBounds, kSecNormArena, data.query_norm);
  {
    std::vector<uint64_t> post_offsets(Q + 1, 0);
    std::vector<uint32_t> post_topics(num_postings);
    std::vector<double> post_scores(num_postings);
    uint64_t p = 0;
    for (uint32_t q = 0; q < Q; ++q) {
      post_offsets[q] = p;
      for (const Posting& posting : data.posting_list[q]) {
        post_topics[p] = posting.topic;
        post_scores[p] = posting.score;
        ++p;
      }
    }
    post_offsets[Q] = p;
    fill(kSecPostOffsets, post_offsets.data(), 8 * (Q + 1));
    fill(kSecPostTopics, post_topics.data(), 4 * num_postings);
    fill(kSecPostScores, post_scores.data(), 8 * num_postings);
  }
  fill(kSecChildOffsets, child_offsets.data(), 8 * (T + 1));
  fill(kSecChildIds, child_ids.data(), 4 * child_ids.size());
  fill(kSecRoots, roots.data(), 4 * roots.size());
  fill(kSecExactOrder, exact_order.data(), 4 * Q);
  fill(kSecNormOrder, norm_order.data(), 4 * Q);

  StoreScalar<uint32_t>(
      &image, 12,
      util::Crc32(image.data() + kHeaderOffset, image.size() - kHeaderOffset));
  return image;
}

util::Result<ServingIndex> ServingIndexData::Build() const {
  SHOAL_ASSIGN_OR_RETURN(std::string image, EncodeServingIndexFile(*this));
  LoadOptions options;
  options.use_mmap = false;
  options.verify_crc = false;  // just computed
  return BindServingImage(util::MmapFile(), std::move(image), options,
                          "<built serving index>");
}

// ---- compile --------------------------------------------------------------

util::Result<ServingIndexData> CompileServingIndex(
    const core::Taxonomy& taxonomy, const core::DescriberInput& input,
    const core::DescriberOptions& describer_options,
    const std::vector<uint32_t>* entity_categories,
    const CompileOptions& options) {
  if (input.query_texts == nullptr) {
    return util::Status::InvalidArgument(
        "CompileServingIndex needs query_texts to intern the dictionary");
  }
  if (entity_categories != nullptr &&
      entity_categories->size() != taxonomy.num_entities()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "entity_categories has %zu entries for %zu entities",
        entity_categories->size(), taxonomy.num_entities()));
  }

  // Describe mutates topic descriptions, so score a private copy; the
  // scoring is a deterministic function of the taxonomy, so the copy's
  // descriptions equal the original's when it was already described.
  core::Taxonomy scored = taxonomy;
  core::DescriberInput scored_input = input;
  scored_input.taxonomy = &scored;
  auto rankings =
      core::TopicDescriber::Describe(scored, scored_input, describer_options);
  if (!rankings.ok()) return rankings.status();

  return BuildServingIndexData(scored, *rankings, *input.query_texts,
                               entity_categories, options);
}

util::Result<ServingIndexData> BuildServingIndexData(
    const core::Taxonomy& taxonomy,
    const std::vector<std::vector<core::ScoredQuery>>& rankings,
    const std::vector<std::string>& query_texts,
    const std::vector<uint32_t>* entity_categories,
    const CompileOptions& options) {
  if (entity_categories != nullptr &&
      entity_categories->size() != taxonomy.num_entities()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "entity_categories has %zu entries for %zu entities",
        entity_categories->size(), taxonomy.num_entities()));
  }
  if (rankings.size() != taxonomy.num_topics()) {
    return util::Status::InvalidArgument(
        util::StringPrintf("rankings has %zu entries for %zu topics",
                           rankings.size(), taxonomy.num_topics()));
  }

  ServingIndexData data;
  data.version = options.version;

  const size_t num_topics = taxonomy.num_topics();
  data.parent.resize(num_topics);
  data.level.resize(num_topics);
  data.topic_size.resize(num_topics);
  data.descriptions.resize(num_topics);
  for (uint32_t t = 0; t < num_topics; ++t) {
    const core::Topic& topic = taxonomy.topic(t);
    data.parent[t] = topic.parent;
    data.level[t] = topic.level;
    data.topic_size[t] = static_cast<uint32_t>(topic.entities.size());
    data.descriptions[t] = topic.description;
  }

  data.entity_topic.resize(taxonomy.num_entities());
  data.entity_category.assign(taxonomy.num_entities(), kNoCategoryId);
  for (uint32_t e = 0; e < taxonomy.num_entities(); ++e) {
    data.entity_topic[e] = taxonomy.TopicOfEntity(e);
    if (entity_categories != nullptr) {
      data.entity_category[e] = (*entity_categories)[e];
    }
  }

  // Invert the per-topic rankings into per-query posting lists.
  std::vector<std::vector<Posting>> by_query(query_texts.size());
  for (uint32_t t = 0; t < rankings.size(); ++t) {
    for (const core::ScoredQuery& sq : rankings[t]) {
      if (sq.query >= by_query.size()) {
        return util::Status::OutOfRange(util::StringPrintf(
            "describer ranked query %u but only %zu query texts exist",
            sq.query, by_query.size()));
      }
      by_query[sq.query].push_back(Posting{t, sq.representativeness});
    }
  }
  for (uint32_t q = 0; q < by_query.size(); ++q) {
    auto& postings = by_query[q];
    if (postings.empty()) continue;
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.topic < b.topic;
              });
    if (options.max_postings_per_query > 0 &&
        postings.size() > options.max_postings_per_query) {
      postings.resize(options.max_postings_per_query);
    }
    data.query_text.push_back(query_texts[q]);
    data.query_norm.push_back(text::NormalizeQuery(query_texts[q]));
    data.posting_list.push_back(std::move(postings));
  }

  SHOAL_RETURN_IF_ERROR(data.Validate());
  return data;
}

// ---- v1 (legacy, copying) codec -------------------------------------------

std::string EncodeServingIndex(const ServingIndexData& data) {
  ckpt::BinaryWriter writer;
  writer.WriteU64(data.version);

  writer.WriteU64(data.parent.size());
  for (size_t t = 0; t < data.parent.size(); ++t) {
    writer.WriteU32(data.parent[t]);
    writer.WriteU32(data.level[t]);
    writer.WriteU32(data.topic_size[t]);
    writer.WriteU64(data.descriptions[t].size());
    for (const std::string& d : data.descriptions[t]) writer.WriteString(d);
  }

  writer.WriteU64(data.entity_topic.size());
  for (size_t e = 0; e < data.entity_topic.size(); ++e) {
    writer.WriteU32(data.entity_topic[e]);
    writer.WriteU32(data.entity_category[e]);
  }

  writer.WriteU64(data.query_text.size());
  for (size_t q = 0; q < data.query_text.size(); ++q) {
    writer.WriteString(data.query_text[q]);
    writer.WriteString(data.query_norm[q]);
    writer.WriteU64(data.posting_list[q].size());
    for (const Posting& p : data.posting_list[q]) {
      writer.WriteU32(p.topic);
      writer.WriteF64(p.score);
    }
  }
  return writer.Take();
}

util::Result<ServingIndexData> DecodeServingIndex(std::string_view payload) {
  ckpt::BinaryReader reader(payload);
  ServingIndexData data;
  SHOAL_ASSIGN_OR_RETURN(data.version, reader.ReadU64());

  SHOAL_ASSIGN_OR_RETURN(uint64_t num_topics, reader.ReadU64());
  // u32 parent + u32 level + u32 size + u64 description count.
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_topics, 20));
  data.parent.resize(num_topics);
  data.level.resize(num_topics);
  data.topic_size.resize(num_topics);
  data.descriptions.resize(num_topics);
  for (uint64_t t = 0; t < num_topics; ++t) {
    SHOAL_ASSIGN_OR_RETURN(data.parent[t], reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(data.level[t], reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(data.topic_size[t], reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(uint64_t num_desc, reader.ReadU64());
    SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_desc, 8));
    data.descriptions[t].resize(num_desc);
    for (uint64_t d = 0; d < num_desc; ++d) {
      SHOAL_ASSIGN_OR_RETURN(data.descriptions[t][d], reader.ReadString());
    }
  }

  SHOAL_ASSIGN_OR_RETURN(uint64_t num_entities, reader.ReadU64());
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_entities, 8));
  data.entity_topic.resize(num_entities);
  data.entity_category.resize(num_entities);
  for (uint64_t e = 0; e < num_entities; ++e) {
    SHOAL_ASSIGN_OR_RETURN(data.entity_topic[e], reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(data.entity_category[e], reader.ReadU32());
  }

  SHOAL_ASSIGN_OR_RETURN(uint64_t num_queries, reader.ReadU64());
  // Two length-prefixed strings plus the posting count.
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_queries, 24));
  data.query_text.resize(num_queries);
  data.query_norm.resize(num_queries);
  data.posting_list.resize(num_queries);
  for (uint64_t q = 0; q < num_queries; ++q) {
    SHOAL_ASSIGN_OR_RETURN(data.query_text[q], reader.ReadString());
    SHOAL_ASSIGN_OR_RETURN(data.query_norm[q], reader.ReadString());
    SHOAL_ASSIGN_OR_RETURN(uint64_t num_postings, reader.ReadU64());
    SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_postings, 12));
    data.posting_list[q].resize(num_postings);
    for (uint64_t p = 0; p < num_postings; ++p) {
      SHOAL_ASSIGN_OR_RETURN(data.posting_list[q][p].topic,
                             reader.ReadU32());
      SHOAL_ASSIGN_OR_RETURN(data.posting_list[q][p].score,
                             reader.ReadF64());
    }
  }

  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "serving index payload has trailing bytes");
  }
  SHOAL_RETURN_IF_ERROR(data.Validate());
  return data;
}

// ---- file wrappers --------------------------------------------------------

util::Status WriteServingIndexFile(const std::string& path,
                                   const ServingIndexData& data) {
  SHOAL_ASSIGN_OR_RETURN(std::string image, EncodeServingIndexFile(data));
  return util::AtomicWriteFile(path, image);
}

util::Status WriteServingIndexFileV1(const std::string& path,
                                     const ServingIndexData& data) {
  const std::string payload = EncodeServingIndex(data);
  ckpt::BinaryWriter header;
  std::string framed;
  framed.reserve(sizeof(kMagic) + 16 + payload.size());
  framed.append(kMagic, sizeof(kMagic));
  header.WriteU32(kServingIndexFormatVersionV1);
  header.WriteU64(payload.size());
  header.WriteU32(util::Crc32(payload.data(), payload.size()));
  framed += header.data();
  framed.append(payload);
  return util::AtomicWriteFile(path, framed);
}

namespace {

// Returns the sniffed format version, rejecting unknown files cleanly.
util::Result<uint32_t> SniffFormat(std::string_view bytes,
                                   const std::string& path) {
  if (bytes.size() < 12 ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument(path +
                                         ": not a SHOAL serving index file");
  }
  const uint32_t version =
      LoadScalar<uint32_t>(reinterpret_cast<const uint8_t*>(bytes.data()) + 8);
  if (version != kServingIndexFormatVersion &&
      version != kServingIndexFormatVersionV1) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%s: serving index format version %u, this build reads versions "
        "%u and %u",
        path.c_str(), version, kServingIndexFormatVersionV1,
        kServingIndexFormatVersion));
  }
  return version;
}

// The v1 frame: magic | u32 1 | u64 payload size | u32 crc | payload.
util::Result<ServingIndexData> ParseV1File(std::string_view bytes,
                                           const std::string& path) {
  ckpt::BinaryReader reader(bytes.substr(sizeof(kMagic) + 4));
  SHOAL_ASSIGN_OR_RETURN(uint64_t payload_size, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(uint32_t expected_crc, reader.ReadU32());
  if (payload_size != reader.remaining()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%s: header claims %llu payload bytes but %zu are present",
        path.c_str(), static_cast<unsigned long long>(payload_size),
        reader.remaining()));
  }
  const std::string_view payload = bytes.substr(bytes.size() - payload_size);
  const uint32_t actual_crc = util::Crc32(payload.data(), payload.size());
  if (actual_crc != expected_crc) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%s: payload CRC mismatch (stored %08x, computed %08x) — the "
        "serving index is corrupt",
        path.c_str(), expected_crc, actual_crc));
  }
  return DecodeServingIndex(payload);
}

}  // namespace

util::Result<ServingIndex> ReadServingIndexFile(const std::string& path,
                                                const LoadOptions& options) {
  if (options.use_mmap) {
    SHOAL_ASSIGN_OR_RETURN(util::MmapFile mapped, util::MmapFile::Open(path));
    const std::string_view bytes(
        reinterpret_cast<const char*>(mapped.data()), mapped.size());
    SHOAL_ASSIGN_OR_RETURN(uint32_t format, SniffFormat(bytes, path));
    if (format == kServingIndexFormatVersionV1) {
      SHOAL_ASSIGN_OR_RETURN(ServingIndexData data, ParseV1File(bytes, path));
      return data.Build();
    }
    return BindServingImage(std::move(mapped), std::string(), options, path);
  }
  SHOAL_ASSIGN_OR_RETURN(std::string bytes, util::ReadTextFile(path));
  SHOAL_ASSIGN_OR_RETURN(uint32_t format, SniffFormat(bytes, path));
  if (format == kServingIndexFormatVersionV1) {
    SHOAL_ASSIGN_OR_RETURN(ServingIndexData data, ParseV1File(bytes, path));
    return data.Build();
  }
  return BindServingImage(util::MmapFile(), std::move(bytes), options, path);
}

}  // namespace shoal::serve
