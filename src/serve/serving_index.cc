#include "serve/serving_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ckpt/binary_io.h"
#include "text/normalize.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/string_util.h"
#include "util/tsv.h"

namespace shoal::serve {

namespace {

constexpr char kMagic[8] = {'S', 'H', 'O', 'A', 'L', 'I', 'D', 'X'};

// Sorts query ids by their text, ties towards the smaller id, so
// duplicate texts resolve deterministically to the first intern.
std::vector<uint32_t> OrderByText(const std::vector<std::string>& texts) {
  std::vector<uint32_t> order(texts.size());
  for (uint32_t i = 0; i < texts.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (texts[a] != texts[b]) return texts[a] < texts[b];
    return a < b;
  });
  return order;
}

// Binary search for `needle` in `texts` through the `order` permutation;
// returns the smallest matching query id or kNoQuery.
uint32_t FindOrdered(const std::vector<std::string>& texts,
                     const std::vector<uint32_t>& order,
                     const std::string& needle) {
  auto it = std::lower_bound(
      order.begin(), order.end(), needle,
      [&](uint32_t q, const std::string& text) { return texts[q] < text; });
  if (it == order.end() || texts[*it] != needle) return kNoQuery;
  return *it;
}

}  // namespace

util::Status ServingIndex::Finalize() {
  const size_t num_topics = parent.size();
  if (level.size() != num_topics || topic_size.size() != num_topics ||
      descriptions.size() != num_topics) {
    return util::Status::InvalidArgument(
        "serving index topic arrays disagree on the topic count");
  }
  for (uint32_t t = 0; t < num_topics; ++t) {
    if (parent[t] == core::kNoTopic) {
      if (level[t] != 0) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "serving index root topic %u has level %u", t, level[t]));
      }
    } else {
      if (parent[t] >= t) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "serving index topic %u does not follow its parent %u", t,
            parent[t]));
      }
      if (level[t] != level[parent[t]] + 1) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "serving index topic %u level %u is not parent level %u + 1", t,
            level[t], level[parent[t]]));
      }
    }
  }
  if (entity_category.size() != entity_topic.size()) {
    return util::Status::InvalidArgument(
        "serving index entity arrays disagree on the entity count");
  }
  for (size_t e = 0; e < entity_topic.size(); ++e) {
    if (entity_topic[e] != core::kNoTopic && entity_topic[e] >= num_topics) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "serving index entity %zu names topic %u of %zu", e,
          entity_topic[e], num_topics));
    }
  }
  if (query_norm.size() != query_text.size() ||
      posting_list.size() != query_text.size()) {
    return util::Status::InvalidArgument(
        "serving index query arrays disagree on the query count");
  }
  for (size_t q = 0; q < query_text.size(); ++q) {
    // The stored normalized form must match what the serve-time
    // normalizer produces NOW — a compiler/server normalization skew
    // would otherwise turn into silent lookup misses.
    if (query_norm[q] != text::NormalizeQuery(query_text[q])) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "serving index query %zu: stored normalized form '%s' does not "
          "match NormalizeQuery('%s') — index was compiled with a "
          "different normalizer",
          q, query_norm[q].c_str(), query_text[q].c_str()));
    }
    const auto& postings = posting_list[q];
    for (size_t i = 0; i < postings.size(); ++i) {
      if (postings[i].topic >= num_topics) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "serving index query %zu posting %zu names topic %u of %zu", q,
            i, postings[i].topic, num_topics));
      }
      if (!std::isfinite(postings[i].score) || postings[i].score < 0.0) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "serving index query %zu posting %zu has a non-finite or "
            "negative score",
            q, i));
      }
      if (i > 0) {
        const Posting& prev = postings[i - 1];
        const bool ordered =
            prev.score > postings[i].score ||
            (prev.score == postings[i].score &&
             prev.topic < postings[i].topic);
        if (!ordered) {
          return util::Status::InvalidArgument(util::StringPrintf(
              "serving index query %zu posting list is not sorted by "
              "(score desc, topic asc) at entry %zu",
              q, i));
        }
      }
    }
  }

  // Children CSR + root list from the validated parent array.
  child_offsets_.assign(num_topics + 1, 0);
  roots_.clear();
  for (uint32_t t = 0; t < num_topics; ++t) {
    if (parent[t] == core::kNoTopic) {
      roots_.push_back(t);
    } else {
      ++child_offsets_[parent[t] + 1];
    }
  }
  for (size_t t = 1; t <= num_topics; ++t) {
    child_offsets_[t] += child_offsets_[t - 1];
  }
  child_ids_.assign(child_offsets_[num_topics], 0);
  std::vector<uint64_t> cursor(child_offsets_.begin(),
                               child_offsets_.begin() + num_topics);
  for (uint32_t t = 0; t < num_topics; ++t) {
    if (parent[t] != core::kNoTopic) {
      child_ids_[cursor[parent[t]]++] = t;  // ascending t => ascending ids
    }
  }

  exact_order_ = OrderByText(query_text);
  norm_order_ = OrderByText(query_norm);
  return util::Status::OK();
}

std::vector<uint32_t> ServingIndex::PathToRoot(uint32_t t) const {
  std::vector<uint32_t> path;
  for (uint32_t cur = t; cur != core::kNoTopic; cur = parent[cur]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ServingIndex::Lookup ServingIndex::Find(const std::string& raw_query) const {
  Lookup result;
  result.query = FindOrdered(query_text, exact_order_, raw_query);
  if (result.query != kNoQuery) {
    result.match = Lookup::Match::kExact;
    return result;
  }
  const std::string normalized = text::NormalizeQuery(raw_query);
  if (!normalized.empty()) {
    result.query = FindOrdered(query_norm, norm_order_, normalized);
    if (result.query != kNoQuery) {
      result.match = Lookup::Match::kNormalized;
      return result;
    }
  }
  result.match = Lookup::Match::kNone;
  return result;
}

util::Result<ServingIndex> CompileServingIndex(
    const core::Taxonomy& taxonomy, const core::DescriberInput& input,
    const core::DescriberOptions& describer_options,
    const std::vector<uint32_t>* entity_categories,
    const CompileOptions& options) {
  if (input.query_texts == nullptr) {
    return util::Status::InvalidArgument(
        "CompileServingIndex needs query_texts to intern the dictionary");
  }
  if (entity_categories != nullptr &&
      entity_categories->size() != taxonomy.num_entities()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "entity_categories has %zu entries for %zu entities",
        entity_categories->size(), taxonomy.num_entities()));
  }

  // Describe mutates topic descriptions, so score a private copy; the
  // scoring is a deterministic function of the taxonomy, so the copy's
  // descriptions equal the original's when it was already described.
  core::Taxonomy scored = taxonomy;
  core::DescriberInput scored_input = input;
  scored_input.taxonomy = &scored;
  auto rankings =
      core::TopicDescriber::Describe(scored, scored_input, describer_options);
  if (!rankings.ok()) return rankings.status();

  ServingIndex index;
  index.version = options.version;

  const size_t num_topics = scored.num_topics();
  index.parent.resize(num_topics);
  index.level.resize(num_topics);
  index.topic_size.resize(num_topics);
  index.descriptions.resize(num_topics);
  for (uint32_t t = 0; t < num_topics; ++t) {
    const core::Topic& topic = scored.topic(t);
    index.parent[t] = topic.parent;
    index.level[t] = topic.level;
    index.topic_size[t] = static_cast<uint32_t>(topic.entities.size());
    index.descriptions[t] = topic.description;
  }

  index.entity_topic.resize(scored.num_entities());
  index.entity_category.assign(scored.num_entities(), kNoCategoryId);
  for (uint32_t e = 0; e < scored.num_entities(); ++e) {
    index.entity_topic[e] = scored.TopicOfEntity(e);
    if (entity_categories != nullptr) {
      index.entity_category[e] = (*entity_categories)[e];
    }
  }

  // Invert the per-topic rankings into per-query posting lists.
  const auto& query_texts = *input.query_texts;
  std::vector<std::vector<Posting>> by_query(query_texts.size());
  for (uint32_t t = 0; t < rankings->size(); ++t) {
    for (const core::ScoredQuery& sq : (*rankings)[t]) {
      if (sq.query >= by_query.size()) {
        return util::Status::OutOfRange(util::StringPrintf(
            "describer ranked query %u but only %zu query texts exist",
            sq.query, by_query.size()));
      }
      by_query[sq.query].push_back(Posting{t, sq.representativeness});
    }
  }
  for (uint32_t q = 0; q < by_query.size(); ++q) {
    auto& postings = by_query[q];
    if (postings.empty()) continue;
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.topic < b.topic;
              });
    if (options.max_postings_per_query > 0 &&
        postings.size() > options.max_postings_per_query) {
      postings.resize(options.max_postings_per_query);
    }
    index.query_text.push_back(query_texts[q]);
    index.query_norm.push_back(text::NormalizeQuery(query_texts[q]));
    index.posting_list.push_back(std::move(postings));
  }

  SHOAL_RETURN_IF_ERROR(index.Finalize());
  return index;
}

std::string EncodeServingIndex(const ServingIndex& index) {
  ckpt::BinaryWriter writer;
  writer.WriteU64(index.version);

  writer.WriteU64(index.parent.size());
  for (size_t t = 0; t < index.parent.size(); ++t) {
    writer.WriteU32(index.parent[t]);
    writer.WriteU32(index.level[t]);
    writer.WriteU32(index.topic_size[t]);
    writer.WriteU64(index.descriptions[t].size());
    for (const std::string& d : index.descriptions[t]) writer.WriteString(d);
  }

  writer.WriteU64(index.entity_topic.size());
  for (size_t e = 0; e < index.entity_topic.size(); ++e) {
    writer.WriteU32(index.entity_topic[e]);
    writer.WriteU32(index.entity_category[e]);
  }

  writer.WriteU64(index.query_text.size());
  for (size_t q = 0; q < index.query_text.size(); ++q) {
    writer.WriteString(index.query_text[q]);
    writer.WriteString(index.query_norm[q]);
    writer.WriteU64(index.posting_list[q].size());
    for (const Posting& p : index.posting_list[q]) {
      writer.WriteU32(p.topic);
      writer.WriteF64(p.score);
    }
  }
  return writer.Take();
}

util::Result<ServingIndex> DecodeServingIndex(std::string_view payload) {
  ckpt::BinaryReader reader(payload);
  ServingIndex index;
  SHOAL_ASSIGN_OR_RETURN(index.version, reader.ReadU64());

  SHOAL_ASSIGN_OR_RETURN(uint64_t num_topics, reader.ReadU64());
  // u32 parent + u32 level + u32 size + u64 description count.
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_topics, 20));
  index.parent.resize(num_topics);
  index.level.resize(num_topics);
  index.topic_size.resize(num_topics);
  index.descriptions.resize(num_topics);
  for (uint64_t t = 0; t < num_topics; ++t) {
    SHOAL_ASSIGN_OR_RETURN(index.parent[t], reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(index.level[t], reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(index.topic_size[t], reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(uint64_t num_desc, reader.ReadU64());
    SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_desc, 8));
    index.descriptions[t].resize(num_desc);
    for (uint64_t d = 0; d < num_desc; ++d) {
      SHOAL_ASSIGN_OR_RETURN(index.descriptions[t][d], reader.ReadString());
    }
  }

  SHOAL_ASSIGN_OR_RETURN(uint64_t num_entities, reader.ReadU64());
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_entities, 8));
  index.entity_topic.resize(num_entities);
  index.entity_category.resize(num_entities);
  for (uint64_t e = 0; e < num_entities; ++e) {
    SHOAL_ASSIGN_OR_RETURN(index.entity_topic[e], reader.ReadU32());
    SHOAL_ASSIGN_OR_RETURN(index.entity_category[e], reader.ReadU32());
  }

  SHOAL_ASSIGN_OR_RETURN(uint64_t num_queries, reader.ReadU64());
  // Two length-prefixed strings plus the posting count.
  SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_queries, 24));
  index.query_text.resize(num_queries);
  index.query_norm.resize(num_queries);
  index.posting_list.resize(num_queries);
  for (uint64_t q = 0; q < num_queries; ++q) {
    SHOAL_ASSIGN_OR_RETURN(index.query_text[q], reader.ReadString());
    SHOAL_ASSIGN_OR_RETURN(index.query_norm[q], reader.ReadString());
    SHOAL_ASSIGN_OR_RETURN(uint64_t num_postings, reader.ReadU64());
    SHOAL_RETURN_IF_ERROR(reader.CheckCount(num_postings, 12));
    index.posting_list[q].resize(num_postings);
    for (uint64_t p = 0; p < num_postings; ++p) {
      SHOAL_ASSIGN_OR_RETURN(index.posting_list[q][p].topic,
                             reader.ReadU32());
      SHOAL_ASSIGN_OR_RETURN(index.posting_list[q][p].score,
                             reader.ReadF64());
    }
  }

  if (!reader.AtEnd()) {
    return util::Status::InvalidArgument(
        "serving index payload has trailing bytes");
  }
  SHOAL_RETURN_IF_ERROR(index.Finalize());
  return index;
}

util::Status WriteServingIndexFile(const std::string& path,
                                   const ServingIndex& index) {
  const std::string payload = EncodeServingIndex(index);
  ckpt::BinaryWriter header;
  std::string framed;
  framed.reserve(sizeof(kMagic) + 16 + payload.size());
  framed.append(kMagic, sizeof(kMagic));
  header.WriteU32(kServingIndexFormatVersion);
  header.WriteU64(payload.size());
  header.WriteU32(util::Crc32(payload.data(), payload.size()));
  framed += header.data();
  framed.append(payload);
  return util::AtomicWriteFile(path, framed);
}

util::Result<ServingIndex> ReadServingIndexFile(const std::string& path) {
  SHOAL_ASSIGN_OR_RETURN(std::string bytes, util::ReadTextFile(path));
  if (bytes.size() < sizeof(kMagic) ||
      bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument(path +
                                         ": not a SHOAL serving index file");
  }
  ckpt::BinaryReader reader(std::string_view(bytes).substr(sizeof(kMagic)));
  SHOAL_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kServingIndexFormatVersion) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%s: serving index format version %u, this build reads version %u",
        path.c_str(), version, kServingIndexFormatVersion));
  }
  SHOAL_ASSIGN_OR_RETURN(uint64_t payload_size, reader.ReadU64());
  SHOAL_ASSIGN_OR_RETURN(uint32_t expected_crc, reader.ReadU32());
  if (payload_size != reader.remaining()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%s: header claims %llu payload bytes but %zu are present",
        path.c_str(), static_cast<unsigned long long>(payload_size),
        reader.remaining()));
  }
  const std::string_view payload =
      std::string_view(bytes).substr(bytes.size() - payload_size);
  const uint32_t actual_crc = util::Crc32(payload.data(), payload.size());
  if (actual_crc != expected_crc) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%s: payload CRC mismatch (stored %08x, computed %08x) — the "
        "serving index is corrupt",
        path.c_str(), expected_crc, actual_crc));
  }
  return DecodeServingIndex(payload);
}

}  // namespace shoal::serve
