#ifndef SHOAL_SERVE_SERVING_INDEX_H_
#define SHOAL_SERVE_SERVING_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/taxonomy.h"
#include "core/topic_describer.h"
#include "util/mmap_file.h"
#include "util/result.h"
#include "util/status.h"

namespace shoal::serve {

inline constexpr uint32_t kNoQuery = static_cast<uint32_t>(-1);
inline constexpr uint32_t kNoCategoryId = static_cast<uint32_t>(-1);

// One entry of a query's posting list: a topic and the topic-description
// matching score r(q, t) = sqrt(pop * con) of Sec 2.3. Lists are stored
// descending by score (ties broken towards the smaller topic id), so the
// serving top-k is a prefix read, and the top-1 topic is by construction
// the topic whose description ranking scores this query highest.
struct Posting {
  uint32_t topic = core::kNoTopic;
  double score = 0.0;

  bool operator==(const Posting& other) const {
    return topic == other.topic && score == other.score;
  }
};

// How ReadServingIndexFile installs a v2 index.
struct LoadOptions {
  // Map the file read-only and serve straight from the page cache
  // (O(1) allocations; the kernel pages data in on demand). false reads
  // the file into an owned, 64-byte-aligned buffer instead — same
  // accessors, private copy.
  bool use_mmap = true;
  // Checksum the whole image before serving from it. One streaming CRC
  // pass; turning it off makes install strictly O(1) but leaves
  // bit-flips to the structural bounds sweep alone.
  bool verify_crc = true;
  // Additionally re-verify the semantic invariants the compiler already
  // enforced (posting sort order, dictionary orderings, children CSR vs
  // parents). Redundant behind an intact CRC; for forensics.
  bool deep_validate = false;
};

// The immutable artefact the online tier serves from. Since format v2
// this is a *flat* index: one contiguous, pointer-free, 64-byte-aligned
// image (a section table over typed arrays + string arenas) that is
// either mmap'd read-only straight off disk or held in one owned
// allocation. Every accessor reads directly out of the image — loading
// never deserializes, so index install cost does not grow with index
// size, and request threads share the image with no locks anywhere.
//
// Contents:
//   * topic tree: per-topic parent / level / member count, descriptions
//     (representative queries, best first), a children CSR and the root
//     list;
//   * item->entity->topic maps: deepest topic and ontology category per
//     entity;
//   * the interned query dictionary (raw + normalized arenas, sort
//     permutations for binary search) with per-query posting lists laid
//     out as parallel topic/score arrays.
//
// Build one offline with CompileServingIndex(...).Build() and load it
// online with ReadServingIndexFile. Mutate-and-revalidate workflows
// (tests, tools) go through ServingIndexData.
class ServingIndex {
 public:
  struct Lookup {
    enum class Match { kNone, kExact, kNormalized };
    uint32_t query = kNoQuery;
    Match match = Match::kNone;
  };

  // Postings of one query as a zero-copy view over the image's parallel
  // arrays (4-byte topics and 8-byte scores are stored apart so neither
  // pads the other).
  struct PostingSpan {
    const uint32_t* topics = nullptr;
    const double* scores = nullptr;
    size_t count = 0;

    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    uint32_t topic(size_t i) const { return topics[i]; }
    double score(size_t i) const { return scores[i]; }
    Posting operator[](size_t i) const { return Posting{topics[i], scores[i]}; }
  };

  ServingIndex() = default;
  ServingIndex(ServingIndex&& other) noexcept;
  ServingIndex& operator=(ServingIndex&& other) noexcept;
  ServingIndex(const ServingIndex&) = delete;
  ServingIndex& operator=(const ServingIndex&) = delete;
  ~ServingIndex();

  // --- scalar header -----------------------------------------------------
  uint64_t version() const { return version_; }
  size_t num_topics() const { return num_topics_; }
  size_t num_entities() const { return num_entities_; }
  size_t num_queries() const { return num_queries_; }

  // Bytes of the backing image (what serve.index.resident_bytes
  // reports), and whether they live in a file mapping or a private
  // allocation.
  size_t resident_bytes() const { return size_; }
  bool mmap_backed() const { return mmap_backed_; }

  // --- topics ------------------------------------------------------------
  uint32_t parent(uint32_t t) const { return parent_[t]; }
  uint32_t level(uint32_t t) const { return level_[t]; }
  uint32_t topic_size(uint32_t t) const { return topic_size_[t]; }
  size_t num_descriptions(uint32_t t) const {
    return desc_offsets_[t + 1] - desc_offsets_[t];
  }
  // The i-th description query of topic `t`, best first.
  std::string_view description(uint32_t t, size_t i) const {
    const uint64_t d = desc_offsets_[t] + i;
    return {desc_arena_ + desc_bounds_[d],
            static_cast<size_t>(desc_bounds_[d + 1] - desc_bounds_[d])};
  }

  std::span<const uint32_t> roots() const { return {roots_, num_roots_}; }

  // Children of `t`, ascending, as a [first, last) range into the CSR.
  std::pair<const uint32_t*, const uint32_t*> children(uint32_t t) const {
    return {child_ids_ + child_offsets_[t], child_ids_ + child_offsets_[t + 1]};
  }

  // Topic ids from the root down to `t` (root first, `t` last).
  std::vector<uint32_t> PathToRoot(uint32_t t) const;

  // --- entities ------------------------------------------------------------
  uint32_t entity_topic(uint32_t e) const { return entity_topic_[e]; }
  uint32_t entity_category(uint32_t e) const { return entity_category_[e]; }

  // --- queries -------------------------------------------------------------
  std::string_view query_text(uint32_t q) const {
    return {text_arena_ + text_bounds_[q],
            static_cast<size_t>(text_bounds_[q + 1] - text_bounds_[q])};
  }
  std::string_view query_norm(uint32_t q) const {
    return {norm_arena_ + norm_bounds_[q],
            static_cast<size_t>(norm_bounds_[q + 1] - norm_bounds_[q])};
  }
  PostingSpan postings(uint32_t q) const {
    const uint64_t first = post_offsets_[q];
    return {post_topics_ + first, post_scores_ + first,
            static_cast<size_t>(post_offsets_[q + 1] - first)};
  }

  // Exact raw-text match first, then the normalized form; kNone when the
  // query is not in the dictionary.
  Lookup Find(const std::string& raw_query) const;

 private:
  friend util::Result<ServingIndex> BindServingImage(util::MmapFile mapped,
                                                     std::string owned,
                                                     const LoadOptions& options,
                                                     const std::string& origin);

  util::Status Bind(const LoadOptions& options, const std::string& origin);
  void Release();
  void StealFrom(ServingIndex& other);

  // Backing storage: exactly one of the two is live (or neither, for a
  // default-constructed empty index).
  util::MmapFile mapped_;
  uint8_t* owned_ = nullptr;  // 64-byte-aligned private image
  bool mmap_backed_ = false;

  const uint8_t* base_ = nullptr;
  size_t size_ = 0;

  // Header scalars and section pointers, cached by Bind().
  uint64_t version_ = 0;
  size_t num_topics_ = 0;
  size_t num_entities_ = 0;
  size_t num_queries_ = 0;
  size_t num_roots_ = 0;
  const uint32_t* parent_ = nullptr;
  const uint32_t* level_ = nullptr;
  const uint32_t* topic_size_ = nullptr;
  const uint64_t* desc_offsets_ = nullptr;
  const uint64_t* desc_bounds_ = nullptr;
  const char* desc_arena_ = nullptr;
  const uint32_t* entity_topic_ = nullptr;
  const uint32_t* entity_category_ = nullptr;
  const uint64_t* text_bounds_ = nullptr;
  const char* text_arena_ = nullptr;
  const uint64_t* norm_bounds_ = nullptr;
  const char* norm_arena_ = nullptr;
  const uint64_t* post_offsets_ = nullptr;
  const uint32_t* post_topics_ = nullptr;
  const double* post_scores_ = nullptr;
  const uint64_t* child_offsets_ = nullptr;
  const uint32_t* child_ids_ = nullptr;
  const uint32_t* roots_ = nullptr;
  const uint32_t* exact_order_ = nullptr;
  const uint32_t* norm_order_ = nullptr;
};

// The mutable builder form: plain vectors, free to edit, validated as a
// whole. CompileServingIndex produces one; Build() freezes it into the
// flat image a ServingIndex serves from. The v1 (copying) codec also
// round-trips through this type.
struct ServingIndexData {
  uint64_t version = 0;  // compiler-stamped artefact version

  // Topics, indexed by taxonomy topic id. Parents precede children.
  std::vector<uint32_t> parent;                        // kNoTopic = root
  std::vector<uint32_t> level;                         // 0 for roots
  std::vector<uint32_t> topic_size;                    // member entities
  std::vector<std::vector<std::string>> descriptions;  // best query first

  // Entities (== items).
  std::vector<uint32_t> entity_topic;     // deepest topic or kNoTopic
  std::vector<uint32_t> entity_category;  // ontology leaf or kNoCategoryId

  // Interned queries, ascending original query id (deterministic).
  std::vector<std::string> query_text;             // raw form
  std::vector<std::string> query_norm;             // NormalizeQuery(raw)
  std::vector<std::vector<Posting>> posting_list;  // per query, score desc

  // Validates every structural invariant (parent ordering, level
  // consistency, range checks, posting sortedness, stored
  // normalizations matching the live normalizer). Any violation is a
  // clean InvalidArgument — the last line of defence behind the file
  // CRC.
  util::Status Validate() const;

  // Validate + freeze into the flat serving form (one aligned
  // allocation holding the same image WriteServingIndexFile persists).
  util::Result<ServingIndex> Build() const;
};

struct CompileOptions {
  // Artefact version stamped into the file and echoed by /healthz; bump
  // it per publish so hot reloads are observable end to end.
  uint64_t version = 1;
  // Postings kept per query, best first; 0 keeps every scored pair. Any
  // cap >= 1 preserves the top-1 = argmax r(q, t) guarantee.
  size_t max_postings_per_query = 64;
};

// Compiles a built taxonomy into serving form. Re-runs the Sec 2.3
// topic-description scoring (TopicDescriber) on a copy of the taxonomy
// to obtain the full per-topic query rankings, then inverts them into
// per-query posting lists. `entity_categories` may be null (categories
// become kNoCategoryId); when present it must have one entry per entity.
util::Result<ServingIndexData> CompileServingIndex(
    const core::Taxonomy& taxonomy, const core::DescriberInput& input,
    const core::DescriberOptions& describer_options,
    const std::vector<uint32_t>* entity_categories,
    const CompileOptions& options);

// The second half of CompileServingIndex, for callers that already hold
// per-topic rankings (the incremental daemon scores only dirty topics
// and carries the rest forward): fills the data arrays from `taxonomy`'s
// topics/descriptions as-is and inverts `rankings` (one entry per topic;
// empty entries contribute no postings) into per-query posting lists.
// `query_texts` is the full query dictionary the ranking query ids index
// into; only queries with non-empty posting lists are interned.
util::Result<ServingIndexData> BuildServingIndexData(
    const core::Taxonomy& taxonomy,
    const std::vector<std::vector<core::ScoredQuery>>& rankings,
    const std::vector<std::string>& query_texts,
    const std::vector<uint32_t>* entity_categories,
    const CompileOptions& options);

// --- binary format --------------------------------------------------------
// Both formats open with the same sniffable frame: 8-byte magic
// "SHOALIDX" then a u32 format version at offset 8.
//
//   v2 (current): the flat little-endian image described above —
//     magic | u32 2 | u32 crc32(bytes[16..end)) | fixed header |
//     section table | 64-byte-aligned sections — written atomically and
//     loaded by mmap with CRC + bounds validation over the mapped
//     region (see DESIGN.md §12 for the layout diagram).
//   v1 (legacy): magic | u32 1 | u64 payload size | u32 crc32 | a
//     length-prefixed record stream, fully deserialized on load via the
//     copying path below. Still readable for compatibility; still
//     writable for format-skew tests and old consumers.
//
// Every count and offset read back is bounds-checked against the file,
// so truncated / bit-flipped / oversized-count images fail with a clean
// Status, never undefined behaviour.

inline constexpr uint32_t kServingIndexFormatVersion = 2;
inline constexpr uint32_t kServingIndexFormatVersionV1 = 1;

// v1 payload codec (legacy, copying).
std::string EncodeServingIndex(const ServingIndexData& data);
util::Result<ServingIndexData> DecodeServingIndex(std::string_view payload);

// The complete v2 file image for `data` (magic through last section).
util::Result<std::string> EncodeServingIndexFile(const ServingIndexData& data);

// Writes the v2 (current) / v1 (legacy) file atomically.
util::Status WriteServingIndexFile(const std::string& path,
                                   const ServingIndexData& data);
util::Status WriteServingIndexFileV1(const std::string& path,
                                     const ServingIndexData& data);

// Loads either format: v2 binds the image in place (mmap by default),
// v1 falls back to the deserializing path. Always returns a fully
// validated, ready-to-serve index or a clean error.
util::Result<ServingIndex> ReadServingIndexFile(const std::string& path,
                                                const LoadOptions& options = {});

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_SERVING_INDEX_H_
