#ifndef SHOAL_SERVE_SERVING_INDEX_H_
#define SHOAL_SERVE_SERVING_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/taxonomy.h"
#include "core/topic_describer.h"
#include "util/result.h"
#include "util/status.h"

namespace shoal::serve {

inline constexpr uint32_t kNoQuery = static_cast<uint32_t>(-1);
inline constexpr uint32_t kNoCategoryId = static_cast<uint32_t>(-1);

// One entry of a query's posting list: a topic and the topic-description
// matching score r(q, t) = sqrt(pop * con) of Sec 2.3. Lists are stored
// descending by score (ties broken towards the smaller topic id), so the
// serving top-k is a prefix read, and the top-1 topic is by construction
// the topic whose description ranking scores this query highest.
struct Posting {
  uint32_t topic = core::kNoTopic;
  double score = 0.0;

  bool operator==(const Posting& other) const {
    return topic == other.topic && score == other.score;
  }
};

// The compact immutable artefact the online tier serves from: everything
// a request needs, precomputed offline and loaded in one pass. A loaded
// index is never mutated — request threads share one instance through a
// shared_ptr<const ServingIndex> and hot reload swaps the pointer, so no
// per-request locking is needed anywhere in the read path.
//
// Contents:
//   * topic tree in CSR form: per-topic parent / level / member count,
//     a children adjacency (offsets + ids, ascending), and descriptions
//     (the topic's representative queries, best first);
//   * item->entity->topic maps: the deepest topic and ontology category
//     of every entity (items and entities coincide in this system);
//   * an interned query dictionary with exact and normalized lookup,
//     each entry carrying its posting list.
//
// Build with CompileServingIndex (offline) or ReadServingIndexFile
// (online). Direct field access is for the codec and tests; after any
// mutation Finalize() must be re-run.
class ServingIndex {
 public:
  struct Lookup {
    enum class Match { kNone, kExact, kNormalized };
    uint32_t query = kNoQuery;
    Match match = Match::kNone;
  };

  ServingIndex() = default;

  // --- stored fields ------------------------------------------------------
  uint64_t version = 0;  // compiler-stamped artefact version

  // Topics, indexed by taxonomy topic id. Parents precede children.
  std::vector<uint32_t> parent;                         // kNoTopic = root
  std::vector<uint32_t> level;                          // 0 for roots
  std::vector<uint32_t> topic_size;                     // member entities
  std::vector<std::vector<std::string>> descriptions;   // best query first

  // Entities (== items).
  std::vector<uint32_t> entity_topic;     // deepest topic or kNoTopic
  std::vector<uint32_t> entity_category;  // ontology leaf or kNoCategoryId

  // Interned queries, ascending original query id (deterministic).
  std::vector<std::string> query_text;            // raw form
  std::vector<std::string> query_norm;            // NormalizeQuery(raw)
  std::vector<std::vector<Posting>> posting_list; // per query, score desc

  // Validates every structural invariant (parent ordering, level
  // consistency, range checks, posting sortedness) and rebuilds the
  // derived structures below. Any violation is a clean InvalidArgument —
  // this is the last line of defence behind the file CRC.
  util::Status Finalize();

  // --- derived accessors (valid after a successful Finalize) --------------
  size_t num_topics() const { return parent.size(); }
  size_t num_entities() const { return entity_topic.size(); }
  size_t num_queries() const { return query_text.size(); }

  const std::vector<uint32_t>& roots() const { return roots_; }

  // Children of `t`, ascending, as a [first, last) range into the CSR.
  std::pair<const uint32_t*, const uint32_t*> children(uint32_t t) const {
    const uint32_t* base = child_ids_.data();
    return {base + child_offsets_[t], base + child_offsets_[t + 1]};
  }

  // Topic ids from the root down to `t` (root first, `t` last).
  std::vector<uint32_t> PathToRoot(uint32_t t) const;

  // Exact raw-text match first, then the normalized form; kNone when the
  // query is not in the dictionary.
  Lookup Find(const std::string& raw_query) const;

 private:
  // Children CSR and root list, derived from `parent`.
  std::vector<uint64_t> child_offsets_;
  std::vector<uint32_t> child_ids_;
  std::vector<uint32_t> roots_;
  // Query ids ordered by raw / normalized text (ties: smaller id first,
  // so duplicate texts resolve deterministically to the first intern).
  std::vector<uint32_t> exact_order_;
  std::vector<uint32_t> norm_order_;
};

struct CompileOptions {
  // Artefact version stamped into the file and echoed by /healthz; bump
  // it per publish so hot reloads are observable end to end.
  uint64_t version = 1;
  // Postings kept per query, best first; 0 keeps every scored pair. Any
  // cap >= 1 preserves the top-1 = argmax r(q, t) guarantee.
  size_t max_postings_per_query = 64;
};

// Compiles a built taxonomy into a ServingIndex. Re-runs the Sec 2.3
// topic-description scoring (TopicDescriber) on a copy of the taxonomy
// to obtain the full per-topic query rankings, then inverts them into
// per-query posting lists. `entity_categories` may be null (categories
// become kNoCategoryId); when present it must have one entry per entity.
util::Result<ServingIndex> CompileServingIndex(
    const core::Taxonomy& taxonomy, const core::DescriberInput& input,
    const core::DescriberOptions& describer_options,
    const std::vector<uint32_t>* entity_categories,
    const CompileOptions& options);

// --- binary format --------------------------------------------------------
// Payload codec plus a CRC-32 framed file wrapper, mirroring the
// checkpoint snapshot format: 8-byte magic "SHOALIDX", u32 format
// version, u64 payload size, u32 CRC-32 of the payload, payload bytes.
// Files are written through AtomicWriteFile (never torn on disk) and
// every count read back is bounds-checked against the remaining bytes,
// so truncated / bit-flipped / oversized-count files fail with a clean
// Status, never undefined behaviour.

inline constexpr uint32_t kServingIndexFormatVersion = 1;

std::string EncodeServingIndex(const ServingIndex& index);
util::Result<ServingIndex> DecodeServingIndex(std::string_view payload);

util::Status WriteServingIndexFile(const std::string& path,
                                   const ServingIndex& index);
util::Result<ServingIndex> ReadServingIndexFile(const std::string& path);

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_SERVING_INDEX_H_
