#ifndef SHOAL_SERVE_LRU_CACHE_H_
#define SHOAL_SERVE_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace shoal::serve {

// Sharded LRU map from request target to rendered response body. The
// shard is picked by key hash, so concurrent request threads only
// contend when they hit the same shard; each shard is a classic
// list+map LRU under its own mutex. Hit/miss counters are process-local
// atomics (bridged into serve.cache.* metrics by the service) so the
// cache itself stays usable without the obs registry.
class ShardedLruCache {
 public:
  // `capacity` is the total entry budget across all shards (rounded up
  // to a multiple of the shard count; at least one entry per shard).
  // `shards` must be >= 1.
  ShardedLruCache(size_t capacity, size_t shards = 8);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  // Copies the cached value into `*value` and promotes the entry to
  // most-recently-used. Returns false (and counts a miss) when absent.
  bool Get(const std::string& key, std::string* value);

  // Inserts or refreshes `key`, evicting the shard's least-recently-used
  // entry when the shard is at capacity.
  void Put(const std::string& key, std::string value);

  // Drops every entry (hot reload invalidation). Counters are kept.
  void Clear();

  size_t size() const;
  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<std::pair<std::string, std::string>> order;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::string>>::iterator>
        entries;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_LRU_CACHE_H_
