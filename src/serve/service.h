#ifndef SHOAL_SERVE_SERVICE_H_
#define SHOAL_SERVE_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>

#include "serve/http_message.h"
#include "serve/lru_cache.h"
#include "serve/serving_index.h"
#include "util/status.h"

namespace shoal::serve {

struct ServiceOptions {
  // Path /admin/reload (and the manifest poller) loads new versions
  // from. Empty disables reloading.
  std::string index_path;
  // Response cache budget in entries; 0 disables the cache.
  size_t cache_entries = 4096;
  size_t cache_shards = 8;
  // /v1/query result count when no k parameter is given, and the cap a
  // requested k is clamped to.
  size_t default_k = 5;
  size_t max_k = 100;
};

// The endpoint layer: pure request -> response over an immutable
// ServingIndex. Thread-safe; any number of threads may call Handle
// concurrently. The live index sits behind a shared_ptr that each
// request acquires once — a hot reload swaps the pointer, so in-flight
// requests keep the version they started with and finish normally while
// new requests see the new index.
//
// Endpoints (all JSON):
//   GET /v1/query?q=<text>[&k=N]   top-k topics for a query
//   GET /v1/topic/<id>             description, children, path-to-root
//   GET /v1/item/<id>              entity -> topic / category mapping
//   GET /healthz                   liveness + live index version
//   GET /metrics                   obs::MetricsRegistry JSON snapshot
//   GET|POST /admin/reload         load + validate + swap options.index_path
//
// Metrics (namespace serve.*, recorded when the global registry is
// enabled): serve.<endpoint>.requests / .errors / .latency_us,
// serve.requests.total, serve.requests.errors, serve.cache.hits /
// .misses, serve.reload.successes / .failures, serve.index.version,
// serve.index.swaps.
class ServingService {
 public:
  ServingService(std::shared_ptr<const ServingIndex> index,
                 ServiceOptions options);

  ServingService(const ServingService&) = delete;
  ServingService& operator=(const ServingService&) = delete;

  HttpResponse Handle(const HttpRequest& request);

  // Loads options.index_path, validates it, and swaps it live. On any
  // failure the previous index keeps serving and the Status reports why
  // (serve.reload.failures is incremented).
  util::Status Reload();

  // Swaps a pre-validated index in directly (startup, tests, pollers).
  void SwapIndex(std::shared_ptr<const ServingIndex> index);

  // The live index (never null). In-flight holders keep old versions
  // alive after a swap until their requests finish.
  std::shared_ptr<const ServingIndex> Acquire() const;

  const ShardedLruCache* cache() const { return cache_.get(); }

 private:
  HttpResponse Dispatch(const HttpRequest& request,
                        const ServingIndex& index, const char** endpoint);
  HttpResponse HandleQuery(const HttpRequest& request,
                           const ServingIndex& index);
  HttpResponse HandleTopic(const std::string& suffix,
                           const ServingIndex& index);
  HttpResponse HandleItem(const std::string& suffix,
                          const ServingIndex& index);
  HttpResponse HandleHealthz(const ServingIndex& index);
  HttpResponse HandleMetrics();
  HttpResponse HandleReload();

  ServiceOptions options_;
  mutable std::mutex index_mu_;  // guards index_ pointer swaps
  std::shared_ptr<const ServingIndex> index_;
  std::mutex reload_mu_;  // serializes reloads, not request traffic
  std::unique_ptr<ShardedLruCache> cache_;  // null when disabled
};

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_SERVICE_H_
