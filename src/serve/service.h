#ifndef SHOAL_SERVE_SERVICE_H_
#define SHOAL_SERVE_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "serve/access_log.h"
#include "serve/http_message.h"
#include "serve/lru_cache.h"
#include "serve/serving_index.h"
#include "util/status.h"

namespace shoal::serve {

struct ServiceOptions {
  // Path /admin/reload (and the manifest poller) loads new versions
  // from. Empty disables reloading.
  std::string index_path;
  // Response cache budget in entries; 0 disables the cache.
  size_t cache_entries = 4096;
  size_t cache_shards = 8;
  // /v1/query result count when no k parameter is given, and the cap a
  // requested k is clamped to.
  size_t default_k = 5;
  size_t max_k = 100;
  // JSONL request logs (not owned; must outlive the service). Null
  // disables. `slow_log` receives only requests slower than
  // `slow_request_us` (0 sends nothing to the slow log).
  AccessLog* access_log = nullptr;
  AccessLog* slow_log = nullptr;
  double slow_request_us = 0.0;
};

// The endpoint layer: pure request -> response over an immutable
// ServingIndex. Thread-safe; any number of threads may call Handle
// concurrently. The live index sits behind a shared_ptr that each
// request acquires once — a hot reload swaps the pointer, so in-flight
// requests keep the version they started with and finish normally while
// new requests see the new index.
//
// Endpoints (all JSON):
//   GET /v1/query?q=<text>[&k=N]   top-k topics for a query
//   GET /v1/topic/<id>             description, children, path-to-root
//   GET /v1/item/<id>              entity -> topic / category mapping
//   GET /healthz                   liveness + live index version
//   GET /readyz                    readiness: 503 until an index is live
//   GET /metrics                   obs::MetricsRegistry JSON snapshot
//                                  (?format=prometheus for text 0.0.4)
//   GET|POST /admin/reload         load + validate + swap options.index_path
//
// Every response carries an X-Request-Id: the caller's header value
// (sanitized) or a generated 16-hex id. When options.access_log is set,
// each request appends one JSONL record; requests slower than
// options.slow_request_us additionally go to options.slow_log.
//
// Metrics (namespace serve.*, recorded when the global registry is
// enabled): serve.<endpoint>.requests / .errors / .latency_us
// (log-bucketed; p50..p999 in snapshots), serve.requests.total,
// serve.requests.errors, serve.requests.slow, serve.cache.hits /
// .misses, serve.reload.successes / .failures, serve.index.version,
// serve.index.swaps.
class ServingService {
 public:
  // `index` may be null: the service starts unready (/readyz answers
  // 503 and /v1/* answer 503) until SwapIndex or Reload installs one.
  ServingService(std::shared_ptr<const ServingIndex> index,
                 ServiceOptions options);

  ServingService(const ServingService&) = delete;
  ServingService& operator=(const ServingService&) = delete;

  HttpResponse Handle(const HttpRequest& request);

  // Loads options.index_path, validates it, and swaps it live. On any
  // failure the previous index keeps serving and the Status reports why
  // (serve.reload.failures is incremented).
  util::Status Reload();

  // Swaps a pre-validated index in directly (startup, tests, pollers).
  void SwapIndex(std::shared_ptr<const ServingIndex> index);

  // The live index, or null while unready. In-flight holders keep old
  // versions alive after a swap until their requests finish.
  std::shared_ptr<const ServingIndex> Acquire() const;

  // True once an index has been installed.
  bool ready() const;

  const ShardedLruCache* cache() const { return cache_.get(); }

 private:
  // Outcome of the most recent reload attempt, surfaced by /readyz.
  struct ReloadStatus {
    bool attempted = false;
    bool ok = false;
    std::string detail;
    int64_t unix_ms = 0;
  };

  HttpResponse Dispatch(const HttpRequest& request,
                        const ServingIndex* index);
  HttpResponse HandleQuery(const HttpRequest& request,
                           const ServingIndex& index);
  HttpResponse HandleTopic(const std::string& suffix,
                           const ServingIndex& index);
  HttpResponse HandleItem(const std::string& suffix,
                          const ServingIndex& index);
  HttpResponse HandleHealthz(const ServingIndex* index);
  HttpResponse HandleReadyz(const ServingIndex* index);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleReload();

  void RecordReload(bool ok, const std::string& detail);

  ServiceOptions options_;
  const std::chrono::steady_clock::time_point start_time_;
  mutable std::mutex index_mu_;  // guards index_ pointer swaps
  std::shared_ptr<const ServingIndex> index_;
  std::mutex reload_mu_;  // serializes reloads, not request traffic
  mutable std::mutex reload_status_mu_;
  ReloadStatus last_reload_;
  std::unique_ptr<ShardedLruCache> cache_;  // null when disabled
};

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_SERVICE_H_
