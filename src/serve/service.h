#ifndef SHOAL_SERVE_SERVICE_H_
#define SHOAL_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "serve/access_log.h"
#include "serve/http_message.h"
#include "serve/lru_cache.h"
#include "serve/serving_index.h"
#include "util/rcu.h"
#include "util/status.h"

namespace shoal::serve {

struct ServiceOptions {
  // Path /admin/reload (and the manifest poller) loads new versions
  // from. Empty disables reloading.
  std::string index_path;
  // How Reload() materializes the file: mmap vs copy, CRC, deep checks.
  LoadOptions load_options;
  // Response cache budget in entries; 0 disables the cache (and with it
  // the only mutexes left on the data-plane read path).
  size_t cache_entries = 4096;
  size_t cache_shards = 8;
  // /v1/query result count when no k parameter is given, and the cap a
  // requested k is clamped to.
  size_t default_k = 5;
  size_t max_k = 100;
  // JSONL request logs (not owned; must outlive the service). Null
  // disables. `slow_log` receives only requests slower than
  // `slow_request_us` (0 sends nothing to the slow log).
  AccessLog* access_log = nullptr;
  AccessLog* slow_log = nullptr;
  double slow_request_us = 0.0;
};

// The endpoint layer: pure request -> response over an immutable
// ServingIndex. Thread-safe; any number of threads may call Handle
// concurrently. The live index sits in an epoch-based RCU cell: each
// request acquires a snapshot with zero mutex acquisitions (a
// thread-local epoch check in the steady state), a hot reload publishes
// a new epoch, and in-flight requests keep the version they started
// with and finish normally while new requests see the new index. With
// cache_entries = 0, access logs off, and tracing off, the entire
// /v1/* read path performs no mutex operations at all.
//
// Endpoints (all JSON):
//   GET /v1/query?q=<text>[&k=N]   top-k topics for a query
//   GET /v1/topic/<id>             description, children, path-to-root
//   GET /v1/item/<id>              entity -> topic / category mapping
//   GET /healthz                   liveness + live index version
//   GET /readyz                    readiness: 503 until an index is live
//   GET /metrics                   obs::MetricsRegistry JSON snapshot
//                                  (?format=prometheus for text 0.0.4)
//   GET|POST /admin/reload         load + validate + swap options.index_path
//
// Every response carries an X-Request-Id: the caller's header value
// (sanitized) or a generated 16-hex id. When options.access_log is set,
// each request appends one JSONL record; requests slower than
// options.slow_request_us additionally go to options.slow_log.
//
// Metrics (namespace serve.*, recorded when the global registry is
// enabled; all handles are resolved once at construction so the hot
// path never touches the registry mutex): serve.<endpoint>.requests /
// .errors / .latency_us (log-bucketed; p50..p999 in snapshots),
// serve.requests.total, serve.requests.errors, serve.requests.slow,
// serve.cache.hits / .misses, serve.reload.successes / .failures,
// serve.index.version, serve.index.swaps, and gauges serve.index.epoch
// (RCU publication epoch of the live cell), serve.index.resident_bytes
// (bytes of the live index image, mmap or heap), and
// serve.index.staleness_sec (seconds since the live index was installed
// here; reset to 0 on every swap and refreshed on /readyz probes).
class ServingService {
 public:
  // `index` may be null: the service starts unready (/readyz answers
  // 503 and /v1/* answer 503) until SwapIndex or Reload installs one.
  ServingService(std::shared_ptr<const ServingIndex> index,
                 ServiceOptions options);

  ServingService(const ServingService&) = delete;
  ServingService& operator=(const ServingService&) = delete;

  HttpResponse Handle(const HttpRequest& request);

  // Loads options.index_path, validates it, and swaps it live. On any
  // failure the previous index keeps serving and the Status reports why
  // (serve.reload.failures is incremented).
  util::Status Reload();

  // Swaps a pre-validated index in directly (startup, tests, pollers).
  // Publishes a new epoch; readers drain off the old index without ever
  // blocking, and the old image is released once the last in-flight
  // holder drops it.
  void SwapIndex(std::shared_ptr<const ServingIndex> index);

  // The live index, or null while unready. Lock-free: steady-state
  // reads are a thread-local epoch check. In-flight holders keep old
  // versions alive after a swap until their requests finish.
  std::shared_ptr<const ServingIndex> Acquire() const;

  // True once an index has been installed.
  bool ready() const;

  // RCU publication epoch of the index cell (bumps on every swap).
  uint64_t index_epoch() const { return index_.epoch(); }

  const ShardedLruCache* cache() const { return cache_.get(); }

 private:
  // Mirrors the Endpoint enum in service.cc.
  static constexpr int kNumEndpoints = 8;

  // Outcome of the most recent reload attempt, surfaced by /readyz.
  struct ReloadStatus {
    bool attempted = false;
    bool ok = false;
    std::string detail;
    int64_t unix_ms = 0;
  };

  // Metric handles, resolved once in the constructor (registry handles
  // are stable for the registry's lifetime). Recording through them is
  // a relaxed atomic op — no registry lock, no per-request name
  // formatting.
  struct EndpointMetrics {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::HistogramMetric* latency = nullptr;
  };
  struct ServeMetrics {
    EndpointMetrics endpoints[kNumEndpoints];
    obs::Counter* total = nullptr;
    obs::Counter* total_errors = nullptr;
    obs::Counter* slow = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* reload_successes = nullptr;
    obs::Counter* reload_failures = nullptr;
    obs::Counter* index_swaps = nullptr;
    obs::Gauge* index_version = nullptr;
    obs::Gauge* index_epoch = nullptr;
    obs::Gauge* index_resident_bytes = nullptr;
    obs::Gauge* index_staleness_sec = nullptr;
  };

  HttpResponse Dispatch(const HttpRequest& request,
                        const ServingIndex* index);
  HttpResponse HandleQuery(const HttpRequest& request,
                           const ServingIndex& index);
  HttpResponse HandleTopic(const std::string& suffix,
                           const ServingIndex& index);
  HttpResponse HandleItem(const std::string& suffix,
                          const ServingIndex& index);
  HttpResponse HandleHealthz(const ServingIndex* index);
  HttpResponse HandleReadyz(const ServingIndex* index);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleReload();

  void RecordMetrics(int endpoint, int status, double micros, bool slow);
  void RecordReload(bool ok, const std::string& detail);

  ServiceOptions options_;
  const std::chrono::steady_clock::time_point start_time_;
  // Wall-clock time the live index was installed (0 = none yet); the
  // source of /readyz's staleness fields and the
  // serve.index.staleness_sec gauge (refreshed on every /readyz probe,
  // so a scraper alongside a prober sees a current value).
  std::atomic<int64_t> index_install_ms_{0};
  // Lock-free snapshot of the live index; Write publishes a new epoch.
  util::RcuCell<const ServingIndex> index_;
  std::mutex reload_mu_;  // serializes reloads, not request traffic
  mutable std::mutex reload_status_mu_;
  ReloadStatus last_reload_;
  std::unique_ptr<ShardedLruCache> cache_;  // null when disabled
  ServeMetrics metrics_;
};

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_SERVICE_H_
