#include "serve/lru_cache.h"

#include <functional>

namespace shoal::serve {

ShardedLruCache::ShardedLruCache(size_t capacity, size_t shards)
    : per_shard_capacity_((capacity + shards - 1) / (shards == 0 ? 1 : shards)),
      shards_(shards == 0 ? 1 : shards) {
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
}

ShardedLruCache::Shard& ShardedLruCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool ShardedLruCache::Get(const std::string& key, std::string* value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  *value = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShardedLruCache::Put(const std::string& key, std::string value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    it->second->second = std::move(value);
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return;
  }
  shard.order.emplace_front(key, std::move(value));
  shard.entries.emplace(key, shard.order.begin());
  if (shard.entries.size() > per_shard_capacity_) {
    shard.entries.erase(shard.order.back().first);
    shard.order.pop_back();
  }
}

void ShardedLruCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.order.clear();
  }
}

size_t ShardedLruCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace shoal::serve
