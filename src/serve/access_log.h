#ifndef SHOAL_SERVE_ACCESS_LOG_H_
#define SHOAL_SERVE_ACCESS_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace shoal::serve {

// One structured access-log record, rendered as a single compact JSON
// object per line (JSONL). The schema is documented in DESIGN.md §7.
struct AccessLogEntry {
  int64_t unix_ms = 0;          // wall-clock completion time
  std::string request_id;       // never empty once the service ran
  std::string method;           // "GET", "HEAD", ...
  std::string target;           // raw request target incl. query string
  std::string endpoint;         // dispatch bucket, e.g. "query", "other"
  int status = 0;               // HTTP status code
  double latency_us = 0.0;      // service-side handling latency
  bool cache_hit = false;       // query-cache hit (query endpoint only)
  uint64_t index_version = 0;   // index snapshot that served the request
  uint64_t bytes = 0;           // response body size
};

// Append-only JSONL writer for request logs. The file is opened with
// O_APPEND and every record is rendered to one buffer and handed to a
// single write(2) under a mutex, so concurrently logged lines never
// interleave — the same convention util/atomic_file.h uses for crash
// consistency. `path` "-" writes to stderr (handy for smoke tests).
class AccessLog {
 public:
  static util::Result<std::unique_ptr<AccessLog>> Open(
      const std::string& path);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  // Renders `entry` and appends it. Errors are counted, not thrown: the
  // serving path must never fail because a log disk filled up.
  void Write(const AccessLogEntry& entry);

  uint64_t lines_written() const;
  uint64_t write_errors() const;
  const std::string& path() const { return path_; }

  // Renders the JSONL form without writing (exposed for tests).
  static std::string Render(const AccessLogEntry& entry);

 private:
  AccessLog(std::string path, int fd);

  const std::string path_;
  const int fd_;
  mutable std::mutex mu_;
  uint64_t lines_written_ = 0;
  uint64_t write_errors_ = 0;
};

}  // namespace shoal::serve

#endif  // SHOAL_SERVE_ACCESS_LOG_H_
