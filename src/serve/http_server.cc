#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace shoal::serve {

namespace {

// Reads until `fd` delivers a blank line terminating the header block,
// appending into `*buffer`. Returns false on EOF/error/overflow before
// the terminator; `*header_end` points just past "\r\n\r\n".
bool ReadHeaderBlock(int fd, size_t max_bytes, std::string* buffer,
                     size_t* header_end, bool* overflow) {
  *overflow = false;
  size_t scan_from = 0;
  while (true) {
    const size_t found = buffer->find("\r\n\r\n", scan_from);
    if (found != std::string::npos) {
      *header_end = found + 4;
      return true;
    }
    scan_from = buffer->size() < 3 ? 0 : buffer->size() - 3;
    if (buffer->size() > max_bytes) {
      *overflow = true;
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;  // EOF, timeout, or peer reset
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RenderResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = util::StringPrintf(
      "HTTP/1.1 %d %.*s\r\n", response.status,
      static_cast<int>(HttpReasonPhrase(response.status).size()),
      HttpReasonPhrase(response.status).data());
  out += "Content-Type: " + response.content_type + "\r\n";
  out += util::StringPrintf("Content-Length: %zu\r\n", response.body.size());
  if (!response.request_id.empty()) {
    out += "X-Request-Id: " + response.request_id + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

// Case-insensitive ASCII compare for header names / token values.
bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

struct ParsedHead {
  std::string method;
  std::string target;
  std::string request_id;  // sanitized X-Request-Id, or empty
  bool http11 = false;
  bool keep_alive = true;
  uint64_t content_length = 0;
  bool ok = false;
};

ParsedHead ParseHead(std::string_view head) {
  ParsedHead parsed;
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) return parsed;
  std::string_view request_line = head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos) return parsed;
  const size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return parsed;
  parsed.method = std::string(request_line.substr(0, sp1));
  parsed.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = request_line.substr(sp2 + 1);
  parsed.http11 = version == "HTTP/1.1";
  if (!parsed.http11 && version != "HTTP/1.0") return parsed;
  parsed.keep_alive = parsed.http11;  // HTTP/1.0 defaults to close

  std::string_view rest = head.substr(line_end + 2);
  while (!rest.empty()) {
    const size_t eol = rest.find("\r\n");
    if (eol == std::string_view::npos) break;
    std::string_view line = rest.substr(0, eol);
    rest.remove_prefix(eol + 2);
    if (line.empty()) break;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view name = Trim(line.substr(0, colon));
    std::string_view value = Trim(line.substr(colon + 1));
    if (EqualsIgnoreCase(name, "connection")) {
      if (EqualsIgnoreCase(value, "close")) parsed.keep_alive = false;
      if (EqualsIgnoreCase(value, "keep-alive")) parsed.keep_alive = true;
    } else if (EqualsIgnoreCase(name, "x-request-id")) {
      parsed.request_id = SanitizeRequestId(value);
    } else if (EqualsIgnoreCase(name, "content-length")) {
      uint64_t length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return parsed;  // ok stays false
        length = length * 10 + static_cast<uint64_t>(c - '0');
        if (length > (1ull << 40)) return parsed;
      }
      parsed.content_length = length;
    }
  }
  parsed.ok = !parsed.method.empty() && !parsed.target.empty();
  return parsed;
}

}  // namespace

HttpServer::HttpServer(ServingService* service, HttpServerOptions options)
    : service_(service), options_(std::move(options)) {
  SHOAL_CHECK(service_ != nullptr) << "HttpServer needs a service";
}

HttpServer::~HttpServer() { Stop(); }

util::Status HttpServer::Start() {
  SHOAL_CHECK(listen_fd_ < 0) << "HttpServer::Start called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(util::StringPrintf(
        "socket() failed: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::InvalidArgument("cannot parse host " +
                                         options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string message = util::StringPrintf(
        "cannot bind %s:%u: %s", options_.host.c_str(),
        static_cast<unsigned>(options_.port), std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(message);
  }
  if (::listen(listen_fd_, static_cast<int>(options_.listen_backlog)) != 0) {
    const std::string message = util::StringPrintf(
        "listen() failed: %s", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(message);
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  stopping_.store(false, std::memory_order_relaxed);
  pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  SHOAL_LOG(kInfo) << "serving on http://" << options_.host << ":" << port_
                   << " with " << pool_->num_threads() << " threads";
  return util::Status::OK();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    // Unblocks accept(); AcceptLoop sees stopping_ and exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Wake connections blocked in recv(); their in-flight responses
    // still flush because only the read half is shut down.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RD);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_.reset();  // joins workers after the queue drains
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener is gone; nothing sensible left to do
    }
    if (options_.idle_timeout_sec > 0) {
      timeval timeout;
      timeout.tv_sec = options_.idle_timeout_sec;
      timeout.tv_usec = 0;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (stopping_.load(std::memory_order_relaxed)) {
        ::close(fd);
        continue;
      }
      active_fds_.insert(fd);
    }
    pool_->Submit([this, fd] {
      ServeConnection(fd);
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        active_fds_.erase(fd);
      }
      ::close(fd);
    });
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  while (!stopping_.load(std::memory_order_relaxed)) {
    size_t header_end = 0;
    bool overflow = false;
    if (!ReadHeaderBlock(fd, options_.max_header_bytes, &buffer,
                         &header_end, &overflow)) {
      if (overflow) {
        HttpResponse response;
        response.status = 431;
        response.body = "{\"error\": \"headers too large\"}\n";
        SendAll(fd, RenderResponse(response, /*keep_alive=*/false));
      }
      return;
    }
    ParsedHead head = ParseHead(std::string_view(buffer).substr(0, header_end));
    buffer.erase(0, header_end);
    if (!head.ok) {
      HttpResponse response;
      response.status = 400;
      response.body = "{\"error\": \"malformed request\"}\n";
      SendAll(fd, RenderResponse(response, /*keep_alive=*/false));
      return;
    }

    // Drain (and ignore) any request body so the next keep-alive request
    // starts at a message boundary.
    bool body_too_large = head.content_length > options_.max_body_bytes;
    uint64_t remaining = head.content_length;
    if (remaining <= static_cast<uint64_t>(buffer.size())) {
      buffer.erase(0, static_cast<size_t>(remaining));
      remaining = 0;
    } else {
      remaining -= buffer.size();
      buffer.clear();
      char chunk[4096];
      while (remaining > 0) {
        const size_t want = remaining < sizeof(chunk)
                                ? static_cast<size_t>(remaining)
                                : sizeof(chunk);
        const ssize_t n = ::recv(fd, chunk, want, 0);
        if (n <= 0) return;
        remaining -= static_cast<uint64_t>(n);
      }
    }

    HttpResponse response;
    if (body_too_large) {
      response.status = 400;
      response.body = "{\"error\": \"request body too large\"}\n";
      head.keep_alive = false;
    } else {
      HttpRequest request = ParseRequestTarget(head.method, head.target);
      request.request_id = head.request_id;
      response = service_->Handle(request);
    }
    const bool keep_alive =
        head.keep_alive && !stopping_.load(std::memory_order_relaxed);
    if (head.method == "HEAD") response.body.clear();
    if (!SendAll(fd, RenderResponse(response, keep_alive))) return;
    if (!keep_alive) return;
  }
}

const std::string* HttpFetchResult::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

util::Result<HttpFetchResult> HttpFetch(
    const std::string& host, uint16_t port, const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::IoError(util::StringPrintf(
        "socket() failed: %s", std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("cannot parse host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = util::StringPrintf(
        "cannot connect to %s:%u: %s", host.c_str(),
        static_cast<unsigned>(port), std::strerror(errno));
    ::close(fd);
    return util::Status::IoError(message);
  }
  std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "\r\n";
  if (!SendAll(fd, request)) {
    ::close(fd);
    return util::Status::IoError("short write sending request");
  }
  std::string raw;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      ::close(fd);
      return util::Status::IoError(util::StringPrintf(
          "recv() failed: %s", std::strerror(errno)));
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos || raw.size() < 12 ||
      raw.compare(0, 5, "HTTP/") != 0) {
    return util::Status::IoError("malformed HTTP response");
  }
  HttpFetchResult result;
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return util::Status::IoError("malformed HTTP status line");
  }
  result.status = 0;
  for (size_t i = sp + 1; i < raw.size() && raw[i] >= '0' && raw[i] <= '9';
       ++i) {
    result.status = result.status * 10 + (raw[i] - '0');
  }
  if (result.status < 100 || result.status > 599) {
    return util::Status::IoError("malformed HTTP status code");
  }
  // Collect response headers (lower-cased names) for callers that check
  // propagation, e.g. the X-Request-Id echo.
  std::string_view head_block(raw.data(), header_end);
  size_t line_start = head_block.find("\r\n");
  while (line_start != std::string_view::npos &&
         line_start + 2 < head_block.size()) {
    line_start += 2;
    size_t line_end = head_block.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = head_block.size();
    std::string_view line = head_block.substr(line_start, line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string name(Trim(line.substr(0, colon)));
      for (char& c : name) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      }
      result.headers.emplace_back(std::move(name),
                                  std::string(Trim(line.substr(colon + 1))));
    }
    line_start = line_end;
  }
  result.body = raw.substr(header_end + 4);
  return result;
}

}  // namespace shoal::serve
