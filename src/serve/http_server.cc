#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace shoal::serve {

namespace {

// epoll_event.data.ptr tags for the two non-connection registrations.
void* const kListenTag = nullptr;
void* const kWakeTag = reinterpret_cast<void*>(1);

// Responses buffered past this stop further pipelined parsing until the
// socket drains — backpressure against a peer that writes requests but
// never reads.
constexpr size_t kMaxBufferedOut = 4 << 20;

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RenderResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = util::StringPrintf(
      "HTTP/1.1 %d %.*s\r\n", response.status,
      static_cast<int>(HttpReasonPhrase(response.status).size()),
      HttpReasonPhrase(response.status).data());
  out += "Content-Type: " + response.content_type + "\r\n";
  out += util::StringPrintf("Content-Length: %zu\r\n", response.body.size());
  if (!response.request_id.empty()) {
    out += "X-Request-Id: " + response.request_id + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string RenderError(int status, const char* message, bool keep_alive) {
  HttpResponse response;
  response.status = status;
  response.body = std::string("{\"error\": \"") + message + "\"}\n";
  return RenderResponse(response, keep_alive);
}

// Case-insensitive ASCII compare for header names / token values.
bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

struct ParsedHead {
  std::string method;
  std::string target;
  std::string request_id;  // sanitized X-Request-Id, or empty
  bool http11 = false;
  bool keep_alive = true;
  uint64_t content_length = 0;
  bool ok = false;
};

ParsedHead ParseHead(std::string_view head) {
  ParsedHead parsed;
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) return parsed;
  std::string_view request_line = head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos) return parsed;
  const size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return parsed;
  parsed.method = std::string(request_line.substr(0, sp1));
  parsed.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  std::string_view version = request_line.substr(sp2 + 1);
  parsed.http11 = version == "HTTP/1.1";
  if (!parsed.http11 && version != "HTTP/1.0") return parsed;
  parsed.keep_alive = parsed.http11;  // HTTP/1.0 defaults to close

  std::string_view rest = head.substr(line_end + 2);
  while (!rest.empty()) {
    const size_t eol = rest.find("\r\n");
    if (eol == std::string_view::npos) break;
    std::string_view line = rest.substr(0, eol);
    rest.remove_prefix(eol + 2);
    if (line.empty()) break;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view name = Trim(line.substr(0, colon));
    std::string_view value = Trim(line.substr(colon + 1));
    if (EqualsIgnoreCase(name, "connection")) {
      if (EqualsIgnoreCase(value, "close")) parsed.keep_alive = false;
      if (EqualsIgnoreCase(value, "keep-alive")) parsed.keep_alive = true;
    } else if (EqualsIgnoreCase(name, "x-request-id")) {
      parsed.request_id = SanitizeRequestId(value);
    } else if (EqualsIgnoreCase(name, "content-length")) {
      uint64_t length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return parsed;  // ok stays false
        length = length * 10 + static_cast<uint64_t>(c - '0');
        if (length > (1ull << 40)) return parsed;
      }
      parsed.content_length = length;
    }
  }
  parsed.ok = !parsed.method.empty() && !parsed.target.empty();
  return parsed;
}

}  // namespace

// Nonblocking per-socket state machine. Owned by exactly one reactor;
// no other thread ever touches it, so there is no locking anywhere on
// the connection path.
struct HttpServer::Connection {
  int fd = -1;
  std::string in;        // unparsed request bytes
  std::string out;       // rendered, not-yet-flushed response bytes
  size_t out_sent = 0;   // prefix of `out` already on the wire
  // A parsed head whose body is still being discarded from the stream.
  ParsedHead pending;
  uint64_t body_remaining = 0;
  bool body_too_large = false;
  bool have_pending = false;
  bool close_after_flush = false;
  bool want_write = false;  // EPOLLOUT armed
  std::chrono::steady_clock::time_point last_activity;
};

struct HttpServer::Reactor {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  // fd -> connection, owned. Only the reactor thread reads or writes.
  std::unordered_map<int, Connection*> conns;
};

HttpServer::HttpServer(ServingService* service, HttpServerOptions options)
    : service_(service), options_(std::move(options)) {
  SHOAL_CHECK(service_ != nullptr) << "HttpServer needs a service";
  connections_gauge_ =
      &obs::MetricsRegistry::Global().GetGauge("serve.connections.open");
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::UpdateConnectionGauge(int64_t delta) {
  const int64_t now = open_connections_.fetch_add(delta,
                                                  std::memory_order_relaxed) +
                      delta;
  if (obs::MetricsRegistry::Global().enabled()) {
    connections_gauge_->Set(static_cast<double>(now));
  }
}

util::Status HttpServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  SHOAL_CHECK(listen_fd_ < 0 && reactors_.empty())
      << "HttpServer::Start called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(util::StringPrintf(
        "socket() failed: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::InvalidArgument("cannot parse host " +
                                         options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string message = util::StringPrintf(
        "cannot bind %s:%u: %s", options_.host.c_str(),
        static_cast<unsigned>(options_.port), std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(message);
  }
  if (::listen(listen_fd_, static_cast<int>(options_.listen_backlog)) != 0) {
    const std::string message = util::StringPrintf(
        "listen() failed: %s", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(message);
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  size_t num_reactors = options_.threads > 0
                            ? options_.threads
                            : std::thread::hardware_concurrency();
  if (num_reactors == 0) num_reactors = 1;

  stopping_.store(false, std::memory_order_relaxed);
  auto teardown = [this] {
    for (auto& reactor : reactors_) {
      if (reactor->epoll_fd >= 0) ::close(reactor->epoll_fd);
      if (reactor->wake_fd >= 0) ::close(reactor->wake_fd);
    }
    reactors_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
  };
  for (size_t r = 0; r < num_reactors; ++r) {
    auto reactor = std::make_unique<Reactor>();
    reactor->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    reactor->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (reactor->epoll_fd < 0 || reactor->wake_fd < 0) {
      const std::string message = util::StringPrintf(
          "epoll/eventfd setup failed: %s", std::strerror(errno));
      if (reactor->epoll_fd >= 0) ::close(reactor->epoll_fd);
      if (reactor->wake_fd >= 0) ::close(reactor->wake_fd);
      teardown();
      return util::Status::IoError(message);
    }
    epoll_event wake_event;
    std::memset(&wake_event, 0, sizeof(wake_event));
    wake_event.events = EPOLLIN;
    wake_event.data.ptr = kWakeTag;
    ::epoll_ctl(reactor->epoll_fd, EPOLL_CTL_ADD, reactor->wake_fd,
                &wake_event);
    // All reactors watch the listen socket; EPOLLEXCLUSIVE (kernel
    // >= 4.5) wakes one reactor per pending accept instead of all of
    // them. Older kernels fall back to a shared level-triggered watch —
    // correct, just noisier (losers of the accept race see EAGAIN).
    epoll_event listen_event;
    std::memset(&listen_event, 0, sizeof(listen_event));
    listen_event.events = EPOLLIN | EPOLLEXCLUSIVE;
    listen_event.data.ptr = kListenTag;
    if (::epoll_ctl(reactor->epoll_fd, EPOLL_CTL_ADD, listen_fd_,
                    &listen_event) != 0) {
      listen_event.events = EPOLLIN;
      if (::epoll_ctl(reactor->epoll_fd, EPOLL_CTL_ADD, listen_fd_,
                      &listen_event) != 0) {
        const std::string message = util::StringPrintf(
            "epoll_ctl(listen) failed: %s", std::strerror(errno));
        ::close(reactor->epoll_fd);
        ::close(reactor->wake_fd);
        teardown();
        return util::Status::IoError(message);
      }
    }
    reactors_.push_back(std::move(reactor));
  }
  for (auto& reactor : reactors_) {
    Reactor* raw = reactor.get();
    reactor->thread = std::thread([this, raw] { ReactorLoop(raw); });
  }
  SHOAL_LOG(kInfo) << "serving on http://" << options_.host << ":" << port_
                   << " with " << reactors_.size() << " epoll reactors";
  return util::Status::OK();
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (reactors_.empty() && listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& reactor : reactors_) {
    const uint64_t one = 1;
    // Kick the reactor out of epoll_wait so it notices stopping_.
    [[maybe_unused]] ssize_t n =
        ::write(reactor->wake_fd, &one, sizeof(one));
  }
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
    if (reactor->epoll_fd >= 0) ::close(reactor->epoll_fd);
    if (reactor->wake_fd >= 0) ::close(reactor->wake_fd);
  }
  reactors_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::ReactorLoop(Reactor* reactor) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  auto drain_deadline = std::chrono::steady_clock::time_point::max();
  while (true) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping) {
      const auto now = std::chrono::steady_clock::now();
      if (drain_deadline == std::chrono::steady_clock::time_point::max()) {
        drain_deadline =
            now + std::chrono::milliseconds(options_.drain_timeout_ms);
      }
      // Connections with nothing left to flush close immediately; the
      // rest get until the drain deadline to finish their responses.
      std::vector<Connection*> victims;
      for (auto& [fd, conn] : reactor->conns) {
        if (conn->out_sent >= conn->out.size() || now >= drain_deadline) {
          victims.push_back(conn);
        }
      }
      for (Connection* conn : victims) CloseConnection(reactor, conn);
      if (reactor->conns.empty() || now >= drain_deadline) break;
    }
    const int timeout_ms = stopping ? 10 : 500;
    const int n =
        ::epoll_wait(reactor->epoll_fd, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd is gone; nothing sensible left to do
    }
    for (int i = 0; i < n; ++i) {
      void* tag = events[i].data.ptr;
      if (tag == kListenTag) {
        AcceptReady(reactor);
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained;
        while (::read(reactor->wake_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto* conn = static_cast<Connection*>(tag);
      const int fd = conn->fd;
      const uint32_t mask = events[i].events;
      if ((mask & EPOLLERR) != 0 ||
          ((mask & EPOLLHUP) != 0 && (mask & EPOLLIN) == 0)) {
        CloseConnection(reactor, conn);
        continue;
      }
      if ((mask & EPOLLIN) != 0) ReadReady(reactor, conn);
      // ReadReady may have closed (and freed) the connection; only
      // touch it again if the fd still maps to the same object. No fd
      // churn happens between the close and this check, so the pair
      // (fd, pointer) cannot be recycled within this iteration.
      auto it = reactor->conns.find(fd);
      if (it == reactor->conns.end() || it->second != conn) continue;
      if ((mask & EPOLLOUT) != 0) FlushOutput(reactor, conn);
    }
    if (!stopping) SweepIdle(reactor);
  }
  for (auto& [fd, conn] : reactor->conns) {
    ::close(conn->fd);
    delete conn;
    UpdateConnectionGauge(-1);
  }
  reactor->conns.clear();
}

void HttpServer::AcceptReady(Reactor* reactor) {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (or a racing reactor won the accept)
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto* conn = new Connection;
    conn->fd = fd;
    conn->last_activity = std::chrono::steady_clock::now();
    epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN;
    event.data.ptr = conn;
    if (::epoll_ctl(reactor->epoll_fd, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      delete conn;
      continue;
    }
    reactor->conns[fd] = conn;
    UpdateConnectionGauge(+1);
  }
}

void HttpServer::ReadReady(Reactor* reactor, Connection* conn) {
  char chunk[16384];
  while (!conn->close_after_flush &&
         conn->out.size() - conn->out_sent < kMaxBufferedOut) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->in.append(chunk, static_cast<size_t>(n));
      conn->last_activity = std::chrono::steady_clock::now();
      ProcessInput(conn);
      continue;
    }
    if (n == 0) {
      // Peer sent EOF: no more requests are coming. Flush whatever is
      // queued, then close.
      conn->close_after_flush = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(reactor, conn);
    return;
  }
  FlushOutput(reactor, conn);
}

void HttpServer::ProcessInput(Connection* conn) {
  while (!conn->close_after_flush) {
    if (conn->have_pending) {
      // Discard (and ignore) the request body so the next pipelined
      // request starts at a message boundary.
      const size_t take =
          conn->body_remaining < conn->in.size()
              ? static_cast<size_t>(conn->body_remaining)
              : conn->in.size();
      conn->in.erase(0, take);
      conn->body_remaining -= take;
      if (conn->body_remaining > 0) return;  // need more bytes
      conn->have_pending = false;
      DispatchRequest(conn);
      continue;
    }
    const size_t found = conn->in.find("\r\n\r\n");
    if (found == std::string::npos) {
      if (conn->in.size() > options_.max_header_bytes) {
        conn->out += RenderError(431, "headers too large",
                                 /*keep_alive=*/false);
        conn->close_after_flush = true;
      }
      return;
    }
    const size_t header_end = found + 4;
    conn->pending = ParseHead(std::string_view(conn->in).substr(0, header_end));
    conn->in.erase(0, header_end);
    if (!conn->pending.ok) {
      conn->out += RenderError(400, "malformed request",
                               /*keep_alive=*/false);
      conn->close_after_flush = true;
      return;
    }
    conn->body_too_large =
        conn->pending.content_length > options_.max_body_bytes;
    conn->body_remaining = conn->pending.content_length;
    conn->have_pending = true;
  }
}

void HttpServer::DispatchRequest(Connection* conn) {
  const ParsedHead& head = conn->pending;
  HttpResponse response;
  bool keep_alive = head.keep_alive;
  if (conn->body_too_large) {
    response.status = 400;
    response.body = "{\"error\": \"request body too large\"}\n";
    keep_alive = false;
  } else {
    HttpRequest request = ParseRequestTarget(head.method, head.target);
    request.request_id = head.request_id;
    response = service_->Handle(request);
  }
  if (stopping_.load(std::memory_order_acquire)) keep_alive = false;
  if (head.method == "HEAD") response.body.clear();
  conn->out += RenderResponse(response, keep_alive);
  if (!keep_alive) conn->close_after_flush = true;
}

void HttpServer::SetWantWrite(Reactor* reactor, Connection* conn,
                              bool want) {
  if (conn->want_write == want) return;
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  event.data.ptr = conn;
  ::epoll_ctl(reactor->epoll_fd, EPOLL_CTL_MOD, conn->fd, &event);
  conn->want_write = want;
}

void HttpServer::FlushOutput(Reactor* reactor, Connection* conn) {
  while (conn->out_sent < conn->out.size()) {
    size_t len = conn->out.size() - conn->out_sent;
    if (options_.max_write_chunk > 0 && len > options_.max_write_chunk) {
      len = options_.max_write_chunk;
    }
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_sent,
                             len, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_sent += static_cast<size_t>(n);
      conn->last_activity = std::chrono::steady_clock::now();
      if (options_.max_write_chunk > 0 &&
          conn->out_sent < conn->out.size()) {
        // Test hook: yield between chunks so the EPOLLOUT resume path
        // runs even against a fast local peer.
        SetWantWrite(reactor, conn, true);
        return;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SetWantWrite(reactor, conn, true);
      return;
    }
    CloseConnection(reactor, conn);  // peer is gone
    return;
  }
  conn->out.clear();
  conn->out_sent = 0;
  SetWantWrite(reactor, conn, false);
  if (conn->close_after_flush) {
    CloseConnection(reactor, conn);
    return;
  }
  // Requests may have parked in `in` while backpressure paused parsing.
  if (!conn->in.empty()) {
    ProcessInput(conn);
    if (conn->out_sent < conn->out.size()) FlushOutput(reactor, conn);
  }
}

void HttpServer::CloseConnection(Reactor* reactor, Connection* conn) {
  reactor->conns.erase(conn->fd);
  ::close(conn->fd);  // also deregisters from epoll
  delete conn;
  UpdateConnectionGauge(-1);
}

void HttpServer::SweepIdle(Reactor* reactor) {
  if (options_.idle_timeout_sec <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::seconds(options_.idle_timeout_sec);
  std::vector<Connection*> victims;
  for (auto& [fd, conn] : reactor->conns) {
    if (now - conn->last_activity > limit) victims.push_back(conn);
  }
  for (Connection* conn : victims) CloseConnection(reactor, conn);
}

const std::string* HttpFetchResult::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

util::Result<HttpFetchResult> HttpFetch(
    const std::string& host, uint16_t port, const std::string& target,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::IoError(util::StringPrintf(
        "socket() failed: %s", std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("cannot parse host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    bool connected = false;
    if (errno == EINTR) {
      // The handshake keeps running after the interrupted connect; wait
      // for writability and read the outcome from SO_ERROR.
      pollfd waiter{fd, POLLOUT, 0};
      while (::poll(&waiter, 1, -1) < 0 && errno == EINTR) {
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) == 0 &&
          err == 0) {
        connected = true;
      } else {
        errno = err != 0 ? err : errno;
      }
    }
    if (!connected) {
      const std::string message = util::StringPrintf(
          "cannot connect to %s:%u: %s", host.c_str(),
          static_cast<unsigned>(port), std::strerror(errno));
      ::close(fd);
      return util::Status::IoError(message);
    }
  }
  std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "\r\n";
  if (!SendAll(fd, request)) {
    ::close(fd);
    return util::Status::IoError("short write sending request");
  }
  std::string raw;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return util::Status::IoError(util::StringPrintf(
          "recv() failed: %s", std::strerror(errno)));
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos || raw.size() < 12 ||
      raw.compare(0, 5, "HTTP/") != 0) {
    return util::Status::IoError("malformed HTTP response");
  }
  HttpFetchResult result;
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return util::Status::IoError("malformed HTTP status line");
  }
  result.status = 0;
  for (size_t i = sp + 1; i < raw.size() && raw[i] >= '0' && raw[i] <= '9';
       ++i) {
    result.status = result.status * 10 + (raw[i] - '0');
  }
  if (result.status < 100 || result.status > 599) {
    return util::Status::IoError("malformed HTTP status code");
  }
  // Collect response headers (lower-cased names) for callers that check
  // propagation, e.g. the X-Request-Id echo.
  std::string_view head_block(raw.data(), header_end);
  size_t line_start = head_block.find("\r\n");
  while (line_start != std::string_view::npos &&
         line_start + 2 < head_block.size()) {
    line_start += 2;
    size_t line_end = head_block.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = head_block.size();
    std::string_view line = head_block.substr(line_start, line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string name(Trim(line.substr(0, colon)));
      for (char& c : name) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      }
      result.headers.emplace_back(std::move(name),
                                  std::string(Trim(line.substr(colon + 1))));
    }
    line_start = line_end;
  }
  result.body = raw.substr(header_end + 4);
  return result;
}

}  // namespace shoal::serve
