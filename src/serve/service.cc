#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <utility>

#include "obs/trace.h"
#include "text/normalize.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace shoal::serve {

namespace {

// Dense endpoint ids for metric bookkeeping.
enum Endpoint : int {
  kQuery = 0,
  kTopic,
  kItem,
  kHealthz,
  kReadyz,
  kMetrics,
  kReload,
  kOther,
  kNumEndpoints,
};

const char* EndpointName(int endpoint) {
  switch (endpoint) {
    case kQuery: return "query";
    case kTopic: return "topic";
    case kItem: return "item";
    case kHealthz: return "healthz";
    case kReadyz: return "readyz";
    case kMetrics: return "metrics";
    case kReload: return "reload";
  }
  return "other";
}

int EndpointOf(const std::string& path) {
  if (path == "/v1/query") return kQuery;
  if (util::StartsWith(path, "/v1/topic/")) return kTopic;
  if (util::StartsWith(path, "/v1/item/")) return kItem;
  if (path == "/healthz") return kHealthz;
  if (path == "/readyz") return kReadyz;
  if (path == "/metrics") return kMetrics;
  if (path == "/admin/reload") return kReload;
  return kOther;
}

int64_t UnixMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

HttpResponse JsonResponse(int status, const util::JsonValue& value) {
  HttpResponse response;
  response.status = status;
  response.body = value.Dump(2);
  response.body.push_back('\n');
  return response;
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  util::JsonValue body = util::JsonValue::Object();
  body.Set("error", util::JsonValue::Str(message));
  return JsonResponse(status, body);
}

util::JsonValue TopicIdOrNull(uint32_t topic) {
  if (topic == core::kNoTopic) return util::JsonValue::Null();
  return util::JsonValue::Number(static_cast<double>(topic));
}

util::JsonValue DescriptionJson(const ServingIndex& index, uint32_t t) {
  util::JsonValue description = util::JsonValue::Array();
  for (size_t i = 0; i < index.num_descriptions(t); ++i) {
    description.Append(
        util::JsonValue::Str(std::string(index.description(t, i))));
  }
  return description;
}

util::JsonValue PathJson(const ServingIndex& index, uint32_t t) {
  util::JsonValue path = util::JsonValue::Array();
  for (uint32_t node : index.PathToRoot(t)) {
    path.Append(util::JsonValue::Number(static_cast<double>(node)));
  }
  return path;
}

util::JsonValue TopicSummaryJson(const ServingIndex& index, uint32_t t) {
  util::JsonValue summary = util::JsonValue::Object();
  summary.Set("topic", util::JsonValue::Number(static_cast<double>(t)));
  summary.Set("level",
              util::JsonValue::Number(static_cast<double>(index.level(t))));
  summary.Set("size", util::JsonValue::Number(
                          static_cast<double>(index.topic_size(t))));
  summary.Set("description", DescriptionJson(index, t));
  return summary;
}

// Parses a non-negative decimal id (the <id> path suffix). Rejects
// empty, non-digit, and overflowing text.
std::optional<uint32_t> ParseId(const std::string& text) {
  if (text.empty() || text.size() > 9) return std::nullopt;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return static_cast<uint32_t>(value);
}

}  // namespace

ServingService::ServingService(std::shared_ptr<const ServingIndex> index,
                               ServiceOptions options)
    : options_(std::move(options)),
      start_time_(std::chrono::steady_clock::now()),
      index_(std::move(index)) {
  static_assert(kNumEndpoints == Endpoint::kNumEndpoints,
                "service.h endpoint count is out of date");
  if (options_.cache_entries > 0) {
    cache_ = std::make_unique<ShardedLruCache>(options_.cache_entries,
                                               options_.cache_shards);
  }
  // Resolve every metric handle once; the request path records through
  // these pointers without ever touching the registry lock.
  auto& registry = obs::MetricsRegistry::Global();
  for (int e = 0; e < kNumEndpoints; ++e) {
    const std::string prefix = std::string("serve.") + EndpointName(e);
    metrics_.endpoints[e].requests =
        &registry.GetCounter(prefix + ".requests");
    metrics_.endpoints[e].errors = &registry.GetCounter(prefix + ".errors");
    metrics_.endpoints[e].latency =
        &registry.GetHistogram(prefix + ".latency_us");
  }
  metrics_.total = &registry.GetCounter("serve.requests.total");
  metrics_.total_errors = &registry.GetCounter("serve.requests.errors");
  metrics_.slow = &registry.GetCounter("serve.requests.slow");
  metrics_.cache_hits = &registry.GetCounter("serve.cache.hits");
  metrics_.cache_misses = &registry.GetCounter("serve.cache.misses");
  metrics_.reload_successes = &registry.GetCounter("serve.reload.successes");
  metrics_.reload_failures = &registry.GetCounter("serve.reload.failures");
  metrics_.index_swaps = &registry.GetCounter("serve.index.swaps");
  metrics_.index_version = &registry.GetGauge("serve.index.version");
  metrics_.index_epoch = &registry.GetGauge("serve.index.epoch");
  metrics_.index_resident_bytes =
      &registry.GetGauge("serve.index.resident_bytes");
  metrics_.index_staleness_sec =
      &registry.GetGauge("serve.index.staleness_sec");
  const std::shared_ptr<const ServingIndex> live = Acquire();
  if (live != nullptr) index_install_ms_.store(UnixMillis());
  if (registry.enabled()) {
    if (live != nullptr) {
      metrics_.index_version->Set(static_cast<double>(live->version()));
      metrics_.index_resident_bytes->Set(
          static_cast<double>(live->resident_bytes()));
      metrics_.index_staleness_sec->Set(0.0);
    }
    metrics_.index_epoch->Set(static_cast<double>(index_.epoch()));
  }
}

std::shared_ptr<const ServingIndex> ServingService::Acquire() const {
  return index_.Read();
}

bool ServingService::ready() const { return Acquire() != nullptr; }

void ServingService::RecordMetrics(int endpoint, int status, double micros,
                                   bool slow) {
  if (!obs::MetricsRegistry::Global().enabled()) return;
  const EndpointMetrics& per_endpoint = metrics_.endpoints[endpoint];
  per_endpoint.requests->Increment();
  metrics_.total->Increment();
  if (status >= 400) {
    per_endpoint.errors->Increment();
    metrics_.total_errors->Increment();
  }
  if (slow) metrics_.slow->Increment();
  per_endpoint.latency->Record(micros);
}

void ServingService::RecordReload(bool ok, const std::string& detail) {
  std::lock_guard<std::mutex> lock(reload_status_mu_);
  last_reload_.attempted = true;
  last_reload_.ok = ok;
  last_reload_.detail = detail;
  last_reload_.unix_ms = UnixMillis();
}

void ServingService::SwapIndex(std::shared_ptr<const ServingIndex> index) {
  SHOAL_CHECK(index != nullptr) << "cannot swap in a null index";
  const uint64_t version = index->version();
  const size_t resident_bytes = index->resident_bytes();
  index_.Write(std::move(index));
  index_install_ms_.store(UnixMillis());
  // Cached bodies describe the old version; drop them after the swap so
  // a request never mixes versions (it either hit the old cache before
  // the swap or recomputes against the new index).
  if (cache_ != nullptr) cache_->Clear();
  if (obs::MetricsRegistry::Global().enabled()) {
    metrics_.index_version->Set(static_cast<double>(version));
    metrics_.index_epoch->Set(static_cast<double>(index_.epoch()));
    metrics_.index_resident_bytes->Set(static_cast<double>(resident_bytes));
    metrics_.index_staleness_sec->Set(0.0);
    metrics_.index_swaps->Increment();
  }
}

util::Status ServingService::Reload() {
  // One reload at a time; request traffic is never blocked by this lock.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  const bool enabled = obs::MetricsRegistry::Global().enabled();
  if (options_.index_path.empty()) {
    if (enabled) metrics_.reload_failures->Increment();
    util::Status status = util::Status::FailedPrecondition(
        "no index path configured for reload");
    RecordReload(false, status.ToString());
    return status;
  }
  auto loaded =
      ReadServingIndexFile(options_.index_path, options_.load_options);
  if (!loaded.ok()) {
    // The old index keeps serving; the caller sees exactly why the new
    // one was rejected.
    if (enabled) metrics_.reload_failures->Increment();
    RecordReload(false, loaded.status().ToString());
    return loaded.status();
  }
  SwapIndex(std::make_shared<const ServingIndex>(std::move(loaded).value()));
  if (enabled) metrics_.reload_successes->Increment();
  RecordReload(true, "ok");
  return util::Status::OK();
}

HttpResponse ServingService::Handle(const HttpRequest& request) {
  util::Stopwatch stopwatch;
  const std::shared_ptr<const ServingIndex> index = Acquire();
  const int endpoint = EndpointOf(request.path);
  obs::ScopedSpan span("serve.request");
  span.AddArg("endpoint", static_cast<double>(endpoint));

  const bool metrics_on = obs::MetricsRegistry::Global().enabled();
  const bool cacheable = cache_ != nullptr && request.method == "GET" &&
                         util::StartsWith(request.path, "/v1/") &&
                         index != nullptr;
  HttpResponse response;
  bool cache_hit = false;
  std::string cached_body;
  if (cacheable && cache_->Get(request.target, &cached_body)) {
    if (metrics_on) metrics_.cache_hits->Increment();
    cache_hit = true;
    response.body = std::move(cached_body);
  } else {
    if (cacheable && metrics_on) metrics_.cache_misses->Increment();
    response = Dispatch(request, index.get());
    if (cacheable && response.status == 200) {
      cache_->Put(request.target, response.body);
    }
  }
  response.request_id = request.request_id.empty()
                            ? GenerateRequestId()
                            : request.request_id;

  const double micros = stopwatch.ElapsedSeconds() * 1e6;
  const bool slow =
      options_.slow_request_us > 0.0 && micros > options_.slow_request_us;
  span.AddArg("status", static_cast<double>(response.status));
  span.AddArg("cache_hit", cache_hit ? 1.0 : 0.0);
  RecordMetrics(endpoint, response.status, micros, slow);

  if (options_.access_log != nullptr || (slow && options_.slow_log)) {
    AccessLogEntry entry;
    entry.unix_ms = UnixMillis();
    entry.request_id = response.request_id;
    entry.method = request.method;
    entry.target = request.target;
    entry.endpoint = EndpointName(endpoint);
    entry.status = response.status;
    entry.latency_us = micros;
    entry.cache_hit = cache_hit;
    entry.index_version = index != nullptr ? index->version() : 0;
    entry.bytes = response.body.size();
    if (options_.access_log != nullptr) options_.access_log->Write(entry);
    if (slow && options_.slow_log != nullptr) options_.slow_log->Write(entry);
  }
  return response;
}

HttpResponse ServingService::Dispatch(const HttpRequest& request,
                                      const ServingIndex* index) {
  const int which = EndpointOf(request.path);
  if (which == kReload) {
    if (request.method != "GET" && request.method != "POST") {
      return ErrorResponse(405, "use GET or POST for /admin/reload");
    }
    return HandleReload();
  }
  if (request.method != "GET") {
    return ErrorResponse(405, "only GET is supported");
  }
  switch (which) {
    case kHealthz:
      return HandleHealthz(index);
    case kReadyz:
      return HandleReadyz(index);
    case kMetrics:
      return HandleMetrics(request);
  }
  if (index == nullptr) {
    // Data endpoints cannot answer before the first index loads; 503
    // tells load balancers to retry rather than cache a 404.
    return ErrorResponse(503, "index not loaded yet");
  }
  switch (which) {
    case kQuery:
      return HandleQuery(request, *index);
    case kTopic:
      return HandleTopic(request.path.substr(10), *index);  // "/v1/topic/"
    case kItem:
      return HandleItem(request.path.substr(9), *index);  // "/v1/item/"
  }
  return ErrorResponse(404, "no such endpoint: " + request.path);
}

HttpResponse ServingService::HandleQuery(const HttpRequest& request,
                                         const ServingIndex& index) {
  const std::string* q = request.Param("q");
  if (q == nullptr) {
    return ErrorResponse(400, "missing required parameter q");
  }
  size_t k = options_.default_k;
  if (const std::string* k_text = request.Param("k")) {
    auto parsed = ParseId(*k_text);
    if (!parsed.has_value() || *parsed == 0) {
      return ErrorResponse(400, "k must be a positive integer");
    }
    k = std::min<size_t>(*parsed, options_.max_k);
  }

  obs::ScopedSpan lookup_span("serve.lookup");
  const ServingIndex::Lookup lookup = index.Find(*q);
  lookup_span.AddArg("found", lookup.query != kNoQuery ? 1.0 : 0.0);
  lookup_span.End();
  util::JsonValue body = util::JsonValue::Object();
  body.Set("query", util::JsonValue::Str(*q));
  body.Set("normalized", util::JsonValue::Str(text::NormalizeQuery(*q)));
  const char* match = "none";
  if (lookup.match == ServingIndex::Lookup::Match::kExact) match = "exact";
  if (lookup.match == ServingIndex::Lookup::Match::kNormalized) {
    match = "normalized";
  }
  body.Set("match", util::JsonValue::Str(match));
  body.Set("k", util::JsonValue::Number(static_cast<double>(k)));
  body.Set("index_version",
           util::JsonValue::Number(static_cast<double>(index.version())));

  util::JsonValue results = util::JsonValue::Array();
  if (lookup.query != kNoQuery) {
    const ServingIndex::PostingSpan postings = index.postings(lookup.query);
    for (size_t i = 0; i < postings.size() && i < k; ++i) {
      util::JsonValue hit = TopicSummaryJson(index, postings.topic(i));
      hit.Set("score", util::JsonValue::Number(postings.score(i)));
      hit.Set("path", PathJson(index, postings.topic(i)));
      results.Append(std::move(hit));
    }
  }
  body.Set("results", std::move(results));
  return JsonResponse(200, body);
}

HttpResponse ServingService::HandleTopic(const std::string& suffix,
                                         const ServingIndex& index) {
  auto id = ParseId(suffix);
  if (!id.has_value()) {
    return ErrorResponse(400, "topic id must be a non-negative integer");
  }
  if (*id >= index.num_topics()) {
    return ErrorResponse(404, util::StringPrintf(
                                  "topic %u does not exist (index has %zu)",
                                  *id, index.num_topics()));
  }
  util::JsonValue body = TopicSummaryJson(index, *id);
  body.Set("parent", TopicIdOrNull(index.parent(*id)));
  body.Set("path", PathJson(index, *id));
  util::JsonValue children = util::JsonValue::Array();
  auto [first, last] = index.children(*id);
  for (const uint32_t* child = first; child != last; ++child) {
    children.Append(TopicSummaryJson(index, *child));
  }
  body.Set("children", std::move(children));
  body.Set("index_version",
           util::JsonValue::Number(static_cast<double>(index.version())));
  return JsonResponse(200, body);
}

HttpResponse ServingService::HandleItem(const std::string& suffix,
                                        const ServingIndex& index) {
  auto id = ParseId(suffix);
  if (!id.has_value()) {
    return ErrorResponse(400, "item id must be a non-negative integer");
  }
  if (*id >= index.num_entities()) {
    return ErrorResponse(404, util::StringPrintf(
                                  "item %u does not exist (index has %zu)",
                                  *id, index.num_entities()));
  }
  const uint32_t topic = index.entity_topic(*id);
  util::JsonValue body = util::JsonValue::Object();
  body.Set("item", util::JsonValue::Number(static_cast<double>(*id)));
  const uint32_t category = index.entity_category(*id);
  body.Set("category", category == kNoCategoryId
                           ? util::JsonValue::Null()
                           : util::JsonValue::Number(
                                 static_cast<double>(category)));
  body.Set("topic", TopicIdOrNull(topic));
  if (topic != core::kNoTopic) {
    const std::vector<uint32_t> path = index.PathToRoot(topic);
    body.Set("root_topic", util::JsonValue::Number(
                               static_cast<double>(path.front())));
    util::JsonValue path_json = util::JsonValue::Array();
    for (uint32_t node : path) {
      path_json.Append(util::JsonValue::Number(static_cast<double>(node)));
    }
    body.Set("path", std::move(path_json));
    body.Set("description", DescriptionJson(index, topic));
  } else {
    body.Set("root_topic", util::JsonValue::Null());
    body.Set("path", util::JsonValue::Array());
    body.Set("description", util::JsonValue::Array());
  }
  body.Set("index_version",
           util::JsonValue::Number(static_cast<double>(index.version())));
  return JsonResponse(200, body);
}

HttpResponse ServingService::HandleHealthz(const ServingIndex* index) {
  // Liveness: answers 200 as soon as the process serves requests, even
  // before the first index loads (readiness is /readyz's job).
  util::JsonValue body = util::JsonValue::Object();
  body.Set("status", util::JsonValue::Str("ok"));
  if (index == nullptr) {
    body.Set("index_version", util::JsonValue::Null());
    return JsonResponse(200, body);
  }
  body.Set("index_version",
           util::JsonValue::Number(static_cast<double>(index->version())));
  body.Set("topics", util::JsonValue::Number(
                         static_cast<double>(index->num_topics())));
  body.Set("entities", util::JsonValue::Number(
                           static_cast<double>(index->num_entities())));
  body.Set("queries", util::JsonValue::Number(
                          static_cast<double>(index->num_queries())));
  return JsonResponse(200, body);
}

HttpResponse ServingService::HandleReadyz(const ServingIndex* index) {
  const double uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  util::JsonValue body = util::JsonValue::Object();
  body.Set("status",
           util::JsonValue::Str(index != nullptr ? "ready" : "unready"));
  body.Set("index_version",
           index != nullptr
               ? util::JsonValue::Number(static_cast<double>(index->version()))
               : util::JsonValue::Null());
  body.Set("uptime_seconds", util::JsonValue::Number(uptime_seconds));
  body.Set("index_epoch",
           util::JsonValue::Number(static_cast<double>(index_.epoch())));
  // Freshness of the live index: when it was installed here and how
  // long ago that was. "Installed" is this process's swap time — the
  // closest observable proxy for the daemon's publish time without
  // widening the file format.
  const int64_t installed_ms = index_install_ms_.load();
  if (index != nullptr && installed_ms > 0) {
    const double staleness_sec =
        static_cast<double>(UnixMillis() - installed_ms) / 1000.0;
    body.Set("index_installed_unix_ms",
             util::JsonValue::Number(static_cast<double>(installed_ms)));
    body.Set("index_staleness_sec", util::JsonValue::Number(staleness_sec));
    if (obs::MetricsRegistry::Global().enabled()) {
      metrics_.index_staleness_sec->Set(staleness_sec);
    }
  } else {
    body.Set("index_installed_unix_ms", util::JsonValue::Null());
    body.Set("index_staleness_sec", util::JsonValue::Null());
  }
  {
    std::lock_guard<std::mutex> lock(reload_status_mu_);
    if (last_reload_.attempted) {
      util::JsonValue reload = util::JsonValue::Object();
      reload.Set("ok", util::JsonValue::Bool(last_reload_.ok));
      reload.Set("detail", util::JsonValue::Str(last_reload_.detail));
      reload.Set("unix_ms", util::JsonValue::Number(
                                static_cast<double>(last_reload_.unix_ms)));
      body.Set("last_reload", std::move(reload));
    } else {
      body.Set("last_reload", util::JsonValue::Null());
    }
  }
  return JsonResponse(index != nullptr ? 200 : 503, body);
}

HttpResponse ServingService::HandleMetrics(const HttpRequest& request) {
  HttpResponse response;
  const std::string* format = request.Param("format");
  if (format != nullptr && *format == "prometheus") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = obs::MetricsRegistry::Global().RenderPrometheus();
    return response;
  }
  if (format != nullptr && *format != "json") {
    return ErrorResponse(400, "unknown metrics format: " + *format);
  }
  response.body = obs::MetricsRegistry::Global().ToJsonString(2);
  response.body.push_back('\n');
  return response;
}

HttpResponse ServingService::HandleReload() {
  util::Status status = Reload();
  if (!status.ok()) {
    SHOAL_LOG(kWarning) << "reload failed, keeping current index: "
                        << status.ToString();
    return ErrorResponse(500, status.ToString());
  }
  util::JsonValue body = util::JsonValue::Object();
  body.Set("status", util::JsonValue::Str("reloaded"));
  body.Set("index_version", util::JsonValue::Number(
                                static_cast<double>(Acquire()->version())));
  return JsonResponse(200, body);
}

}  // namespace shoal::serve
