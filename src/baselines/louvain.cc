#include "baselines/louvain.h"

#include <unordered_map>

#include "graph/modularity.h"
#include "util/random.h"

namespace shoal::baselines {

namespace {

// Working graph representation for one Louvain level: adjacency with
// self-loop weights (aggregated intra-community weight).
struct LevelGraph {
  std::vector<std::vector<std::pair<uint32_t, double>>> adjacency;
  std::vector<double> self_loop;
  double total_weight = 0.0;  // m: sum of edge weights incl. self loops

  size_t size() const { return adjacency.size(); }
};

LevelGraph FromWeightedGraph(const graph::WeightedGraph& graph) {
  LevelGraph level;
  level.adjacency.resize(graph.num_vertices());
  level.self_loop.assign(graph.num_vertices(), 0.0);
  for (graph::VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (const graph::Edge& e : graph.Neighbors(u)) {
      level.adjacency[u].emplace_back(e.to, e.weight);
    }
  }
  level.total_weight = graph.TotalEdgeWeight();
  return level;
}

// One level of local moving. Returns the community per node and whether
// any move happened.
bool LocalMoving(const LevelGraph& graph, const LouvainOptions& options,
                 util::Rng& rng, std::vector<uint32_t>& community) {
  const size_t n = graph.size();
  community.resize(n);
  for (uint32_t v = 0; v < n; ++v) community[v] = v;

  // Weighted degree (incl. self loops, counted twice as usual).
  std::vector<double> degree(n, 0.0);
  std::vector<double> community_degree(n, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    double d = 2.0 * graph.self_loop[v];
    for (const auto& [to, w] : graph.adjacency[v]) {
      (void)to;
      d += w;
    }
    degree[v] = d;
    community_degree[v] = d;
  }
  const double two_m = 2.0 * graph.total_weight;
  if (two_m <= 0.0) return false;

  std::vector<uint32_t> order(n);
  for (uint32_t v = 0; v < n; ++v) order[v] = v;
  rng.Shuffle(order);

  bool any_move = false;
  for (size_t sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    size_t moves = 0;
    for (uint32_t v : order) {
      const uint32_t old_community = community[v];
      // Weight from v to each neighbouring community.
      std::unordered_map<uint32_t, double> to_community;
      for (const auto& [to, w] : graph.adjacency[v]) {
        to_community[community[to]] += w;
      }
      // Remove v from its community.
      community_degree[old_community] -= degree[v];
      double best_gain = 0.0;
      uint32_t best_community = old_community;
      double old_links = 0.0;
      if (auto it = to_community.find(old_community);
          it != to_community.end()) {
        old_links = it->second;
      }
      for (const auto& [c, links] : to_community) {
        // Gain of joining c relative to staying isolated:
        //   links/m - degree[v]*sum_deg(c)/(2m^2)  (constant factors
        // cancel when comparing communities).
        double gain =
            links - degree[v] * community_degree[c] / two_m;
        double reference =
            old_links - degree[v] * community_degree[old_community] / two_m;
        if (gain - reference > best_gain + 1e-12) {
          best_gain = gain - reference;
          best_community = c;
        }
      }
      community_degree[best_community] += degree[v];
      if (best_community != old_community) {
        community[v] = best_community;
        ++moves;
        any_move = true;
      }
    }
    if (moves == 0) break;
  }
  return any_move;
}

// Aggregates communities into super-nodes.
LevelGraph Aggregate(const LevelGraph& graph,
                     const std::vector<uint32_t>& community,
                     std::vector<uint32_t>& dense_labels) {
  // Densify community ids.
  std::unordered_map<uint32_t, uint32_t> dense;
  dense_labels.resize(graph.size());
  for (size_t v = 0; v < graph.size(); ++v) {
    auto [it, inserted] =
        dense.emplace(community[v], static_cast<uint32_t>(dense.size()));
    (void)inserted;
    dense_labels[v] = it->second;
  }
  LevelGraph next;
  next.adjacency.resize(dense.size());
  next.self_loop.assign(dense.size(), 0.0);
  next.total_weight = graph.total_weight;
  std::vector<std::unordered_map<uint32_t, double>> edges(dense.size());
  for (size_t v = 0; v < graph.size(); ++v) {
    uint32_t cv = dense_labels[v];
    next.self_loop[cv] += graph.self_loop[v];
    for (const auto& [to, w] : graph.adjacency[v]) {
      uint32_t ct = dense_labels[to];
      if (ct == cv) {
        next.self_loop[cv] += w * 0.5;  // each intra edge visited twice
      } else {
        edges[cv][ct] += w;
      }
    }
  }
  for (uint32_t c = 0; c < edges.size(); ++c) {
    for (const auto& [to, w] : edges[c]) {
      next.adjacency[c].emplace_back(to, w);
    }
  }
  return next;
}

}  // namespace

util::Result<LouvainResult> RunLouvain(const graph::WeightedGraph& graph,
                                       const LouvainOptions& options) {
  if (graph.num_vertices() == 0) {
    return util::Status::InvalidArgument("empty graph");
  }
  if (graph.TotalEdgeWeight() <= 0.0) {
    return util::Status::FailedPrecondition(
        "Louvain requires positive total edge weight");
  }

  util::Rng rng(options.seed);
  LevelGraph level = FromWeightedGraph(graph);

  // labels[v] tracks each original vertex's community through levels.
  LouvainResult result;
  result.labels.resize(graph.num_vertices());
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) result.labels[v] = v;

  double previous_modularity = -1.0;
  for (size_t pass = 0; pass < options.max_levels; ++pass) {
    std::vector<uint32_t> community;
    bool moved = LocalMoving(level, options, rng, community);
    if (!moved && pass > 0) break;

    std::vector<uint32_t> dense_labels;
    level = Aggregate(level, community, dense_labels);
    for (auto& label : result.labels) label = dense_labels[label];
    ++result.levels;

    auto q = graph::Modularity(graph, result.labels);
    SHOAL_RETURN_IF_ERROR(q.status());
    if (q.value() - previous_modularity < options.min_modularity_gain) {
      previous_modularity = std::max(previous_modularity, q.value());
      break;
    }
    previous_modularity = q.value();
    if (!moved) break;
  }
  result.modularity = previous_modularity;
  std::unordered_map<uint32_t, uint32_t> distinct;
  for (uint32_t label : result.labels) {
    distinct.emplace(label, static_cast<uint32_t>(distinct.size()));
  }
  for (auto& label : result.labels) label = distinct.at(label);
  result.num_communities = distinct.size();
  return result;
}

}  // namespace shoal::baselines
