#include "baselines/taxogen_lite.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace shoal::baselines {

namespace {

void NormalizeRow(std::vector<float>& v) {
  double norm = 0.0;
  for (float x : v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  if (norm == 0.0) return;
  float inv = static_cast<float>(1.0 / norm);
  for (float& x : v) x *= inv;
}

float DotVec(const std::vector<float>& a, const std::vector<float>& b) {
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

// Spherical k-means over the subset `members`; returns a cluster id in
// [0, k_eff) per member. k-means++-style seeding on cosine distance.
std::vector<uint32_t> SphericalKMeans(
    const std::vector<std::vector<float>>& data,
    const std::vector<uint32_t>& members, size_t k, size_t iterations,
    util::Rng& rng) {
  const size_t n = members.size();
  k = std::min(k, n);
  std::vector<uint32_t> assignment(n, 0);
  if (k <= 1 || n == 0) return assignment;
  const size_t dim = data[members[0]].size();

  // Seeding: first centroid random, then farthest-point heuristic.
  std::vector<std::vector<float>> centroids;
  centroids.push_back(data[members[rng.Uniform(n)]]);
  NormalizeRow(centroids.back());
  std::vector<float> best_sim(n, -2.0f);
  while (centroids.size() < k) {
    size_t farthest = 0;
    float lowest = 2.0f;
    for (size_t i = 0; i < n; ++i) {
      float sim = DotVec(data[members[i]], centroids.back());
      best_sim[i] = std::max(best_sim[i], sim);
      if (best_sim[i] < lowest) {
        lowest = best_sim[i];
        farthest = i;
      }
    }
    centroids.push_back(data[members[farthest]]);
    NormalizeRow(centroids.back());
  }

  for (size_t iter = 0; iter < iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      float best = -2.0f;
      uint32_t arg = 0;
      for (uint32_t c = 0; c < centroids.size(); ++c) {
        float sim = DotVec(data[members[i]], centroids[c]);
        if (sim > best) {
          best = sim;
          arg = c;
        }
      }
      if (assignment[i] != arg) {
        assignment[i] = arg;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    for (auto& c : centroids) std::fill(c.begin(), c.end(), 0.0f);
    for (size_t i = 0; i < n; ++i) {
      const auto& row = data[members[i]];
      auto& centroid = centroids[assignment[i]];
      for (size_t d = 0; d < dim; ++d) centroid[d] += row[d];
    }
    for (auto& c : centroids) NormalizeRow(c);
  }
  return assignment;
}

struct Frame {
  std::vector<uint32_t> members;
  size_t depth;
};

}  // namespace

util::Result<TaxoGenLiteResult> RunTaxoGenLite(
    const std::vector<std::vector<float>>& embeddings,
    const TaxoGenLiteOptions& options) {
  if (embeddings.empty()) {
    return util::Status::InvalidArgument("no embeddings");
  }
  const size_t dim = embeddings[0].size();
  if (dim == 0) {
    return util::Status::InvalidArgument("zero-dimensional embeddings");
  }
  for (const auto& row : embeddings) {
    if (row.size() != dim) {
      return util::Status::InvalidArgument("ragged embedding matrix");
    }
  }
  if (options.branching < 2) {
    return util::Status::InvalidArgument("branching must be >= 2");
  }

  util::Rng rng(options.seed);
  TaxoGenLiteResult result;
  const size_t n = embeddings.size();
  result.leaf_labels.assign(n, 0);
  result.root_labels.assign(n, 0);

  std::vector<uint32_t> all(n);
  for (uint32_t i = 0; i < n; ++i) all[i] = i;

  // Top split defines the root clusters.
  std::vector<uint32_t> top =
      SphericalKMeans(embeddings, all, options.branching,
                      options.kmeans_iterations, rng);
  uint32_t num_root = 0;
  for (uint32_t label : top) num_root = std::max(num_root, label + 1);
  result.num_root_clusters = num_root;
  for (size_t i = 0; i < n; ++i) result.root_labels[i] = top[i];

  // Recursive refinement.
  std::vector<Frame> stack;
  {
    std::vector<std::vector<uint32_t>> groups(num_root);
    for (uint32_t i = 0; i < n; ++i) groups[top[i]].push_back(i);
    for (auto& g : groups) stack.push_back(Frame{std::move(g), 1});
  }
  uint32_t next_leaf = 0;
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const bool split = frame.depth < options.max_depth &&
                       frame.members.size() >= options.min_cluster_size &&
                       frame.members.size() >= 2 * options.branching;
    if (!split) {
      uint32_t label = next_leaf++;
      for (uint32_t e : frame.members) result.leaf_labels[e] = label;
      continue;
    }
    std::vector<uint32_t> sub =
        SphericalKMeans(embeddings, frame.members, options.branching,
                        options.kmeans_iterations, rng);
    uint32_t parts = 0;
    for (uint32_t label : sub) parts = std::max(parts, label + 1);
    std::vector<std::vector<uint32_t>> groups(parts);
    for (size_t i = 0; i < frame.members.size(); ++i) {
      groups[sub[i]].push_back(frame.members[i]);
    }
    if (parts <= 1) {  // degenerate split; finalize here
      uint32_t label = next_leaf++;
      for (uint32_t e : frame.members) result.leaf_labels[e] = label;
      continue;
    }
    for (auto& g : groups) {
      if (g.empty()) continue;
      stack.push_back(Frame{std::move(g), frame.depth + 1});
    }
  }
  result.num_leaf_clusters = next_leaf;
  return result;
}

}  // namespace shoal::baselines
