#include "baselines/ontology_recommender.h"

#include <algorithm>

namespace shoal::baselines {

OntologyRecommender::OntologyRecommender(
    const data::Ontology& ontology,
    const std::vector<uint32_t>& entity_categories)
    : ontology_(ontology), entity_categories_(entity_categories) {
  for (uint32_t e = 0; e < entity_categories_.size(); ++e) {
    entities_by_category_[entity_categories_[e]].push_back(e);
  }
}

std::vector<uint32_t> OntologyRecommender::Recommend(uint32_t seed_entity,
                                                     size_t k,
                                                     util::Rng& rng) const {
  std::vector<uint32_t> slate;
  if (seed_entity >= entity_categories_.size() || k == 0) return slate;
  const uint32_t seed_category = entity_categories_[seed_entity];

  // Candidate pool: same leaf category, then sibling leaves (same
  // department), in that priority order.
  std::vector<uint32_t> pool;
  auto append_category = [&](uint32_t category) {
    auto it = entities_by_category_.find(category);
    if (it == entities_by_category_.end()) return;
    for (uint32_t e : it->second) {
      if (e != seed_entity) pool.push_back(e);
    }
  };
  append_category(seed_category);
  size_t same_category_end = pool.size();
  for (uint32_t sibling : ontology_.SiblingLeaves(seed_category)) {
    if (sibling != seed_category) append_category(sibling);
  }

  // Shuffle within each priority band, keep the band order.
  std::vector<uint32_t> same(pool.begin(), pool.begin() + same_category_end);
  std::vector<uint32_t> siblings(pool.begin() + same_category_end,
                                 pool.end());
  rng.Shuffle(same);
  rng.Shuffle(siblings);
  for (uint32_t e : same) {
    if (slate.size() >= k) break;
    slate.push_back(e);
  }
  for (uint32_t e : siblings) {
    if (slate.size() >= k) break;
    slate.push_back(e);
  }
  return slate;
}

}  // namespace shoal::baselines
