#ifndef SHOAL_BASELINES_TAXOGEN_LITE_H_
#define SHOAL_BASELINES_TAXOGEN_LITE_H_

#include <cstdint>
#include <vector>

#include "text/embedding.h"
#include "util/result.h"

namespace shoal::baselines {

// Embedding-only taxonomy induction baseline in the spirit of TaxoGen
// (Zhang et al., KDD 2018, the paper's reference [6]): recursive
// spherical k-means over entity content embeddings. It uses *textual*
// similarity only — no query-coalition structure — which is exactly the
// contrast SHOAL's related-work section draws.
struct TaxoGenLiteOptions {
  size_t branching = 5;        // clusters per recursion level
  size_t max_depth = 2;        // recursion depth
  size_t min_cluster_size = 8; // stop splitting below this
  size_t kmeans_iterations = 20;
  uint64_t seed = 5;
};

struct TaxoGenLiteResult {
  // Finest-level cluster label per entity.
  std::vector<uint32_t> leaf_labels;
  // Top-level cluster label per entity (after the first split).
  std::vector<uint32_t> root_labels;
  size_t num_leaf_clusters = 0;
  size_t num_root_clusters = 0;
};

// `embeddings[e]` is a dense vector per entity (commonly the mean of the
// entity's unit title-word vectors). All vectors must share a dimension;
// zero vectors are assigned to cluster 0 of their level.
util::Result<TaxoGenLiteResult> RunTaxoGenLite(
    const std::vector<std::vector<float>>& embeddings,
    const TaxoGenLiteOptions& options);

}  // namespace shoal::baselines

#endif  // SHOAL_BASELINES_TAXOGEN_LITE_H_
