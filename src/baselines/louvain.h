#ifndef SHOAL_BASELINES_LOUVAIN_H_
#define SHOAL_BASELINES_LOUVAIN_H_

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.h"
#include "util/result.h"

namespace shoal::baselines {

// Louvain community detection (Blondel et al. 2008): greedy modularity
// maximisation with graph aggregation. A flat-clustering baseline for
// the item entity graph — it optimises the very metric the paper
// benchmarks with (modularity), so it upper-bounds what Parallel HAC
// can score there, while having no hierarchy and no merge threshold.
struct LouvainOptions {
  size_t max_levels = 10;
  size_t max_sweeps_per_level = 50;
  double min_modularity_gain = 1e-7;  // stop when a level gains less
  uint64_t seed = 3;                  // node visiting order
};

struct LouvainResult {
  std::vector<uint32_t> labels;  // community per original vertex, dense
  double modularity = 0.0;
  size_t levels = 0;
  size_t num_communities = 0;
};

util::Result<LouvainResult> RunLouvain(const graph::WeightedGraph& graph,
                                       const LouvainOptions& options);

}  // namespace shoal::baselines

#endif  // SHOAL_BASELINES_LOUVAIN_H_
