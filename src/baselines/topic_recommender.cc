#include "baselines/topic_recommender.h"

#include <algorithm>
#include <unordered_set>

namespace shoal::baselines {

TopicRecommender::TopicRecommender(const core::Taxonomy& taxonomy,
                                   const eval::Recommender* fallback)
    : taxonomy_(taxonomy), fallback_(fallback) {}

std::vector<uint32_t> TopicRecommender::Recommend(uint32_t seed_entity,
                                                  size_t k,
                                                  util::Rng& rng) const {
  std::vector<uint32_t> slate;
  if (seed_entity >= taxonomy_.num_entities() || k == 0) return slate;

  uint32_t deep = taxonomy_.TopicOfEntity(seed_entity);
  uint32_t root = taxonomy_.RootTopicOfEntity(seed_entity);
  std::unordered_set<uint32_t> chosen{seed_entity};

  auto fill_from = [&](uint32_t topic_id) {
    if (topic_id == core::kNoTopic || slate.size() >= k) return;
    std::vector<uint32_t> members = taxonomy_.topic(topic_id).entities;
    rng.Shuffle(members);
    for (uint32_t e : members) {
      if (slate.size() >= k) break;
      if (chosen.insert(e).second) slate.push_back(e);
    }
  };
  fill_from(deep);
  if (root != deep) fill_from(root);
  if (slate.size() < k && fallback_ != nullptr) {
    for (uint32_t e : fallback_->Recommend(seed_entity, k, rng)) {
      if (slate.size() >= k) break;
      if (chosen.insert(e).second) slate.push_back(e);
    }
  }
  return slate;
}

}  // namespace shoal::baselines
