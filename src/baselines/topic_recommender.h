#ifndef SHOAL_BASELINES_TOPIC_RECOMMENDER_H_
#define SHOAL_BASELINES_TOPIC_RECOMMENDER_H_

#include <cstdint>
#include <vector>

#include "core/taxonomy.h"
#include "eval/ctr_sim.h"

namespace shoal::baselines {

// The A/B test's treatment arm (Figure 4(b)): recommendations generated
// by matching SHOAL topics. Given a seed item, the slate is filled from
// the seed's deepest topic first, then widened to its root topic —
// surfacing cross-category items that share the shopping scenario. When
// the topic cannot fill the slate, remaining slots fall through to the
// optional `fallback` recommender (production systems blend sources so
// slates are never short).
class TopicRecommender : public eval::Recommender {
 public:
  explicit TopicRecommender(const core::Taxonomy& taxonomy,
                            const eval::Recommender* fallback = nullptr);

  std::vector<uint32_t> Recommend(uint32_t seed_entity, size_t k,
                                  util::Rng& rng) const override;

  const char* name() const override { return "shoal-topic-match"; }

 private:
  const core::Taxonomy& taxonomy_;
  const eval::Recommender* fallback_;  // not owned; may be null
};

}  // namespace shoal::baselines

#endif  // SHOAL_BASELINES_TOPIC_RECOMMENDER_H_
