#ifndef SHOAL_EVAL_CTR_SIM_H_
#define SHOAL_EVAL_CTR_SIM_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/result.h"

namespace shoal::eval {

// A recommendation source under A/B test (Figure 4): given the item
// entity a user last engaged with, produce a slate of entities.
class Recommender {
 public:
  virtual ~Recommender() = default;

  // Up to `k` recommended entities, never containing `seed_entity`.
  // `rng` supplies any sampling the strategy needs.
  virtual std::vector<uint32_t> Recommend(uint32_t seed_entity, size_t k,
                                          util::Rng& rng) const = 0;

  virtual const char* name() const = 0;
};

// Position-aware click model: each simulated session has a hidden
// shopping intent and a browsing category (the seed item's); a slate
// item is clicked with probability
//
//   p(position, item) = position_decay^position *
//                       max(intent_relevance, category_relevance)
//
// intent relevance is exact-intent, same-root-intent (same scenario) or
// unrelated; category relevance rewards items in the category the user
// is already browsing (navigational clicks). Both arms satisfy the
// navigational component — the treatment arm's edge is the *additional*
// intent-matched items it surfaces, which is why the realistic lift is
// modest (the paper reports +5%).
struct CtrSimOptions {
  size_t num_sessions = 20000;
  size_t slate_size = 8;       // Figure 4 shows an 8-card grid
  double p_click_exact = 0.07;
  double p_click_same_root = 0.04;
  double p_click_same_category = 0.058;
  double p_click_unrelated = 0.02;
  double position_decay = 0.9;
  uint64_t seed = 77;
};

struct ArmResult {
  uint64_t impressions = 0;
  uint64_t clicks = 0;
  double ctr() const {
    return impressions == 0
               ? 0.0
               : static_cast<double>(clicks) /
                     static_cast<double>(impressions);
  }
};

struct CtrSimResult {
  ArmResult control;
  ArmResult treatment;
  double Lift() const {
    double c = control.ctr();
    return c == 0.0 ? 0.0 : (treatment.ctr() - c) / c;
  }

  // Two-proportion z-statistic of the CTR difference (pooled variance).
  // |z| > 1.96 is significant at the usual 5% level — what an online
  // experimentation platform would gate the launch on.
  double ZScore() const;
};

// Runs the paired A/B simulation: the same sessions (same hidden intent
// and seed item) are served by both arms, isolating the recommender as
// the only difference — the simulated analogue of user-split bucketing
// at much lower variance.
//
// `entity_intents[e]` is entity e's planted leaf intent;
// `entity_categories[e]` its ontology leaf category;
// `intent_roots[i]` maps a leaf intent to its root intent (scenario).
util::Result<CtrSimResult> RunCtrSimulation(
    const Recommender& control, const Recommender& treatment,
    const std::vector<uint32_t>& entity_intents,
    const std::vector<uint32_t>& entity_categories,
    const std::vector<uint32_t>& intent_roots, const CtrSimOptions& options);

}  // namespace shoal::eval

#endif  // SHOAL_EVAL_CTR_SIM_H_
