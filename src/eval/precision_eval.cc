#include "eval/precision_eval.h"

#include <algorithm>
#include <unordered_map>

#include "util/random.h"

namespace shoal::eval {

namespace {

// Majority planted intent among the topic's members — what a domain
// expert would perceive as "the" concept of the topic.
uint32_t MajorityIntent(const core::Topic& topic,
                        const std::vector<uint32_t>& entity_intents) {
  std::unordered_map<uint32_t, size_t> counts;
  for (uint32_t e : topic.entities) ++counts[entity_intents[e]];
  uint32_t best = 0;
  size_t best_count = 0;
  for (const auto& [intent, count] : counts) {
    if (count > best_count ||
        (count == best_count && intent < best)) {
      best = intent;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

util::Result<PrecisionEvalResult> EvaluatePlacementPrecision(
    const core::Taxonomy& taxonomy,
    const std::vector<uint32_t>& entity_intents,
    const PrecisionEvalOptions& options) {
  if (entity_intents.size() != taxonomy.num_entities()) {
    return util::Status::InvalidArgument(
        "entity_intents size does not match taxonomy");
  }
  if (options.judge_noise < 0.0 || options.judge_noise > 1.0) {
    return util::Status::InvalidArgument("judge_noise must be in [0,1]");
  }

  // Candidate topics.
  std::vector<uint32_t> candidates;
  if (options.roots_only) {
    candidates = taxonomy.roots();
  } else {
    for (uint32_t t = 0; t < taxonomy.num_topics(); ++t) {
      candidates.push_back(t);
    }
  }
  std::erase_if(candidates, [&](uint32_t t) {
    return taxonomy.topic(t).entities.size() < options.min_topic_size;
  });
  if (candidates.empty()) {
    return util::Status::FailedPrecondition(
        "no topics large enough to evaluate");
  }

  util::Rng rng(options.seed);
  rng.Shuffle(candidates);
  if (candidates.size() > options.topics_to_sample) {
    candidates.resize(options.topics_to_sample);
  }

  PrecisionEvalResult result;
  result.topics_sampled = candidates.size();
  size_t correct = 0;
  for (uint32_t t : candidates) {
    const core::Topic& topic = taxonomy.topic(t);
    uint32_t majority = MajorityIntent(topic, entity_intents);

    // Sample without replacement up to items_per_topic members.
    std::vector<uint32_t> members = topic.entities;
    rng.Shuffle(members);
    size_t take = std::min(options.items_per_topic, members.size());
    for (size_t i = 0; i < take; ++i) {
      bool judged_correct = entity_intents[members[i]] == majority;
      if (options.judge_noise > 0.0 && rng.Bernoulli(options.judge_noise)) {
        judged_correct = !judged_correct;
      }
      if (judged_correct) ++correct;
      ++result.items_judged;
    }
  }
  result.precision = result.items_judged == 0
                         ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(result.items_judged);
  return result;
}

}  // namespace shoal::eval
