#ifndef SHOAL_EVAL_PRECISION_EVAL_H_
#define SHOAL_EVAL_PRECISION_EVAL_H_

#include <cstdint>
#include <vector>

#include "core/taxonomy.h"
#include "util/result.h"

namespace shoal::eval {

// Simulated expert evaluation of Sec 3: "experts pick 1000 topics and
// randomly select 100 items placed under each topic to evaluate the
// precision". The oracle judge marks an item correctly placed when its
// planted leaf intent matches the topic's majority intent; judge_noise
// flips a verdict with the given probability, modelling human
// disagreement.
struct PrecisionEvalOptions {
  size_t topics_to_sample = 1000;
  size_t items_per_topic = 100;
  double judge_noise = 0.0;
  uint64_t seed = 11;
  // Topics smaller than this are not shown to the experts.
  uint32_t min_topic_size = 2;
  // Sample only root topics (mirrors evaluating the final clusters) or
  // every topic in the hierarchy.
  bool roots_only = false;
};

struct PrecisionEvalResult {
  double precision = 0.0;     // fraction of sampled items judged correct
  size_t topics_sampled = 0;
  size_t items_judged = 0;
};

// `entity_intents[e]` is the planted (ground-truth) leaf intent of
// entity e.
util::Result<PrecisionEvalResult> EvaluatePlacementPrecision(
    const core::Taxonomy& taxonomy,
    const std::vector<uint32_t>& entity_intents,
    const PrecisionEvalOptions& options);

}  // namespace shoal::eval

#endif  // SHOAL_EVAL_PRECISION_EVAL_H_
