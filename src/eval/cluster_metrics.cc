#include "eval/cluster_metrics.h"

#include <cmath>
#include <unordered_map>

namespace shoal::eval {

namespace {

util::Status ValidateInputs(const std::vector<uint32_t>& predicted,
                            const std::vector<uint32_t>& truth) {
  if (predicted.empty() || predicted.size() != truth.size()) {
    return util::Status::InvalidArgument(
        "labellings must be non-empty and of equal size");
  }
  return util::Status::OK();
}

// Contingency table and marginals for a pair of labellings.
struct Contingency {
  std::unordered_map<uint64_t, uint64_t> joint;  // (p,t) -> count
  std::unordered_map<uint32_t, uint64_t> p_marginal;
  std::unordered_map<uint32_t, uint64_t> t_marginal;
  uint64_t n = 0;
};

Contingency BuildContingency(const std::vector<uint32_t>& predicted,
                             const std::vector<uint32_t>& truth) {
  Contingency c;
  c.n = predicted.size();
  for (size_t i = 0; i < predicted.size(); ++i) {
    uint64_t key = (static_cast<uint64_t>(predicted[i]) << 32) | truth[i];
    ++c.joint[key];
    ++c.p_marginal[predicted[i]];
    ++c.t_marginal[truth[i]];
  }
  return c;
}

double Comb2(uint64_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

}  // namespace

util::Result<double> NormalizedMutualInformation(
    const std::vector<uint32_t>& predicted,
    const std::vector<uint32_t>& truth) {
  SHOAL_RETURN_IF_ERROR(ValidateInputs(predicted, truth));
  Contingency c = BuildContingency(predicted, truth);
  const double n = static_cast<double>(c.n);

  double mi = 0.0;
  for (const auto& [key, count] : c.joint) {
    uint32_t p = static_cast<uint32_t>(key >> 32);
    uint32_t t = static_cast<uint32_t>(key & 0xffffffffULL);
    double pij = count / n;
    double pi = c.p_marginal.at(p) / n;
    double pj = c.t_marginal.at(t) / n;
    mi += pij * std::log(pij / (pi * pj));
  }
  double hp = 0.0;
  for (const auto& [p, count] : c.p_marginal) {
    (void)p;
    double pi = count / n;
    hp -= pi * std::log(pi);
  }
  double ht = 0.0;
  for (const auto& [t, count] : c.t_marginal) {
    (void)t;
    double pj = count / n;
    ht -= pj * std::log(pj);
  }
  if (hp == 0.0 && ht == 0.0) return 1.0;  // both partitions trivial
  double denom = 0.5 * (hp + ht);
  if (denom == 0.0) return 0.0;
  return std::max(0.0, mi / denom);
}

util::Result<double> AdjustedRandIndex(const std::vector<uint32_t>& predicted,
                                       const std::vector<uint32_t>& truth) {
  SHOAL_RETURN_IF_ERROR(ValidateInputs(predicted, truth));
  Contingency c = BuildContingency(predicted, truth);

  double sum_joint = 0.0;
  for (const auto& [key, count] : c.joint) {
    (void)key;
    sum_joint += Comb2(count);
  }
  double sum_p = 0.0;
  for (const auto& [p, count] : c.p_marginal) {
    (void)p;
    sum_p += Comb2(count);
  }
  double sum_t = 0.0;
  for (const auto& [t, count] : c.t_marginal) {
    (void)t;
    sum_t += Comb2(count);
  }
  double total_pairs = Comb2(c.n);
  double expected = sum_p * sum_t / total_pairs;
  double max_index = 0.5 * (sum_p + sum_t);
  if (max_index == expected) return 1.0;  // degenerate: identical trivial
  return (sum_joint - expected) / (max_index - expected);
}

util::Result<double> Purity(const std::vector<uint32_t>& predicted,
                            const std::vector<uint32_t>& truth) {
  SHOAL_RETURN_IF_ERROR(ValidateInputs(predicted, truth));
  // cluster -> (truth -> count)
  std::unordered_map<uint32_t, std::unordered_map<uint32_t, uint64_t>> table;
  for (size_t i = 0; i < predicted.size(); ++i) {
    ++table[predicted[i]][truth[i]];
  }
  uint64_t majority_sum = 0;
  for (const auto& [cluster, counts] : table) {
    (void)cluster;
    uint64_t best = 0;
    for (const auto& [t, count] : counts) {
      (void)t;
      best = std::max(best, count);
    }
    majority_sum += best;
  }
  return static_cast<double>(majority_sum) /
         static_cast<double>(predicted.size());
}

util::Result<PairwiseScores> PairwiseF1(
    const std::vector<uint32_t>& predicted,
    const std::vector<uint32_t>& truth) {
  SHOAL_RETURN_IF_ERROR(ValidateInputs(predicted, truth));
  Contingency c = BuildContingency(predicted, truth);

  double tp = 0.0;  // pairs together in both
  for (const auto& [key, count] : c.joint) {
    (void)key;
    tp += Comb2(count);
  }
  double predicted_pairs = 0.0;
  for (const auto& [p, count] : c.p_marginal) {
    (void)p;
    predicted_pairs += Comb2(count);
  }
  double truth_pairs = 0.0;
  for (const auto& [t, count] : c.t_marginal) {
    (void)t;
    truth_pairs += Comb2(count);
  }
  PairwiseScores scores;
  scores.precision = predicted_pairs == 0.0 ? 1.0 : tp / predicted_pairs;
  scores.recall = truth_pairs == 0.0 ? 1.0 : tp / truth_pairs;
  double denom = scores.precision + scores.recall;
  scores.f1 = denom == 0.0 ? 0.0
                           : 2.0 * scores.precision * scores.recall / denom;
  return scores;
}

}  // namespace shoal::eval
