#include "eval/ctr_sim.h"

#include <cmath>

namespace shoal::eval {

double CtrSimResult::ZScore() const {
  const double n1 = static_cast<double>(control.impressions);
  const double n2 = static_cast<double>(treatment.impressions);
  if (n1 == 0.0 || n2 == 0.0) return 0.0;
  const double p1 = control.ctr();
  const double p2 = treatment.ctr();
  const double pooled =
      (static_cast<double>(control.clicks) + treatment.clicks) / (n1 + n2);
  const double se =
      std::sqrt(pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2));
  if (se == 0.0) return 0.0;
  return (p2 - p1) / se;
}

namespace {

// Click probability of one slate slot for a user with hidden intent
// `user_intent` browsing from `seed_category`.
double ClickProbability(uint32_t item_intent, uint32_t item_category,
                        uint32_t user_intent, uint32_t seed_category,
                        const std::vector<uint32_t>& intent_roots,
                        size_t position, const CtrSimOptions& options) {
  double intent_relevance;
  if (item_intent == user_intent) {
    intent_relevance = options.p_click_exact;
  } else if (item_intent < intent_roots.size() &&
             user_intent < intent_roots.size() &&
             intent_roots[item_intent] == intent_roots[user_intent]) {
    intent_relevance = options.p_click_same_root;
  } else {
    intent_relevance = options.p_click_unrelated;
  }
  double category_relevance = item_category == seed_category
                                  ? options.p_click_same_category
                                  : 0.0;
  double relevance = std::max(intent_relevance, category_relevance);
  double decay = 1.0;
  for (size_t p = 0; p < position; ++p) decay *= options.position_decay;
  return relevance * decay;
}

void ServeSlate(const Recommender& recommender, uint32_t seed_entity,
                uint32_t user_intent,
                const std::vector<uint32_t>& entity_intents,
                const std::vector<uint32_t>& entity_categories,
                const std::vector<uint32_t>& intent_roots,
                const CtrSimOptions& options, util::Rng& rng,
                ArmResult& arm) {
  std::vector<uint32_t> slate =
      recommender.Recommend(seed_entity, options.slate_size, rng);
  const uint32_t seed_category = entity_categories[seed_entity];
  for (size_t pos = 0; pos < slate.size(); ++pos) {
    ++arm.impressions;
    double p = ClickProbability(entity_intents[slate[pos]],
                                entity_categories[slate[pos]], user_intent,
                                seed_category, intent_roots, pos, options);
    if (rng.Bernoulli(p)) ++arm.clicks;
  }
}

}  // namespace

util::Result<CtrSimResult> RunCtrSimulation(
    const Recommender& control, const Recommender& treatment,
    const std::vector<uint32_t>& entity_intents,
    const std::vector<uint32_t>& entity_categories,
    const std::vector<uint32_t>& intent_roots,
    const CtrSimOptions& options) {
  if (entity_intents.empty() ||
      entity_intents.size() != entity_categories.size()) {
    return util::Status::InvalidArgument(
        "entity intents/categories must be non-empty and equal-sized");
  }
  if (options.slate_size == 0 || options.num_sessions == 0) {
    return util::Status::InvalidArgument(
        "slate_size and num_sessions must be positive");
  }

  // Sessions seed on an entity the user engaged with; the hidden intent
  // is that entity's planted intent (users look at things they want).
  util::Rng rng(options.seed);
  CtrSimResult result;
  for (size_t s = 0; s < options.num_sessions; ++s) {
    uint32_t seed_entity =
        static_cast<uint32_t>(rng.Uniform(entity_intents.size()));
    uint32_t user_intent = entity_intents[seed_entity];
    // Paired design: both arms see the identical session. Split the RNG
    // deterministically so arms cannot influence each other.
    util::Rng control_rng(rng.Next());
    util::Rng treatment_rng(rng.Next());
    ServeSlate(control, seed_entity, user_intent, entity_intents,
               entity_categories, intent_roots, options, control_rng,
               result.control);
    ServeSlate(treatment, seed_entity, user_intent, entity_intents,
               entity_categories, intent_roots, options, treatment_rng,
               result.treatment);
  }
  return result;
}

}  // namespace shoal::eval
