#ifndef SHOAL_EVAL_CLUSTER_METRICS_H_
#define SHOAL_EVAL_CLUSTER_METRICS_H_

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace shoal::eval {

// External cluster-quality metrics comparing a predicted labelling with
// the planted ground truth. All take dense per-element labels (values
// need not be contiguous) and require equal, non-zero sizes.

// Normalized Mutual Information in [0, 1] (arithmetic-mean
// normalisation). 1 means identical partitions.
util::Result<double> NormalizedMutualInformation(
    const std::vector<uint32_t>& predicted,
    const std::vector<uint32_t>& truth);

// Adjusted Rand Index in [-1, 1]; expected value 0 for random labels.
util::Result<double> AdjustedRandIndex(const std::vector<uint32_t>& predicted,
                                       const std::vector<uint32_t>& truth);

// Purity in (0, 1]: weighted fraction of each predicted cluster covered
// by its majority truth class.
util::Result<double> Purity(const std::vector<uint32_t>& predicted,
                            const std::vector<uint32_t>& truth);

// Pairwise precision/recall/F1 over same-cluster pairs.
struct PairwiseScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
util::Result<PairwiseScores> PairwiseF1(const std::vector<uint32_t>& predicted,
                                        const std::vector<uint32_t>& truth);

}  // namespace shoal::eval

#endif  // SHOAL_EVAL_CLUSTER_METRICS_H_
