#include "daemon/splice.h"

#include <algorithm>

#include "graph/components.h"
#include "util/string_util.h"

namespace shoal::daemon {

util::Result<SpliceResult> SpliceDendrogram(
    const graph::WeightedGraph& old_graph,
    const core::Dendrogram& old_dendrogram,
    const graph::WeightedGraph& new_graph,
    const core::ParallelHacOptions& options) {
  const size_t n = new_graph.num_vertices();
  if (old_graph.num_vertices() != n) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "old graph has %zu vertices, new graph has %zu",
        old_graph.num_vertices(), n));
  }
  if (old_dendrogram.num_leaves() != n) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "standing dendrogram has %zu leaves for %zu vertices",
        old_dendrogram.num_leaves(), n));
  }

  SpliceResult result;

  // ---- 1. edge diff + dirty-component expansion -----------------------
  graph::UnionFind uf(n);
  std::vector<std::pair<uint32_t, uint32_t>> changed;
  for (const graph::WeightedGraph::FullEdge& e : old_graph.AllEdges()) {
    uf.Union(e.u, e.v);
    if (!new_graph.HasEdge(e.u, e.v) ||
        new_graph.EdgeWeight(e.u, e.v) != e.weight) {
      changed.push_back({e.u, e.v});
    }
  }
  for (const graph::WeightedGraph::FullEdge& e : new_graph.AllEdges()) {
    uf.Union(e.u, e.v);
    if (!old_graph.HasEdge(e.u, e.v)) changed.push_back({e.u, e.v});
  }
  result.stats.changed_edges = changed.size();

  std::vector<char> dirty_root(n, 0);
  for (const auto& [u, v] : changed) dirty_root[uf.Find(u)] = 1;

  result.dirty_leaf.assign(n, false);
  size_t dirty_leaves = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (dirty_root[uf.Find(v)]) {
      result.dirty_leaf[v] = true;
      ++dirty_leaves;
    }
  }
  result.stats.dirty_leaves = dirty_leaves;
  {
    // Component counts, over the union structure (singletons with no
    // edges in either graph are uninteresting frozen components; count
    // only multi-leaf frozen ones so the stat tracks replayed work).
    std::vector<char> seen_dirty(n, 0), seen_frozen(n, 0);
    for (uint32_t v = 0; v < n; ++v) {
      const uint32_t root = uf.Find(v);
      if (dirty_root[root]) {
        if (!seen_dirty[root]) {
          seen_dirty[root] = 1;
          ++result.stats.dirty_components;
        }
      } else if (uf.ComponentSize(root) > 1 && !seen_frozen[root]) {
        seen_frozen[root] = 1;
        ++result.stats.frozen_components;
      }
    }
  }

  // ---- 2. replay frozen merges ----------------------------------------
  core::Dendrogram dendrogram(n);
  result.old_to_new_node.assign(old_dendrogram.num_nodes(), core::kNoNode);
  for (uint32_t leaf = 0; leaf < n; ++leaf) {
    if (!result.dirty_leaf[leaf]) result.old_to_new_node[leaf] = leaf;
  }
  for (uint32_t node = static_cast<uint32_t>(n);
       node < old_dendrogram.num_nodes(); ++node) {
    const core::Dendrogram::Node& record = old_dendrogram.node(node);
    const uint32_t left = result.old_to_new_node[record.left];
    const uint32_t right = result.old_to_new_node[record.right];
    // HAC only merges along edges, so a standing merge is wholly inside
    // one component: either both children survived (frozen) or neither.
    if (left == core::kNoNode || right == core::kNoNode) continue;
    auto merged = dendrogram.Merge(left, right, record.merge_similarity);
    if (!merged.ok()) return merged.status();
    result.old_to_new_node[node] = merged.value();
    ++result.stats.replayed_merges;
  }

  // ---- 3. one HAC over the induced dirty subgraph ---------------------
  std::vector<uint32_t> dirty_list;
  dirty_list.reserve(dirty_leaves);
  for (uint32_t v = 0; v < n; ++v) {
    if (result.dirty_leaf[v]) dirty_list.push_back(v);
  }
  if (!dirty_list.empty()) {
    std::vector<uint32_t> local_id(n, core::kNoNode);
    for (uint32_t i = 0; i < dirty_list.size(); ++i) {
      local_id[dirty_list[i]] = i;
    }
    graph::WeightedGraph subgraph(dirty_list.size());
    for (const graph::WeightedGraph::FullEdge& e : new_graph.AllEdges()) {
      // Components are closed under both graphs' edges, so an edge
      // touching a dirty leaf has both endpoints dirty.
      if (!result.dirty_leaf[e.u]) continue;
      SHOAL_RETURN_IF_ERROR(
          subgraph.AddEdge(local_id[e.u], local_id[e.v], e.weight));
    }
    auto sub_dendrogram =
        core::ParallelHac(subgraph, options, &result.stats.hac);
    if (!sub_dendrogram.ok()) return sub_dendrogram.status();

    std::vector<uint32_t> sub_to_global(sub_dendrogram->num_nodes(),
                                        core::kNoNode);
    for (uint32_t i = 0; i < dirty_list.size(); ++i) {
      sub_to_global[i] = dirty_list[i];
    }
    for (uint32_t node = static_cast<uint32_t>(dirty_list.size());
         node < sub_dendrogram->num_nodes(); ++node) {
      const core::Dendrogram::Node& record = sub_dendrogram->node(node);
      auto merged = dendrogram.Merge(sub_to_global[record.left],
                                     sub_to_global[record.right],
                                     record.merge_similarity);
      if (!merged.ok()) return merged.status();
      sub_to_global[node] = merged.value();
      ++result.stats.hac_merges;
    }
  }

  result.dendrogram = std::move(dendrogram);
  return result;
}

}  // namespace shoal::daemon
