#ifndef SHOAL_DAEMON_SPOOL_H_
#define SHOAL_DAEMON_SPOOL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "text/vocabulary.h"
#include "util/result.h"

namespace shoal::daemon {

// The daemon's on-disk inbox. A spool directory holds the static
// catalog (items.tsv + queries.tsv, the log_io exchange format minus
// clicks.tsv) and one clicks file per arriving day:
//
//   <spool>/items.tsv              item_id  category_id  title
//   <spool>/queries.tsv            query_id  text
//   <spool>/day-0000.clicks.tsv    query_id  item_id  timestamp_sec
//
// Day files must sort lexicographically in arrival order (the
// data::DriftDayFileName convention does); the daemon consumes them in
// that order, one update cycle per file. A producer publishes a day by
// writing the file under a temp name and renaming it into the spool —
// the same atomic-appearance convention the serving index uses.

// The static catalog: every entity/query id the window will ever
// reference, with text tokenised into a vocabulary in file order
// (items first, then queries — the same order the pipeline's word2vec
// corpus uses).
struct SpoolCatalog {
  std::vector<data::ItemEntity> items;     // intent fields left kNoIntent
  std::vector<data::SearchQuery> queries;  // intent fields left kNoIntent
  text::Vocabulary vocab;
};

util::Result<SpoolCatalog> ImportSpoolCatalog(const std::string& dir);

// One day's clicks, sorted by (timestamp, query, entity); ids are
// validated against the catalog bounds.
util::Result<std::vector<data::ClickEvent>> ReadDayClicks(
    const std::string& path, size_t num_queries, size_t num_items);

// Names (not paths) of the day files currently in the spool, sorted
// lexicographically. A file qualifies when it ends in ".clicks.tsv".
util::Result<std::vector<std::string>> ListDayFiles(const std::string& dir);

}  // namespace shoal::daemon

#endif  // SHOAL_DAEMON_SPOOL_H_
