#include "daemon/spool.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "text/tokenizer.h"
#include "util/string_util.h"
#include "util/tsv.h"

namespace shoal::daemon {

namespace {

std::string PathOf(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

uint32_t ParseU32(const std::string& text) {
  return static_cast<uint32_t>(std::strtoul(text.c_str(), nullptr, 10));
}

constexpr const char kDaySuffix[] = ".clicks.tsv";

}  // namespace

util::Result<SpoolCatalog> ImportSpoolCatalog(const std::string& dir) {
  SpoolCatalog catalog;

  SHOAL_ASSIGN_OR_RETURN(auto item_rows,
                         util::ReadTsv(PathOf(dir, "items.tsv")));
  for (const auto& row : item_rows) {
    if (row.size() != 3) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "items.tsv: expected 3 fields, got %zu", row.size()));
    }
    data::ItemEntity item;
    item.id = ParseU32(row[0]);
    if (item.id != catalog.items.size()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "items.tsv: ids must be dense; got %u at row %zu", item.id,
          catalog.items.size()));
    }
    item.category = ParseU32(row[1]);
    item.title = row[2];
    for (const std::string& token : text::Tokenize(item.title)) {
      item.title_words.push_back(catalog.vocab.AddWord(token));
    }
    catalog.items.push_back(std::move(item));
  }
  if (catalog.items.empty()) {
    return util::Status::InvalidArgument("items.tsv has no items");
  }

  SHOAL_ASSIGN_OR_RETURN(auto query_rows,
                         util::ReadTsv(PathOf(dir, "queries.tsv")));
  for (const auto& row : query_rows) {
    if (row.size() != 2) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "queries.tsv: expected 2 fields, got %zu", row.size()));
    }
    data::SearchQuery query;
    query.id = ParseU32(row[0]);
    if (query.id != catalog.queries.size()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "queries.tsv: ids must be dense; got %u at row %zu", query.id,
          catalog.queries.size()));
    }
    query.text = row[1];
    for (const std::string& token : text::Tokenize(query.text)) {
      query.words.push_back(catalog.vocab.AddWord(token));
    }
    catalog.queries.push_back(std::move(query));
  }
  if (catalog.queries.empty()) {
    return util::Status::InvalidArgument("queries.tsv has no queries");
  }
  return catalog;
}

util::Result<std::vector<data::ClickEvent>> ReadDayClicks(
    const std::string& path, size_t num_queries, size_t num_items) {
  SHOAL_ASSIGN_OR_RETURN(auto rows, util::ReadTsv(path));
  std::vector<data::ClickEvent> clicks;
  clicks.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.size() != 3) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "%s: expected 3 fields, got %zu", path.c_str(), row.size()));
    }
    data::ClickEvent click;
    click.query = ParseU32(row[0]);
    click.entity = ParseU32(row[1]);
    click.timestamp_sec = std::strtoull(row[2].c_str(), nullptr, 10);
    if (click.query >= num_queries) {
      return util::Status::InvalidArgument(
          util::StringPrintf("%s: unknown query id %u", path.c_str(),
                             click.query));
    }
    if (click.entity >= num_items) {
      return util::Status::InvalidArgument(
          util::StringPrintf("%s: unknown item id %u", path.c_str(),
                             click.entity));
    }
    clicks.push_back(click);
  }
  std::sort(clicks.begin(), clicks.end(),
            [](const data::ClickEvent& a, const data::ClickEvent& b) {
              if (a.timestamp_sec != b.timestamp_sec) {
                return a.timestamp_sec < b.timestamp_sec;
              }
              if (a.query != b.query) return a.query < b.query;
              return a.entity < b.entity;
            });
  return clicks;
}

util::Result<std::vector<std::string>> ListDayFiles(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return util::Status::IoError("cannot list spool directory " + dir + ": " +
                                 ec.message());
  }
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > sizeof(kDaySuffix) - 1 &&
        name.compare(name.size() - (sizeof(kDaySuffix) - 1),
                     sizeof(kDaySuffix) - 1, kDaySuffix) == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace shoal::daemon
