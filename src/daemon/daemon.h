#ifndef SHOAL_DAEMON_DAEMON_H_
#define SHOAL_DAEMON_DAEMON_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/snapshot.h"
#include "core/dendrogram.h"
#include "core/entity_graph.h"
#include "core/parallel_hac.h"
#include "core/taxonomy.h"
#include "core/topic_describer.h"
#include "daemon/incremental_graph.h"
#include "daemon/splice.h"
#include "daemon/spool.h"
#include "text/word2vec.h"
#include "util/result.h"
#include "util/status.h"

namespace shoal::daemon {

struct DaemonOptions {
  // The on-disk inbox (see spool.h) and the published artefact path.
  std::string spool_dir;
  std::string index_path;
  // Standing-state snapshot written after every cycle through the
  // framed ckpt protocol; a restarted daemon restores from it and
  // resumes at the first unconsumed day file. Empty disables
  // checkpointing.
  std::string snapshot_path;

  // Days kept in the sliding window. Once the window is full, every
  // cycle retires the oldest day as it ingests the newest.
  size_t window_days = 7;

  // Worker threads for delta rescoring and HAC — both stages produce
  // identical results at any setting. 0 = hardware concurrency.
  // Deliberately does not touch word2vec: the daemon always trains its
  // catalog embedding single-threaded so the standing graph is a
  // deterministic function of the spool.
  size_t num_threads = 1;

  core::EntityGraphOptions entity_graph;
  core::ParallelHacOptions hac;
  core::TaxonomyOptions taxonomy;
  core::DescriberOptions describer;
  text::Word2VecOptions word2vec;
  bool lsh_discovery = true;

  // Version stamped on the first publish; each later cycle increments.
  uint64_t first_version = 1;
  size_t max_postings_per_query = 64;
};

// What one update cycle did, for logs and the bench harness.
struct CycleReport {
  std::string day_file;
  // First cycle (or none standing): the window is clustered from
  // scratch instead of spliced.
  bool full_rebuild = false;
  size_t window_days = 0;  // days in the window after this cycle

  DeltaStats delta;
  SpliceStats splice;
  // Entities whose dendrogram subtree was re-clustered, over all
  // entities (1.0 on a full rebuild).
  double dirty_fraction = 0.0;

  size_t num_topics = 0;
  size_t touched_topics = 0;  // re-scored + re-described this cycle
  size_t carried_topics = 0;  // rankings/descriptions carried forward
  uint64_t published_version = 0;

  double ingest_seconds = 0.0;    // spool read + day aggregation
  double graph_seconds = 0.0;     // ApplyDelta + Materialize
  double cluster_seconds = 0.0;   // splice (or full HAC)
  double describe_seconds = 0.0;  // DescribeTopics over touched topics
  double publish_seconds = 0.0;   // compile + atomic write
  double snapshot_seconds = 0.0;
  double total_seconds = 0.0;
};

// The sliding-window taxonomy maintenance loop (DESIGN.md §13):
// build -> diff -> publish, one cycle per day file arriving in the
// spool. The standing entity graph is maintained incrementally
// (IncrementalEntityGraph), the standing dendrogram is spliced
// (SpliceDendrogram), only touched topics are re-described, and each
// cycle publishes a versioned ServingIndex through the same
// atomic-rename file the online tier hot-reloads.
//
// Determinism contract: the published index after cycle k is a pure
// function of (catalog, day files 0..k, options) — independent of
// num_threads, of restarts (snapshot restore), and of whether earlier
// cycles ran in the same process.
class TaxonomyDaemon {
 public:
  // Imports the catalog, trains the catalog word2vec embedding
  // (single-threaded — see DaemonOptions::num_threads), and restores
  // the standing window from `snapshot_path` when a valid snapshot is
  // present. A snapshot whose options fingerprint or catalog shape
  // disagrees with `options` is an error, not a silent rebuild.
  static util::Result<std::unique_ptr<TaxonomyDaemon>> Create(
      const DaemonOptions& options);

  TaxonomyDaemon(const TaxonomyDaemon&) = delete;
  TaxonomyDaemon& operator=(const TaxonomyDaemon&) = delete;

  // Processes the next unconsumed day file, publishing a new index
  // version and (when configured) a fresh snapshot. Returns nullopt
  // when no unconsumed day file is waiting.
  util::Result<std::optional<CycleReport>> RunOnce();

  uint64_t cycles_done() const { return cycles_done_; }
  uint64_t published_version() const { return published_version_; }
  bool restored_from_snapshot() const { return restored_; }
  const SpoolCatalog& catalog() const { return catalog_; }
  // Static catalog inputs, exposed so tests and the bench can run the
  // from-scratch reference pipeline over the exact same embedding.
  const std::vector<std::vector<uint32_t>>& title_words() const {
    return title_words_;
  }
  const text::EmbeddingTable& word_vectors() const {
    return word2vec_->vectors();
  }
  const IncrementalEntityGraph& graph() const { return *graph_; }
  // Valid after at least one cycle (or a restore).
  const core::Dendrogram& dendrogram() const { return last_dendrogram_; }
  const core::Taxonomy& taxonomy() const { return taxonomy_; }
  const std::vector<std::vector<core::ScoredQuery>>& rankings() const {
    return rankings_;
  }

 private:
  TaxonomyDaemon() = default;

  util::Status Restore(const ckpt::DaemonWindowData& data);
  util::Status SaveSnapshot() const;
  // Regenerates topic descriptions from `rankings_` (a description is
  // by construction the top query texts of its topic's ranking).
  void ApplyDescriptions(const std::vector<uint32_t>& topics);

  DaemonOptions options_;

  // Static catalog state, fixed at Create.
  SpoolCatalog catalog_;
  std::vector<std::vector<uint32_t>> title_words_;
  std::vector<uint32_t> entity_categories_;
  std::vector<std::vector<uint32_t>> query_words_;
  std::vector<std::string> query_texts_;
  std::unique_ptr<text::Word2Vec> word2vec_;

  // Standing window state.
  std::unique_ptr<IncrementalEntityGraph> graph_;
  std::vector<ckpt::DaemonWindowData::WindowDay> window_;  // oldest first
  bool has_model_ = false;
  graph::WeightedGraph last_graph_;
  core::Dendrogram last_dendrogram_;
  core::Taxonomy taxonomy_;
  std::vector<std::vector<core::ScoredQuery>> rankings_;  // by topic id
  uint64_t cycles_done_ = 0;
  uint64_t published_version_ = 0;
  bool restored_ = false;
};

}  // namespace shoal::daemon

#endif  // SHOAL_DAEMON_DAEMON_H_
