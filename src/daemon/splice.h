#ifndef SHOAL_DAEMON_SPLICE_H_
#define SHOAL_DAEMON_SPLICE_H_

#include <cstdint>
#include <vector>

#include "core/dendrogram.h"
#include "core/parallel_hac.h"
#include "graph/weighted_graph.h"
#include "util/result.h"

namespace shoal::daemon {

struct SpliceStats {
  size_t changed_edges = 0;      // added + removed + reweighted
  size_t dirty_components = 0;   // connected components re-clustered
  size_t frozen_components = 0;  // multi-leaf components replayed as-is
  size_t dirty_leaves = 0;
  size_t replayed_merges = 0;    // standing merges kept
  size_t hac_merges = 0;         // merges produced by the dirty-set HAC
  core::ParallelHacStats hac;
};

// Result of one splice: the new standing dendrogram plus the node
// mapping that lets per-topic state (descriptions, rankings) ride
// across cycles.
struct SpliceResult {
  core::Dendrogram dendrogram;
  // dirty_leaf[e] — entity e sits in a component with a changed edge
  // (its subtree was re-clustered this cycle).
  std::vector<bool> dirty_leaf;
  // old dendrogram node id -> new node id for every node of a frozen
  // component (leaves included); kNoNode for nodes of dirty components.
  std::vector<uint32_t> old_to_new_node;
  SpliceStats stats;
};

// Splices the standing dendrogram against the window's new entity
// graph (DESIGN.md §13):
//
//   1. The *dirty set* is found by diffing the old and new materialized
//      graphs (edge added, removed, or reweighted), then expanding each
//      changed edge to its connected component in old ∪ new — the union
//      is what guarantees a component split or merge lands every
//      affected leaf in the dirty set.
//   2. Frozen components replay their standing merges in original
//      relative order (HAC merges only ever join clusters connected by
//      an edge, so every standing merge node's leaves live inside one
//      old component — a merge is either wholly frozen or wholly
//      dirty).
//   3. All dirty components are re-clustered in ONE ParallelHac run
//      over the compact-relabelled induced subgraph of the new graph.
//      HAC never merges across components, and its decisions inside a
//      component depend only on that component's edges, so clustering
//      the dirty components together (or alone, or embedded in the full
//      graph) yields the same per-component trees — which is the
//      argument for both splice correctness and the from-scratch
//      structural identity the tests gate.
//
// The result is deterministic at any `options.hac.num_threads` because
// both the replay order and ParallelHac are.
util::Result<SpliceResult> SpliceDendrogram(
    const graph::WeightedGraph& old_graph,
    const core::Dendrogram& old_dendrogram,
    const graph::WeightedGraph& new_graph,
    const core::ParallelHacOptions& options);

}  // namespace shoal::daemon

#endif  // SHOAL_DAEMON_SPLICE_H_
