#ifndef SHOAL_DAEMON_INCREMENTAL_GRAPH_H_
#define SHOAL_DAEMON_INCREMENTAL_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/entity_graph.h"
#include "core/minhash.h"
#include "core/similarity.h"
#include "graph/bipartite_graph.h"
#include "graph/weighted_graph.h"
#include "text/embedding.h"
#include "util/result.h"

namespace shoal::daemon {

// Aggregated (query, entity) click-count changes of one sliding-window
// step: the incoming day's counts minus the retiring day's. Entries
// with delta == 0 must be dropped by the producer (they would otherwise
// mark the pair dirty for nothing — the stationary head of traffic
// cancels exactly here).
struct ClickDelta {
  struct Entry {
    uint32_t query = 0;
    uint32_t entity = 0;
    int64_t delta = 0;
  };
  std::vector<Entry> entries;
};

struct IncrementalGraphOptions {
  // The Eq. 1-3 scoring knobs shared with BuildEntityGraph. The
  // candidate_strategy field is ignored: the standing store reproduces
  // the exact (kExact) candidacy rule by construction — that is what
  // makes the maintained graph byte-identical to a from-scratch build.
  core::EntityGraphOptions entity_graph;
  // LSH-assisted discovery for brand-new entities: probe the
  // title-shingle band buckets of the catalog for likely partners of
  // each entity entering the window, then keep only probes that pass
  // the exact candidacy rule. Identity-preserving (confirmed probes are
  // a subset of what the dirty-entity sweep finds anyway); it exists to
  // surface new-entity neighbourhoods early and cheaply, and its
  // counters let the daemon report discovery pressure.
  bool lsh_discovery = true;
};

// Per-ApplyDelta telemetry.
struct DeltaStats {
  size_t delta_entries = 0;
  size_t dirty_queries = 0;        // any count change
  size_t dirty_entities = 0;       // query-set membership change
  size_t new_entities = 0;         // empty -> non-empty query set
  size_t retired_entities = 0;     // non-empty -> empty query set
  size_t pairs_rescored = 0;
  size_t edges_added = 0;          // scored-store transitions
  size_t edges_updated = 0;
  size_t edges_removed = 0;
  size_t lsh_probe_pairs = 0;      // band-bucket pair emissions
  size_t lsh_confirmed_pairs = 0;  // probes passing exact candidacy
};

// A standing item entity graph maintained under sliding-window click
// deltas (DESIGN.md §13). Invariant after every ApplyDelta:
//
//   store == { (u,v) : (u,v) is a candidate pair under the current
//              window counts and its Eq. 3 score >= threshold }
//
// — exactly the pre-degree-cap edge store BuildEntityGraph computes
// from scratch, so Materialize() (which runs the same ApplyDegreeCap)
// returns a WeightedGraph byte-identical to a full rebuild of the same
// window, at any thread count.
//
// A pair is a *candidate* when at least one query holds both entities
// in its capped link set (CappedQueryItems — a pure function of the
// (entity, count) multiset). ApplyDelta rescans exactly the pairs whose
// candidacy or score could have changed:
//
//   * dirty-query diff — for each query with changed counts, pairs with
//     an endpoint in the symmetric difference of its old/new capped
//     sets (candidacy gained or lost through this query);
//   * dirty-entity sweep — for each entity whose query-set membership
//     changed, the full capped enumeration over its queries (scores
//     move through clean witness queries too: Eq. 1 is over full query
//     sets, so an entity gaining one query shifts its Jaccard with
//     every partner);
//   * standing edges incident to dirty entities (scores that can only
//     have fallen still need re-checking against the threshold).
//
// Pairs outside this set have unchanged candidacy and unchanged scores,
// which is the whole point: per-cycle work scales with the delta, not
// the window.
class IncrementalEntityGraph {
 public:
  // `title_words` / `word_vectors` describe the static catalog; content
  // profiles are computed once here (titles do not drift). The
  // embedding table is borrowed and must outlive the graph.
  static util::Result<IncrementalEntityGraph> Create(
      size_t num_queries,
      const std::vector<std::vector<uint32_t>>& title_words,
      const text::EmbeddingTable& word_vectors,
      const IncrementalGraphOptions& options);

  // Applies one window step. Fails (leaving the graph unusable) if a
  // count would go negative — the producer fed a retirement that was
  // never ingested.
  util::Status ApplyDelta(const ClickDelta& delta, DeltaStats* stats);

  // Finalises the standing store through the shared degree-cap pass.
  util::Result<graph::WeightedGraph> Materialize() const;

  // The current window as a query-item bipartite graph (queries
  // ascending, entities ascending within each query) — input for the
  // topic describer. Aggregate counts match any insertion order, so
  // describer output is identical to the from-scratch path's.
  graph::BipartiteGraph WindowGraph() const;

  // Sorted query ids of entity e under the current window.
  const std::vector<uint32_t>& QueriesOf(uint32_t e) const {
    return queries_of_[e];
  }

  size_t num_queries() const { return query_counts_.size(); }
  size_t num_entities() const { return queries_of_.size(); }
  size_t store_size() const { return store_.size(); }

  // The standing scored edges, sorted by (u, v). Exposed for snapshot
  // verification and tests; Materialize() is the serving-path view.
  std::vector<core::ScoredEdge> StoreEdges() const;

 private:
  IncrementalEntityGraph() = default;

  static uint64_t PairKey(uint32_t u, uint32_t v) {
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  // Capped link set of a query under the current counts, as a sorted
  // vector (empty when the query has no links).
  std::vector<uint32_t> CappedSetOf(uint32_t q) const;

  // True when some query's capped set holds both u and v.
  bool IsCandidate(uint32_t u, uint32_t v,
                   const std::vector<std::vector<uint32_t>>& capped_cache,
                   const std::vector<char>& capped_valid) const;

  double Score(uint32_t u, uint32_t v) const;

  IncrementalGraphOptions options_;
  const text::EmbeddingTable* word_vectors_ = nullptr;
  std::vector<core::ContentProfile> profiles_;

  // Window state: per-query (entity -> count), and per-entity sorted
  // query sets (the Eq. 1 inputs).
  std::vector<std::unordered_map<uint32_t, uint32_t>> query_counts_;
  std::vector<std::vector<uint32_t>> queries_of_;

  // The standing scored edge store: packed (u<<32|v), u < v -> Eq. 3
  // score.
  std::unordered_map<uint64_t, double> store_;

  // Static title-shingle LSH index over the catalog (built lazily on
  // the first delta that needs it).
  struct LshIndex {
    core::MinHashConfig config;
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
    std::vector<std::vector<uint64_t>> keys_of;  // per entity
    bool built = false;
  };
  mutable LshIndex lsh_;
  const std::vector<std::vector<uint32_t>>* title_words_ = nullptr;

  void BuildLshIndex() const;
};

}  // namespace shoal::daemon

#endif  // SHOAL_DAEMON_INCREMENTAL_GRAPH_H_
