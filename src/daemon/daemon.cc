#include "daemon/daemon.h"

#include <algorithm>
#include <filesystem>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/serving_index.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace shoal::daemon {

namespace {

uint64_t PairKey(uint32_t query, uint32_t entity) {
  return (static_cast<uint64_t>(query) << 32) | entity;
}

std::string SpoolPath(const std::string& dir, const std::string& file) {
  return (std::filesystem::path(dir) / file).string();
}

// The snapshot's options fingerprint for `options` — the knobs that
// shape the standing store and dendrogram. Describer/serving knobs are
// applied per cycle and need no resume agreement.
void StampFingerprint(const DaemonOptions& options, size_t num_queries,
                      size_t num_entities, ckpt::DaemonWindowData* data) {
  data->alpha = options.entity_graph.alpha;
  data->similarity_threshold = options.entity_graph.similarity_threshold;
  data->max_items_per_query = options.entity_graph.max_items_per_query;
  data->max_degree = options.entity_graph.max_degree;
  data->hac_threshold = options.hac.hac.threshold;
  data->hac_linkage = static_cast<uint32_t>(options.hac.hac.linkage);
  data->diffusion_iterations = options.hac.diffusion_iterations;
  data->num_queries = num_queries;
  data->num_entities = num_entities;
}

}  // namespace

util::Result<std::unique_ptr<TaxonomyDaemon>> TaxonomyDaemon::Create(
    const DaemonOptions& options) {
  if (options.spool_dir.empty() || options.index_path.empty()) {
    return util::Status::InvalidArgument(
        "daemon needs a spool directory and an index path");
  }
  if (options.window_days == 0) {
    return util::Status::InvalidArgument("window_days must be >= 1");
  }

  std::unique_ptr<TaxonomyDaemon> daemon(new TaxonomyDaemon());
  daemon->options_ = options;
  if (options.num_threads > 0) {
    const size_t threads = std::min<size_t>(options.num_threads, 256);
    daemon->options_.entity_graph.num_threads = threads;
    daemon->options_.hac.num_threads = threads;
  }

  SHOAL_ASSIGN_OR_RETURN(daemon->catalog_,
                         ImportSpoolCatalog(options.spool_dir));
  const size_t num_entities = daemon->catalog_.items.size();
  const size_t num_queries = daemon->catalog_.queries.size();
  daemon->title_words_.reserve(num_entities);
  daemon->entity_categories_.reserve(num_entities);
  for (const data::ItemEntity& item : daemon->catalog_.items) {
    daemon->title_words_.push_back(item.title_words);
    daemon->entity_categories_.push_back(item.category);
  }
  daemon->query_words_.reserve(num_queries);
  daemon->query_texts_.reserve(num_queries);
  for (const data::SearchQuery& query : daemon->catalog_.queries) {
    daemon->query_words_.push_back(query.words);
    daemon->query_texts_.push_back(query.text);
  }

  // Catalog embedding, trained once: titles then queries, the same
  // corpus order the batch pipeline uses. Single-threaded SGD so the
  // vectors — and through them every standing edge score — are a
  // deterministic function of the catalog.
  {
    obs::ScopedSpan span("daemon.word2vec");
    std::vector<std::vector<uint32_t>> corpus;
    corpus.reserve(num_entities + num_queries);
    for (const auto& title : daemon->title_words_) corpus.push_back(title);
    for (const auto& words : daemon->query_words_) corpus.push_back(words);
    text::Word2VecOptions w2v = daemon->options_.word2vec;
    w2v.num_threads = 1;
    auto trained = text::Word2Vec::Train(daemon->catalog_.vocab, corpus, w2v);
    if (!trained.ok()) return trained.status();
    daemon->word2vec_ =
        std::make_unique<text::Word2Vec>(std::move(trained).value());
  }

  IncrementalGraphOptions graph_options;
  graph_options.entity_graph = daemon->options_.entity_graph;
  graph_options.lsh_discovery = daemon->options_.lsh_discovery;
  auto graph = IncrementalEntityGraph::Create(
      num_queries, daemon->title_words_, daemon->word2vec_->vectors(),
      graph_options);
  if (!graph.ok()) return graph.status();
  daemon->graph_ =
      std::make_unique<IncrementalEntityGraph>(std::move(graph).value());

  if (!options.snapshot_path.empty() &&
      std::filesystem::exists(options.snapshot_path)) {
    SHOAL_ASSIGN_OR_RETURN(ckpt::SnapshotFile file,
                           ckpt::ReadSnapshotFile(options.snapshot_path));
    if (file.kind != ckpt::SnapshotKind::kDaemonWindow) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "%s holds a %s snapshot, not daemon window state",
          options.snapshot_path.c_str(), ckpt::SnapshotKindName(file.kind)));
    }
    SHOAL_ASSIGN_OR_RETURN(ckpt::DaemonWindowData data,
                           ckpt::DecodeDaemonWindow(file.payload));
    SHOAL_RETURN_IF_ERROR(daemon->Restore(data));
  }
  return daemon;
}

util::Status TaxonomyDaemon::Restore(const ckpt::DaemonWindowData& data) {
  ckpt::DaemonWindowData expect;
  StampFingerprint(options_, graph_->num_queries(), graph_->num_entities(),
                   &expect);
  if (data.alpha != expect.alpha ||
      data.similarity_threshold != expect.similarity_threshold ||
      data.max_items_per_query != expect.max_items_per_query ||
      data.max_degree != expect.max_degree ||
      data.hac_threshold != expect.hac_threshold ||
      data.hac_linkage != expect.hac_linkage ||
      data.diffusion_iterations != expect.diffusion_iterations) {
    return util::Status::InvalidArgument(
        "daemon window snapshot was captured under different scoring or "
        "clustering options; resuming would not reproduce an uninterrupted "
        "run — remove the snapshot to rebuild from the spool");
  }
  if (data.num_queries != expect.num_queries ||
      data.num_entities != expect.num_entities) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "daemon window snapshot describes a %llu-query / %llu-entity "
        "catalog but the spool holds %llu / %llu",
        static_cast<unsigned long long>(data.num_queries),
        static_cast<unsigned long long>(data.num_entities),
        static_cast<unsigned long long>(expect.num_queries),
        static_cast<unsigned long long>(expect.num_entities)));
  }
  if (data.num_leaves != expect.num_entities) {
    return util::Status::InvalidArgument(
        "daemon window snapshot dendrogram leaf count does not match the "
        "catalog");
  }

  // Rebuild the standing store by replaying each window day's
  // aggregates as an all-positive delta — the store is a deterministic
  // function of the window counts, so this reproduces the killed
  // daemon's store exactly.
  for (const auto& day : data.window) {
    ClickDelta delta;
    delta.entries.reserve(day.pairs.size());
    for (const auto& pair : day.pairs) {
      delta.entries.push_back(
          {pair.query, pair.entity, static_cast<int64_t>(pair.count)});
    }
    DeltaStats stats;
    SHOAL_RETURN_IF_ERROR(graph_->ApplyDelta(delta, &stats));
  }
  window_ = data.window;
  SHOAL_ASSIGN_OR_RETURN(last_graph_, graph_->Materialize());

  core::Dendrogram dendrogram(data.num_leaves);
  for (size_t i = 0; i < data.merges.size(); ++i) {
    const auto& m = data.merges[i];
    auto merged = dendrogram.Merge(m.left, m.right, m.similarity);
    if (!merged.ok()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "daemon window snapshot merge %zu (%u, %u) does not replay: %s",
          i, m.left, m.right, merged.status().message().c_str()));
    }
  }
  last_dendrogram_ = std::move(dendrogram);

  taxonomy_ = core::Taxonomy::Build(last_dendrogram_, entity_categories_,
                                    options_.taxonomy);
  std::unordered_map<uint32_t, uint32_t> topic_of_node;
  topic_of_node.reserve(taxonomy_.num_topics());
  for (uint32_t t = 0; t < taxonomy_.num_topics(); ++t) {
    topic_of_node[taxonomy_.topic(t).dendro_node] = t;
  }
  if (data.rankings.size() != taxonomy_.num_topics()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "daemon window snapshot carries %zu topic rankings but the "
        "restored taxonomy has %zu topics",
        data.rankings.size(), taxonomy_.num_topics()));
  }
  rankings_.assign(taxonomy_.num_topics(), {});
  std::vector<uint32_t> all_topics;
  all_topics.reserve(taxonomy_.num_topics());
  for (const auto& entry : data.rankings) {
    auto it = topic_of_node.find(entry.dendro_node);
    if (it == topic_of_node.end()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "daemon window snapshot ranks dendrogram node %u, which is not "
          "a topic of the restored taxonomy",
          entry.dendro_node));
    }
    rankings_[it->second] = entry.ranking;
    all_topics.push_back(it->second);
  }
  ApplyDescriptions(all_topics);

  cycles_done_ = data.cycles_done;
  published_version_ = data.published_version;
  has_model_ = true;
  restored_ = true;
  return util::Status::OK();
}

void TaxonomyDaemon::ApplyDescriptions(const std::vector<uint32_t>& topics) {
  for (uint32_t t : topics) {
    core::Topic& topic = taxonomy_.topic(t);
    topic.description.clear();
    const auto& ranking = rankings_[t];
    const size_t k =
        std::min(options_.describer.queries_per_topic, ranking.size());
    topic.description.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      topic.description.push_back(query_texts_[ranking[i].query]);
    }
  }
}

util::Status TaxonomyDaemon::SaveSnapshot() const {
  ckpt::DaemonWindowData data;
  StampFingerprint(options_, graph_->num_queries(), graph_->num_entities(),
                   &data);
  data.cycles_done = cycles_done_;
  data.published_version = published_version_;
  data.window = window_;
  data.num_leaves = last_dendrogram_.num_leaves();
  data.merges.reserve(last_dendrogram_.num_merges());
  for (uint32_t id = last_dendrogram_.num_leaves();
       id < last_dendrogram_.num_nodes(); ++id) {
    const auto& node = last_dendrogram_.node(id);
    data.merges.push_back({node.left, node.right, node.merge_similarity});
  }
  data.rankings.reserve(taxonomy_.num_topics());
  for (uint32_t t = 0; t < taxonomy_.num_topics(); ++t) {
    data.rankings.push_back({taxonomy_.topic(t).dendro_node, rankings_[t]});
  }
  std::sort(data.rankings.begin(), data.rankings.end(),
            [](const auto& a, const auto& b) {
              return a.dendro_node < b.dendro_node;
            });
  return ckpt::WriteSnapshotFile(options_.snapshot_path,
                                 ckpt::SnapshotKind::kDaemonWindow,
                                 ckpt::EncodeDaemonWindow(data));
}

util::Result<std::optional<CycleReport>> TaxonomyDaemon::RunOnce() {
  SHOAL_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         ListDayFiles(options_.spool_dir));
  const std::string last_consumed =
      window_.empty() ? std::string() : window_.back().name;
  const std::string* next = nullptr;
  for (const std::string& name : names) {
    if (name > last_consumed) {
      next = &name;
      break;
    }
  }
  if (next == nullptr) return std::optional<CycleReport>();

  obs::ScopedSpan cycle_span("daemon.cycle");
  util::Stopwatch total_watch;
  util::Stopwatch watch;
  CycleReport report;
  report.day_file = *next;

  // ---- ingest: read + aggregate the incoming day ----------------------
  SHOAL_ASSIGN_OR_RETURN(
      std::vector<data::ClickEvent> clicks,
      ReadDayClicks(SpoolPath(options_.spool_dir, *next),
                    graph_->num_queries(), graph_->num_entities()));
  std::unordered_map<uint64_t, uint32_t> day_counts;
  day_counts.reserve(clicks.size());
  for (const data::ClickEvent& click : clicks) {
    ++day_counts[PairKey(click.query, click.entity)];
  }
  ckpt::DaemonWindowData::WindowDay day;
  day.name = *next;
  day.pairs.reserve(day_counts.size());
  for (const auto& [key, count] : day_counts) {
    day.pairs.push_back({static_cast<uint32_t>(key >> 32),
                         static_cast<uint32_t>(key & 0xffffffffu), count});
  }
  std::sort(day.pairs.begin(), day.pairs.end(),
            [](const auto& a, const auto& b) {
              if (a.query != b.query) return a.query < b.query;
              return a.entity < b.entity;
            });

  // ---- diff: incoming counts minus the retiring day's ------------------
  const bool retire = window_.size() == options_.window_days;
  std::unordered_map<uint64_t, int64_t> delta_map;
  delta_map.reserve(day.pairs.size());
  for (const auto& pair : day.pairs) {
    delta_map[PairKey(pair.query, pair.entity)] += pair.count;
  }
  if (retire) {
    for (const auto& pair : window_.front().pairs) {
      delta_map[PairKey(pair.query, pair.entity)] -= pair.count;
    }
  }
  ClickDelta delta;
  delta.entries.reserve(delta_map.size());
  for (const auto& [key, value] : delta_map) {
    // The stationary head of traffic cancels exactly here; zero-delta
    // pairs must not reach ApplyDelta (they would dirty for nothing).
    if (value == 0) continue;
    delta.entries.push_back({static_cast<uint32_t>(key >> 32),
                             static_cast<uint32_t>(key & 0xffffffffu),
                             value});
  }
  std::sort(delta.entries.begin(), delta.entries.end(),
            [](const ClickDelta::Entry& a, const ClickDelta::Entry& b) {
              if (a.query != b.query) return a.query < b.query;
              return a.entity < b.entity;
            });
  report.ingest_seconds = watch.ElapsedSeconds();

  // ---- graph: apply the delta to the standing store --------------------
  watch.Restart();
  SHOAL_RETURN_IF_ERROR(graph_->ApplyDelta(delta, &report.delta));
  SHOAL_ASSIGN_OR_RETURN(graph::WeightedGraph new_graph,
                         graph_->Materialize());
  report.graph_seconds = watch.ElapsedSeconds();

  // ---- cluster: splice the standing dendrogram -------------------------
  watch.Restart();
  core::Dendrogram dendrogram;
  std::vector<uint32_t> old_to_new_node;
  const size_t num_entities = graph_->num_entities();
  if (!has_model_) {
    report.full_rebuild = true;
    auto full = core::ParallelHac(new_graph, options_.hac,
                                  &report.splice.hac);
    if (!full.ok()) return full.status();
    dendrogram = std::move(full).value();
    report.splice.dirty_leaves = num_entities;
    report.dirty_fraction = 1.0;
  } else {
    auto spliced = SpliceDendrogram(last_graph_, last_dendrogram_, new_graph,
                                    options_.hac);
    if (!spliced.ok()) return spliced.status();
    dendrogram = std::move(spliced->dendrogram);
    old_to_new_node = std::move(spliced->old_to_new_node);
    report.splice = spliced->stats;
    report.dirty_fraction =
        num_entities == 0 ? 0.0
                          : static_cast<double>(report.splice.dirty_leaves) /
                                static_cast<double>(num_entities);
  }
  report.cluster_seconds = watch.ElapsedSeconds();

  // ---- describe: re-score touched topics, carry the rest ---------------
  watch.Restart();
  core::Taxonomy taxonomy = core::Taxonomy::Build(
      dendrogram, entity_categories_, options_.taxonomy);
  report.num_topics = taxonomy.num_topics();

  // A new topic is carried when its backing node is the image of an old
  // topic's node under the frozen replay — the subtree (members and
  // structure) is then identical, so the previous cycle's ranking and
  // description still describe it. Everything else is touched.
  std::unordered_map<uint32_t, uint32_t> old_topic_of_new_node;
  if (!report.full_rebuild) {
    old_topic_of_new_node.reserve(taxonomy_.num_topics());
    for (uint32_t t = 0; t < taxonomy_.num_topics(); ++t) {
      const uint32_t old_node = taxonomy_.topic(t).dendro_node;
      const uint32_t new_node = old_node < old_to_new_node.size()
                                    ? old_to_new_node[old_node]
                                    : core::kNoNode;
      if (new_node != core::kNoNode) old_topic_of_new_node[new_node] = t;
    }
  }
  std::vector<uint32_t> touched;
  std::vector<std::pair<uint32_t, uint32_t>> carried;  // (new, old)
  for (uint32_t t = 0; t < taxonomy.num_topics(); ++t) {
    auto it = old_topic_of_new_node.find(taxonomy.topic(t).dendro_node);
    if (it == old_topic_of_new_node.end()) {
      touched.push_back(t);
    } else {
      carried.push_back({t, it->second});
    }
  }
  report.touched_topics = touched.size();
  report.carried_topics = carried.size();

  graph::BipartiteGraph window_graph = graph_->WindowGraph();
  core::DescriberInput describe_input;
  describe_input.taxonomy = &taxonomy;
  describe_input.query_item_graph = &window_graph;
  describe_input.query_words = &query_words_;
  describe_input.query_texts = &query_texts_;
  describe_input.entity_title_words = &title_words_;
  auto scored = core::TopicDescriber::DescribeTopics(
      taxonomy, describe_input, options_.describer, touched);
  if (!scored.ok()) return scored.status();
  std::vector<std::vector<core::ScoredQuery>> rankings =
      std::move(scored).value();
  for (const auto& [new_topic, old_topic] : carried) {
    rankings[new_topic] = rankings_[old_topic];
    taxonomy.topic(new_topic).description =
        taxonomy_.topic(old_topic).description;
  }
  report.describe_seconds = watch.ElapsedSeconds();

  // ---- publish: compile + atomic write, hot-reloadable -----------------
  watch.Restart();
  const uint64_t version = published_version_ == 0
                               ? options_.first_version
                               : published_version_ + 1;
  serve::CompileOptions compile_options;
  compile_options.version = version;
  compile_options.max_postings_per_query = options_.max_postings_per_query;
  auto index_data = serve::BuildServingIndexData(
      taxonomy, rankings, query_texts_, &entity_categories_,
      compile_options);
  if (!index_data.ok()) return index_data.status();
  SHOAL_RETURN_IF_ERROR(
      serve::WriteServingIndexFile(options_.index_path, index_data.value()));
  report.publish_seconds = watch.ElapsedSeconds();
  report.published_version = version;

  // ---- commit the standing state ---------------------------------------
  if (retire) window_.erase(window_.begin());
  window_.push_back(std::move(day));
  report.window_days = window_.size();
  last_graph_ = std::move(new_graph);
  last_dendrogram_ = std::move(dendrogram);
  taxonomy_ = std::move(taxonomy);
  rankings_ = std::move(rankings);
  published_version_ = version;
  ++cycles_done_;
  has_model_ = true;

  watch.Restart();
  if (!options_.snapshot_path.empty()) {
    SHOAL_RETURN_IF_ERROR(SaveSnapshot());
  }
  report.snapshot_seconds = watch.ElapsedSeconds();
  report.total_seconds = total_watch.ElapsedSeconds();

  cycle_span.AddArg("delta_entries",
                    static_cast<double>(report.delta.delta_entries));
  cycle_span.AddArg("dirty_fraction", report.dirty_fraction);
  cycle_span.AddArg("reclustered_subtrees",
                    static_cast<double>(report.splice.dirty_components));
  cycle_span.AddArg("publish_seconds", report.publish_seconds);
  auto& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled()) {
    metrics.GetCounter("daemon.cycles").Increment();
    metrics.GetGauge("daemon.cycle.delta_entries")
        .Set(static_cast<double>(report.delta.delta_entries));
    metrics.GetGauge("daemon.cycle.dirty_fraction")
        .Set(report.dirty_fraction);
    metrics.GetGauge("daemon.cycle.reclustered_subtrees")
        .Set(static_cast<double>(report.splice.dirty_components));
    metrics.GetGauge("daemon.publish.version")
        .Set(static_cast<double>(version));
    metrics.GetHistogram("daemon.cycle.publish_seconds")
        .Record(report.publish_seconds);
    metrics.GetHistogram("daemon.cycle.seconds")
        .Record(report.total_seconds);
  }
  return std::optional<CycleReport>(std::move(report));
}

}  // namespace shoal::daemon
