#include "daemon/incremental_graph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace shoal::daemon {

namespace {

// Sorted-set insert/erase for the per-entity query lists.
bool SortedInsert(std::vector<uint32_t>& v, uint32_t x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

bool SortedErase(std::vector<uint32_t>& v, uint32_t x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

bool SortedContains(const std::vector<uint32_t>& v, uint32_t x) {
  return std::binary_search(v.begin(), v.end(), x);
}

}  // namespace

util::Result<IncrementalEntityGraph> IncrementalEntityGraph::Create(
    size_t num_queries,
    const std::vector<std::vector<uint32_t>>& title_words,
    const text::EmbeddingTable& word_vectors,
    const IncrementalGraphOptions& options) {
  if (options.entity_graph.max_items_per_query == 0) {
    return util::Status::InvalidArgument("max_items_per_query must be > 0");
  }
  IncrementalEntityGraph graph;
  graph.options_ = options;
  graph.word_vectors_ = &word_vectors;
  graph.title_words_ = &title_words;
  graph.query_counts_.resize(num_queries);
  graph.queries_of_.resize(title_words.size());
  graph.profiles_ =
      core::BuildContentProfiles(word_vectors, title_words, nullptr);
  graph.lsh_.config = options.entity_graph.lsh.minhash;
  return graph;
}

std::vector<uint32_t> IncrementalEntityGraph::CappedSetOf(uint32_t q) const {
  const auto& counts = query_counts_[q];
  std::vector<graph::BipartiteGraph::Link> links;
  links.reserve(counts.size());
  for (const auto& [entity, count] : counts) {
    links.push_back({entity, count});
  }
  // CappedQueryItems selects a set independent of link order, but give
  // it the canonical ascending order anyway so the under-cap fast path
  // returns sorted ids directly.
  std::sort(links.begin(), links.end(),
            [](const graph::BipartiteGraph::Link& a,
               const graph::BipartiteGraph::Link& b) { return a.id < b.id; });
  bool capped = false;
  std::vector<uint32_t> items = core::CappedQueryItems(
      links, options_.entity_graph.max_items_per_query, &capped);
  if (capped) std::sort(items.begin(), items.end());
  return items;
}

double IncrementalEntityGraph::Score(uint32_t u, uint32_t v) const {
  const double sq = core::QueryJaccard(queries_of_[u], queries_of_[v]);
  const double sc = core::ContentSimilarity(profiles_[u], profiles_[v]);
  return core::CombinedSimilarity(sq, sc, options_.entity_graph.alpha);
}

void IncrementalEntityGraph::BuildLshIndex() const {
  if (lsh_.built) return;
  core::MinHasher hasher(lsh_.config);
  std::vector<uint64_t> shingles;
  std::vector<uint64_t> signature;
  std::vector<uint64_t> band_keys;
  lsh_.keys_of.resize(title_words_->size());
  for (uint32_t e = 0; e < title_words_->size(); ++e) {
    shingles.clear();
    core::AppendTitleShingles((*title_words_)[e],
                              options_.entity_graph.lsh.title_shingle_len,
                              &shingles);
    std::sort(shingles.begin(), shingles.end());
    shingles.erase(std::unique(shingles.begin(), shingles.end()),
                   shingles.end());
    if (!hasher.BandKeys(shingles, &signature, &band_keys)) continue;
    lsh_.keys_of[e] = band_keys;
    for (uint64_t key : band_keys) lsh_.buckets[key].push_back(e);
  }
  lsh_.built = true;
}

bool IncrementalEntityGraph::IsCandidate(
    uint32_t u, uint32_t v,
    const std::vector<std::vector<uint32_t>>& capped_cache,
    const std::vector<char>& capped_valid) const {
  // Walk the (sorted) common queries of u and v; the pair is a
  // candidate iff some common query's capped set holds both.
  const auto& qu = queries_of_[u];
  const auto& qv = queries_of_[v];
  size_t i = 0, j = 0;
  while (i < qu.size() && j < qv.size()) {
    if (qu[i] < qv[j]) {
      ++i;
    } else if (qu[i] > qv[j]) {
      ++j;
    } else {
      // ApplyDelta pre-fills the cache for every query set of every
      // rescored pair's endpoints; a miss here would be a logic bug,
      // not a data condition (and must not be repaired lazily — this
      // runs from parallel workers over shared read-only state).
      const uint32_t q = qu[i];
      SHOAL_CHECK(capped_valid[q]) << "capped set of query " << q
                                   << " was not pre-filled";
      const std::vector<uint32_t>& capped = capped_cache[q];
      if (SortedContains(capped, u) && SortedContains(capped, v)) return true;
      ++i;
      ++j;
    }
  }
  return false;
}

util::Status IncrementalEntityGraph::ApplyDelta(const ClickDelta& delta,
                                                DeltaStats* stats) {
  DeltaStats local;
  local.delta_entries = delta.entries.size();

  // ---- pass 1: dirty queries and their pre-delta capped sets ----------
  std::vector<uint32_t> dirty_queries;
  {
    std::vector<char> seen(query_counts_.size(), 0);
    for (const ClickDelta::Entry& entry : delta.entries) {
      if (entry.query >= query_counts_.size() ||
          entry.entity >= queries_of_.size()) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "delta entry (%u, %u) out of range", entry.query, entry.entity));
      }
      if (entry.delta == 0) continue;
      if (!seen[entry.query]) {
        seen[entry.query] = 1;
        dirty_queries.push_back(entry.query);
      }
    }
  }
  std::sort(dirty_queries.begin(), dirty_queries.end());
  local.dirty_queries = dirty_queries.size();

  std::unordered_map<uint32_t, std::vector<uint32_t>> old_capped;
  old_capped.reserve(dirty_queries.size());
  for (uint32_t q : dirty_queries) old_capped.emplace(q, CappedSetOf(q));

  // ---- pass 2: apply the count changes ---------------------------------
  std::vector<uint32_t> dirty_entities;  // membership changed
  std::vector<uint32_t> new_entities;    // empty -> non-empty
  {
    std::vector<char> entity_seen(queries_of_.size(), 0);
    for (const ClickDelta::Entry& entry : delta.entries) {
      if (entry.delta == 0) continue;
      auto& counts = query_counts_[entry.query];
      auto it = counts.find(entry.entity);
      const int64_t old_count = it == counts.end() ? 0 : it->second;
      const int64_t new_count = old_count + entry.delta;
      if (new_count < 0) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "window count for (%u, %u) went negative (%lld)", entry.query,
            entry.entity, static_cast<long long>(new_count)));
      }
      if (new_count == 0) {
        if (it != counts.end()) counts.erase(it);
      } else if (it == counts.end()) {
        counts.emplace(entry.entity, static_cast<uint32_t>(new_count));
      } else {
        it->second = static_cast<uint32_t>(new_count);
      }
      // Membership transitions drive the Eq. 1 query sets.
      if (old_count == 0 && new_count > 0) {
        const bool was_empty = queries_of_[entry.entity].empty();
        SortedInsert(queries_of_[entry.entity], entry.query);
        if (!entity_seen[entry.entity]) {
          entity_seen[entry.entity] = 1;
          dirty_entities.push_back(entry.entity);
        }
        if (was_empty) new_entities.push_back(entry.entity);
      } else if (old_count > 0 && new_count == 0) {
        SortedErase(queries_of_[entry.entity], entry.query);
        if (!entity_seen[entry.entity]) {
          entity_seen[entry.entity] = 1;
          dirty_entities.push_back(entry.entity);
        }
        if (queries_of_[entry.entity].empty()) ++local.retired_entities;
      }
    }
  }
  std::sort(dirty_entities.begin(), dirty_entities.end());
  std::sort(new_entities.begin(), new_entities.end());
  new_entities.erase(std::unique(new_entities.begin(), new_entities.end()),
                     new_entities.end());
  // An entity that appeared and fully retired within one delta is not new.
  new_entities.erase(
      std::remove_if(new_entities.begin(), new_entities.end(),
                     [&](uint32_t e) { return queries_of_[e].empty(); }),
      new_entities.end());
  local.dirty_entities = dirty_entities.size();
  local.new_entities = new_entities.size();

  // ---- pass 3: post-delta capped sets for every query we may touch -----
  std::vector<std::vector<uint32_t>> capped_cache(query_counts_.size());
  std::vector<char> capped_valid(query_counts_.size(), 0);
  {
    std::vector<uint32_t> needed = dirty_queries;
    // Witness checks walk the common queries of pair endpoints; every
    // endpoint is either a dirty entity or a member of some dirty
    // query's capped set, so pre-filling the union of their query sets
    // covers every lookup the rescore loop can make.
    auto need_entity = [&](uint32_t e) {
      needed.insert(needed.end(), queries_of_[e].begin(),
                    queries_of_[e].end());
    };
    for (uint32_t e : dirty_entities) need_entity(e);
    for (uint32_t q : dirty_queries) {
      for (uint32_t e : old_capped[q]) need_entity(e);
      // New capped members are part of the post-delta set, computed
      // below once the cache knows it is needed.
    }
    // The post-delta capped set of a dirty query can include entities
    // that were not in the old set; their query sets are needed too.
    for (uint32_t q : dirty_queries) {
      std::vector<uint32_t> capped = CappedSetOf(q);
      for (uint32_t e : capped) need_entity(e);
      capped_cache[q] = std::move(capped);
      capped_valid[q] = 1;
    }
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
    std::vector<uint32_t> to_fill;
    for (uint32_t q : needed) {
      if (!capped_valid[q]) to_fill.push_back(q);
    }
    const size_t threads = options_.entity_graph.num_threads;
    if (threads != 1 && to_fill.size() > 256) {
      util::ThreadPool pool(threads);
      pool.ParallelFor(to_fill.size(), [&](size_t i) {
        capped_cache[to_fill[i]] = CappedSetOf(to_fill[i]);
      });
    } else {
      for (uint32_t q : to_fill) capped_cache[q] = CappedSetOf(q);
    }
    for (uint32_t q : to_fill) capped_valid[q] = 1;
  }

  // ---- pass 4: collect the rescore pair set ----------------------------
  std::vector<uint64_t> pairs;
  auto add_pair = [&](uint32_t a, uint32_t b) {
    if (a == b) return;
    if (a > b) std::swap(a, b);
    pairs.push_back(PairKey(a, b));
  };

  // (a) dirty-query diff: pairs with an endpoint in the symmetric
  // difference of the query's old/new capped sets.
  for (uint32_t q : dirty_queries) {
    const std::vector<uint32_t>& before = old_capped[q];
    const std::vector<uint32_t>& after = capped_cache[q];
    std::vector<uint32_t> sym_diff;
    std::set_symmetric_difference(before.begin(), before.end(), after.begin(),
                                  after.end(), std::back_inserter(sym_diff));
    if (sym_diff.empty()) continue;
    std::vector<uint32_t> all;
    std::set_union(before.begin(), before.end(), after.begin(), after.end(),
                   std::back_inserter(all));
    for (uint32_t x : sym_diff) {
      for (uint32_t y : all) add_pair(x, y);
    }
  }

  // (b) dirty-entity sweep: full capped enumeration over their queries.
  {
    std::vector<char> is_dirty(queries_of_.size(), 0);
    for (uint32_t e : dirty_entities) is_dirty[e] = 1;
    for (uint32_t u : dirty_entities) {
      for (uint32_t q : queries_of_[u]) {
        const std::vector<uint32_t>& capped = capped_cache[q];
        if (!SortedContains(capped, u)) continue;
        for (uint32_t v : capped) add_pair(u, v);
      }
    }
    // (c) standing edges incident to dirty entities.
    for (const auto& [key, score] : store_) {
      const uint32_t u = static_cast<uint32_t>(key >> 32);
      const uint32_t v = static_cast<uint32_t>(key);
      if (is_dirty[u] || is_dirty[v]) pairs.push_back(key);
    }
  }

  // (d) LSH-assisted discovery for entities entering the window: probe
  // the catalog's title-shingle buckets, keep probes that pass exact
  // candidacy. Confirmed probes are a subset of (b), so this changes no
  // output — it feeds the discovery counters and keeps the new-entity
  // path honest about what a sub-quadratic candidate stage would see.
  if (options_.lsh_discovery && !new_entities.empty()) {
    BuildLshIndex();
    const size_t max_bucket = options_.entity_graph.lsh.max_bucket;
    for (uint32_t e : new_entities) {
      std::vector<uint32_t> partners;
      for (uint64_t key : lsh_.keys_of[e]) {
        const auto it = lsh_.buckets.find(key);
        if (it == lsh_.buckets.end()) continue;
        if (max_bucket > 0 && it->second.size() > max_bucket) continue;
        for (uint32_t other : it->second) {
          if (other == e || queries_of_[other].empty()) continue;
          partners.push_back(other);
        }
      }
      std::sort(partners.begin(), partners.end());
      partners.erase(std::unique(partners.begin(), partners.end()),
                     partners.end());
      local.lsh_probe_pairs += partners.size();
      for (uint32_t other : partners) {
        if (IsCandidate(std::min(e, other), std::max(e, other), capped_cache,
                        capped_valid)) {
          ++local.lsh_confirmed_pairs;
          add_pair(e, other);
        }
      }
    }
  }

  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  local.pairs_rescored = pairs.size();

  // ---- pass 5: rescore ----------------------------------------------
  // Each pair's verdict is a pure function of post-delta state; score in
  // parallel, apply serially in sorted order.
  struct Verdict {
    bool keep = false;
    double score = 0.0;
  };
  std::vector<Verdict> verdicts(pairs.size());
  auto judge = [&](size_t i) {
    const uint32_t u = static_cast<uint32_t>(pairs[i] >> 32);
    const uint32_t v = static_cast<uint32_t>(pairs[i]);
    if (!IsCandidate(u, v, capped_cache, capped_valid)) return;
    const double s = Score(u, v);
    if (s >= options_.entity_graph.similarity_threshold) {
      verdicts[i] = {true, s};
    }
  };
  const size_t threads = options_.entity_graph.num_threads;
  if (threads != 1 && pairs.size() > 512) {
    util::ThreadPool pool(threads);
    pool.ParallelFor(pairs.size(), judge);
  } else {
    for (size_t i = 0; i < pairs.size(); ++i) judge(i);
  }

  for (size_t i = 0; i < pairs.size(); ++i) {
    auto it = store_.find(pairs[i]);
    if (verdicts[i].keep) {
      if (it == store_.end()) {
        store_.emplace(pairs[i], verdicts[i].score);
        ++local.edges_added;
      } else if (it->second != verdicts[i].score) {
        it->second = verdicts[i].score;
        ++local.edges_updated;
      }
    } else if (it != store_.end()) {
      store_.erase(it);
      ++local.edges_removed;
    }
  }

  if (stats != nullptr) *stats = local;
  return util::Status::OK();
}

std::vector<core::ScoredEdge> IncrementalEntityGraph::StoreEdges() const {
  std::vector<core::ScoredEdge> edges;
  edges.reserve(store_.size());
  for (const auto& [key, score] : store_) {
    edges.push_back({static_cast<uint32_t>(key >> 32),
                     static_cast<uint32_t>(key), score});
  }
  std::sort(edges.begin(), edges.end(),
            [](const core::ScoredEdge& a, const core::ScoredEdge& b) {
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  return edges;
}

util::Result<graph::WeightedGraph> IncrementalEntityGraph::Materialize()
    const {
  return core::ApplyDegreeCap(StoreEdges(), queries_of_.size(),
                              options_.entity_graph.max_degree);
}

graph::BipartiteGraph IncrementalEntityGraph::WindowGraph() const {
  graph::BipartiteGraph graph(query_counts_.size(), queries_of_.size());
  std::vector<std::pair<uint32_t, uint32_t>> links;
  for (uint32_t q = 0; q < query_counts_.size(); ++q) {
    links.assign(query_counts_[q].begin(), query_counts_[q].end());
    std::sort(links.begin(), links.end());
    for (const auto& [entity, count] : links) {
      auto status = graph.AddInteraction(q, entity, count);
      (void)status;  // ids validated on ingest
    }
  }
  return graph;
}

}  // namespace shoal::daemon
