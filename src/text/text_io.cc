#include "text/text_io.h"

#include <cstdlib>
#include <fstream>

#include "util/atomic_file.h"
#include "util/string_util.h"
#include "util/tsv.h"

namespace shoal::text {

util::Status SaveVocabulary(const Vocabulary& vocab,
                            const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(vocab.size() + 1);
  rows.push_back({"# word", "count"});
  for (uint32_t id = 0; id < vocab.size(); ++id) {
    rows.push_back({vocab.WordOf(id), std::to_string(vocab.CountOf(id))});
  }
  return util::WriteTsv(path, rows);
}

util::Result<Vocabulary> LoadVocabulary(const std::string& path) {
  SHOAL_ASSIGN_OR_RETURN(auto rows, util::ReadTsv(path));
  Vocabulary vocab;
  for (const auto& row : rows) {
    if (row.size() != 2) {
      return util::Status::InvalidArgument(
          util::StringPrintf("%s: expected 2 fields, got %zu", path.c_str(),
                             row.size()));
    }
    if (row[0].empty()) {
      return util::Status::InvalidArgument(path + ": empty word");
    }
    uint64_t count = std::strtoull(row[1].c_str(), nullptr, 10);
    uint32_t before = vocab.Lookup(row[0]);
    if (before != kUnknownWord) {
      return util::Status::InvalidArgument(path + ": duplicate word " +
                                           row[0]);
    }
    vocab.AddWord(row[0], count);
  }
  return vocab;
}

util::Status SaveEmbeddings(const EmbeddingTable& table,
                            const std::string& path) {
  std::string out = "# shoal-vectors rows=" + std::to_string(table.rows()) +
                    " dim=" + std::to_string(table.dim()) + "\n";
  for (size_t r = 0; r < table.rows(); ++r) {
    const float* row = table.Row(r);
    for (size_t d = 0; d < table.dim(); ++d) {
      if (d > 0) out.push_back(' ');
      out += util::StringPrintf("%.8g", row[d]);
    }
    out.push_back('\n');
  }
  return util::AtomicWriteFile(path, out);
}

util::Result<EmbeddingTable> LoadEmbeddings(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for reading: " + path);
  std::string header;
  if (!std::getline(in, header) ||
      header.find("# shoal-vectors") == std::string::npos) {
    return util::Status::InvalidArgument(path + ": missing vectors header");
  }
  size_t rows_pos = header.find("rows=");
  size_t dim_pos = header.find("dim=");
  if (rows_pos == std::string::npos || dim_pos == std::string::npos) {
    return util::Status::InvalidArgument(path + ": malformed header");
  }
  size_t rows = std::strtoull(header.c_str() + rows_pos + 5, nullptr, 10);
  size_t dim = std::strtoull(header.c_str() + dim_pos + 4, nullptr, 10);
  if (dim == 0) {
    return util::Status::InvalidArgument(path + ": zero dimension");
  }
  EmbeddingTable table(rows, dim);
  std::string line;
  for (size_t r = 0; r < rows; ++r) {
    if (!std::getline(in, line)) {
      return util::Status::InvalidArgument(
          util::StringPrintf("%s: expected %zu rows, file ends at %zu",
                             path.c_str(), rows, r));
    }
    const char* cursor = line.c_str();
    float* out_row = table.Row(r);
    for (size_t d = 0; d < dim; ++d) {
      char* end = nullptr;
      out_row[d] = std::strtof(cursor, &end);
      if (end == cursor) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "%s: row %zu has fewer than %zu values", path.c_str(), r, dim));
      }
      cursor = end;
    }
  }
  return table;
}

}  // namespace shoal::text
