#include "text/tokenizer.h"

#include <cctype>

namespace shoal::text {

std::vector<std::string> Tokenize(std::string_view input) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : input) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace shoal::text
