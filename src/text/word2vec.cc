#include "text/word2vec.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/random.h"

namespace shoal::text {

namespace {

// Precomputed sigmoid table, as in the reference word2vec implementation.
class SigmoidTable {
 public:
  SigmoidTable() {
    for (size_t i = 0; i < kSize; ++i) {
      double x = (static_cast<double>(i) / kSize * 2.0 - 1.0) * kMaxExp;
      table_[i] = static_cast<float>(1.0 / (1.0 + std::exp(-x)));
    }
  }

  float operator()(float x) const {
    if (x >= kMaxExp) return 1.0f;
    if (x <= -kMaxExp) return 0.0f;
    size_t idx = static_cast<size_t>((x + kMaxExp) / (2.0f * kMaxExp) *
                                     (kSize - 1));
    return table_[idx];
  }

 private:
  static constexpr size_t kSize = 1024;
  static constexpr float kMaxExp = 6.0f;
  float table_[kSize];
};

const SigmoidTable& Sigmoid() {
  static const SigmoidTable* table = new SigmoidTable();
  return *table;
}

// Negative-sampling table over the unigram distribution raised to 3/4.
std::vector<uint32_t> BuildNegativeTable(const Vocabulary& vocab,
                                         size_t table_size) {
  std::vector<uint32_t> table;
  table.reserve(table_size);
  double total = 0.0;
  for (uint32_t id = 0; id < vocab.size(); ++id) {
    total += std::pow(static_cast<double>(vocab.CountOf(id)), 0.75);
  }
  if (total <= 0.0) return table;
  double acc = 0.0;
  uint32_t id = 0;
  double share =
      std::pow(static_cast<double>(vocab.CountOf(0)), 0.75) / total;
  for (size_t i = 0; i < table_size; ++i) {
    table.push_back(id);
    double progress = static_cast<double>(i + 1) / table_size;
    if (progress > acc + share && id + 1 < vocab.size()) {
      acc += share;
      ++id;
      share = std::pow(static_cast<double>(vocab.CountOf(id)), 0.75) / total;
    }
  }
  return table;
}

}  // namespace

util::Result<Word2Vec> Word2Vec::Train(
    const Vocabulary& vocab,
    const std::vector<std::vector<uint32_t>>& sentences,
    const Word2VecOptions& options) {
  if (vocab.size() == 0) {
    return util::Status::InvalidArgument("empty vocabulary");
  }
  if (options.dim == 0) {
    return util::Status::InvalidArgument("embedding dim must be > 0");
  }
  for (const auto& sentence : sentences) {
    for (uint32_t id : sentence) {
      if (id >= vocab.size()) {
        return util::Status::OutOfRange("sentence word id outside vocab");
      }
    }
  }

  Word2Vec model;
  const size_t vocab_size = vocab.size();
  const size_t dim = options.dim;
  model.input_vectors_ = EmbeddingTable(vocab_size, dim);
  EmbeddingTable output_vectors(vocab_size, dim, 0.0f);

  // Standard word2vec init: inputs uniform in [-0.5/dim, 0.5/dim].
  {
    util::Rng rng(options.seed);
    for (size_t r = 0; r < vocab_size; ++r) {
      float* row = model.input_vectors_.Row(r);
      for (size_t d = 0; d < dim; ++d) {
        row[d] = static_cast<float>((rng.UniformDouble() - 0.5) / dim);
      }
    }
  }

  const std::vector<uint32_t> negative_table =
      BuildNegativeTable(vocab, 1 << 20);
  if (negative_table.empty()) {
    return util::Status::Internal("failed to build negative-sampling table");
  }

  // Frequent-word subsampling keep-probability (Mikolov et al. 2013).
  std::vector<float> keep_prob(vocab_size, 1.0f);
  if (options.subsample_threshold > 0.0 && vocab.total_count() > 0) {
    for (uint32_t id = 0; id < vocab_size; ++id) {
      double freq = static_cast<double>(vocab.CountOf(id)) /
                    static_cast<double>(vocab.total_count());
      if (freq > options.subsample_threshold) {
        double keep = std::sqrt(options.subsample_threshold / freq) +
                      options.subsample_threshold / freq;
        keep_prob[id] = static_cast<float>(std::min(1.0, keep));
      }
    }
  }

  const uint64_t total_updates =
      std::max<uint64_t>(1, options.epochs * sentences.size());
  std::atomic<uint64_t> progress{0};

  auto train_range = [&](size_t begin, size_t end, size_t worker,
                         size_t epoch) {
    util::Rng rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (worker + 1)) ^
                  (epoch * 0x2545f4914f6cdd1dULL));
    std::vector<float> grad(dim);
    for (size_t s = begin; s < end; ++s) {
      const auto& sentence = sentences[s];
      uint64_t done = progress.fetch_add(1, std::memory_order_relaxed);
      float lr = static_cast<float>(std::max(
          options.min_learning_rate,
          options.learning_rate *
              (1.0 - static_cast<double>(done) / total_updates)));

      // Subsampled view of the sentence.
      std::vector<uint32_t> kept;
      kept.reserve(sentence.size());
      for (uint32_t id : sentence) {
        if (vocab.CountOf(id) < options.min_count) continue;
        if (keep_prob[id] >= 1.0f ||
            rng.UniformDouble() < keep_prob[id]) {
          kept.push_back(id);
        }
      }
      if (kept.size() < 2) continue;

      for (size_t pos = 0; pos < kept.size(); ++pos) {
        size_t window = 1 + rng.Uniform(options.window);
        size_t lo = pos >= window ? pos - window : 0;
        size_t hi = std::min(kept.size(), pos + window + 1);
        uint32_t target = kept[pos];
        for (size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          uint32_t context = kept[c];
          float* in = model.input_vectors_.Row(context);
          std::fill(grad.begin(), grad.end(), 0.0f);
          // Positive sample plus `negative_samples` negatives.
          for (size_t n = 0; n <= options.negative_samples; ++n) {
            uint32_t sample;
            float label;
            if (n == 0) {
              sample = target;
              label = 1.0f;
            } else {
              sample = negative_table[rng.Uniform(negative_table.size())];
              if (sample == target) continue;
              label = 0.0f;
            }
            float* out = output_vectors.Row(sample);
            float score = Sigmoid()(Dot(in, out, dim));
            float g = (label - score) * lr;
            for (size_t d = 0; d < dim; ++d) {
              grad[d] += g * out[d];
              out[d] += g * in[d];
            }
          }
          for (size_t d = 0; d < dim; ++d) in[d] += grad[d];
        }
      }
    }
  };

  if (options.num_threads <= 1) {
    for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
      train_range(0, sentences.size(), 0, epoch);
    }
  } else {
    util::ThreadPool pool(options.num_threads);
    for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
      pool.ParallelForChunked(
          sentences.size(),
          [&](size_t begin, size_t end, size_t worker) {
            train_range(begin, end, worker, epoch);
          });
    }
  }
  return model;
}

float Word2Vec::Similarity(uint32_t a, uint32_t b) const {
  if (a >= input_vectors_.rows() || b >= input_vectors_.rows()) return 0.0f;
  return Cosine(input_vectors_.Row(a), input_vectors_.Row(b),
                input_vectors_.dim());
}

std::vector<std::pair<uint32_t, float>> Word2Vec::MostSimilar(
    uint32_t word_id, size_t k) const {
  std::vector<std::pair<uint32_t, float>> scored;
  if (word_id >= input_vectors_.rows()) return scored;
  scored.reserve(input_vectors_.rows());
  for (uint32_t other = 0; other < input_vectors_.rows(); ++other) {
    if (other == word_id) continue;
    scored.emplace_back(other, Similarity(word_id, other));
  }
  size_t top = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + top, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
  scored.resize(top);
  return scored;
}

}  // namespace shoal::text
