#ifndef SHOAL_TEXT_EMBEDDING_H_
#define SHOAL_TEXT_EMBEDDING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shoal::text {

// Dense row-major embedding table: `rows` vectors of dimension `dim`,
// stored contiguously for cache-friendly training.
class EmbeddingTable {
 public:
  EmbeddingTable() = default;
  EmbeddingTable(size_t rows, size_t dim, float init = 0.0f)
      : rows_(rows), dim_(dim), data_(rows * dim, init) {}

  size_t rows() const { return rows_; }
  size_t dim() const { return dim_; }

  float* Row(size_t r) { return data_.data() + r * dim_; }
  const float* Row(size_t r) const { return data_.data() + r * dim_; }

  std::vector<float> RowCopy(size_t r) const {
    return std::vector<float>(Row(r), Row(r) + dim_);
  }

 private:
  size_t rows_ = 0;
  size_t dim_ = 0;
  std::vector<float> data_;
};

// Basic dense vector kernels used by similarity computations.
float Dot(const float* a, const float* b, size_t dim);
float Norm(const float* a, size_t dim);

// cos(a, b); 0 when either vector has zero norm.
float Cosine(const float* a, const float* b, size_t dim);

// The paper's Eq. 2 maps cosine from [-1,1] to [0,1]:
// 1/2 + 1/2 * cos(a, b).
float ShiftedCosine(const float* a, const float* b, size_t dim);

// Mean of the rows indexed by `ids` (commonly used to embed a title).
std::vector<float> MeanVector(const EmbeddingTable& table,
                              const std::vector<uint32_t>& ids);

}  // namespace shoal::text

#endif  // SHOAL_TEXT_EMBEDDING_H_
