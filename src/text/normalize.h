#ifndef SHOAL_TEXT_NORMALIZE_H_
#define SHOAL_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace shoal::text {

// The single query-normalization entry point shared by offline index
// compilation and online serve-time lookup. Both sides MUST agree on
// this function byte for byte: a query normalized one way at build time
// and another way at request time silently misses its posting list and
// surfaces as a 404 with no error anywhere.
//
// Normalization = Tokenize (lower-cased alphanumeric runs; everything
// else, including repeated whitespace and non-ASCII bytes, separates
// tokens) re-joined with single spaces. Empty input, or input with no
// alphanumeric bytes, normalizes to the empty string.
std::string NormalizeQuery(std::string_view query);

// Token form of the same normalization, for callers that feed a word
// pipeline (BM25 scoring, vocabulary lookup) instead of a dictionary
// key. `NormalizeQuery(q)` == `Join(NormalizeQueryTokens(q), " ")`.
std::vector<std::string> NormalizeQueryTokens(std::string_view query);

}  // namespace shoal::text

#endif  // SHOAL_TEXT_NORMALIZE_H_
