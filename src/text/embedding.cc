#include "text/embedding.h"

#include <cmath>
#include <cstdint>

namespace shoal::text {

float Dot(const float* a, const float* b, size_t dim) {
  float acc = 0.0f;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float Norm(const float* a, size_t dim) {
  return std::sqrt(Dot(a, a, dim));
}

float Cosine(const float* a, const float* b, size_t dim) {
  float na = Norm(a, dim);
  float nb = Norm(b, dim);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return Dot(a, b, dim) / (na * nb);
}

float ShiftedCosine(const float* a, const float* b, size_t dim) {
  return 0.5f + 0.5f * Cosine(a, b, dim);
}

std::vector<float> MeanVector(const EmbeddingTable& table,
                              const std::vector<uint32_t>& ids) {
  std::vector<float> mean(table.dim(), 0.0f);
  if (ids.empty()) return mean;
  for (uint32_t id : ids) {
    const float* row = table.Row(id);
    for (size_t d = 0; d < table.dim(); ++d) mean[d] += row[d];
  }
  float inv = 1.0f / static_cast<float>(ids.size());
  for (float& v : mean) v *= inv;
  return mean;
}

}  // namespace shoal::text
