#ifndef SHOAL_TEXT_VOCABULARY_H_
#define SHOAL_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace shoal::text {

inline constexpr uint32_t kUnknownWord = static_cast<uint32_t>(-1);

// Bidirectional word <-> id mapping with corpus frequencies.
class Vocabulary {
 public:
  // Returns the id for `word`, inserting it if new, and bumps its count.
  uint32_t AddWord(std::string_view word, uint64_t count = 1);

  // Id lookup without insertion; kUnknownWord when absent.
  uint32_t Lookup(std::string_view word) const;

  const std::string& WordOf(uint32_t id) const { return words_[id]; }
  uint64_t CountOf(uint32_t id) const { return counts_[id]; }
  size_t size() const { return words_.size(); }
  uint64_t total_count() const { return total_count_; }

  // Ids of all words with count >= min_count.
  std::vector<uint32_t> FrequentWords(uint64_t min_count) const;

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> words_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
};

}  // namespace shoal::text

#endif  // SHOAL_TEXT_VOCABULARY_H_
