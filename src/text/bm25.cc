#include "text/bm25.h"

#include <cmath>

namespace shoal::text {

Bm25Index::Bm25Index(Options options) : options_(options) {}

uint32_t Bm25Index::AddDocument(const std::vector<uint32_t>& word_ids) {
  uint32_t doc_id = static_cast<uint32_t>(doc_lengths_.size());
  doc_lengths_.push_back(static_cast<uint32_t>(word_ids.size()));
  total_length_ += word_ids.size();
  for (uint32_t w : word_ids) {
    ++postings_[w][doc_id];
  }
  return doc_id;
}

double Bm25Index::Idf(uint32_t word) const {
  auto it = postings_.find(word);
  double df = it == postings_.end() ? 0.0
                                    : static_cast<double>(it->second.size());
  double n = static_cast<double>(num_documents());
  // BM25+-style floor at 0 avoids negative idf for very common words.
  return std::max(0.0, std::log((n - df + 0.5) / (df + 0.5) + 1.0));
}

double Bm25Index::AvgDocLength() const {
  if (doc_lengths_.empty()) return 0.0;
  return static_cast<double>(total_length_) /
         static_cast<double>(doc_lengths_.size());
}

double Bm25Index::Score(const std::vector<uint32_t>& query_word_ids,
                        uint32_t doc_id) const {
  if (doc_id >= num_documents()) return 0.0;
  const double avgdl = AvgDocLength();
  if (avgdl == 0.0) return 0.0;
  double score = 0.0;
  for (uint32_t w : query_word_ids) {
    auto it = postings_.find(w);
    if (it == postings_.end()) continue;
    auto dit = it->second.find(doc_id);
    if (dit == it->second.end()) continue;
    double tf = static_cast<double>(dit->second);
    double norm = options_.k1 *
                  (1.0 - options_.b +
                   options_.b * doc_lengths_[doc_id] / avgdl);
    score += Idf(w) * tf * (options_.k1 + 1.0) / (tf + norm);
  }
  return score;
}

std::vector<double> Bm25Index::ScoreAll(
    const std::vector<uint32_t>& query_word_ids) const {
  std::vector<double> scores(num_documents(), 0.0);
  for (uint32_t d = 0; d < num_documents(); ++d) {
    scores[d] = Score(query_word_ids, d);
  }
  return scores;
}

}  // namespace shoal::text
