#ifndef SHOAL_TEXT_WORD2VEC_H_
#define SHOAL_TEXT_WORD2VEC_H_

#include <cstdint>
#include <vector>

#include "text/embedding.h"
#include "text/vocabulary.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace shoal::text {

// Skip-gram with negative sampling (SGNS) word2vec, trained with
// lock-free (Hogwild-style) SGD over multiple threads. The paper uses
// word2vec vectors of title tokens as input to the content-driven
// similarity (Eq. 2); this is a from-scratch substitute for the
// production embeddings.
struct Word2VecOptions {
  size_t dim = 32;
  size_t window = 4;            // max context window (sampled per target)
  size_t negative_samples = 5;
  size_t epochs = 3;
  double learning_rate = 0.025;
  double min_learning_rate = 1e-4;
  double subsample_threshold = 1e-3;  // frequent-word subsampling `t`
  uint64_t min_count = 1;             // drop words rarer than this
  size_t num_threads = 1;
  uint64_t seed = 7;
};

class Word2Vec {
 public:
  // `sentences` hold word ids from `vocab`. The vocabulary must outlive
  // this call only (frequencies are copied).
  static util::Result<Word2Vec> Train(
      const Vocabulary& vocab,
      const std::vector<std::vector<uint32_t>>& sentences,
      const Word2VecOptions& options);

  const EmbeddingTable& vectors() const { return input_vectors_; }
  size_t dim() const { return input_vectors_.dim(); }

  // Cosine similarity between two word ids (input vectors).
  float Similarity(uint32_t a, uint32_t b) const;

  // Top-k most similar words to `word_id`, excluding itself.
  std::vector<std::pair<uint32_t, float>> MostSimilar(uint32_t word_id,
                                                      size_t k) const;

 private:
  Word2Vec() = default;

  EmbeddingTable input_vectors_;
};

}  // namespace shoal::text

#endif  // SHOAL_TEXT_WORD2VEC_H_
