#ifndef SHOAL_TEXT_TOKENIZER_H_
#define SHOAL_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace shoal::text {

// Segments a title or query into lower-cased word tokens. Alphanumeric
// runs form tokens; everything else is a separator. The paper segments
// Chinese item titles with a proprietary segmenter; for the synthetic
// English-like corpus whitespace/punctuation segmentation is the exact
// analogue.
std::vector<std::string> Tokenize(std::string_view input);

}  // namespace shoal::text

#endif  // SHOAL_TEXT_TOKENIZER_H_
