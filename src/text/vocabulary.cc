#include "text/vocabulary.h"

namespace shoal::text {

uint32_t Vocabulary::AddWord(std::string_view word, uint64_t count) {
  auto it = index_.find(std::string(word));
  uint32_t id;
  if (it == index_.end()) {
    id = static_cast<uint32_t>(words_.size());
    index_.emplace(std::string(word), id);
    words_.emplace_back(word);
    counts_.push_back(0);
  } else {
    id = it->second;
  }
  counts_[id] += count;
  total_count_ += count;
  return id;
}

uint32_t Vocabulary::Lookup(std::string_view word) const {
  auto it = index_.find(std::string(word));
  return it == index_.end() ? kUnknownWord : it->second;
}

std::vector<uint32_t> Vocabulary::FrequentWords(uint64_t min_count) const {
  std::vector<uint32_t> out;
  for (uint32_t id = 0; id < words_.size(); ++id) {
    if (counts_[id] >= min_count) out.push_back(id);
  }
  return out;
}

}  // namespace shoal::text
