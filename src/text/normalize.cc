#include "text/normalize.h"

#include "text/tokenizer.h"

namespace shoal::text {

std::vector<std::string> NormalizeQueryTokens(std::string_view query) {
  return Tokenize(query);
}

std::string NormalizeQuery(std::string_view query) {
  std::string normalized;
  normalized.reserve(query.size());
  for (const std::string& token : Tokenize(query)) {
    if (!normalized.empty()) normalized.push_back(' ');
    normalized += token;
  }
  return normalized;
}

}  // namespace shoal::text
