#ifndef SHOAL_TEXT_TEXT_IO_H_
#define SHOAL_TEXT_TEXT_IO_H_

#include <string>

#include "text/embedding.h"
#include "text/vocabulary.h"
#include "util/result.h"

namespace shoal::text {

// Persistence for the text assets a production deployment would train
// offline and reuse across daily taxonomy rebuilds (E11): the token
// vocabulary and the trained word vectors.

// vocabulary.tsv: one "word <TAB> count" row per id, in id order.
util::Status SaveVocabulary(const Vocabulary& vocab,
                            const std::string& path);
util::Result<Vocabulary> LoadVocabulary(const std::string& path);

// vectors.tsv: header "# shoal-vectors rows=R dim=D", then one row of D
// space-separated floats per embedding row, in row order.
util::Status SaveEmbeddings(const EmbeddingTable& table,
                            const std::string& path);
util::Result<EmbeddingTable> LoadEmbeddings(const std::string& path);

}  // namespace shoal::text

#endif  // SHOAL_TEXT_TEXT_IO_H_
