#ifndef SHOAL_TEXT_BM25_H_
#define SHOAL_TEXT_BM25_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace shoal::text {

// Okapi BM25 index over a small set of documents (the per-topic pseudo
// documents of Sec 2.3). Documents are bags of word ids.
//
//   score(q, D) = sum_{w in q} idf(w) * tf(w,D)*(k1+1) /
//                 (tf(w,D) + k1*(1 - b + b*|D|/avgdl))
class Bm25Index {
 public:
  struct Options {
    double k1 = 1.2;
    double b = 0.75;
  };

  Bm25Index() : Bm25Index(Options{}) {}
  explicit Bm25Index(Options options);

  // Adds a document and returns its id.
  uint32_t AddDocument(const std::vector<uint32_t>& word_ids);

  size_t num_documents() const { return doc_lengths_.size(); }

  // BM25 relevance of the query (bag of word ids) to one document.
  double Score(const std::vector<uint32_t>& query_word_ids,
               uint32_t doc_id) const;

  // Scores the query against every document.
  std::vector<double> ScoreAll(
      const std::vector<uint32_t>& query_word_ids) const;

 private:
  double Idf(uint32_t word) const;
  double AvgDocLength() const;

  Options options_;
  // word id -> (doc id -> term frequency)
  std::unordered_map<uint32_t, std::unordered_map<uint32_t, uint32_t>>
      postings_;
  std::vector<uint32_t> doc_lengths_;
  uint64_t total_length_ = 0;
};

}  // namespace shoal::text

#endif  // SHOAL_TEXT_BM25_H_
