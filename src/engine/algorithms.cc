#include "engine/algorithms.h"

#include <algorithm>

#include "engine/bsp_engine.h"

namespace shoal::engine {

util::Result<std::vector<uint32_t>> BspConnectedComponents(
    const graph::WeightedGraph& graph, const BspRunOptions& options) {
  using Engine = BspEngine<uint32_t, uint32_t>;
  Engine::Options engine_options;
  engine_options.num_partitions = options.num_partitions;
  engine_options.num_threads = options.num_threads;
  engine_options.pool = options.pool;
  engine_options.max_supersteps = graph.num_vertices() + 2;
  Engine engine(graph.num_vertices(), engine_options);
  engine.SetCombiner([](uint32_t& acc, const uint32_t& incoming) {
    acc = std::min(acc, incoming);
  });

  auto status = engine.Run([&graph](Engine::Context& ctx, uint32_t v,
                                    uint32_t& label,
                                    const std::vector<uint32_t>& messages) {
    bool changed = false;
    if (ctx.superstep() == 0) {
      label = v;
      changed = true;
    }
    for (uint32_t m : messages) {
      if (m < label) {
        label = m;
        changed = true;
      }
    }
    if (changed) {
      for (const graph::Edge& e : graph.Neighbors(v)) {
        ctx.SendMessage(e.to, label);
      }
    }
    ctx.VoteToHalt();
  });
  SHOAL_RETURN_IF_ERROR(status);

  std::vector<uint32_t> labels(graph.num_vertices());
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    labels[v] = engine.VertexValue(v);
  }
  return labels;
}

util::Result<std::vector<double>> BspPageRank(
    const graph::WeightedGraph& graph, const PageRankOptions& options) {
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return util::Status::InvalidArgument("damping must be in [0,1)");
  }
  const size_t n = graph.num_vertices();
  if (n == 0) return std::vector<double>{};

  using Engine = BspEngine<double, double>;
  Engine::Options engine_options;
  engine_options.num_partitions = options.run.num_partitions;
  engine_options.num_threads = options.run.num_threads;
  engine_options.pool = options.run.pool;
  engine_options.max_supersteps = options.iterations + 1;
  Engine engine(n, engine_options);
  engine.SetCombiner(
      [](double& acc, const double& incoming) { acc += incoming; });

  const double base = (1.0 - options.damping) / static_cast<double>(n);
  const size_t last = options.iterations;
  auto status = engine.Run([&, base](Engine::Context& ctx, uint32_t v,
                                     double& rank,
                                     const std::vector<double>& messages) {
    if (ctx.superstep() == 0) {
      rank = 1.0 / static_cast<double>(ctx.num_vertices());
    } else {
      double incoming = 0.0;
      for (double m : messages) incoming += m;
      rank = base + options.damping * incoming;
    }
    if (ctx.superstep() < last) {
      size_t degree = graph.Degree(v);
      if (degree > 0) {
        double share = rank / static_cast<double>(degree);
        for (const graph::Edge& e : graph.Neighbors(v)) {
          ctx.SendMessage(e.to, share);
        }
      }
      // Keep the vertex alive even without incoming messages so every
      // iteration recomputes (dangling vertices keep their base rank).
      ctx.SendMessage(v, 0.0);
    }
    ctx.VoteToHalt();
  });
  SHOAL_RETURN_IF_ERROR(status);

  std::vector<double> ranks(n);
  for (uint32_t v = 0; v < n; ++v) ranks[v] = engine.VertexValue(v);
  return ranks;
}

}  // namespace shoal::engine
