#ifndef SHOAL_ENGINE_PARTITIONER_H_
#define SHOAL_ENGINE_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shoal::engine {

// Assigns vertices to partitions. Contiguous range partitioning keeps
// neighbouring ids together (good for the generators' cluster-ordered
// ids); hash partitioning spreads them (good for load balance).
enum class PartitionStrategy {
  kRange,
  kHash,
};

class Partitioner {
 public:
  Partitioner(size_t num_vertices, size_t num_partitions,
              PartitionStrategy strategy = PartitionStrategy::kHash);

  size_t num_partitions() const { return num_partitions_; }
  size_t num_vertices() const { return num_vertices_; }

  uint32_t PartitionOf(uint32_t vertex) const;

  // Vertices owned by a partition, in ascending id order.
  std::vector<uint32_t> VerticesOf(uint32_t partition) const;

 private:
  size_t num_vertices_;
  size_t num_partitions_;
  PartitionStrategy strategy_;
  size_t chunk_;  // for range partitioning
};

}  // namespace shoal::engine

#endif  // SHOAL_ENGINE_PARTITIONER_H_
