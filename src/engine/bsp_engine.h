#ifndef SHOAL_ENGINE_BSP_ENGINE_H_
#define SHOAL_ENGINE_BSP_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/partitioner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shoal::engine {

// In-process stand-in for the distributed graph platform (ODPS) the paper
// deploys Parallel HAC on. Implements the Pregel/BSP model:
//
//  * vertices carry a value of type V and are spread over partitions;
//  * computation proceeds in supersteps; in each superstep every *active*
//    vertex runs the user compute function, may read messages sent to it
//    in the previous superstep, send messages of type M to any vertex,
//    update aggregators, and vote to halt;
//  * a vertex is reactivated by an incoming message;
//  * the run terminates when every vertex has halted and no messages are
//    in flight, or after `max_supersteps`.
//
// Partitions are executed by a thread pool; messages are sharded by
// target partition at send time and delivered by the target partition's
// own task in fixed source order, so a run is fully deterministic for a
// given input regardless of thread count. Per-superstep work is
// proportional to the *frontier* (vertices that are awake or received a
// message), not to the vertex count: inbox clearing walks only the
// previous superstep's dirty list and quiescence is a counter check, so
// algorithms whose activity shrinks (e.g. late HAC rounds) do not pay
// O(V) barrier costs forever.
//
// The worker pool can be injected (`Options::pool`) and shared across
// many engine instances — ParallelHac creates one engine per round, and
// without injection every round would spawn and join a fresh set of
// threads.
template <typename V, typename M>
class BspEngine {
 public:
  struct Options {
    size_t num_partitions = 8;
    size_t num_threads = 2;
    size_t max_supersteps = 1000;
    PartitionStrategy partition_strategy = PartitionStrategy::kRange;
    // Borrowed shared worker pool. When null the engine owns a private
    // pool of `num_threads` workers (and pays the thread spawn/join).
    util::ThreadPool* pool = nullptr;
  };

  class Context;
  // Compute(ctx, vertex_id, vertex_value, incoming_messages)
  using ComputeFn =
      std::function<void(Context&, uint32_t, V&, const std::vector<M>&)>;
  // Optional message combiner: folds `incoming` into `accumulated`.
  // Combiners must be commutative and associative (the Pregel contract);
  // delivery applies them in deterministic source order.
  using CombineFn = std::function<void(M& accumulated, const M& incoming)>;

  BspEngine(size_t num_vertices, Options options)
      : options_(options),
        partitioner_(num_vertices, options.num_partitions,
                     options.partition_strategy),
        values_(num_vertices),
        inbox_(num_vertices) {
    if (options_.pool != nullptr) {
      pool_ = options_.pool;
    } else {
      owned_pool_ = std::make_unique<util::ThreadPool>(options_.num_threads);
      pool_ = owned_pool_.get();
    }
    const uint32_t num_parts = partitioner_.num_partitions();
    partition_vertices_.resize(num_parts);
    awake_.resize(num_parts);
    awake_next_.resize(num_parts);
    dirty_.resize(num_parts);
    compute_set_.resize(num_parts);
    for (uint32_t p = 0; p < num_parts; ++p) {
      partition_vertices_[p] = partitioner_.VerticesOf(p);
      awake_[p] = partition_vertices_[p];  // every vertex starts active
    }
  }

  size_t num_vertices() const { return values_.size(); }
  size_t superstep() const { return superstep_; }

  V& VertexValue(uint32_t v) { return values_[v]; }
  const V& VertexValue(uint32_t v) const { return values_[v]; }

  void SetCombiner(CombineFn combine) { combine_ = std::move(combine); }

  // Aggregator value from the *previous* superstep (sum semantics),
  // 0.0 when never written.
  double GetAggregate(const std::string& name) const {
    auto it = prev_aggregates_.find(name);
    return it == prev_aggregates_.end() ? 0.0 : it->second;
  }

  // Per-vertex execution context handed to the compute function. One
  // context per partition, reused across supersteps (outbox shards and
  // aggregate maps keep their capacity between rounds).
  class Context {
   public:
    Context(BspEngine* engine, uint32_t partition)
        : engine_(engine),
          partition_(partition),
          shards_(engine->partitioner_.num_partitions()) {}

    size_t superstep() const { return engine_->superstep_; }
    size_t num_vertices() const { return engine_->num_vertices(); }

    // Queues a message for delivery at the start of the next superstep.
    // Messages are placed straight into the shard of the target's
    // partition; with a combiner set, back-to-back sends to the same
    // target fold immediately instead of buffering.
    void SendMessage(uint32_t target, M message) {
      if (target >= engine_->num_vertices()) {
        invalid_target_ = true;
        return;
      }
      auto& shard = shards_[engine_->partitioner_.PartitionOf(target)];
      ++messages_sent_;
      if (engine_->combine_ && !shard.empty() &&
          shard.back().first == target) {
        engine_->combine_(shard.back().second, message);
        return;
      }
      shard.emplace_back(target, std::move(message));
    }

    // The current vertex becomes inactive until a message arrives.
    void VoteToHalt() { halt_current_ = true; }

    // Adds into a named global sum aggregator, visible next superstep.
    void AggregateSum(const std::string& name, double value) {
      local_aggregates_[name] += value;
    }

    double GetAggregate(const std::string& name) const {
      return engine_->GetAggregate(name);
    }

   private:
    friend class BspEngine;
    void ResetForSuperstep() {
      for (auto& shard : shards_) shard.clear();
      local_aggregates_.clear();
      messages_sent_ = 0;
      invalid_target_ = false;
    }

    BspEngine* engine_;
    uint32_t partition_;
    // Outgoing messages sharded by target partition.
    std::vector<std::vector<std::pair<uint32_t, M>>> shards_;
    std::map<std::string, double> local_aggregates_;
    uint64_t messages_sent_ = 0;
    bool halt_current_ = false;
    bool invalid_target_ = false;
  };

  // Runs supersteps until quiescence. Statistics are collected into the
  // public counters below.
  util::Status Run(const ComputeFn& compute) {
    if (!compute) {
      return util::Status::InvalidArgument("compute function is empty");
    }
    const uint32_t num_parts = partitioner_.num_partitions();
    superstep_ = 0;
    total_messages_ = 0;
    if (contexts_.empty()) {
      contexts_.reserve(num_parts);
      for (uint32_t p = 0; p < num_parts; ++p) contexts_.emplace_back(this, p);
    }
    // Observability: spans/metrics only read clocks and write side
    // buffers, so enabling them cannot change the computation.
    const bool metrics_on = obs::MetricsRegistry::Global().enabled();

    while (superstep_ < options_.max_supersteps) {
      SHOAL_RETURN_IF_ERROR(
          util::FaultInjector::Global().OnBspSuperstep(superstep_));
      obs::ScopedSpan superstep_span("bsp.superstep");
      superstep_span.AddArg("superstep",
                            static_cast<double>(superstep_));

      // --- compute phase (parallel over partitions). Each partition
      // runs the union of its awake list and its dirty (message-
      // receiving) list, in ascending vertex order — the same order a
      // full scan would produce, so message emission order (and thus
      // combining order) is independent of the thread count.
      std::atomic<uint64_t> active_vertices{0};
      pool_->ParallelForChunked(
          num_parts, [&](size_t begin, size_t end, size_t /*worker*/) {
            SHOAL_TRACE_SPAN("bsp.compute_chunk");
            uint64_t chunk_active = 0;
            for (size_t p = begin; p < end; ++p) {
              auto& to_run = compute_set_[p];
              to_run.clear();
              std::set_union(awake_[p].begin(), awake_[p].end(),
                             dirty_[p].begin(), dirty_[p].end(),
                             std::back_inserter(to_run));
              Context& ctx = contexts_[p];
              auto& next_awake = awake_next_[p];
              next_awake.clear();
              for (uint32_t v : to_run) {
                ctx.halt_current_ = false;
                compute(ctx, v, values_[v], inbox_[v]);
                if (!ctx.halt_current_) next_awake.push_back(v);
                ++chunk_active;
              }
              awake_[p].swap(next_awake);
            }
            active_vertices.fetch_add(chunk_active,
                                      std::memory_order_relaxed);
          });

      size_t delivered = 0;
      for (uint32_t p = 0; p < num_parts; ++p) {
        if (contexts_[p].invalid_target_) {
          return util::Status::OutOfRange(
              "message sent to nonexistent vertex");
        }
        delivered += contexts_[p].messages_sent_;
      }

      // --- barrier: merge aggregators (fixed partition order), then
      // deliver shards in parallel — each target partition clears only
      // the inboxes its previous dirty list names and drains the shards
      // addressed to it in source-partition order, which keeps delivery
      // deterministic without a serial O(V) pass.
      prev_aggregates_.clear();
      for (uint32_t p = 0; p < num_parts; ++p) {
        for (const auto& [name, value] : contexts_[p].local_aggregates_) {
          prev_aggregates_[name] += value;
        }
      }
      pool_->ParallelForChunked(
          num_parts, [&](size_t begin, size_t end, size_t /*worker*/) {
            for (size_t target_part = begin; target_part < end;
                 ++target_part) {
              auto& dirty = dirty_[target_part];
              for (uint32_t v : dirty) inbox_[v].clear();
              dirty.clear();
              for (uint32_t source = 0; source < num_parts; ++source) {
                for (auto& [target, message] :
                     contexts_[source].shards_[target_part]) {
                  auto& box = inbox_[target];
                  if (box.empty()) {
                    dirty.push_back(target);
                    box.push_back(std::move(message));
                  } else if (combine_) {
                    combine_(box.front(), message);
                  } else {
                    box.push_back(std::move(message));
                  }
                }
              }
              std::sort(dirty.begin(), dirty.end());
            }
          });
      for (uint32_t p = 0; p < num_parts; ++p) {
        contexts_[p].ResetForSuperstep();
      }
      total_messages_ += delivered;
      ++superstep_;

      superstep_span.AddArg("active_vertices",
                            static_cast<double>(active_vertices.load()));
      superstep_span.AddArg("delivered_messages",
                            static_cast<double>(delivered));
      if (metrics_on) {
        auto& metrics = obs::MetricsRegistry::Global();
        metrics.GetHistogram("bsp.superstep.messages")
            .Record(static_cast<double>(delivered));
        metrics.GetHistogram("bsp.superstep.active_vertices")
            .Record(static_cast<double>(active_vertices.load()));
      }

      if (delivered == 0) {
        // Quiescent iff nothing is awake — an O(partitions) counter
        // check instead of an O(V) halted scan.
        size_t awake_total = 0;
        for (uint32_t p = 0; p < num_parts; ++p) {
          awake_total += awake_[p].size();
        }
        if (awake_total == 0) {
          RecordRunMetrics();
          return util::Status::OK();
        }
      }
    }
    RecordRunMetrics();
    return util::Status::OK();  // hit max_supersteps; callers may inspect
  }

  // Wakes every vertex (used between phases of multi-stage algorithms).
  void ActivateAll() {
    for (uint32_t p = 0; p < partitioner_.num_partitions(); ++p) {
      awake_[p] = partition_vertices_[p];
    }
  }

  // Replaces the awake frontier with exactly `vertices` (must be sorted
  // ascending) and drops any undelivered messages left over from a
  // previous Run. Lets one engine be reused across many runs over the
  // same vertex space — e.g. ParallelHac's per-merge-round diffusion —
  // with per-run cost proportional to the seed set plus the stale dirty
  // lists, never O(V).
  void SeedFrontier(const std::vector<uint32_t>& vertices) {
    const uint32_t num_parts = partitioner_.num_partitions();
    for (uint32_t p = 0; p < num_parts; ++p) {
      awake_[p].clear();
      for (uint32_t v : dirty_[p]) inbox_[v].clear();
      dirty_[p].clear();
    }
    // Ascending input keeps each partition's awake list ascending (a
    // partition's members are a subsequence of the input).
    for (uint32_t v : vertices) {
      awake_[partitioner_.PartitionOf(v)].push_back(v);
    }
  }

  uint64_t total_messages() const { return total_messages_; }

 private:
  // Pushes run totals and the worker pool's queue-depth / task-latency
  // counters into the global registry after a completed run.
  void RecordRunMetrics() {
    auto& metrics = obs::MetricsRegistry::Global();
    if (!metrics.enabled()) return;
    metrics.GetCounter("bsp.runs").Increment();
    metrics.GetCounter("bsp.supersteps").Increment(superstep_);
    metrics.GetCounter("bsp.messages").Increment(total_messages_);
    const util::ThreadPoolStats pool = pool_->GetStats();
    metrics.GetGauge("bsp.pool.queue_depth")
        .Set(static_cast<double>(pool.queue_depth));
    metrics.GetGauge("bsp.pool.peak_queue_depth")
        .Set(static_cast<double>(pool.peak_queue_depth));
    metrics.GetGauge("bsp.pool.tasks_executed")
        .Set(static_cast<double>(pool.tasks_executed));
    metrics.GetHistogram("bsp.pool.task_seconds")
        .Record(pool.tasks_executed > 0
                    ? pool.total_task_seconds /
                          static_cast<double>(pool.tasks_executed)
                    : 0.0);
  }
  Options options_;
  Partitioner partitioner_;
  std::vector<std::vector<uint32_t>> partition_vertices_;
  std::vector<V> values_;
  std::vector<std::vector<M>> inbox_;
  // Frontier state, all ascending per partition: vertices that did not
  // vote to halt, their double buffer, vertices whose inbox is nonempty,
  // and the per-superstep union actually run.
  std::vector<std::vector<uint32_t>> awake_;
  std::vector<std::vector<uint32_t>> awake_next_;
  std::vector<std::vector<uint32_t>> dirty_;
  std::vector<std::vector<uint32_t>> compute_set_;
  std::vector<Context> contexts_;
  util::ThreadPool* pool_ = nullptr;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  CombineFn combine_;
  std::map<std::string, double> prev_aggregates_;
  size_t superstep_ = 0;
  uint64_t total_messages_ = 0;
};

}  // namespace shoal::engine

#endif  // SHOAL_ENGINE_BSP_ENGINE_H_
