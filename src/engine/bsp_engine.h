#ifndef SHOAL_ENGINE_BSP_ENGINE_H_
#define SHOAL_ENGINE_BSP_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "engine/partitioner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace shoal::engine {

// In-process stand-in for the distributed graph platform (ODPS) the paper
// deploys Parallel HAC on. Implements the Pregel/BSP model:
//
//  * vertices carry a value of type V and are spread over partitions;
//  * computation proceeds in supersteps; in each superstep every *active*
//    vertex runs the user compute function, may read messages sent to it
//    in the previous superstep, send messages of type M to any vertex,
//    update aggregators, and vote to halt;
//  * a vertex is reactivated by an incoming message;
//  * the run terminates when every vertex has halted and no messages are
//    in flight, or after `max_supersteps`.
//
// Partitions are executed by a thread pool; message delivery is
// double-buffered and merged in fixed partition order, so a run is fully
// deterministic for a given input regardless of thread count.
template <typename V, typename M>
class BspEngine {
 public:
  struct Options {
    size_t num_partitions = 8;
    size_t num_threads = 2;
    size_t max_supersteps = 1000;
    PartitionStrategy partition_strategy = PartitionStrategy::kRange;
  };

  class Context;
  // Compute(ctx, vertex_id, vertex_value, incoming_messages)
  using ComputeFn =
      std::function<void(Context&, uint32_t, V&, const std::vector<M>&)>;
  // Optional message combiner: folds `incoming` into `accumulated`.
  using CombineFn = std::function<void(M& accumulated, const M& incoming)>;

  BspEngine(size_t num_vertices, Options options)
      : options_(options),
        partitioner_(num_vertices, options.num_partitions,
                     options.partition_strategy),
        values_(num_vertices),
        halted_(num_vertices, 0),
        inbox_(num_vertices),
        pool_(options.num_threads) {
    partition_vertices_.resize(partitioner_.num_partitions());
    for (uint32_t p = 0; p < partitioner_.num_partitions(); ++p) {
      partition_vertices_[p] = partitioner_.VerticesOf(p);
    }
  }

  size_t num_vertices() const { return values_.size(); }
  size_t superstep() const { return superstep_; }

  V& VertexValue(uint32_t v) { return values_[v]; }
  const V& VertexValue(uint32_t v) const { return values_[v]; }

  void SetCombiner(CombineFn combine) { combine_ = std::move(combine); }

  // Aggregator value from the *previous* superstep (sum semantics),
  // 0.0 when never written.
  double GetAggregate(const std::string& name) const {
    auto it = prev_aggregates_.find(name);
    return it == prev_aggregates_.end() ? 0.0 : it->second;
  }

  // Per-vertex execution context handed to the compute function.
  class Context {
   public:
    Context(BspEngine* engine, uint32_t partition)
        : engine_(engine), partition_(partition) {}

    size_t superstep() const { return engine_->superstep_; }
    size_t num_vertices() const { return engine_->num_vertices(); }

    // Queues a message for delivery at the start of the next superstep.
    void SendMessage(uint32_t target, M message) {
      outbox_.emplace_back(target, std::move(message));
    }

    // The current vertex becomes inactive until a message arrives.
    void VoteToHalt() { halt_current_ = true; }

    // Adds into a named global sum aggregator, visible next superstep.
    void AggregateSum(const std::string& name, double value) {
      local_aggregates_[name] += value;
    }

    double GetAggregate(const std::string& name) const {
      return engine_->GetAggregate(name);
    }

   private:
    friend class BspEngine;
    BspEngine* engine_;
    uint32_t partition_;
    std::vector<std::pair<uint32_t, M>> outbox_;
    std::map<std::string, double> local_aggregates_;
    bool halt_current_ = false;
  };

  // Runs supersteps until quiescence. Statistics are collected into the
  // public counters below.
  util::Status Run(const ComputeFn& compute) {
    if (!compute) {
      return util::Status::InvalidArgument("compute function is empty");
    }
    const size_t num_parts = partitioner_.num_partitions();
    superstep_ = 0;
    total_messages_ = 0;
    // Observability: spans/metrics only read clocks and write side
    // buffers, so enabling them cannot change the computation.
    const bool metrics_on = obs::MetricsRegistry::Global().enabled();

    while (superstep_ < options_.max_supersteps) {
      obs::ScopedSpan superstep_span("bsp.superstep");
      superstep_span.AddArg("superstep",
                            static_cast<double>(superstep_));
      std::vector<Context> contexts;
      contexts.reserve(num_parts);
      for (uint32_t p = 0; p < num_parts; ++p) contexts.emplace_back(this, p);

      // --- compute phase (parallel over partitions) ---
      std::atomic<uint64_t> active_vertices{0};
      pool_.ParallelForChunked(
          num_parts, [&](size_t begin, size_t end, size_t /*worker*/) {
            SHOAL_TRACE_SPAN("bsp.compute_chunk");
            uint64_t chunk_active = 0;
            for (size_t p = begin; p < end; ++p) {
              Context& ctx = contexts[p];
              for (uint32_t v : partition_vertices_[p]) {
                const bool has_messages = !inbox_[v].empty();
                if (halted_[v] && !has_messages) continue;
                halted_[v] = 0;
                ctx.halt_current_ = false;
                compute(ctx, v, values_[v], inbox_[v]);
                if (ctx.halt_current_) halted_[v] = 1;
                ++chunk_active;
              }
            }
            active_vertices.fetch_add(chunk_active,
                                      std::memory_order_relaxed);
          });

      // --- barrier: clear old inboxes, deliver outboxes in partition
      // order (deterministic), merge aggregators ---
      for (auto& inbox : inbox_) inbox.clear();
      size_t delivered = 0;
      prev_aggregates_.clear();
      for (uint32_t p = 0; p < num_parts; ++p) {
        for (auto& [target, message] : contexts[p].outbox_) {
          if (target >= num_vertices()) {
            return util::Status::OutOfRange(
                "message sent to nonexistent vertex");
          }
          auto& box = inbox_[target];
          if (combine_ && !box.empty()) {
            combine_(box.front(), message);
          } else {
            box.push_back(std::move(message));
          }
          ++delivered;
        }
        for (const auto& [name, value] : contexts[p].local_aggregates_) {
          prev_aggregates_[name] += value;
        }
      }
      total_messages_ += delivered;
      ++superstep_;

      superstep_span.AddArg("active_vertices",
                            static_cast<double>(active_vertices.load()));
      superstep_span.AddArg("delivered_messages",
                            static_cast<double>(delivered));
      if (metrics_on) {
        auto& metrics = obs::MetricsRegistry::Global();
        metrics.GetHistogram("bsp.superstep.messages")
            .Record(static_cast<double>(delivered));
        metrics.GetHistogram("bsp.superstep.active_vertices")
            .Record(static_cast<double>(active_vertices.load()));
      }

      if (delivered == 0) {
        bool all_halted = true;
        for (uint8_t h : halted_) {
          if (!h) {
            all_halted = false;
            break;
          }
        }
        if (all_halted) {
          RecordRunMetrics();
          return util::Status::OK();
        }
      }
    }
    RecordRunMetrics();
    return util::Status::OK();  // hit max_supersteps; callers may inspect
  }

  // Wakes every vertex (used between phases of multi-stage algorithms).
  void ActivateAll() { std::fill(halted_.begin(), halted_.end(), 0); }

  uint64_t total_messages() const { return total_messages_; }

 private:
  // Pushes run totals and the worker pool's queue-depth / task-latency
  // counters into the global registry after a completed run.
  void RecordRunMetrics() {
    auto& metrics = obs::MetricsRegistry::Global();
    if (!metrics.enabled()) return;
    metrics.GetCounter("bsp.runs").Increment();
    metrics.GetCounter("bsp.supersteps").Increment(superstep_);
    metrics.GetCounter("bsp.messages").Increment(total_messages_);
    const util::ThreadPoolStats pool = pool_.GetStats();
    metrics.GetGauge("bsp.pool.queue_depth")
        .Set(static_cast<double>(pool.queue_depth));
    metrics.GetGauge("bsp.pool.peak_queue_depth")
        .Set(static_cast<double>(pool.peak_queue_depth));
    metrics.GetGauge("bsp.pool.tasks_executed")
        .Set(static_cast<double>(pool.tasks_executed));
    metrics.GetHistogram("bsp.pool.task_seconds")
        .Record(pool.tasks_executed > 0
                    ? pool.total_task_seconds /
                          static_cast<double>(pool.tasks_executed)
                    : 0.0);
  }
  Options options_;
  Partitioner partitioner_;
  std::vector<std::vector<uint32_t>> partition_vertices_;
  std::vector<V> values_;
  std::vector<uint8_t> halted_;
  std::vector<std::vector<M>> inbox_;
  util::ThreadPool pool_;
  CombineFn combine_;
  std::map<std::string, double> prev_aggregates_;
  size_t superstep_ = 0;
  uint64_t total_messages_ = 0;
};

}  // namespace shoal::engine

#endif  // SHOAL_ENGINE_BSP_ENGINE_H_
