#include "engine/partitioner.h"

#include <algorithm>

namespace shoal::engine {

namespace {

// Finalizer from MurmurHash3 — cheap, well-mixed vertex -> partition hash.
uint32_t MixHash(uint32_t x) {
  x ^= x >> 16;
  x *= 0x85ebca6bu;
  x ^= x >> 13;
  x *= 0xc2b2ae35u;
  x ^= x >> 16;
  return x;
}

}  // namespace

Partitioner::Partitioner(size_t num_vertices, size_t num_partitions,
                         PartitionStrategy strategy)
    : num_vertices_(num_vertices),
      num_partitions_(std::max<size_t>(1, num_partitions)),
      strategy_(strategy) {
  chunk_ = (num_vertices_ + num_partitions_ - 1) / num_partitions_;
  if (chunk_ == 0) chunk_ = 1;
}

uint32_t Partitioner::PartitionOf(uint32_t vertex) const {
  if (strategy_ == PartitionStrategy::kRange) {
    return static_cast<uint32_t>(
        std::min(num_partitions_ - 1, vertex / chunk_));
  }
  return MixHash(vertex) % static_cast<uint32_t>(num_partitions_);
}

std::vector<uint32_t> Partitioner::VerticesOf(uint32_t partition) const {
  std::vector<uint32_t> out;
  if (strategy_ == PartitionStrategy::kRange) {
    size_t begin = partition * chunk_;
    size_t end = std::min(num_vertices_, begin + chunk_);
    for (size_t v = begin; v < end; ++v) out.push_back(static_cast<uint32_t>(v));
    return out;
  }
  for (size_t v = 0; v < num_vertices_; ++v) {
    if (PartitionOf(static_cast<uint32_t>(v)) == partition) {
      out.push_back(static_cast<uint32_t>(v));
    }
  }
  return out;
}

}  // namespace shoal::engine
