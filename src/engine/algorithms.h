#ifndef SHOAL_ENGINE_ALGORITHMS_H_
#define SHOAL_ENGINE_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.h"
#include "util/result.h"

namespace shoal::util {
class ThreadPool;
}  // namespace shoal::util

namespace shoal::engine {

// Classic vertex-centric algorithms implemented on the BSP engine —
// both regression tests for the engine (results are checked against
// direct implementations) and a demonstration that the ODPS stand-in is
// a general graph platform, not a HAC-only harness.

struct BspRunOptions {
  size_t num_partitions = 8;
  size_t num_threads = 2;
  // Borrowed worker pool shared with the caller; when set the engine
  // spawns no threads of its own and `num_threads` is ignored.
  util::ThreadPool* pool = nullptr;
};

// Connected components via min-label propagation. Returns a label per
// vertex; vertices share a label iff they are connected. Labels are the
// minimum vertex id of the component.
util::Result<std::vector<uint32_t>> BspConnectedComponents(
    const graph::WeightedGraph& graph, const BspRunOptions& options = {});

// PageRank with damping `d`, run for `iterations` supersteps over the
// undirected graph (each edge acts in both directions). Returns one
// score per vertex; scores sum to ~1.
struct PageRankOptions {
  double damping = 0.85;
  size_t iterations = 20;
  BspRunOptions run;
};
util::Result<std::vector<double>> BspPageRank(
    const graph::WeightedGraph& graph, const PageRankOptions& options = {});

}  // namespace shoal::engine

#endif  // SHOAL_ENGINE_ALGORITHMS_H_
