#ifndef SHOAL_OBS_PROMETHEUS_LINT_H_
#define SHOAL_OBS_PROMETHEUS_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace shoal::obs {

// Strict line checker for the Prometheus text exposition format 0.0.4,
// the serving-tier sibling of examples/json_lint. Validates, line by
// line:
//
//  * `# HELP <name> <doc>` / `# TYPE <name> <type>` comment structure
//    (known types only, at most one TYPE per family, TYPE before the
//    family's first sample);
//  * sample lines `name{label="value",...} value` — metric and label
//    names in the Prometheus alphabet, label values correctly quoted
//    and escaped, sample values parsing as floats (+Inf/-Inf/NaN ok);
//  * every sample belongs to a family with a declared TYPE;
//  * histogram families: `le` labels numeric and strictly increasing,
//    `_bucket` counts cumulative (non-decreasing), a `+Inf` bucket
//    present and equal to `<family>_count`, and `_sum`/`_count` series
//    present.
//
// Returns OK and (optionally) the family names seen, or InvalidArgument
// naming the first offending line.
util::Status LintPrometheusText(std::string_view text,
                                std::vector<std::string>* families = nullptr);

}  // namespace shoal::obs

#endif  // SHOAL_OBS_PROMETHEUS_LINT_H_
