#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/atomic_file.h"
#include "util/json.h"
#include "util/string_util.h"

namespace shoal::obs {

namespace {

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Bumped by Clear() so threads that cached a buffer re-register instead
// of writing into a detached one.
std::atomic<uint64_t> g_generation{0};
std::atomic<uint64_t> g_epoch_ns{0};

}  // namespace

Tracer::Tracer() { g_epoch_ns.store(SteadyNowNanos()); }

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

uint64_t Tracer::NowMicros() const {
  const uint64_t now = SteadyNowNanos();
  const uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  return now > epoch ? (now - epoch) / 1000 : 0;
}

Tracer::ThreadBuffer* Tracer::GetThreadBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> cached;
  thread_local uint64_t cached_generation = ~uint64_t{0};
  const uint64_t generation = g_generation.load(std::memory_order_acquire);
  if (cached == nullptr || cached_generation != generation) {
    cached = std::make_shared<ThreadBuffer>();
    cached_generation = generation;
    std::lock_guard<std::mutex> lock(mu_);
    cached->thread_id = next_thread_id_++;
    buffers_.push_back(cached);
  }
  return cached.get();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  next_thread_id_ = 0;
  g_generation.fetch_add(1, std::memory_order_release);
  g_epoch_ns.store(SteadyNowNanos(), std::memory_order_relaxed);
}

uint32_t Tracer::CurrentDepth() {
  // Registers the thread if needed; depth is only mutated by the owner.
  return GetThreadBuffer()->open_depth;
}

std::vector<TraceEvent> Tracer::CollectEvents() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.thread_id != b.thread_id) {
                return a.thread_id < b.thread_id;
              }
              return a.start_us < b.start_us;
            });
  return events;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceEvent> events = CollectEvents();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    util::JsonEscape(e.name, out);
    out += "\",\"cat\":\"shoal\",\"ph\":\"X\",\"ts\":";
    out += util::JsonNumberToString(static_cast<double>(e.start_us));
    out += ",\"dur\":";
    out += util::JsonNumberToString(static_cast<double>(e.duration_us));
    out += ",\"pid\":0,\"tid\":";
    out += util::JsonNumberToString(static_cast<double>(e.thread_id));
    out += ",\"args\":{\"depth\":";
    out += util::JsonNumberToString(static_cast<double>(e.depth));
    for (const auto& [key, value] : e.args) {
      out += ",\"";
      util::JsonEscape(key, out);
      out += "\":";
      out += util::JsonNumberToString(value);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

util::Status Tracer::WriteChromeJson(const std::string& path) const {
  return util::AtomicWriteFile(path, ToChromeJson());
}

ScopedSpan::ScopedSpan(std::string name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  buffer_ = tracer.GetThreadBuffer();
  event_.name = std::move(name);
  event_.thread_id = buffer_->thread_id;
  event_.depth = buffer_->open_depth++;
  event_.start_us = tracer.NowMicros();
}

ScopedSpan::~ScopedSpan() { End(); }

void ScopedSpan::End() {
  if (buffer_ == nullptr) return;
  Tracer& tracer = Tracer::Global();
  const uint64_t end_us = tracer.NowMicros();
  event_.duration_us = end_us > event_.start_us ? end_us - event_.start_us : 0;
  --buffer_->open_depth;
  {
    std::lock_guard<std::mutex> lock(buffer_->mu);
    buffer_->events.push_back(std::move(event_));
  }
  buffer_ = nullptr;
}

void ScopedSpan::AddArg(std::string key, double value) {
  if (buffer_ == nullptr) return;
  event_.args.emplace_back(std::move(key), value);
}

}  // namespace shoal::obs
