#include "obs/metrics.h"

#include "util/logging.h"

namespace shoal::obs {

void Gauge::Set(double v) {
  value_.store(v, std::memory_order_relaxed);
  double current = max_.load(std::memory_order_relaxed);
  while (v > current &&
         !max_.compare_exchange_weak(current, v,
                                     std::memory_order_relaxed)) {
  }
}

void Gauge::Reset() {
  value_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

HistogramMetric::HistogramMetric(double lo, double hi, size_t buckets)
    : buckets_(std::in_place, lo, hi, buckets),
      lo_(lo),
      hi_(hi),
      num_buckets_(buckets) {}

void HistogramMetric::Record(double sample) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Add(sample);
  if (buckets_.has_value()) buckets_->Add(sample);
}

util::RunningStats HistogramMetric::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void HistogramMetric::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = util::RunningStats();
  if (buckets_.has_value()) {
    buckets_.emplace(lo_, hi_, num_buckets_);
  }
}

util::JsonValue HistogramMetric::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  util::JsonValue out = util::JsonValue::Object();
  out.Set("count", util::JsonValue::Number(
                       static_cast<double>(stats_.count())));
  out.Set("mean", util::JsonValue::Number(stats_.mean()));
  out.Set("stddev", util::JsonValue::Number(stats_.stddev()));
  out.Set("min", util::JsonValue::Number(
                     stats_.count() > 0 ? stats_.min() : 0.0));
  out.Set("max", util::JsonValue::Number(
                     stats_.count() > 0 ? stats_.max() : 0.0));
  out.Set("sum", util::JsonValue::Number(stats_.sum()));
  if (stats_.non_finite_count() > 0) {
    out.Set("non_finite", util::JsonValue::Number(static_cast<double>(
                              stats_.non_finite_count())));
  }
  if (buckets_.has_value()) {
    util::JsonValue edges = util::JsonValue::Array();
    util::JsonValue counts = util::JsonValue::Array();
    const double width = (hi_ - lo_) / static_cast<double>(num_buckets_);
    for (size_t i = 0; i < buckets_->buckets().size(); ++i) {
      edges.Append(util::JsonValue::Number(
          lo_ + static_cast<double>(i) * width));
      counts.Append(util::JsonValue::Number(
          static_cast<double>(buckets_->buckets()[i])));
    }
    out.Set("bucket_lo", std::move(edges));
    out.Set("bucket_counts", std::move(counts));
    out.Set("p50", util::JsonValue::Number(buckets_->Quantile(0.5)));
    out.Set("p99", util::JsonValue::Number(buckets_->Quantile(0.99)));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  SHOAL_CHECK(!gauges_.contains(name) && !histograms_.contains(name))
      << "metric '" << name << "' already registered with another kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  SHOAL_CHECK(!counters_.contains(name) && !histograms_.contains(name))
      << "metric '" << name << "' already registered with another kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  SHOAL_CHECK(!counters_.contains(name) && !gauges_.contains(name))
      << "metric '" << name << "' already registered with another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>();
  return *slot;
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name,
                                               double lo, double hi,
                                               size_t buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  SHOAL_CHECK(!counters_.contains(name) && !gauges_.contains(name))
      << "metric '" << name << "' already registered with another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramMetric>(lo, hi, buckets);
  }
  return *slot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

util::JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  util::JsonValue out = util::JsonValue::Object();
  util::JsonValue counters = util::JsonValue::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, util::JsonValue::Number(
                           static_cast<double>(counter->value())));
  }
  out.Set("counters", std::move(counters));
  util::JsonValue gauges = util::JsonValue::Object();
  for (const auto& [name, gauge] : gauges_) {
    util::JsonValue g = util::JsonValue::Object();
    g.Set("value", util::JsonValue::Number(gauge->value()));
    g.Set("max", util::JsonValue::Number(gauge->max()));
    gauges.Set(name, std::move(g));
  }
  out.Set("gauges", std::move(gauges));
  util::JsonValue histograms = util::JsonValue::Object();
  for (const auto& [name, histogram] : histograms_) {
    histograms.Set(name, histogram->ToJson());
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

std::string MetricsRegistry::ToJsonString(int indent) const {
  return ToJson().Dump(indent);
}

}  // namespace shoal::obs
