#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace shoal::obs {

namespace {

// Relaxed add for atomic<double> (fetch_add on floating atomics is
// C++20 but not universally lock-free; the CAS loop is portable and
// contention is bounded by the per-thread sharding).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current &&
         !target.compare_exchange_weak(current, v,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current &&
         !target.compare_exchange_weak(current, v,
                                       std::memory_order_relaxed)) {
  }
}

// The shard the calling thread records into. Assigned round-robin at
// first use; shared across every histogram so one thread always owns
// the same shard index.
size_t ThreadShard(size_t num_shards) {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t assigned =
      next.fetch_add(1, std::memory_order_relaxed);
  return assigned % num_shards;
}

// Formats a double for Prometheus sample / le values: shortest form
// that round-trips the bucket geometry (bounds differ by >= 15%, so 12
// significant digits are far more than enough to keep them distinct
// and monotone after printing).
std::string PromNumber(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  return util::StringPrintf("%.12g", v);
}

}  // namespace

void Gauge::Set(double v) {
  value_.store(v, std::memory_order_relaxed);
  double current = max_.load(std::memory_order_relaxed);
  while (v > current &&
         !max_.compare_exchange_weak(current, v,
                                     std::memory_order_relaxed)) {
  }
}

void Gauge::Reset() {
  value_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

BucketLayout BucketLayout::Log(double lo, double hi, double base) {
  SHOAL_CHECK(lo > 0.0 && hi > lo && base > 1.0)
      << "log bucket layout needs 0 < lo < hi and base > 1";
  BucketLayout layout;
  layout.kind = Kind::kLog;
  layout.lo = lo;
  layout.hi = hi;
  layout.base = base;
  // Bounds at lo * base^i until hi is covered. Computed with pow(i)
  // rather than repeated multiplication so the geometry is bit-stable
  // regardless of how it is rebuilt.
  layout.bounds.push_back(lo);
  for (size_t i = 1;; ++i) {
    const double bound = lo * std::pow(base, static_cast<double>(i));
    if (layout.bounds.back() >= hi) break;
    layout.bounds.push_back(bound);
    SHOAL_CHECK(layout.bounds.size() < 100000)
        << "log bucket layout out of control (base too close to 1?)";
  }
  return layout;
}

BucketLayout BucketLayout::Linear(double lo, double hi, size_t buckets) {
  SHOAL_CHECK(hi > lo && buckets > 0)
      << "linear bucket layout needs lo < hi and at least one bucket";
  BucketLayout layout;
  layout.kind = Kind::kLinear;
  layout.lo = lo;
  layout.hi = hi;
  layout.linear_buckets = buckets;
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (size_t i = 0; i <= buckets; ++i) {
    layout.bounds.push_back(lo + width * static_cast<double>(i));
  }
  return layout;
}

BucketLayout BucketLayout::DefaultLog() {
  // One shared geometry (~230 buckets): 1µs..60s latencies in
  // microseconds land in [1, 6e7], the same latencies recorded in
  // seconds land in [1e-6, 60], and per-round counters fit below 6e7.
  static const BucketLayout layout = Log(1e-6, 6e7, 1.15);
  return layout;
}

size_t BucketLayout::BucketOf(double sample) const {
  // First bound greater than the sample: bucket i holds
  // [bounds[i-1], bounds[i]), index 0 is (-inf, bounds[0]).
  return static_cast<size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), sample) -
      bounds.begin());
}

double BucketLayout::UpperBound(size_t i) const {
  if (i >= bounds.size()) return std::numeric_limits<double>::infinity();
  return bounds[i];
}

double BucketLayout::LowerBound(size_t i) const {
  if (i == 0) return -std::numeric_limits<double>::infinity();
  return bounds[i - 1];
}

bool BucketLayout::operator==(const BucketLayout& other) const {
  return kind == other.kind && lo == other.lo && hi == other.hi &&
         base == other.base && linear_buckets == other.linear_buckets &&
         bounds == other.bounds;
}

double HistogramSnapshot::stddev() const {
  if (count < 2) return 0.0;
  const double n = static_cast<double>(count);
  // Sample variance from the raw moments, clamped against the tiny
  // negative values cancellation can produce.
  const double var =
      std::max(0.0, (sumsq - sum * sum / n) / (n - 1.0));
  return std::sqrt(var);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  // The extremes are tracked exactly; don't pay bucket resolution there.
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  q = std::min(1.0, std::max(0.0, q));
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    seen += counts[i];
    if (seen < rank) continue;
    double lower = layout.LowerBound(i);
    double upper = layout.UpperBound(i);
    // Open-ended edge buckets interpolate against the observed extremes
    // instead of +-inf.
    if (i == 0) lower = std::min(min, upper);
    if (!std::isfinite(upper)) upper = std::max(max, lower);
    // Also clamp to the observed range so a single-bucket distribution
    // reports a value that was actually seen.
    lower = std::max(lower, min);
    upper = std::min(upper, max);
    if (upper <= lower) return lower;
    const uint64_t into = rank - (seen - counts[i]);
    const double frac =
        static_cast<double>(into) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * frac;
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  SHOAL_CHECK(layout == other.layout)
      << "cannot merge histogram snapshots with different bucket layouts";
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  if (other.count > 0) {
    min = count > 0 ? std::min(min, other.min) : other.min;
    max = count > 0 ? std::max(max, other.max) : other.max;
  }
  count += other.count;
  non_finite += other.non_finite;
  sum += other.sum;
  sumsq += other.sumsq;
}

util::JsonValue HistogramSnapshot::ToJson() const {
  util::JsonValue out = util::JsonValue::Object();
  out.Set("count",
          util::JsonValue::Number(static_cast<double>(count)));
  out.Set("mean", util::JsonValue::Number(mean()));
  out.Set("stddev", util::JsonValue::Number(stddev()));
  out.Set("min", util::JsonValue::Number(count > 0 ? min : 0.0));
  out.Set("max", util::JsonValue::Number(count > 0 ? max : 0.0));
  out.Set("sum", util::JsonValue::Number(sum));
  if (non_finite > 0) {
    out.Set("non_finite",
            util::JsonValue::Number(static_cast<double>(non_finite)));
  }
  // Sparse bucket table: only occupied bins, as (lower bound, count)
  // columns — the default log layout has ~230 bins and latency
  // distributions occupy a handful.
  util::JsonValue edges = util::JsonValue::Array();
  util::JsonValue bins = util::JsonValue::Array();
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double lower = layout.LowerBound(i);
    edges.Append(util::JsonValue::Number(
        std::isfinite(lower) ? lower : layout.lo));
    bins.Append(util::JsonValue::Number(static_cast<double>(counts[i])));
  }
  out.Set("bucket_lo", std::move(edges));
  out.Set("bucket_counts", std::move(bins));
  out.Set("p50", util::JsonValue::Number(Quantile(0.5)));
  out.Set("p90", util::JsonValue::Number(Quantile(0.9)));
  out.Set("p99", util::JsonValue::Number(Quantile(0.99)));
  out.Set("p999", util::JsonValue::Number(Quantile(0.999)));
  return out;
}

HistogramMetric::HistogramMetric()
    : HistogramMetric(BucketLayout::DefaultLog()) {}

HistogramMetric::HistogramMetric(BucketLayout layout)
    : layout_(std::move(layout)), shards_(kNumShards) {
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<uint64_t>[]>(layout_.num_buckets());
    for (size_t i = 0; i < layout_.num_buckets(); ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

HistogramMetric::HistogramMetric(double lo, double hi, size_t buckets)
    : HistogramMetric(BucketLayout::Linear(lo, hi, buckets)) {}

void HistogramMetric::Record(double sample) {
  Shard& shard = shards_[ThreadShard(kNumShards)];
  if (!std::isfinite(sample)) {
    // A poisoned sample must not poison the moments (mirrors
    // util::RunningStats NaN/Inf hardening).
    shard.non_finite.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.buckets[layout_.BucketOf(sample)].fetch_add(
      1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(shard.sum, sample);
  AtomicAdd(shard.sumsq, sample * sample);
  AtomicMin(shard.min, sample);
  AtomicMax(shard.max, sample);
}

HistogramSnapshot HistogramMetric::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.layout = layout_;
  snapshot.counts.assign(layout_.num_buckets(), 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < layout_.num_buckets(); ++i) {
      snapshot.counts[i] +=
          shard.buckets[i].load(std::memory_order_relaxed);
    }
    snapshot.count += shard.count.load(std::memory_order_relaxed);
    snapshot.non_finite +=
        shard.non_finite.load(std::memory_order_relaxed);
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
    snapshot.sumsq += shard.sumsq.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
  }
  snapshot.min = snapshot.count > 0 ? min : 0.0;
  snapshot.max = snapshot.count > 0 ? max : 0.0;
  return snapshot;
}

void HistogramMetric::Reset() {
  for (Shard& shard : shards_) {
    for (size_t i = 0; i < layout_.num_buckets(); ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.non_finite.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.sumsq.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  SHOAL_CHECK(!gauges_.contains(name) && !histograms_.contains(name))
      << "metric '" << name << "' already registered with another kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  SHOAL_CHECK(!counters_.contains(name) && !histograms_.contains(name))
      << "metric '" << name << "' already registered with another kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  SHOAL_CHECK(!counters_.contains(name) && !gauges_.contains(name))
      << "metric '" << name << "' already registered with another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>();
  return *slot;
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name,
                                               double lo, double hi,
                                               size_t buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  SHOAL_CHECK(!counters_.contains(name) && !gauges_.contains(name))
      << "metric '" << name << "' already registered with another kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<HistogramMetric>(lo, hi, buckets);
  }
  return *slot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

util::JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  util::JsonValue out = util::JsonValue::Object();
  util::JsonValue counters = util::JsonValue::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, util::JsonValue::Number(
                           static_cast<double>(counter->value())));
  }
  out.Set("counters", std::move(counters));
  util::JsonValue gauges = util::JsonValue::Object();
  for (const auto& [name, gauge] : gauges_) {
    util::JsonValue g = util::JsonValue::Object();
    g.Set("value", util::JsonValue::Number(gauge->value()));
    g.Set("max", util::JsonValue::Number(gauge->max()));
    gauges.Set(name, std::move(g));
  }
  out.Set("gauges", std::move(gauges));
  util::JsonValue histograms = util::JsonValue::Object();
  for (const auto& [name, histogram] : histograms_) {
    histograms.Set(name, histogram->ToJson());
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

std::string MetricsRegistry::ToJsonString(int indent) const {
  return ToJson().Dump(indent);
}

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  auto family = [&out](const std::string& name, const std::string& raw,
                       const char* kind) {
    out += "# HELP " + name + " shoal metric " + raw + "\n";
    out += "# TYPE " + name + " " + kind + "\n";
  };
  for (const auto& [raw, counter] : counters_) {
    const std::string name = SanitizeMetricName(raw);
    family(name, raw, "counter");
    out += name + " " +
           util::StringPrintf("%llu",
                              static_cast<unsigned long long>(
                                  counter->value())) +
           "\n";
  }
  for (const auto& [raw, gauge] : gauges_) {
    const std::string name = SanitizeMetricName(raw);
    family(name, raw, "gauge");
    out += name + " " + PromNumber(gauge->value()) + "\n";
    family(name + "_max", raw + " high-water mark", "gauge");
    out += name + "_max " + PromNumber(gauge->max()) + "\n";
  }
  for (const auto& [raw, histogram] : histograms_) {
    const std::string name = SanitizeMetricName(raw);
    const HistogramSnapshot snapshot = histogram->Snapshot();
    family(name, raw, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snapshot.counts.size(); ++i) {
      if (snapshot.counts[i] == 0) continue;
      cumulative += snapshot.counts[i];
      const double upper = snapshot.layout.UpperBound(i);
      if (!std::isfinite(upper)) break;  // folded into +Inf below
      out += name + "_bucket{le=\"" + PromNumber(upper) + "\"} " +
             util::StringPrintf(
                 "%llu", static_cast<unsigned long long>(cumulative)) +
             "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " +
           util::StringPrintf(
               "%llu",
               static_cast<unsigned long long>(snapshot.count)) +
           "\n";
    out += name + "_sum " + PromNumber(snapshot.sum) + "\n";
    out += name + "_count " +
           util::StringPrintf(
               "%llu",
               static_cast<unsigned long long>(snapshot.count)) +
           "\n";
  }
  return out;
}

}  // namespace shoal::obs
