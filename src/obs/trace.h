#ifndef SHOAL_OBS_TRACE_H_
#define SHOAL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace shoal::obs {

// One completed span: a named interval on one thread, with its nesting
// depth at open time and optional numeric args. Timestamps are
// microseconds on the steady clock since the tracer epoch.
struct TraceEvent {
  std::string name;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint32_t thread_id = 0;  // stable logical id, by registration order
  uint32_t depth = 0;      // 0 = top-level span on its thread
  std::vector<std::pair<std::string, double>> args;
};

// Span-based tracer for the pipeline. Compiled in everywhere but off by
// default: a disabled `ScopedSpan` costs one relaxed atomic load and
// never touches the clock or any buffer, so instrumentation can stay in
// hot-ish paths permanently. Recording never influences the algorithms
// (it only reads the clock and appends to side buffers), so taxonomy
// output is byte-identical with tracing on or off.
//
// Each thread appends completed spans to its own buffer; buffers are
// owned by shared_ptr so they outlive pool workers that have already
// exited by collection time.
class Tracer {
 public:
  // Process-wide tracer used by `ScopedSpan` / SHOAL_TRACE_SPAN.
  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all recorded events (open spans still close onto the fresh
  // buffers) and resets the epoch.
  void Clear();

  // All completed events, sorted by (thread_id, start_us). Safe to call
  // while spans are still being recorded on other threads; in-flight
  // spans are simply absent.
  std::vector<TraceEvent> CollectEvents() const;

  // Chrome trace-event JSON ("X" complete events), loadable in
  // chrome://tracing and Perfetto.
  std::string ToChromeJson() const;
  util::Status WriteChromeJson(const std::string& path) const;

  // Nesting depth of the calling thread's innermost open span (0 when
  // none are open). Exposed for tests.
  uint32_t CurrentDepth();

 private:
  friend class ScopedSpan;

  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    uint32_t thread_id = 0;
    uint32_t open_depth = 0;  // touched only by the owning thread
  };

  Tracer();

  // The calling thread's buffer, registering it on first use.
  ThreadBuffer* GetThreadBuffer();
  uint64_t NowMicros() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards buffers_ and next_thread_id_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_thread_id_ = 0;
};

// RAII span. Construction samples the clock and nesting depth when the
// global tracer is enabled; destruction appends the completed event.
// A span latched active at construction records even if the tracer is
// disabled mid-span, keeping depth bookkeeping balanced.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a numeric arg shown under the span in trace viewers.
  // No-op when the span is inactive.
  void AddArg(std::string key, double value);

  // Closes the span now instead of at scope exit (idempotent). For call
  // sites where the interesting interval ends mid-scope.
  void End();

  bool active() const { return buffer_ != nullptr; }

 private:
  Tracer::ThreadBuffer* buffer_ = nullptr;  // null when inactive
  TraceEvent event_;
};

}  // namespace shoal::obs

// Opens a span covering the rest of the enclosing scope.
#define SHOAL_OBS_CONCAT_(a, b) a##b
#define SHOAL_OBS_CONCAT(a, b) SHOAL_OBS_CONCAT_(a, b)
#define SHOAL_TRACE_SPAN(name) \
  ::shoal::obs::ScopedSpan SHOAL_OBS_CONCAT(shoal_span_, __LINE__)(name)

#endif  // SHOAL_OBS_TRACE_H_
