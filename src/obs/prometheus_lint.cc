#include "obs/prometheus_lint.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

#include "util/string_util.h"

namespace shoal::obs {

namespace {

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

bool ValidLabelName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

bool ParseFloat(std::string_view text, double* value) {
  if (text.empty()) return false;
  if (text == "+Inf" || text == "Inf") {
    *value = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    *value = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "NaN") {
    *value = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  const std::string copy(text);
  char* end = nullptr;
  *value = std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0' && end != copy.c_str();
}

util::Status LineError(size_t line_no, std::string_view line,
                       const std::string& what) {
  return util::Status::InvalidArgument(util::StringPrintf(
      "line %zu: %s: '%.*s'", line_no, what.c_str(),
      static_cast<int>(std::min<size_t>(line.size(), 120)), line.data()));
}

// The base family a sample series belongs to: histogram series report
// under `<family>_bucket` / `_sum` / `_count`.
std::string FamilyOf(const std::string& series,
                     const std::set<std::string>& histogram_families) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const size_t len = std::char_traits<char>::length(suffix);
    if (series.size() > len &&
        series.compare(series.size() - len, len, suffix) == 0) {
      const std::string base = series.substr(0, series.size() - len);
      if (histogram_families.contains(base)) return base;
    }
  }
  return series;
}

struct BucketSeries {
  double last_le = -std::numeric_limits<double>::infinity();
  double last_count = -1.0;
  bool has_inf = false;
  double inf_count = 0.0;
};

}  // namespace

util::Status LintPrometheusText(std::string_view text,
                                std::vector<std::string>* families) {
  std::map<std::string, std::string> type_of;  // family -> type
  std::set<std::string> sampled;               // families with samples
  std::set<std::string> histogram_families;
  std::map<std::string, BucketSeries> buckets;  // histogram family state
  std::map<std::string, double> count_value;    // `<family>_count` value
  std::set<std::string> has_sum;

  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // `# HELP name doc` / `# TYPE name type`; other comments pass.
      if (line.size() < 2 || line[1] != ' ') {
        return LineError(line_no, line, "comment must start with '# '");
      }
      std::string_view rest = line.substr(2);
      std::string_view keyword = rest.substr(0, rest.find(' '));
      if (keyword != "HELP" && keyword != "TYPE") continue;
      rest.remove_prefix(std::min(rest.size(), keyword.size() + 1));
      const size_t space = rest.find(' ');
      std::string_view name = rest.substr(0, space);
      if (!ValidMetricName(name)) {
        return LineError(line_no, line,
                         "invalid metric name in " + std::string(keyword));
      }
      if (keyword == "TYPE") {
        if (space == std::string_view::npos) {
          return LineError(line_no, line, "TYPE line missing a type");
        }
        std::string_view type = rest.substr(space + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return LineError(line_no, line, "unknown TYPE");
        }
        const std::string family(name);
        if (type_of.contains(family)) {
          return LineError(line_no, line, "duplicate TYPE for family");
        }
        if (sampled.contains(family)) {
          return LineError(line_no, line,
                           "TYPE must precede the family's samples");
        }
        type_of[family] = std::string(type);
        if (type == "histogram") histogram_families.insert(family);
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' &&
           line[name_end] != ' ') {
      ++name_end;
    }
    const std::string series(line.substr(0, name_end));
    if (!ValidMetricName(series)) {
      return LineError(line_no, line, "invalid metric name");
    }

    // Labels.
    double le = std::numeric_limits<double>::quiet_NaN();
    bool has_le = false;
    bool le_is_inf = false;
    size_t pos = name_end;
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        size_t eq = line.find('=', pos);
        if (eq == std::string_view::npos) {
          return LineError(line_no, line, "label missing '='");
        }
        std::string_view label = line.substr(pos, eq - pos);
        if (!ValidLabelName(label)) {
          return LineError(line_no, line, "invalid label name");
        }
        if (eq + 1 >= line.size() || line[eq + 1] != '"') {
          return LineError(line_no, line, "label value must be quoted");
        }
        // Scan the quoted value honouring \" \\ \n escapes.
        std::string value;
        size_t v = eq + 2;
        bool closed = false;
        while (v < line.size()) {
          const char c = line[v];
          if (c == '\\') {
            if (v + 1 >= line.size() ||
                (line[v + 1] != '"' && line[v + 1] != '\\' &&
                 line[v + 1] != 'n')) {
              return LineError(line_no, line, "bad escape in label value");
            }
            value.push_back(line[v + 1] == 'n' ? '\n' : line[v + 1]);
            v += 2;
            continue;
          }
          if (c == '"') {
            closed = true;
            ++v;
            break;
          }
          value.push_back(c);
          ++v;
        }
        if (!closed) {
          return LineError(line_no, line, "unterminated label value");
        }
        if (label == "le") {
          has_le = true;
          le_is_inf = value == "+Inf";
          if (!le_is_inf && !ParseFloat(value, &le)) {
            return LineError(line_no, line, "le label is not a number");
          }
        }
        pos = v;
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size() || line[pos] != '}') {
        return LineError(line_no, line, "unterminated label set");
      }
      ++pos;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return LineError(line_no, line, "missing value");
    }
    std::string_view tail = line.substr(pos + 1);
    // Optional timestamp after the value.
    std::string_view value_text = tail.substr(0, tail.find(' '));
    double value = 0.0;
    if (!ParseFloat(value_text, &value)) {
      return LineError(line_no, line, "sample value is not a number");
    }
    if (value_text.size() < tail.size()) {
      double ts = 0.0;
      if (!ParseFloat(tail.substr(value_text.size() + 1), &ts)) {
        return LineError(line_no, line, "trailing timestamp is not a number");
      }
    }

    const std::string family = FamilyOf(series, histogram_families);
    if (!type_of.contains(family)) {
      return LineError(line_no, line, "sample without a TYPE'd family");
    }
    sampled.insert(family);

    if (histogram_families.contains(family)) {
      if (series == family + "_bucket") {
        if (!has_le) {
          return LineError(line_no, line, "_bucket sample without le label");
        }
        BucketSeries& state = buckets[family];
        if (le_is_inf) {
          if (state.has_inf) {
            return LineError(line_no, line, "duplicate +Inf bucket");
          }
          state.has_inf = true;
          state.inf_count = value;
          if (value < state.last_count) {
            return LineError(line_no, line,
                             "+Inf bucket below an earlier bucket count");
          }
        } else {
          if (state.has_inf) {
            return LineError(line_no, line,
                             "finite bucket after the +Inf bucket");
          }
          if (le <= state.last_le) {
            return LineError(line_no, line,
                             "le labels must strictly increase");
          }
          if (value < state.last_count) {
            return LineError(line_no, line,
                             "bucket counts must be cumulative");
          }
          state.last_le = le;
          state.last_count = value;
        }
      } else if (series == family + "_sum") {
        has_sum.insert(family);
      } else if (series == family + "_count") {
        count_value[family] = value;
      } else {
        return LineError(line_no, line,
                         "histogram family sample must be "
                         "_bucket/_sum/_count");
      }
    }
  }

  // Cross-line histogram invariants.
  for (const std::string& family : histogram_families) {
    if (!sampled.contains(family)) continue;
    const auto bucket = buckets.find(family);
    if (bucket == buckets.end() || !bucket->second.has_inf) {
      return util::Status::InvalidArgument(
          "histogram " + family + " has no +Inf bucket");
    }
    if (!has_sum.contains(family)) {
      return util::Status::InvalidArgument(
          "histogram " + family + " has no _sum sample");
    }
    const auto count = count_value.find(family);
    if (count == count_value.end()) {
      return util::Status::InvalidArgument(
          "histogram " + family + " has no _count sample");
    }
    if (count->second != bucket->second.inf_count) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "histogram %s: _count (%g) != +Inf bucket (%g)",
          family.c_str(), count->second, bucket->second.inf_count));
    }
  }

  if (families != nullptr) {
    families->clear();
    for (const auto& [name, type] : type_of) families->push_back(name);
  }
  return util::Status::OK();
}

}  // namespace shoal::obs
