#ifndef SHOAL_OBS_METRICS_H_
#define SHOAL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "util/json.h"
#include "util/stats.h"

namespace shoal::obs {

// Monotonic event count. Thread-safe; one relaxed atomic add per
// increment.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written level plus the high-water mark since the last reset
// (e.g. thread-pool queue depth). Thread-safe.
class Gauge {
 public:
  void Set(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

// Sample distribution: `util::RunningStats` moments plus optional fixed
// buckets, under a per-metric mutex (samples are recorded at span/stage
// granularity, not per-element, so contention is negligible).
class HistogramMetric {
 public:
  // Moments only.
  HistogramMetric() = default;
  // Moments plus `util::Histogram` buckets over [lo, hi).
  HistogramMetric(double lo, double hi, size_t buckets);

  void Record(double sample);

  // Snapshot of the moments (copy; safe against concurrent Record).
  util::RunningStats Snapshot() const;
  void Reset();

  util::JsonValue ToJson() const;

 private:
  mutable std::mutex mu_;
  util::RunningStats stats_;
  std::optional<util::Histogram> buckets_;
  double lo_ = 0.0;
  double hi_ = 0.0;
  size_t num_buckets_ = 0;
};

// Process-wide registry of named metrics. Handles returned by the
// Get* functions are stable for the registry's lifetime, so call sites
// look a metric up once and keep the reference. Disabled by default;
// instrumentation sites check `enabled()` (one relaxed atomic load)
// before recording, keeping the compiled-in-but-off cost near zero.
//
// Naming convention (see DESIGN.md "Observability"): dotted lowercase
// paths, `<stage>.<object>.<measure>`, e.g. `hac.round.merges`,
// `bsp.pool.peak_queue_depth`.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Returns the named metric, creating it on first use. A name is bound
  // to its first-seen kind; asking for the same name as a different
  // kind is a programmer error (SHOAL_CHECK).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  HistogramMetric& GetHistogram(const std::string& name);
  HistogramMetric& GetHistogram(const std::string& name, double lo,
                                double hi, size_t buckets);

  // Zeroes every registered metric. Handles stay valid.
  void Reset();

  // Snapshot as {"counters": {...}, "gauges": {...}, "histograms":
  // {...}} with names sorted (map order).
  util::JsonValue ToJson() const;
  std::string ToJsonString(int indent = 2) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace shoal::obs

#endif  // SHOAL_OBS_METRICS_H_
