#ifndef SHOAL_OBS_METRICS_H_
#define SHOAL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace shoal::obs {

// Monotonic event count. Thread-safe; one relaxed atomic add per
// increment.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written level plus the high-water mark since the last reset
// (e.g. thread-pool queue depth). Thread-safe.
class Gauge {
 public:
  void Set(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<double> value_{0.0};
  std::atomic<double> max_{0.0};
};

// Bucket geometry shared by HistogramMetric and its snapshots. Two
// shapes:
//
//  * kLog (the default): HDR-style geometric buckets, bound i at
//    lo * base^i, covering [lo, hi) plus an underflow bucket (< lo,
//    including zero and negatives) and an overflow bucket (>= hi). The
//    default layout spans 1e-6 .. 6e7 at base 1.15 — wide enough that
//    one layout serves microsecond latencies recorded in either seconds
//    or microseconds, and message/merge counts up to tens of millions,
//    with every in-range quantile accurate to one bucket's ~15%
//    relative width.
//  * kLinear: `buckets` fixed-width bins over [lo, hi) plus the same
//    underflow/overflow pair, for explicitly shaped distributions.
struct BucketLayout {
  enum class Kind { kLog, kLinear };

  static BucketLayout Log(double lo, double hi, double base);
  static BucketLayout Linear(double lo, double hi, size_t buckets);
  // The process-wide default: Log(1e-6, 6e7, 1.15).
  static BucketLayout DefaultLog();

  // Index of the bucket `sample` falls into; 0 is underflow, back() is
  // overflow. `sample` must be finite.
  size_t BucketOf(double sample) const;

  // Inclusive upper bound of bucket i (the Prometheus `le` value);
  // +inf for the overflow bucket.
  double UpperBound(size_t i) const;
  // Lower bound of bucket i; -inf for the underflow bucket.
  double LowerBound(size_t i) const;

  size_t num_buckets() const { return bounds.size() + 1; }
  bool operator==(const BucketLayout& other) const;

  Kind kind = Kind::kLog;
  double lo = 0.0;
  double hi = 0.0;
  double base = 0.0;     // log layouts only
  size_t linear_buckets = 0;  // linear layouts only
  // Sorted inner bucket boundaries: bucket i covers
  // [bounds[i-1], bounds[i]), the underflow bucket is (-inf, bounds[0])
  // and the overflow bucket [bounds.back(), +inf).
  std::vector<double> bounds;
};

// A coherent point-in-time copy of one histogram: merged across all
// recording shards, safe to query, merge and serialize without touching
// the live metric. Mean/stddev come from (sum, sumsq), so they match
// the recorded samples exactly when the metric is quiescent and are a
// benign near-miss when snapshotted mid-record.
struct HistogramSnapshot {
  BucketLayout layout;
  std::vector<uint64_t> counts;  // one per layout bucket
  uint64_t count = 0;            // finite samples
  uint64_t non_finite = 0;       // NaN / +-Inf samples rejected by Record
  double sum = 0.0;
  double sumsq = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  double stddev() const;

  // Quantile estimate from the bucket counts: the value at rank
  // ceil(q * count), linearly interpolated inside its bucket. Exact to
  // within one bucket's width (~15% relative for the default log
  // layout). Underflow clamps to the layout's lo, overflow to the
  // largest observed sample. 0 when empty.
  double Quantile(double q) const;

  // Accumulates `other` (same layout required) into this snapshot, e.g.
  // to aggregate per-shard or per-process histograms.
  void Merge(const HistogramSnapshot& other);

  util::JsonValue ToJson() const;
};

// Sample distribution with quantile support. Recording is lock-free and
// thread-sharded: each thread is assigned one of a fixed set of shards,
// and Record does a handful of relaxed atomic updates on that shard's
// cache lines (bucket count, total, sum/sumsq, min/max) — no mutex, so
// the serving hot path can record per-request latencies at millions of
// QPS without contention. Snapshot() merges the shards.
class HistogramMetric {
 public:
  // Default: the log-bucketed layout (BucketLayout::DefaultLog()), so
  // every histogram is quantile-capable unless explicitly shaped.
  HistogramMetric();
  explicit HistogramMetric(BucketLayout layout);
  // Legacy linear shape: `buckets` fixed-width bins over [lo, hi).
  HistogramMetric(double lo, double hi, size_t buckets);

  HistogramMetric(const HistogramMetric&) = delete;
  HistogramMetric& operator=(const HistogramMetric&) = delete;

  void Record(double sample);

  HistogramSnapshot Snapshot() const;
  // Convenience: Snapshot().Quantile(q).
  double Quantile(double q) const { return Snapshot().Quantile(q); }

  void Reset();

  const BucketLayout& layout() const { return layout_; }

  util::JsonValue ToJson() const { return Snapshot().ToJson(); }

 private:
  // Enough shards to keep a few serving worker threads off each other's
  // cache lines; threads are assigned round-robin.
  static constexpr size_t kNumShards = 8;

  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> non_finite{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> sumsq{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
  };

  BucketLayout layout_;
  std::vector<Shard> shards_;
};

// Process-wide registry of named metrics. Handles returned by the
// Get* functions are stable for the registry's lifetime, so call sites
// look a metric up once and keep the reference. Disabled by default;
// instrumentation sites check `enabled()` (one relaxed atomic load)
// before recording, keeping the compiled-in-but-off cost near zero.
//
// Naming convention (see DESIGN.md "Observability"): dotted lowercase
// paths, `<stage>.<object>.<measure>`, e.g. `hac.round.merges`,
// `bsp.pool.peak_queue_depth`.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Returns the named metric, creating it on first use. A name is bound
  // to its first-seen kind; asking for the same name as a different
  // kind is a programmer error (SHOAL_CHECK).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // Default log-bucketed layout — quantile-capable out of the box.
  HistogramMetric& GetHistogram(const std::string& name);
  // Explicit linear shape (legacy); only honoured on first creation.
  HistogramMetric& GetHistogram(const std::string& name, double lo,
                                double hi, size_t buckets);

  // Zeroes every registered metric. Handles stay valid.
  void Reset();

  // Snapshot as {"counters": {...}, "gauges": {...}, "histograms":
  // {...}} with names sorted (map order).
  util::JsonValue ToJson() const;
  std::string ToJsonString(int indent = 2) const;

  // Prometheus text exposition format 0.0.4: every counter, gauge
  // (plus a `<name>_max` gauge for the high-water mark) and histogram
  // (`_bucket` series with cumulative `le` labels, `_sum`, `_count`).
  // Dotted names are sanitized to [a-zA-Z0-9_:] with HELP/TYPE lines
  // per family; empty bins are elided (the remaining cumulative series
  // plus the mandatory `+Inf` bucket are a valid exposition).
  std::string RenderPrometheus() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

// `name` rewritten to the Prometheus metric-name alphabet: characters
// outside [a-zA-Z0-9_:] become '_', and a leading digit gets a '_'
// prefix. Exposed for tests and the exposition renderer.
std::string SanitizeMetricName(const std::string& name);

}  // namespace shoal::obs

#endif  // SHOAL_OBS_METRICS_H_
