#include "core/taxonomy_io.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <unordered_map>

#include "util/string_util.h"
#include "util/tsv.h"

namespace shoal::core {

namespace {

std::string PathOf(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

uint32_t ParseU32(const std::string& text) {
  return static_cast<uint32_t>(std::strtoul(text.c_str(), nullptr, 10));
}

util::Status ExpectFields(const std::vector<std::string>& row,
                          size_t expected, const char* file) {
  if (row.size() != expected) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "%s: expected %zu fields, got %zu", file, expected, row.size()));
  }
  return util::Status::OK();
}

}  // namespace

util::Status SaveTaxonomy(const Taxonomy& taxonomy,
                          const CategoryCorrelation& correlations,
                          const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create directory " + dir + ": " +
                                 ec.message());
  }

  std::vector<std::vector<std::string>> topics;
  std::vector<std::vector<std::string>> members;
  std::vector<std::vector<std::string>> categories;
  std::vector<std::vector<std::string>> descriptions;
  topics.push_back({"# id", "parent", "level", "size"});
  // num_entities is recorded in the header comment of members.tsv.
  members.push_back({"# num_entities=" + std::to_string(
                         taxonomy.num_entities())});
  for (uint32_t t = 0; t < taxonomy.num_topics(); ++t) {
    const Topic& topic = taxonomy.topic(t);
    topics.push_back({std::to_string(topic.id),
                      topic.parent == kNoTopic
                          ? "-"
                          : std::to_string(topic.parent),
                      std::to_string(topic.level),
                      std::to_string(topic.entities.size())});
    for (uint32_t e : topic.entities) {
      members.push_back({std::to_string(t), std::to_string(e)});
    }
    for (const auto& [category, count] : topic.categories) {
      categories.push_back({std::to_string(t), std::to_string(category),
                            std::to_string(count)});
    }
    for (size_t rank = 0; rank < topic.description.size(); ++rank) {
      descriptions.push_back({std::to_string(t), std::to_string(rank),
                              topic.description[rank]});
    }
  }
  std::vector<std::vector<std::string>> pairs;
  for (const auto& pair : correlations.pairs()) {
    pairs.push_back({std::to_string(pair.c1), std::to_string(pair.c2),
                     std::to_string(pair.strength)});
  }

  SHOAL_RETURN_IF_ERROR(util::WriteTsv(PathOf(dir, "topics.tsv"), topics));
  SHOAL_RETURN_IF_ERROR(util::WriteTsv(PathOf(dir, "members.tsv"), members));
  SHOAL_RETURN_IF_ERROR(
      util::WriteTsv(PathOf(dir, "categories.tsv"), categories));
  SHOAL_RETURN_IF_ERROR(
      util::WriteTsv(PathOf(dir, "descriptions.tsv"), descriptions));
  SHOAL_RETURN_IF_ERROR(
      util::WriteTsv(PathOf(dir, "correlations.tsv"), pairs));
  return util::Status::OK();
}

util::Result<Taxonomy> TaxonomyFromTopics(std::vector<Topic> topics,
                                          size_t num_entities) {
  Taxonomy taxonomy;
  // Validate ids, parent links and members before committing.
  for (uint32_t t = 0; t < topics.size(); ++t) {
    Topic& topic = topics[t];
    if (topic.id != t) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "topic %u stored at index %u", topic.id, t));
    }
    if (topic.parent != kNoTopic) {
      if (topic.parent >= topics.size()) {
        return util::Status::InvalidArgument(
            util::StringPrintf("topic %u has unknown parent %u", t,
                               topic.parent));
      }
      if (topic.parent == t) {
        return util::Status::InvalidArgument(
            util::StringPrintf("topic %u is its own parent", t));
      }
    }
    for (uint32_t e : topic.entities) {
      if (e >= num_entities) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "topic %u contains entity %u outside [0,%zu)", t, e,
            num_entities));
      }
    }
  }
  // Cycle check via parent-chain walking (paths are short; O(n^2) worst
  // case is fine for the taxonomy sizes involved).
  for (uint32_t t = 0; t < topics.size(); ++t) {
    uint32_t cur = topics[t].parent;
    size_t steps = 0;
    while (cur != kNoTopic) {
      if (++steps > topics.size()) {
        return util::Status::InvalidArgument(
            util::StringPrintf("parent cycle through topic %u", t));
      }
      cur = topics[cur].parent;
    }
  }

  // Rebuild derived structure: children lists, roots, entity mapping.
  for (Topic& topic : topics) topic.children.clear();
  taxonomy.topics_ = std::move(topics);
  for (Topic& topic : taxonomy.topics_) {
    if (topic.parent == kNoTopic) {
      taxonomy.roots_.push_back(topic.id);
    } else {
      taxonomy.topics_[topic.parent].children.push_back(topic.id);
    }
  }
  taxonomy.entity_topic_.assign(num_entities, kNoTopic);
  std::vector<uint32_t> order(taxonomy.topics_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return taxonomy.topics_[a].level < taxonomy.topics_[b].level;
  });
  for (uint32_t t : order) {
    for (uint32_t e : taxonomy.topics_[t].entities) {
      taxonomy.entity_topic_[e] = t;
    }
  }
  return taxonomy;
}

util::Result<CategoryCorrelation> CorrelationFromPairs(
    const std::vector<CategoryCorrelation::Pair>& pairs) {
  CategoryCorrelation correlation;
  for (const auto& pair : pairs) {
    if (pair.c1 == pair.c2) {
      return util::Status::InvalidArgument("self-correlated category");
    }
    if (pair.strength == 0) {
      return util::Status::InvalidArgument("zero-strength correlation");
    }
    uint64_t key = CategoryCorrelation::Key(pair.c1, pair.c2);
    if (!correlation.strength_.emplace(key, pair.strength).second) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "duplicate correlation pair (%u,%u)", pair.c1, pair.c2));
    }
    correlation.related_[pair.c1].emplace_back(pair.c2, pair.strength);
    correlation.related_[pair.c2].emplace_back(pair.c1, pair.strength);
    correlation.pairs_.push_back(pair);
  }
  for (auto& [c, list] : correlation.related_) {
    (void)c;
    std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
  }
  std::sort(correlation.pairs_.begin(), correlation.pairs_.end(),
            [](const CategoryCorrelation::Pair& a,
               const CategoryCorrelation::Pair& b) {
              if (a.strength != b.strength) return a.strength > b.strength;
              if (a.c1 != b.c1) return a.c1 < b.c1;
              return a.c2 < b.c2;
            });
  return correlation;
}

util::Result<LoadedTaxonomy> LoadTaxonomy(const std::string& dir) {
  SHOAL_ASSIGN_OR_RETURN(auto topic_rows,
                         util::ReadTsv(PathOf(dir, "topics.tsv")));
  std::vector<Topic> topics;
  topics.reserve(topic_rows.size());
  for (const auto& row : topic_rows) {
    SHOAL_RETURN_IF_ERROR(ExpectFields(row, 4, "topics.tsv"));
    Topic topic;
    topic.id = ParseU32(row[0]);
    topic.parent = row[1] == "-" ? kNoTopic : ParseU32(row[1]);
    topic.level = ParseU32(row[2]);
    topics.push_back(std::move(topic));
  }

  // members.tsv carries the entity count in a header comment; ReadTsv
  // strips comments, so read it separately.
  SHOAL_ASSIGN_OR_RETURN(std::string members_raw,
                         util::ReadTextFile(PathOf(dir, "members.tsv")));
  size_t num_entities = 0;
  {
    size_t pos = members_raw.find("num_entities=");
    if (pos == std::string::npos) {
      return util::Status::InvalidArgument(
          "members.tsv missing num_entities header");
    }
    num_entities = std::strtoull(members_raw.c_str() + pos + 13, nullptr, 10);
  }
  SHOAL_ASSIGN_OR_RETURN(auto member_rows,
                         util::ReadTsv(PathOf(dir, "members.tsv")));
  for (const auto& row : member_rows) {
    SHOAL_RETURN_IF_ERROR(ExpectFields(row, 2, "members.tsv"));
    uint32_t t = ParseU32(row[0]);
    if (t >= topics.size()) {
      return util::Status::InvalidArgument("members.tsv: unknown topic");
    }
    topics[t].entities.push_back(ParseU32(row[1]));
  }

  SHOAL_ASSIGN_OR_RETURN(auto category_rows,
                         util::ReadTsv(PathOf(dir, "categories.tsv")));
  for (const auto& row : category_rows) {
    SHOAL_RETURN_IF_ERROR(ExpectFields(row, 3, "categories.tsv"));
    uint32_t t = ParseU32(row[0]);
    if (t >= topics.size()) {
      return util::Status::InvalidArgument("categories.tsv: unknown topic");
    }
    topics[t].categories.emplace_back(ParseU32(row[1]),
                                      std::strtoull(row[2].c_str(), nullptr,
                                                    10));
  }

  SHOAL_ASSIGN_OR_RETURN(auto description_rows,
                         util::ReadTsv(PathOf(dir, "descriptions.tsv")));
  for (const auto& row : description_rows) {
    SHOAL_RETURN_IF_ERROR(ExpectFields(row, 3, "descriptions.tsv"));
    uint32_t t = ParseU32(row[0]);
    size_t rank = std::strtoull(row[1].c_str(), nullptr, 10);
    if (t >= topics.size()) {
      return util::Status::InvalidArgument(
          "descriptions.tsv: unknown topic");
    }
    auto& description = topics[t].description;
    if (description.size() <= rank) description.resize(rank + 1);
    description[rank] = row[2];
  }

  SHOAL_ASSIGN_OR_RETURN(auto pair_rows,
                         util::ReadTsv(PathOf(dir, "correlations.tsv")));
  std::vector<CategoryCorrelation::Pair> pairs;
  for (const auto& row : pair_rows) {
    SHOAL_RETURN_IF_ERROR(ExpectFields(row, 3, "correlations.tsv"));
    pairs.push_back(CategoryCorrelation::Pair{
        ParseU32(row[0]), ParseU32(row[1]), ParseU32(row[2])});
  }

  LoadedTaxonomy loaded;
  SHOAL_ASSIGN_OR_RETURN(loaded.taxonomy,
                         TaxonomyFromTopics(std::move(topics), num_entities));
  SHOAL_ASSIGN_OR_RETURN(loaded.correlations, CorrelationFromPairs(pairs));
  return loaded;
}

}  // namespace shoal::core
