#include "core/query_search.h"

#include <algorithm>

#include "text/normalize.h"
#include "text/tokenizer.h"

namespace shoal::core {

util::Result<QueryTopicIndex> QueryTopicIndex::Build(
    const Taxonomy& taxonomy,
    const std::vector<std::vector<uint32_t>>& entity_title_words,
    const text::Vocabulary* vocab, const Options& options) {
  if (vocab == nullptr) {
    return util::Status::InvalidArgument("vocab must not be null");
  }
  QueryTopicIndex index;
  index.vocab_ = vocab;
  index.bm25_ = text::Bm25Index(options.bm25);

  std::vector<uint32_t> topic_ids;
  if (options.roots_only) {
    topic_ids = taxonomy.roots();
  } else {
    topic_ids.resize(taxonomy.num_topics());
    for (uint32_t t = 0; t < taxonomy.num_topics(); ++t) topic_ids[t] = t;
  }

  for (uint32_t t : topic_ids) {
    const Topic& topic = taxonomy.topic(t);
    std::vector<uint32_t> doc;
    for (uint32_t e : topic.entities) {
      if (e >= entity_title_words.size()) {
        return util::Status::OutOfRange("entity without title words");
      }
      doc.insert(doc.end(), entity_title_words[e].begin(),
                 entity_title_words[e].end());
    }
    // Fold the topic's representative queries in as well; they are the
    // most intent-bearing text attached to the topic.
    for (const std::string& desc : topic.description) {
      for (const std::string& token : text::Tokenize(desc)) {
        uint32_t id = vocab->Lookup(token);
        if (id != text::kUnknownWord) doc.push_back(id);
      }
    }
    index.bm25_.AddDocument(doc);
    index.doc_topic_.push_back(t);
  }
  return index;
}

std::vector<QueryTopicIndex::Hit> QueryTopicIndex::Search(
    const std::string& query_text, size_t k) const {
  // Serve-time queries go through the same NormalizeQuery entry point as
  // offline index compilation (see text/normalize.h) so both sides agree
  // on token boundaries and casing.
  std::vector<uint32_t> words;
  for (const std::string& token : text::NormalizeQueryTokens(query_text)) {
    uint32_t id = vocab_->Lookup(token);
    if (id != text::kUnknownWord) words.push_back(id);
  }
  std::vector<Hit> hits;
  if (words.empty()) return hits;
  std::vector<double> scores = bm25_.ScoreAll(words);
  for (uint32_t d = 0; d < scores.size(); ++d) {
    if (scores[d] > 0.0) hits.push_back(Hit{doc_topic_[d], scores[d]});
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.topic < b.topic;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace shoal::core
