#include "core/topic_describer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/string_util.h"

namespace shoal::core {

namespace {

// Shared body of Describe / DescribeTopics. `doc_topics` feed the BM25
// corpus (one pseudo-document each); `score_topics` ⊆ doc_topics are the
// ones actually scored and rewritten. Describe passes the same set for
// both; DescribeTopics passes every topic as docs and the caller's
// subset as scores.
util::Result<std::vector<std::vector<ScoredQuery>>> DescribeImpl(
    Taxonomy& taxonomy, const DescriberInput& input,
    const DescriberOptions& options, const std::vector<uint32_t>& doc_topics,
    const std::vector<uint32_t>& score_topics) {
  if (input.taxonomy != nullptr && input.taxonomy != &taxonomy) {
    return util::Status::InvalidArgument(
        "DescriberInput.taxonomy must match the taxonomy argument");
  }
  if (input.query_item_graph == nullptr || input.query_words == nullptr ||
      input.query_texts == nullptr || input.entity_title_words == nullptr) {
    return util::Status::InvalidArgument("DescriberInput has null fields");
  }
  const auto& qi = *input.query_item_graph;
  const auto& query_words = *input.query_words;
  const auto& query_texts = *input.query_texts;
  const auto& titles = *input.entity_title_words;
  if (query_words.size() != qi.num_left() ||
      query_texts.size() != qi.num_left()) {
    return util::Status::InvalidArgument(
        "query metadata does not match bipartite graph");
  }
  if (titles.size() != qi.num_right()) {
    return util::Status::InvalidArgument(
        "entity titles do not match bipartite graph");
  }

  // Pseudo-document D_t per corpus topic, and the BM25 index.
  text::Bm25Index bm25(options.bm25);
  std::unordered_map<uint32_t, uint32_t> doc_of_topic;  // topic -> doc id
  for (uint32_t t : doc_topics) {
    if (t >= taxonomy.num_topics()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "topic %u is out of range (taxonomy has %zu topics)", t,
          taxonomy.num_topics()));
    }
    std::vector<uint32_t> doc;
    for (uint32_t e : taxonomy.topic(t).entities) {
      doc.insert(doc.end(), titles[e].begin(), titles[e].end());
    }
    const auto inserted = doc_of_topic.emplace(t, bm25.AddDocument(doc));
    if (!inserted.second) {
      return util::Status::InvalidArgument(
          util::StringPrintf("topic %u appears twice", t));
    }
  }

  // Per-topic interaction counts: tf(q, I_t) and tf(I_t); candidates are
  // the queries actually linked to the topic's items.
  std::vector<std::vector<ScoredQuery>> rankings(taxonomy.num_topics());
  // Cache of the stable-softmax denominator pieces per query.
  struct SoftmaxCache {
    double max_rel = 0.0;
    double sum_exp = 0.0;  // sum over docs of exp(rel - max_rel)
    std::vector<double> rel;
  };
  std::unordered_map<uint32_t, SoftmaxCache> softmax_cache;

  for (uint32_t t : score_topics) {
    if (t >= taxonomy.num_topics() || doc_of_topic.find(t) ==
                                          doc_of_topic.end()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "scored topic %u is not part of the BM25 corpus", t));
    }
    Topic& topic = taxonomy.topic(t);
    std::unordered_map<uint32_t, uint64_t> tf_q;  // query -> interactions
    uint64_t tf_total = 0;
    for (uint32_t e : topic.entities) {
      for (const auto& link : qi.RightNeighbors(e)) {
        tf_q[link.id] += link.count;
        tf_total += link.count;
      }
    }
    if (tf_total == 0) continue;
    const double log_tf_total =
        std::log(static_cast<double>(tf_total) + 1.0);

    auto& ranking = rankings[t];
    ranking.reserve(tf_q.size());
    for (const auto& [q, tf] : tf_q) {
      // Popularity: log-normalised frequency of q within the topic.
      double pop = (std::log(static_cast<double>(tf)) + 1.0) / log_tf_total;
      pop = std::clamp(pop, 0.0, 1.0);

      // Concentration: stable softmax of BM25 relevance over all topics,
      // with the paper's +1 term carried as exp(0 - max).
      auto cache_it = softmax_cache.find(q);
      if (cache_it == softmax_cache.end()) {
        SoftmaxCache cache;
        cache.rel = bm25.ScoreAll(query_words[q]);
        cache.max_rel = 0.0;
        for (double r : cache.rel) cache.max_rel = std::max(cache.max_rel, r);
        cache.sum_exp = std::exp(0.0 - cache.max_rel);  // the "1 +" term
        for (double r : cache.rel) {
          cache.sum_exp += std::exp(r - cache.max_rel);
        }
        cache_it = softmax_cache.emplace(q, std::move(cache)).first;
      }
      const SoftmaxCache& cache = cache_it->second;
      double rel_t = cache.rel[doc_of_topic.at(t)];
      double con = std::exp(rel_t - cache.max_rel) / cache.sum_exp;

      ScoredQuery scored;
      scored.query = q;
      scored.popularity = pop;
      scored.concentration = con;
      scored.representativeness = std::sqrt(pop * con);
      ranking.push_back(scored);
    }
    std::sort(ranking.begin(), ranking.end(),
              [](const ScoredQuery& a, const ScoredQuery& b) {
                if (a.representativeness != b.representativeness) {
                  return a.representativeness > b.representativeness;
                }
                return a.query < b.query;
              });

    topic.description.clear();
    for (size_t i = 0;
         i < std::min(options.queries_per_topic, ranking.size()); ++i) {
      topic.description.push_back(query_texts[ranking[i].query]);
    }
  }
  return rankings;
}

std::vector<uint32_t> AllTopicIds(const Taxonomy& taxonomy) {
  std::vector<uint32_t> topic_ids(taxonomy.num_topics());
  for (uint32_t t = 0; t < taxonomy.num_topics(); ++t) topic_ids[t] = t;
  return topic_ids;
}

}  // namespace

util::Result<std::vector<std::vector<ScoredQuery>>> TopicDescriber::Describe(
    Taxonomy& taxonomy, const DescriberInput& input,
    const DescriberOptions& options) {
  const std::vector<uint32_t> topic_ids =
      options.roots_only ? taxonomy.roots() : AllTopicIds(taxonomy);
  return DescribeImpl(taxonomy, input, options, topic_ids, topic_ids);
}

util::Result<std::vector<std::vector<ScoredQuery>>>
TopicDescriber::DescribeTopics(Taxonomy& taxonomy,
                               const DescriberInput& input,
                               const DescriberOptions& options,
                               const std::vector<uint32_t>& topics_to_score) {
  return DescribeImpl(taxonomy, input, options, AllTopicIds(taxonomy),
                      topics_to_score);
}

}  // namespace shoal::core
