#ifndef SHOAL_CORE_SEQUENTIAL_HAC_H_
#define SHOAL_CORE_SEQUENTIAL_HAC_H_

#include "core/dendrogram.h"
#include "core/hac_common.h"
#include "graph/weighted_graph.h"
#include "util/result.h"

namespace shoal::core {

// Exact greedy HAC baseline: repeatedly merges the globally best edge
// until every remaining similarity is below the threshold. One merge per
// iteration — this is the algorithm the paper's Challenge 2 describes as
// not scaling, implemented here with a lazy-deletion priority queue so
// the comparison is fair (O(E log E) rather than O(V * E)).
struct SequentialHacStats {
  size_t merges = 0;
  size_t heap_pops = 0;  // includes stale entries (lazy deletion)
};

util::Result<Dendrogram> SequentialHac(const graph::WeightedGraph& graph,
                                       const HacOptions& options,
                                       SequentialHacStats* stats = nullptr);

}  // namespace shoal::core

#endif  // SHOAL_CORE_SEQUENTIAL_HAC_H_
