#include "core/shoal.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace shoal::core {

util::JsonValue ShoalBuildStats::ToJson() const {
  using util::JsonValue;
  JsonValue out = JsonValue::Object();
  JsonValue seconds = JsonValue::Object();
  seconds.Set("word2vec", JsonValue::Number(word2vec_seconds));
  seconds.Set("entity_graph", JsonValue::Number(entity_graph_seconds));
  seconds.Set("hac", JsonValue::Number(hac_seconds));
  seconds.Set("taxonomy", JsonValue::Number(taxonomy_seconds));
  seconds.Set("describe", JsonValue::Number(describe_seconds));
  seconds.Set("correlation", JsonValue::Number(correlation_seconds));
  out.Set("stage_seconds", std::move(seconds));

  JsonValue eg = JsonValue::Object();
  eg.Set("candidate_pairs", JsonValue::Number(static_cast<double>(
                                entity_graph.candidate_pairs)));
  eg.Set("scored_pairs", JsonValue::Number(static_cast<double>(
                             entity_graph.scored_pairs)));
  eg.Set("kept_edges", JsonValue::Number(static_cast<double>(
                           entity_graph.kept_edges)));
  eg.Set("capped_queries", JsonValue::Number(static_cast<double>(
                               entity_graph.capped_queries)));
  eg.Set("lsh_signed_entities", JsonValue::Number(static_cast<double>(
                                    entity_graph.lsh_signed_entities)));
  eg.Set("lsh_buckets", JsonValue::Number(static_cast<double>(
                            entity_graph.lsh_buckets)));
  eg.Set("lsh_skipped_buckets", JsonValue::Number(static_cast<double>(
                                    entity_graph.lsh_skipped_buckets)));
  eg.Set("lsh_emitted_pairs", JsonValue::Number(static_cast<double>(
                                  entity_graph.lsh_emitted_pairs)));
  eg.Set("candidate_seconds",
         JsonValue::Number(entity_graph.candidate_seconds));
  eg.Set("signature_seconds",
         JsonValue::Number(entity_graph.signature_seconds));
  eg.Set("profile_seconds", JsonValue::Number(entity_graph.profile_seconds));
  eg.Set("scoring_seconds", JsonValue::Number(entity_graph.scoring_seconds));
  eg.Set("degree_cap_seconds",
         JsonValue::Number(entity_graph.degree_cap_seconds));
  out.Set("entity_graph", std::move(eg));

  JsonValue hac_json = JsonValue::Object();
  hac_json.Set("rounds", JsonValue::Number(static_cast<double>(hac.rounds)));
  hac_json.Set("total_merges",
               JsonValue::Number(static_cast<double>(hac.total_merges)));
  hac_json.Set("total_messages",
               JsonValue::Number(static_cast<double>(hac.total_messages)));
  hac_json.Set("total_supersteps",
               JsonValue::Number(static_cast<double>(hac.total_supersteps)));
  JsonValue merges = JsonValue::Array();
  for (size_t m : hac.merges_per_round) {
    merges.Append(JsonValue::Number(static_cast<double>(m)));
  }
  hac_json.Set("merges_per_round", std::move(merges));
  out.Set("hac", std::move(hac_json));

  out.Set("num_topics",
          JsonValue::Number(static_cast<double>(num_topics)));
  out.Set("num_root_topics",
          JsonValue::Number(static_cast<double>(num_root_topics)));
  return out;
}

std::string ShoalBuildStats::ToJsonString(int indent) const {
  return ToJson().Dump(indent);
}

util::Result<ShoalModel> BuildShoal(const ShoalInput& input,
                                    const ShoalOptions& options,
                                    ShoalResumeState* resume) {
  if (input.query_item_graph == nullptr ||
      input.entity_title_words == nullptr ||
      input.entity_categories == nullptr || input.query_words == nullptr ||
      input.query_texts == nullptr || input.vocab == nullptr) {
    return util::Status::InvalidArgument("ShoalInput has null fields");
  }
  const auto& qi = *input.query_item_graph;
  if (input.entity_title_words->size() != qi.num_right() ||
      input.entity_categories->size() != qi.num_right()) {
    return util::Status::InvalidArgument(
        "entity metadata does not match bipartite graph");
  }
  if (input.query_words->size() != qi.num_left() ||
      input.query_texts->size() != qi.num_left()) {
    return util::Status::InvalidArgument(
        "query metadata does not match bipartite graph");
  }

  ShoalOptions opts = options;
  if (options.num_threads > 0) {
    // Clamped so a bogus huge request (e.g. -1 cast to size_t) cannot
    // make a downstream thread pool attempt to spawn it.
    const size_t threads = std::min<size_t>(options.num_threads, 256);
    opts.entity_graph.num_threads = threads;
    opts.hac.num_threads = threads;
  }

  ShoalModel model;
  util::Stopwatch stopwatch;
  obs::ScopedSpan build_span("shoal.build");

  const bool restore_entity_graph =
      resume != nullptr && resume->has_entity_graph;
  if (restore_entity_graph) {
    // Word2vec vectors feed only the entity-graph stage, so a restored
    // entity graph lets the resume skip both.
    if (resume->entity_graph.num_vertices() != qi.num_right()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "restored entity graph has %zu vertices but the input has %zu "
          "entities; the checkpoint belongs to a different dataset",
          resume->entity_graph.num_vertices(), qi.num_right()));
    }
    model.entity_graph_ = std::move(resume->entity_graph);
  } else {
    // --- word2vec over titles + queries (Sec 2.1, content similarity) --
    obs::ScopedSpan word2vec_span("shoal.word2vec");
    std::vector<std::vector<uint32_t>> corpus;
    corpus.reserve(input.entity_title_words->size() +
                   input.query_words->size());
    for (const auto& title : *input.entity_title_words) {
      corpus.push_back(title);
    }
    for (const auto& words : *input.query_words) corpus.push_back(words);
    auto word2vec = text::Word2Vec::Train(*input.vocab, corpus,
                                          opts.word2vec);
    if (!word2vec.ok()) return word2vec.status();
    model.stats_.word2vec_seconds = stopwatch.ElapsedSeconds();
    word2vec_span.End();
    SHOAL_RETURN_IF_ERROR(
        util::FaultInjector::Global().OnStage("word2vec"));

    // --- item entity graph (Sec 2.1) ------------------------------------
    stopwatch.Restart();
    obs::ScopedSpan entity_graph_span("shoal.entity_graph");
    auto entity_graph = BuildEntityGraph(qi, *input.entity_title_words,
                                         word2vec.value().vectors(),
                                         opts.entity_graph,
                                         &model.stats_.entity_graph);
    if (!entity_graph.ok()) return entity_graph.status();
    model.entity_graph_ = std::move(entity_graph).value();
    model.stats_.entity_graph_seconds = stopwatch.ElapsedSeconds();
    entity_graph_span.AddArg(
        "edges", static_cast<double>(model.entity_graph_.num_edges()));
    entity_graph_span.End();
    if (opts.entity_graph_checkpoint_hook) {
      SHOAL_RETURN_IF_ERROR(
          opts.entity_graph_checkpoint_hook(model.entity_graph_));
    }
  }
  SHOAL_RETURN_IF_ERROR(
      util::FaultInjector::Global().OnStage("entity_graph"));

  // --- Parallel HAC (Sec 2.2) -------------------------------------------
  stopwatch.Restart();
  obs::ScopedSpan hac_span("shoal.hac");
  auto dendrogram =
      (resume != nullptr && resume->hac.has_value())
          ? ResumeParallelHac(opts.hac, std::move(*resume->hac),
                              &model.stats_.hac)
          : ParallelHac(model.entity_graph_, opts.hac, &model.stats_.hac);
  if (!dendrogram.ok()) return dendrogram.status();
  model.dendrogram_ =
      std::make_shared<Dendrogram>(std::move(dendrogram).value());
  model.stats_.hac_seconds = stopwatch.ElapsedSeconds();
  hac_span.AddArg("rounds", static_cast<double>(model.stats_.hac.rounds));
  hac_span.AddArg("merges",
                  static_cast<double>(model.stats_.hac.total_merges));
  hac_span.End();
  SHOAL_RETURN_IF_ERROR(util::FaultInjector::Global().OnStage("hac"));

  // --- taxonomy extraction ------------------------------------------------
  stopwatch.Restart();
  obs::ScopedSpan taxonomy_span("shoal.taxonomy");
  model.taxonomy_ = Taxonomy::Build(*model.dendrogram_,
                                    *input.entity_categories,
                                    opts.taxonomy);
  model.stats_.num_topics = model.taxonomy_.num_topics();
  model.stats_.num_root_topics = model.taxonomy_.roots().size();
  model.stats_.taxonomy_seconds = stopwatch.ElapsedSeconds();
  taxonomy_span.AddArg("topics",
                       static_cast<double>(model.stats_.num_topics));
  taxonomy_span.End();
  SHOAL_RETURN_IF_ERROR(util::FaultInjector::Global().OnStage("taxonomy"));

  // --- topic descriptions (Sec 2.3) ---------------------------------------
  stopwatch.Restart();
  obs::ScopedSpan describe_span("shoal.describe");
  DescriberInput describe_input;
  describe_input.taxonomy = &model.taxonomy_;
  describe_input.query_item_graph = &qi;
  describe_input.query_words = input.query_words;
  describe_input.query_texts = input.query_texts;
  describe_input.entity_title_words = input.entity_title_words;
  auto rankings = TopicDescriber::Describe(model.taxonomy_, describe_input,
                                           opts.describer);
  if (!rankings.ok()) return rankings.status();
  model.stats_.describe_seconds = stopwatch.ElapsedSeconds();
  describe_span.End();
  SHOAL_RETURN_IF_ERROR(util::FaultInjector::Global().OnStage("describe"));

  // --- category correlation (Sec 2.4) --------------------------------------
  stopwatch.Restart();
  obs::ScopedSpan correlation_span("shoal.correlation");
  model.correlations_ =
      CategoryCorrelation::Mine(model.taxonomy_, opts.correlation);
  model.stats_.correlation_seconds = stopwatch.ElapsedSeconds();
  correlation_span.End();
  SHOAL_RETURN_IF_ERROR(
      util::FaultInjector::Global().OnStage("correlation"));

  // --- query -> topic search index (demo scenarios A/B) --------------------
  obs::ScopedSpan search_span("shoal.search_index");
  auto index = QueryTopicIndex::Build(model.taxonomy_,
                                      *input.entity_title_words,
                                      input.vocab, opts.search);
  if (!index.ok()) return index.status();
  model.search_index_ =
      std::make_shared<QueryTopicIndex>(std::move(index).value());
  search_span.End();

  auto& metrics = obs::MetricsRegistry::Global();
  if (metrics.enabled()) {
    metrics.GetCounter("shoal.builds").Increment();
    metrics.GetGauge("shoal.num_topics")
        .Set(static_cast<double>(model.stats_.num_topics));
    metrics.GetGauge("shoal.num_root_topics")
        .Set(static_cast<double>(model.stats_.num_root_topics));
  }
  return model;
}

}  // namespace shoal::core
