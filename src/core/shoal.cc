#include "core/shoal.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace shoal::core {

util::Result<ShoalModel> BuildShoal(const ShoalInput& input,
                                    const ShoalOptions& options) {
  if (input.query_item_graph == nullptr ||
      input.entity_title_words == nullptr ||
      input.entity_categories == nullptr || input.query_words == nullptr ||
      input.query_texts == nullptr || input.vocab == nullptr) {
    return util::Status::InvalidArgument("ShoalInput has null fields");
  }
  const auto& qi = *input.query_item_graph;
  if (input.entity_title_words->size() != qi.num_right() ||
      input.entity_categories->size() != qi.num_right()) {
    return util::Status::InvalidArgument(
        "entity metadata does not match bipartite graph");
  }
  if (input.query_words->size() != qi.num_left() ||
      input.query_texts->size() != qi.num_left()) {
    return util::Status::InvalidArgument(
        "query metadata does not match bipartite graph");
  }

  ShoalOptions opts = options;
  if (options.num_threads > 0) {
    // Clamped so a bogus huge request (e.g. -1 cast to size_t) cannot
    // make a downstream thread pool attempt to spawn it.
    const size_t threads = std::min<size_t>(options.num_threads, 256);
    opts.entity_graph.num_threads = threads;
    opts.hac.num_threads = threads;
  }

  ShoalModel model;
  util::Stopwatch stopwatch;

  // --- word2vec over titles + queries (Sec 2.1, content similarity) ----
  std::vector<std::vector<uint32_t>> corpus;
  corpus.reserve(input.entity_title_words->size() +
                 input.query_words->size());
  for (const auto& title : *input.entity_title_words) corpus.push_back(title);
  for (const auto& words : *input.query_words) corpus.push_back(words);
  auto word2vec = text::Word2Vec::Train(*input.vocab, corpus,
                                        opts.word2vec);
  if (!word2vec.ok()) return word2vec.status();
  model.stats_.word2vec_seconds = stopwatch.ElapsedSeconds();

  // --- item entity graph (Sec 2.1) --------------------------------------
  stopwatch.Restart();
  auto entity_graph = BuildEntityGraph(qi, *input.entity_title_words,
                                       word2vec.value().vectors(),
                                       opts.entity_graph,
                                       &model.stats_.entity_graph);
  if (!entity_graph.ok()) return entity_graph.status();
  model.entity_graph_ = std::move(entity_graph).value();
  model.stats_.entity_graph_seconds = stopwatch.ElapsedSeconds();

  // --- Parallel HAC (Sec 2.2) -------------------------------------------
  stopwatch.Restart();
  auto dendrogram =
      ParallelHac(model.entity_graph_, opts.hac, &model.stats_.hac);
  if (!dendrogram.ok()) return dendrogram.status();
  model.dendrogram_ =
      std::make_shared<Dendrogram>(std::move(dendrogram).value());
  model.stats_.hac_seconds = stopwatch.ElapsedSeconds();

  // --- taxonomy extraction ------------------------------------------------
  stopwatch.Restart();
  model.taxonomy_ = Taxonomy::Build(*model.dendrogram_,
                                    *input.entity_categories,
                                    opts.taxonomy);
  model.stats_.num_topics = model.taxonomy_.num_topics();
  model.stats_.num_root_topics = model.taxonomy_.roots().size();
  model.stats_.taxonomy_seconds = stopwatch.ElapsedSeconds();

  // --- topic descriptions (Sec 2.3) ---------------------------------------
  stopwatch.Restart();
  DescriberInput describe_input;
  describe_input.taxonomy = &model.taxonomy_;
  describe_input.query_item_graph = &qi;
  describe_input.query_words = input.query_words;
  describe_input.query_texts = input.query_texts;
  describe_input.entity_title_words = input.entity_title_words;
  auto rankings = TopicDescriber::Describe(model.taxonomy_, describe_input,
                                           opts.describer);
  if (!rankings.ok()) return rankings.status();
  model.stats_.describe_seconds = stopwatch.ElapsedSeconds();

  // --- category correlation (Sec 2.4) --------------------------------------
  stopwatch.Restart();
  model.correlations_ =
      CategoryCorrelation::Mine(model.taxonomy_, opts.correlation);
  model.stats_.correlation_seconds = stopwatch.ElapsedSeconds();

  // --- query -> topic search index (demo scenarios A/B) --------------------
  auto index = QueryTopicIndex::Build(model.taxonomy_,
                                      *input.entity_title_words,
                                      input.vocab, opts.search);
  if (!index.ok()) return index.status();
  model.search_index_ =
      std::make_shared<QueryTopicIndex>(std::move(index).value());
  return model;
}

}  // namespace shoal::core
