#include "core/sequential_hac.h"

#include <algorithm>
#include <queue>

namespace shoal::core {

namespace {

struct HeapEdge {
  double similarity;
  uint32_t u;
  uint32_t v;

  // std::priority_queue is a max-heap on operator<; order must agree
  // with EdgeBeats so the sequential and parallel variants tie-break
  // identically.
  bool operator<(const HeapEdge& other) const {
    return EdgeBeats(other.u, other.v, other.similarity, u, v, similarity);
  }
};

}  // namespace

util::Result<Dendrogram> SequentialHac(const graph::WeightedGraph& graph,
                                       const HacOptions& options,
                                       SequentialHacStats* stats) {
  if (options.threshold <= 0.0) {
    return util::Status::InvalidArgument("threshold must be positive");
  }
  Dendrogram dendrogram(graph.num_vertices());
  ClusterGraph clusters(graph);
  SequentialHacStats local_stats;

  std::priority_queue<HeapEdge> heap;
  for (const auto& e : graph.AllEdges()) {
    if (e.weight >= options.threshold) {
      heap.push(HeapEdge{e.weight, e.u, e.v});
    }
  }

  while (!heap.empty()) {
    HeapEdge top = heap.top();
    heap.pop();
    ++local_stats.heap_pops;
    // Lazy deletion: skip entries whose endpoints are gone or whose
    // similarity no longer matches the live cluster graph.
    if (!clusters.IsActive(top.u) || !clusters.IsActive(top.v)) continue;
    const ClusterEdge* edge = clusters.FindEdge(top.u, top.v);
    if (edge == nullptr || edge->similarity != top.similarity) continue;
    if (top.similarity < options.threshold) continue;

    auto merged = dendrogram.Merge(top.u, top.v, top.similarity);
    if (!merged.ok()) return merged.status();
    uint32_t new_id = merged.value();
    SHOAL_RETURN_IF_ERROR(
        clusters.Merge(top.u, top.v, new_id, options.linkage));
    ++local_stats.merges;

    for (const ClusterEdge& e : clusters.Neighbors(new_id)) {
      if (e.similarity >= options.threshold) {
        heap.push(HeapEdge{e.similarity, new_id, e.id});
      }
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return dendrogram;
}

}  // namespace shoal::core
