#ifndef SHOAL_CORE_MINHASH_H_
#define SHOAL_CORE_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shoal::core {

// MinHash signatures over 64-bit shingles, banded for LSH candidate
// generation (DESIGN.md §6.1). An entity's shingle set combines its
// two similarity signals:
//
//   * query shingles — one shingle per associated query id, so the
//     MinHash estimate converges on the Eq. 1 Jaccard of query sets;
//   * title shingles — token n-grams of the title, a set proxy for the
//     Eq. 2 content similarity (near-identical titles share nearly all
//     of their n-grams).
//
// Signatures are `bands * rows` 64-bit minima. Two entities land in
// the same bucket of band b iff all `rows` minima of that band agree,
// so a pair with shingle-Jaccard j collides somewhere with probability
// 1 - (1 - j^rows)^bands — the banding S-curve that separates likely
// edges from the O(n²) bulk. Candidates are exactly rescored (Eq. 1-3)
// afterwards, so LSH affects recall, never precision.
// Defaults picked from the bench_scalability sweep (BENCH.md): at the
// 100k-entity tier, 24 bands x 1 row holds recall ≈ 0.994 against the
// exact graph while generating candidates >10x faster; one row per
// band keeps the per-band collision probability at j (not j^rows),
// which the diluted query+title shingle unions of borderline edges
// need to stay above the 0.95 CI recall floor.
struct MinHashConfig {
  size_t bands = 24;
  size_t rows = 1;
  // Seed for the row hash functions. Part of the determinism contract:
  // same config + same shingles -> bitwise-identical signatures on any
  // thread, machine, or build.
  uint64_t seed = 0x5a0a15eedULL;
};

class MinHasher {
 public:
  explicit MinHasher(const MinHashConfig& config);

  size_t bands() const { return bands_; }
  size_t rows() const { return rows_; }
  size_t signature_size() const { return bands_ * rows_; }

  // Fills `signature` (resized to signature_size()) with the per-row
  // minima over `shingles`. An empty shingle set yields all-kEmpty
  // sentinels; callers typically skip such entities entirely.
  void Sign(const std::vector<uint64_t>& shingles,
            std::vector<uint64_t>* signature) const;

  // Folds band `band`'s rows of `signature` into one bucket key. The
  // band index is mixed in, so the same row values in different bands
  // do not alias to one bucket.
  uint64_t BandKey(const std::vector<uint64_t>& signature,
                   size_t band) const;

  // Convenience: Sign + BandKey for every band. `band_keys` is resized
  // to bands(). Returns false (leaving band_keys untouched) when the
  // shingle set is empty.
  bool BandKeys(const std::vector<uint64_t>& shingles,
                std::vector<uint64_t>* scratch_signature,
                std::vector<uint64_t>* band_keys) const;

  // Fraction of equal rows between two signatures — the unbiased
  // MinHash estimate of the shingle-set Jaccard. Test/diagnostic use.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

  static constexpr uint64_t kEmpty = ~0ULL;

 private:
  size_t bands_;
  size_t rows_;
  // Per-row multiply-shift parameters (odd multiplier, additive offset)
  // applied to the mixed shingle value; see Sign().
  std::vector<uint64_t> row_mults_;
  std::vector<uint64_t> row_adds_;
};

// Shingle builders. Both append to `out` so the two signals compose
// into one set; ids are salted differently so query id 7 and title
// token 7 never collide into the same shingle.

// One shingle per query id (Eq. 1 co-click signal).
void AppendQueryShingles(const std::vector<uint32_t>& query_ids,
                         std::vector<uint64_t>* out);

// Token n-grams of length `shingle_len` (Eq. 2 content signal). Titles
// shorter than `shingle_len` contribute their whole token sequence as
// one shingle; `shingle_len` == 0 is treated as 1 (unigrams).
void AppendTitleShingles(const std::vector<uint32_t>& title_words,
                         size_t shingle_len, std::vector<uint64_t>* out);

}  // namespace shoal::core

#endif  // SHOAL_CORE_MINHASH_H_
