#ifndef SHOAL_CORE_TOPIC_DESCRIBER_H_
#define SHOAL_CORE_TOPIC_DESCRIBER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/taxonomy.h"
#include "graph/bipartite_graph.h"
#include "text/bm25.h"
#include "util/result.h"

namespace shoal::core {

// Topic description matching (Sec 2.3): tags every topic with its most
// representative queries. For query q and topic t,
//
//   r(q, t)   = sqrt(pop(q, t) * con(q, t))
//   pop(q, t) = (log tf(q, I_t) + 1) / log tf(I_t)
//   con(q, t) = exp(rel(q, D_t)) / (1 + sum_j exp(rel(q, D_j)))
//
// where I_t are the topic's items, tf counts query-item interactions in
// the bipartite graph, D_t is the pseudo-document concatenating the
// titles of I_t, and rel is BM25. The softmax is evaluated in a
// numerically stable form (equivalent up to the paper's "+1" term, which
// is kept by carrying exp(-max) explicitly).
struct DescriberOptions {
  size_t queries_per_topic = 5;
  // When true only root topics are described (cheaper); sub-topics
  // inherit nothing. The pipeline defaults to describing every topic.
  bool roots_only = false;
  text::Bm25Index::Options bm25;
};

struct DescriberInput {
  const Taxonomy* taxonomy = nullptr;
  const graph::BipartiteGraph* query_item_graph = nullptr;
  // Word-id form of each query / entity title (vocab-aligned).
  const std::vector<std::vector<uint32_t>>* query_words = nullptr;
  const std::vector<std::string>* query_texts = nullptr;
  const std::vector<std::vector<uint32_t>>* entity_title_words = nullptr;
};

struct ScoredQuery {
  uint32_t query = 0;
  double representativeness = 0.0;
  double popularity = 0.0;
  double concentration = 0.0;
};

class TopicDescriber {
 public:
  // Scores queries for every topic and writes the top
  // `queries_per_topic` query texts into taxonomy.topic(t).description.
  // Returns the full per-topic rankings for inspection / evaluation.
  static util::Result<std::vector<std::vector<ScoredQuery>>> Describe(
      Taxonomy& taxonomy, const DescriberInput& input,
      const DescriberOptions& options);

  // Incremental form: every topic's pseudo-document still enters the
  // BM25 corpus (the Sec 2.3 concentration softmax is global — con of a
  // scored topic is exact under the full corpus), but only
  // `topics_to_score` are scored and have their descriptions rewritten.
  // Rankings of unscored topics come back empty; their descriptions are
  // left untouched (the daemon carries them over from the previous
  // cycle). `options.roots_only` is ignored here — the caller picks the
  // subset. Duplicate or out-of-range ids are InvalidArgument.
  static util::Result<std::vector<std::vector<ScoredQuery>>> DescribeTopics(
      Taxonomy& taxonomy, const DescriberInput& input,
      const DescriberOptions& options,
      const std::vector<uint32_t>& topics_to_score);
};

}  // namespace shoal::core

#endif  // SHOAL_CORE_TOPIC_DESCRIBER_H_
