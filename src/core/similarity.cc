#include "core/similarity.h"

#include <cmath>

#include "util/logging.h"

namespace shoal::core {

double QueryJaccard(const std::vector<uint32_t>& queries_u,
                    const std::vector<uint32_t>& queries_v) {
  if (queries_u.empty() && queries_v.empty()) return 0.0;
  size_t i = 0;
  size_t j = 0;
  size_t intersection = 0;
  while (i < queries_u.size() && j < queries_v.size()) {
    if (queries_u[i] == queries_v[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (queries_u[i] < queries_v[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t union_size = queries_u.size() + queries_v.size() - intersection;
  return static_cast<double>(intersection) /
         static_cast<double>(union_size);
}

ContentProfile BuildContentProfile(const text::EmbeddingTable& vectors,
                                   const std::vector<uint32_t>& word_ids) {
  ContentProfile profile;
  if (word_ids.empty()) return profile;
  const size_t dim = vectors.dim();
  profile.mean_unit_vector.assign(dim, 0.0f);
  size_t used = 0;
  for (uint32_t id : word_ids) {
    if (id >= vectors.rows()) continue;
    const float* row = vectors.Row(id);
    float norm = text::Norm(row, dim);
    if (norm == 0.0f) continue;
    float inv = 1.0f / norm;
    for (size_t d = 0; d < dim; ++d) {
      profile.mean_unit_vector[d] += row[d] * inv;
    }
    ++used;
  }
  if (used == 0) {
    profile.mean_unit_vector.clear();
    return profile;
  }
  float inv = 1.0f / static_cast<float>(used);
  for (float& v : profile.mean_unit_vector) v *= inv;
  return profile;
}

std::vector<ContentProfile> BuildContentProfiles(
    const text::EmbeddingTable& vectors,
    const std::vector<std::vector<uint32_t>>& word_ids,
    util::ThreadPool* pool) {
  std::vector<ContentProfile> profiles(word_ids.size());
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(word_ids.size(), [&](size_t e) {
      profiles[e] = BuildContentProfile(vectors, word_ids[e]);
    });
  } else {
    for (size_t e = 0; e < word_ids.size(); ++e) {
      profiles[e] = BuildContentProfile(vectors, word_ids[e]);
    }
  }
  return profiles;
}

double ContentSimilarity(const ContentProfile& u, const ContentProfile& v) {
  if (u.mean_unit_vector.empty() || v.mean_unit_vector.empty()) return 0.5;
  SHOAL_CHECK(u.mean_unit_vector.size() == v.mean_unit_vector.size())
      << "content profiles built from different embedding tables";
  double dot = 0.0;
  for (size_t d = 0; d < u.mean_unit_vector.size(); ++d) {
    dot += static_cast<double>(u.mean_unit_vector[d]) *
           static_cast<double>(v.mean_unit_vector[d]);
  }
  return 0.5 + 0.5 * dot;
}

double CombinedSimilarity(double query_sim, double content_sim,
                          double alpha) {
  return alpha * query_sim + (1.0 - alpha) * content_sim;
}

}  // namespace shoal::core
