#include "core/dendrogram.h"

#include <deque>

#include "util/string_util.h"

namespace shoal::core {

Dendrogram::Dendrogram(size_t num_leaves) : num_leaves_(num_leaves) {
  nodes_.resize(num_leaves);
  for (size_t i = 0; i < num_leaves; ++i) {
    nodes_[i].id = static_cast<uint32_t>(i);
  }
}

util::Result<uint32_t> Dendrogram::Merge(uint32_t a, uint32_t b,
                                         double similarity) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    return util::Status::OutOfRange(
        util::StringPrintf("merge of unknown nodes (%u,%u)", a, b));
  }
  if (a == b) {
    return util::Status::InvalidArgument("cannot merge a node with itself");
  }
  if (!IsRoot(a) || !IsRoot(b)) {
    return util::Status::FailedPrecondition(
        util::StringPrintf("merge arguments must be roots (%u,%u)", a, b));
  }
  Node merged;
  merged.id = static_cast<uint32_t>(nodes_.size());
  merged.left = a;
  merged.right = b;
  merged.size = nodes_[a].size + nodes_[b].size;
  merged.merge_similarity = similarity;
  nodes_[a].parent = merged.id;
  nodes_[b].parent = merged.id;
  nodes_.push_back(merged);
  return merged.id;
}

std::vector<uint32_t> Dendrogram::Roots() const {
  std::vector<uint32_t> roots;
  for (const Node& node : nodes_) {
    if (node.parent == kNoNode) roots.push_back(node.id);
  }
  return roots;
}

std::vector<uint32_t> Dendrogram::LeavesUnder(uint32_t id) const {
  std::vector<uint32_t> leaves;
  std::deque<uint32_t> stack{id};
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    if (IsLeaf(cur)) {
      leaves.push_back(cur);
      continue;
    }
    stack.push_back(nodes_[cur].left);
    stack.push_back(nodes_[cur].right);
  }
  return leaves;
}

std::vector<uint32_t> Dendrogram::FlatClusters() const {
  std::vector<uint32_t> labels(num_leaves_, 0);
  uint32_t next = 0;
  for (const Node& node : nodes_) {
    if (node.parent != kNoNode) continue;
    for (uint32_t leaf : LeavesUnder(node.id)) labels[leaf] = next;
    ++next;
  }
  return labels;
}

std::vector<uint32_t> Dendrogram::CutAt(double min_similarity) const {
  std::vector<uint32_t> labels(num_leaves_, kNoNode);
  uint32_t next = 0;
  // A node survives the cut if every merge on the path from it up to its
  // root happened at similarity >= min_similarity... inverted view: walk
  // down from each root; descend through merges below the cut.
  std::deque<uint32_t> stack;
  for (const Node& node : nodes_) {
    if (node.parent == kNoNode) stack.push_back(node.id);
  }
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    const Node& node = nodes_[cur];
    if (!IsLeaf(cur) && node.merge_similarity < min_similarity) {
      stack.push_back(node.left);
      stack.push_back(node.right);
      continue;
    }
    uint32_t label = next++;
    for (uint32_t leaf : LeavesUnder(cur)) labels[leaf] = label;
  }
  return labels;
}

}  // namespace shoal::core
