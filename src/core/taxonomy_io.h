#ifndef SHOAL_CORE_TAXONOMY_IO_H_
#define SHOAL_CORE_TAXONOMY_IO_H_

#include <string>

#include "core/category_correlation.h"
#include "core/taxonomy.h"
#include "util/result.h"

namespace shoal::core {

// Persists a built taxonomy as a directory of TSV files so a taxonomy
// can be served without re-running the pipeline:
//
//   <dir>/topics.tsv        id  parent  level  size
//   <dir>/members.tsv       topic_id  entity_id
//   <dir>/categories.tsv    topic_id  category_id  count
//   <dir>/descriptions.tsv  topic_id  rank  query_text
//   <dir>/correlations.tsv  category_a  category_b  strength
//
// The directory is created if missing; existing files are overwritten.
util::Status SaveTaxonomy(const Taxonomy& taxonomy,
                          const CategoryCorrelation& correlations,
                          const std::string& dir);

struct LoadedTaxonomy {
  Taxonomy taxonomy;
  CategoryCorrelation correlations;
};

// Loads a directory written by SaveTaxonomy. Validates structural
// invariants (parent links, member/entity consistency) and fails with
// InvalidArgument on any corruption.
util::Result<LoadedTaxonomy> LoadTaxonomy(const std::string& dir);

// Reconstructs a Taxonomy from explicit topic records. `topics[i].id`
// must equal i; parents must precede children or be kNoTopic; children
// lists are rebuilt from parent links; entity->topic mapping is rebuilt
// with the deepest-topic rule. Exposed for LoadTaxonomy and for tests.
util::Result<Taxonomy> TaxonomyFromTopics(std::vector<Topic> topics,
                                          size_t num_entities);

// Rebuilds a CategoryCorrelation from explicit pairs (strengths must be
// positive; pairs must not repeat).
util::Result<CategoryCorrelation> CorrelationFromPairs(
    const std::vector<CategoryCorrelation::Pair>& pairs);

}  // namespace shoal::core

#endif  // SHOAL_CORE_TAXONOMY_IO_H_
