#ifndef SHOAL_CORE_CATEGORY_CORRELATION_H_
#define SHOAL_CORE_CATEGORY_CORRELATION_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/taxonomy.h"
#include "util/result.h"

namespace shoal::core {

// Category correlation mining (Sec 2.4, Eq. 5): two ontology categories
// are correlated when they co-occur in enough *root topics*. The
// correlation strength is the number of root topics containing both;
// pairs at or below `min_strength` are discarded (paper: > 10).
struct CategoryCorrelationOptions {
  uint32_t min_strength = 10;
  // A category "belongs" to a root topic when at least this many of the
  // topic's entities carry it (filters incidental members).
  size_t min_category_count = 1;
};

class CategoryCorrelation {
 public:
  static CategoryCorrelation Mine(const Taxonomy& taxonomy,
                                  const CategoryCorrelationOptions& options);

  // Correlation strength of a pair (0 when uncorrelated or pruned).
  uint32_t Strength(uint32_t c1, uint32_t c2) const;

  // Related categories of `c`, strongest first.
  std::vector<std::pair<uint32_t, uint32_t>> Related(uint32_t c) const;

  // Every surviving pair (c1 < c2) with its strength.
  struct Pair {
    uint32_t c1;
    uint32_t c2;
    uint32_t strength;
  };
  const std::vector<Pair>& pairs() const { return pairs_; }

 private:
  // Reconstruction path for the TSV loader (taxonomy_io.h).
  friend util::Result<CategoryCorrelation> CorrelationFromPairs(
      const std::vector<Pair>&);

  static uint64_t Key(uint32_t a, uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::unordered_map<uint64_t, uint32_t> strength_;
  std::unordered_map<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>>
      related_;
  std::vector<Pair> pairs_;
};

}  // namespace shoal::core

#endif  // SHOAL_CORE_CATEGORY_CORRELATION_H_
