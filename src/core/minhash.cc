#include "core/minhash.h"

#include <algorithm>

#include "util/random.h"

namespace shoal::core {
namespace {

// Salts keeping the two shingle namespaces (query ids, title n-grams)
// disjoint, and the band fold distinct from the row hashes.
constexpr uint64_t kQuerySalt = 0x9ae16a3b2f90404fULL;
constexpr uint64_t kTitleSalt = 0xc3a5c85c97cb3127ULL;
constexpr uint64_t kBandSalt = 0xb492b66fbe98f273ULL;

// Stateless SplitMix64 finalizer: a full-avalanche 64->64 mix, so one
// multiply chain per (shingle, row) is enough for minwise hashing.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

MinHasher::MinHasher(const MinHashConfig& config)
    : bands_(std::max<size_t>(1, config.bands)),
      rows_(std::max<size_t>(1, config.rows)) {
  row_mults_.reserve(bands_ * rows_);
  row_adds_.reserve(bands_ * rows_);
  uint64_t state = config.seed;
  for (size_t i = 0; i < bands_ * rows_; ++i) {
    row_mults_.push_back(util::SplitMix64(state) | 1);  // odd multiplier
    row_adds_.push_back(util::SplitMix64(state));
  }
}

void MinHasher::Sign(const std::vector<uint64_t>& shingles,
                     std::vector<uint64_t>* signature) const {
  signature->assign(row_mults_.size(), kEmpty);
  uint64_t* sig = signature->data();
  const size_t size = row_mults_.size();
  // One full-avalanche mix per shingle, then a multiply-shift hash per
  // row (odd multiplier + offset over the mixed value). The mix
  // decorrelates the inputs, so the cheap per-row linear maps behave
  // min-wise independently — signing cost is ~1 multiply per row
  // instead of a full finalizer per row, the dominant cost at
  // bench_scalability's 100k+ tiers.
  for (uint64_t shingle : shingles) {
    const uint64_t base = Mix64(shingle);
    for (size_t i = 0; i < size; ++i) {
      const uint64_t h = base * row_mults_[i] + row_adds_[i];
      if (h < sig[i]) sig[i] = h;
    }
  }
}

uint64_t MinHasher::BandKey(const std::vector<uint64_t>& signature,
                            size_t band) const {
  uint64_t key = Mix64(kBandSalt ^ band);
  for (size_t r = 0; r < rows_; ++r) {
    key = Mix64(key ^ signature[band * rows_ + r]);
  }
  return key;
}

bool MinHasher::BandKeys(const std::vector<uint64_t>& shingles,
                         std::vector<uint64_t>* scratch_signature,
                         std::vector<uint64_t>* band_keys) const {
  if (shingles.empty()) return false;
  Sign(shingles, scratch_signature);
  band_keys->resize(bands_);
  for (size_t b = 0; b < bands_; ++b) {
    (*band_keys)[b] = BandKey(*scratch_signature, b);
  }
  return true;
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  size_t equal = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++equal;
  }
  return static_cast<double>(equal) / static_cast<double>(a.size());
}

void AppendQueryShingles(const std::vector<uint32_t>& query_ids,
                         std::vector<uint64_t>* out) {
  for (uint32_t q : query_ids) {
    out->push_back(Mix64(kQuerySalt ^ q));
  }
}

void AppendTitleShingles(const std::vector<uint32_t>& title_words,
                         size_t shingle_len, std::vector<uint64_t>* out) {
  if (title_words.empty()) return;
  if (shingle_len == 0) shingle_len = 1;
  if (title_words.size() <= shingle_len) {
    uint64_t h = kTitleSalt;
    for (uint32_t w : title_words) h = Mix64(h ^ w);
    out->push_back(h);
    return;
  }
  for (size_t i = 0; i + shingle_len <= title_words.size(); ++i) {
    uint64_t h = kTitleSalt;
    for (size_t j = 0; j < shingle_len; ++j) {
      h = Mix64(h ^ title_words[i + j]);
    }
    out->push_back(h);
  }
}

}  // namespace shoal::core
