#ifndef SHOAL_CORE_SIMILARITY_H_
#define SHOAL_CORE_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "text/embedding.h"
#include "util/thread_pool.h"

namespace shoal::core {

// Query-driven similarity (Eq. 1): Jaccard coefficient of the two
// entities' associated query sets. Inputs must be sorted and
// duplicate-free.
double QueryJaccard(const std::vector<uint32_t>& queries_u,
                    const std::vector<uint32_t>& queries_v);

// Per-entity content profile for the content-driven similarity (Eq. 2).
//
// Eq. 2 averages (1/2 + 1/2 cos(w1, w2)) over every pair of title words,
// which factorises exactly:
//
//   Sc(u,v) = 1/2 + 1/2 * mean_u_hat . mean_v_hat
//
// where mean_x_hat is the mean of the entity's *unit-normalised* word
// vectors. We precompute that mean once per entity, turning each pair
// evaluation from O(|Vu||Vv| d) into O(d).
struct ContentProfile {
  std::vector<float> mean_unit_vector;  // empty if the entity has no words
};

ContentProfile BuildContentProfile(const text::EmbeddingTable& vectors,
                                   const std::vector<uint32_t>& word_ids);

// Batch form: one profile per entry of `word_ids`. Entities are
// independent, so when `pool` is non-null the work is spread across its
// workers; the output is identical either way.
std::vector<ContentProfile> BuildContentProfiles(
    const text::EmbeddingTable& vectors,
    const std::vector<std::vector<uint32_t>>& word_ids,
    util::ThreadPool* pool = nullptr);

// Content-driven similarity (Eq. 2) from two precomputed profiles.
// Entities without words get the uninformative midpoint 0.5.
double ContentSimilarity(const ContentProfile& u, const ContentProfile& v);

// Combined similarity (Eq. 3): alpha * Sq + (1 - alpha) * Sc.
double CombinedSimilarity(double query_sim, double content_sim, double alpha);

}  // namespace shoal::core

#endif  // SHOAL_CORE_SIMILARITY_H_
