#ifndef SHOAL_CORE_HAC_COMMON_H_
#define SHOAL_CORE_HAC_COMMON_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/dendrogram.h"
#include "graph/weighted_graph.h"
#include "util/result.h"

namespace shoal::util {
class ThreadPool;
}  // namespace shoal::util

namespace shoal::core {

// Rule for computing S(AB, C) when clusters A and B merge. The paper's
// rule is kSqrtNormalized (Eq. 4); the others are ablation alternatives
// (bench_linkage_ablation) corresponding to classic linkage schemes
// adapted to sparse graphs (missing similarity treated as 0).
enum class LinkageRule {
  kSqrtNormalized,   // Eq. 4: sqrt(n)-weighted average
  kArithmeticMean,   // UPGMA-style n-weighted average
  kMax,              // single linkage
  kMin,              // complete linkage
};

const char* LinkageRuleName(LinkageRule rule);

// S(AB, C) given S(A,C), S(B,C) (0 when unavailable) and cluster sizes.
double MergedSimilarity(LinkageRule rule, double s_ac, double s_bc,
                        uint32_t n_a, uint32_t n_b);

// Stopping rule and linkage shared by both HAC implementations.
struct HacOptions {
  // Merging stops when every remaining similarity is below this. The
  // default is calibrated to Eq. 3 similarities with alpha = 0.7, where
  // same-topic pairs typically score 0.4-0.6 (Jaccard rarely saturates
  // even for items with identical intent).
  double threshold = 0.35;
  LinkageRule linkage = LinkageRule::kSqrtNormalized;
};

// One entry of a cluster's adjacency row.
struct ClusterEdge {
  uint32_t id = kNoNode;
  double similarity = 0.0;

  bool operator==(const ClusterEdge&) const = default;
};

// Complete serializable image of a ClusterGraph, captured mid-HAC by
// the checkpoint subsystem (src/ckpt) and restored on resume. The
// frontier vector is part of the image on purpose: restoring it
// verbatim makes a resumed run's MergeableClusters() sequence — and
// therefore the dendrogram — bit-identical to the uninterrupted run.
struct ClusterGraphState {
  std::vector<std::vector<ClusterEdge>> rows;
  std::vector<uint32_t> sizes;
  std::vector<uint8_t> active;
  std::vector<uint32_t> mergeable_count;
  std::vector<uint32_t> frontier;
  double track_threshold = 0.0;
};

// Mutable cluster-level overlay over the (static) entity graph used
// while HAC runs. Cluster ids are dendrogram node ids: the original
// entities are leaves [0, n) and every merge appends a node.
//
// Adjacency is stored as flat, id-sorted rows (one contiguous
// vector<ClusterEdge> per cluster) rather than hash maps, so the Eq. 4
// linkage update is a two-pointer sorted merge and row scans are
// sequential reads. Merged clusters always receive the next node id —
// larger than every existing id — so rewiring a neighbour appends at the
// row tail and sortedness is preserved without re-sorting.
class ClusterGraph {
 public:
  // When `track_threshold` > 0 the graph additionally maintains, per
  // cluster, the number of incident edges with similarity >=
  // track_threshold, so callers can iterate only the clusters that can
  // still merge (ParallelHac's per-round frontier).
  explicit ClusterGraph(const graph::WeightedGraph& base,
                        double track_threshold = 0.0);

  // Empty graph; placeholder for resume plumbing (see FromState).
  ClusterGraph() = default;

  // Deep-copies the full mutable state (adjacency rows, sizes, liveness,
  // frontier bookkeeping) into a plain struct the checkpoint subsystem
  // can serialize. Restoring via FromState yields a graph whose every
  // subsequent operation is bit-identical to this one's.
  ClusterGraphState ExportState() const;

  // Rebuilds a graph from an exported (or deserialized) state image.
  // Validates structural invariants — consistent vector lengths, edge
  // ids in range, retired clusters with empty rows, the frontier
  // ascending and covering every mergeable cluster — and returns
  // InvalidArgument without constructing anything on violation, so a
  // corrupt snapshot can never produce a half-restored graph.
  static util::Result<ClusterGraph> FromState(ClusterGraphState state);

  double track_threshold() const { return track_threshold_; }
  size_t num_active() const { return num_active_; }
  size_t num_nodes() const { return rows_.size(); }
  bool IsActive(uint32_t c) const { return active_[c]; }
  uint32_t ClusterSize(uint32_t c) const { return sizes_[c]; }

  // Active cluster ids, ascending.
  std::vector<uint32_t> ActiveClusters() const;

  // Active clusters with at least one edge >= track_threshold, ascending.
  // Requires track_threshold > 0 at construction. Maintained as an
  // incrementally-compacted frontier: the linkage rules never push a
  // similarity above the max of their inputs, so a cluster whose strong
  // edges are gone can never re-enter — each call costs O(frontier), not
  // O(nodes).
  std::vector<uint32_t> MergeableClusters();
  size_t MergeableEdgeCount(uint32_t c) const {
    return mergeable_count_[c];
  }

  // Ids of c's neighbours with similarity >= track_threshold, ascending.
  // Requires track_threshold > 0 at construction. Kept exact by every
  // mutation: scans that only need the mergeable neighbourhood iterate
  // this short dense list instead of filtering the full adjacency row.
  const std::vector<uint32_t>& StrongNeighbors(uint32_t c) const {
    return strong_[c];
  }

  // Adjacency row of an active cluster, sorted ascending by neighbour
  // id (neighbours are active clusters).
  const std::vector<ClusterEdge>& Neighbors(uint32_t c) const {
    return rows_[c];
  }

  // Pointer to the (a, b) entry in a's row, or nullptr when the
  // clusters are not adjacent. Binary search over the sorted row.
  const ClusterEdge* FindEdge(uint32_t a, uint32_t b) const;

  // Similarity of (a, b), or 0.0 when not adjacent (the paper's
  // "S(A,C) = 0 if unavailable" convention).
  double SimilarityOrZero(uint32_t a, uint32_t b) const {
    const ClusterEdge* e = FindEdge(a, b);
    return e == nullptr ? 0.0 : e->similarity;
  }
  bool HasNeighbor(uint32_t a, uint32_t b) const {
    return FindEdge(a, b) != nullptr;
  }

  // Merges active clusters a and b into a new cluster with id `new_id`
  // (must equal the dendrogram node id just created). Applies the
  // linkage rule to every neighbor.
  util::Status Merge(uint32_t a, uint32_t b, uint32_t new_id,
                     LinkageRule rule);

  // Checks that `pairs` is a valid matching over active clusters and
  // that `first_new_id` is the next node id. Never mutates state; the
  // error identifies the offending pair.
  util::Status ValidateMatching(
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
      uint32_t first_new_id);

  // Applies a whole round's matching at once: pair m receives id
  // `first_new_id + m`. Produces state bit-identical to calling Merge()
  // on each pair in order, but computes the merged rows in parallel on
  // `pool` (matched pairs are vertex-disjoint, so each merged row
  // depends only on the pre-round rows plus a deterministic cross-pair
  // combination) and applies neighbour patches in a deterministic
  // cluster-id-ordered reduction. The full matching is validated before
  // any mutation: on error the graph is untouched, so a failed round
  // cannot leave this graph and the dendrogram divergent. `pool` may be
  // nullptr for a serial batch.
  util::Status MergeBatch(
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
      uint32_t first_new_id, LinkageRule rule,
      util::ThreadPool* pool = nullptr);

  // Highest-similarity edge among active clusters, or similarity < 0 if
  // the graph has no remaining edges. Ties break toward the
  // lexicographically smallest (min id, max id) pair so every
  // implementation picks the same edge.
  struct BestEdge {
    uint32_t u = kNoNode;
    uint32_t v = kNoNode;
    double similarity = -1.0;
  };
  BestEdge GlobalBestEdge() const;

 private:
  static constexpr uint32_t kUnmatched = static_cast<uint32_t>(-1);

  // Row-tail append plus bookkeeping shared by Merge and MergeBatch.
  void RetireCluster(uint32_t c);

  std::vector<std::vector<ClusterEdge>> rows_;  // id-sorted adjacency
  std::vector<uint32_t> sizes_;
  std::vector<uint8_t> active_;
  std::vector<uint32_t> mergeable_count_;
  // See StrongNeighbors: per-cluster id-sorted mergeable neighbour ids,
  // maintained only when track_threshold_ > 0 (empty otherwise). Not
  // serialized — FromState rebuilds it from the rows.
  std::vector<std::vector<uint32_t>> strong_;
  // Candidate mergeable clusters (ascending); compacted lazily in
  // MergeableClusters(). Superset property: every cluster with
  // mergeable_count_ > 0 is present.
  std::vector<uint32_t> frontier_;
  // Scratch for MergeBatch: cluster id -> pair index (kUnmatched when
  // not an endpoint). Entries are reset after every batch.
  std::vector<uint32_t> match_slot_;
  double track_threshold_ = 0.0;
  size_t num_active_ = 0;
};

// True if `candidate` beats `incumbent` under the deterministic total
// order (higher similarity wins; ties prefer smaller sorted id pair).
bool EdgeBeats(uint32_t cu, uint32_t cv, double cs, uint32_t iu, uint32_t iv,
               double is);

}  // namespace shoal::core

#endif  // SHOAL_CORE_HAC_COMMON_H_
