#ifndef SHOAL_CORE_HAC_COMMON_H_
#define SHOAL_CORE_HAC_COMMON_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/dendrogram.h"
#include "graph/weighted_graph.h"
#include "util/result.h"

namespace shoal::core {

// Rule for computing S(AB, C) when clusters A and B merge. The paper's
// rule is kSqrtNormalized (Eq. 4); the others are ablation alternatives
// (bench_linkage_ablation) corresponding to classic linkage schemes
// adapted to sparse graphs (missing similarity treated as 0).
enum class LinkageRule {
  kSqrtNormalized,   // Eq. 4: sqrt(n)-weighted average
  kArithmeticMean,   // UPGMA-style n-weighted average
  kMax,              // single linkage
  kMin,              // complete linkage
};

const char* LinkageRuleName(LinkageRule rule);

// S(AB, C) given S(A,C), S(B,C) (0 when unavailable) and cluster sizes.
double MergedSimilarity(LinkageRule rule, double s_ac, double s_bc,
                        uint32_t n_a, uint32_t n_b);

// Stopping rule and linkage shared by both HAC implementations.
struct HacOptions {
  // Merging stops when every remaining similarity is below this. The
  // default is calibrated to Eq. 3 similarities with alpha = 0.7, where
  // same-topic pairs typically score 0.4-0.6 (Jaccard rarely saturates
  // even for items with identical intent).
  double threshold = 0.35;
  LinkageRule linkage = LinkageRule::kSqrtNormalized;
};

// Mutable cluster-level overlay over the (static) entity graph used
// while HAC runs. Cluster ids are dendrogram node ids: the original
// entities are leaves [0, n) and every merge appends a node.
class ClusterGraph {
 public:
  // When `track_threshold` > 0 the graph additionally maintains, per
  // cluster, the number of incident edges with similarity >=
  // track_threshold, so callers can iterate only the clusters that can
  // still merge (ParallelHac's per-round frontier).
  explicit ClusterGraph(const graph::WeightedGraph& base,
                        double track_threshold = 0.0);

  size_t num_active() const { return num_active_; }
  bool IsActive(uint32_t c) const { return active_[c]; }
  uint32_t ClusterSize(uint32_t c) const { return sizes_[c]; }

  // Active cluster ids, ascending.
  std::vector<uint32_t> ActiveClusters() const;

  // Active clusters with at least one edge >= track_threshold.
  // Requires track_threshold > 0 at construction.
  std::vector<uint32_t> MergeableClusters() const;
  size_t MergeableEdgeCount(uint32_t c) const {
    return mergeable_count_[c];
  }

  // Similarity map of an active cluster (neighbors are active clusters).
  const std::unordered_map<uint32_t, double>& Neighbors(uint32_t c) const {
    return adjacency_[c];
  }

  // Merges active clusters a and b into a new cluster with id `new_id`
  // (must equal the dendrogram node id just created). Applies the
  // linkage rule to every neighbor.
  util::Status Merge(uint32_t a, uint32_t b, uint32_t new_id,
                     LinkageRule rule);

  // Highest-similarity edge among active clusters, or similarity < 0 if
  // the graph has no remaining edges. Ties break toward the
  // lexicographically smallest (min id, max id) pair so every
  // implementation picks the same edge.
  struct BestEdge {
    uint32_t u = kNoNode;
    uint32_t v = kNoNode;
    double similarity = -1.0;
  };
  BestEdge GlobalBestEdge() const;

 private:
  std::vector<std::unordered_map<uint32_t, double>> adjacency_;
  std::vector<uint32_t> sizes_;
  std::vector<uint8_t> active_;
  std::vector<uint32_t> mergeable_count_;
  double track_threshold_ = 0.0;
  size_t num_active_ = 0;
};

// True if `candidate` beats `incumbent` under the deterministic total
// order (higher similarity wins; ties prefer smaller sorted id pair).
bool EdgeBeats(uint32_t cu, uint32_t cv, double cs, uint32_t iu, uint32_t iv,
               double is);

}  // namespace shoal::core

#endif  // SHOAL_CORE_HAC_COMMON_H_
