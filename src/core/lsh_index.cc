#include "core/lsh_index.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "util/bounded_queue.h"

namespace shoal::core {
namespace {

inline uint64_t PackPair(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

// LSD radix sort, 16-bit digits. The candidate vectors run to tens of
// millions of packed pairs at the 100k+ tiers, where this is several
// times faster than the comparison sort — and passes whose digit is
// constant over the whole input (always the top bits: entity ids are
// far below 2^32) are detected from the histogram and skipped outright.
void RadixSortPairs(std::vector<uint64_t>* v) {
  const size_t n = v->size();
  if (n < (1u << 14)) {
    std::sort(v->begin(), v->end());
    return;
  }
  std::vector<uint64_t> aux(n);
  std::vector<size_t> count(1u << 16);
  uint64_t* src = v->data();
  uint64_t* dst = aux.data();
  for (int pass = 0; pass < 4; ++pass) {
    const int shift = pass * 16;
    std::fill(count.begin(), count.end(), 0);
    for (size_t i = 0; i < n; ++i) ++count[(src[i] >> shift) & 0xffff];
    if (count[(src[0] >> shift) & 0xffff] == n) continue;  // constant digit
    size_t total = 0;
    for (size_t& c : count) {
      const size_t bucket = c;
      c = total;
      total += bucket;
    }
    for (size_t i = 0; i < n; ++i) {
      dst[count[(src[i] >> shift) & 0xffff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != v->data()) {
    std::copy(src, src + n, v->data());
  }
}

}  // namespace

LshIndex::LshIndex(size_t bands) : num_bands_(std::max<size_t>(1, bands)) {}

void LshIndex::Insert(uint32_t entity, const uint64_t* band_keys) {
  const size_t offset = static_cast<size_t>(entity) * num_bands_;
  if (keys_.size() < offset + num_bands_) {
    keys_.resize(offset + num_bands_);
  }
  std::copy(band_keys, band_keys + num_bands_, keys_.begin() + offset);
  inserted_.push_back(entity);
}

std::vector<size_t> LshIndex::BandBucketSizes(size_t band) const {
  std::vector<uint64_t> keys;
  keys.reserve(inserted_.size());
  for (uint32_t e : inserted_) {
    keys.push_back(keys_[static_cast<size_t>(e) * num_bands_ + band]);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<size_t> sizes;
  for (size_t i = 0; i < keys.size();) {
    size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    sizes.push_back(j - i);
    i = j;
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

std::vector<uint64_t> LshIndex::CandidatePairs(size_t max_bucket,
                                               util::ThreadPool* pool,
                                               LshStats* stats) const {
  // Scans one band: sorts a transient (key, entity) array, walks the
  // equal-key runs (= buckets), and emits each qualifying pair exactly
  // once across the whole index — at the *first* band where the pair's
  // keys agree. The first-band rule makes the union of all bands'
  // emissions duplicate-free by construction, so no global dedup pass
  // is needed, only the canonical sort. Membership is a pure set, so
  // every count and the emitted pair set are insertion-order
  // independent (the sort canonicalizes the scan order).
  const auto scan_band = [this, max_bucket](size_t band,
                                            std::vector<uint64_t>* out,
                                            LshStats* s) {
    std::vector<std::pair<uint64_t, uint32_t>> run;
    run.reserve(inserted_.size());
    for (uint32_t e : inserted_) {
      run.emplace_back(keys_[static_cast<size_t>(e) * num_bands_ + band],
                       e);
    }
    std::sort(run.begin(), run.end());
    for (size_t i = 0; i < run.size();) {
      size_t j = i;
      while (j < run.size() && run[j].first == run[i].first) ++j;
      const size_t size = j - i;
      if (size < 2) {
        i = j;
        continue;
      }
      ++s->buckets;
      if (max_bucket > 0 && size > max_bucket) {
        ++s->skipped_buckets;
        i = j;
        continue;
      }
      s->emitted_pairs += size * (size - 1) / 2;
      for (size_t a = i; a < j; ++a) {
        const uint64_t* ka =
            &keys_[static_cast<size_t>(run[a].second) * num_bands_];
        for (size_t b = a + 1; b < j; ++b) {
          const uint64_t* kb =
              &keys_[static_cast<size_t>(run[b].second) * num_bands_];
          bool seen_earlier = false;
          for (size_t p = 0; p < band; ++p) {
            if (ka[p] == kb[p]) {
              seen_earlier = true;
              break;
            }
          }
          if (!seen_earlier) {
            out->push_back(PackPair(run[a].second, run[b].second));
          }
        }
      }
      i = j;
    }
  };

  LshStats local;
  std::vector<uint64_t> pairs;
  if (pool != nullptr && num_bands_ > 1) {
    // Producer/consumer: one producer task per band streams pair
    // batches through a bounded queue into the accumulating caller.
    // Each producer finishes its Push *before* decrementing the
    // remaining-producers counter, so Close() can never race a batch
    // out of the stream.
    util::BoundedQueue<std::vector<uint64_t>> queue(
        pool->num_threads() * 2);
    std::atomic<size_t> remaining{num_bands_};
    std::mutex stats_mu;
    for (size_t b = 0; b < num_bands_; ++b) {
      pool->Submit([&, b] {
        std::vector<uint64_t> out;
        LshStats s;
        scan_band(b, &out, &s);
        {
          std::lock_guard<std::mutex> lock(stats_mu);
          local.buckets += s.buckets;
          local.skipped_buckets += s.skipped_buckets;
          local.emitted_pairs += s.emitted_pairs;
        }
        if (!out.empty()) queue.Push(std::move(out));
        if (remaining.fetch_sub(1) == 1) queue.Close();
      });
    }
    std::vector<uint64_t> batch;
    while (queue.Pop(&batch)) {
      pairs.insert(pairs.end(), batch.begin(), batch.end());
    }
    pool->Wait();
  } else {
    for (size_t b = 0; b < num_bands_; ++b) {
      scan_band(b, &pairs, &local);
    }
  }

  // First-band emission already guarantees uniqueness; the sort is the
  // canonical candidate order the determinism contract promises.
  RadixSortPairs(&pairs);
  local.candidate_pairs = pairs.size();
  if (stats != nullptr) {
    stats->buckets = local.buckets;
    stats->skipped_buckets = local.skipped_buckets;
    stats->emitted_pairs = local.emitted_pairs;
    stats->candidate_pairs = local.candidate_pairs;
  }
  return pairs;
}

}  // namespace shoal::core
