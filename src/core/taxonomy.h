#ifndef SHOAL_CORE_TAXONOMY_H_
#define SHOAL_CORE_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/dendrogram.h"
#include "util/result.h"

namespace shoal::core {

inline constexpr uint32_t kNoTopic = static_cast<uint32_t>(-1);

// One node of SHOAL's hierarchical topic structure: a conceptual
// shopping scenario holding a cluster of item entities (Figure 1(b)).
struct Topic {
  uint32_t id = kNoTopic;            // index within the taxonomy
  uint32_t dendro_node = kNoNode;    // backing dendrogram node
  uint32_t parent = kNoTopic;        // parent topic (kNoTopic for roots)
  uint32_t level = 0;                // 0 for root topics
  std::vector<uint32_t> children;    // sub-topic ids
  std::vector<uint32_t> entities;    // member item entities
  // Ontology leaf categories of the members with multiplicities,
  // descending by count — the topic->category association of Sec 2.4.
  std::vector<std::pair<uint32_t, size_t>> categories;
  // Representative queries (filled by TopicDescriber), best first.
  std::vector<std::string> description;
};

struct TaxonomyOptions {
  // Dendrogram nodes smaller than this are folded into their closest
  // qualifying ancestor instead of becoming topics.
  uint32_t min_topic_size = 3;
  // Root clusters smaller than this are dropped entirely (noise).
  uint32_t min_root_size = 3;
};

// The extracted topic hierarchy. Root topics are the final HAC clusters;
// sub-topics are the qualifying merge nodes beneath them.
class Taxonomy {
 public:
  // `entity_categories[e]` is the ontology leaf category of entity e
  // (or any dense labelling; only used to aggregate per-topic counts).
  static Taxonomy Build(const Dendrogram& dendrogram,
                        const std::vector<uint32_t>& entity_categories,
                        const TaxonomyOptions& options);

  size_t num_topics() const { return topics_.size(); }
  const Topic& topic(uint32_t id) const { return topics_[id]; }
  Topic& topic(uint32_t id) { return topics_[id]; }

  const std::vector<uint32_t>& roots() const { return roots_; }
  size_t num_entities() const { return entity_topic_.size(); }

  // Deepest topic containing the entity; kNoTopic if the entity fell
  // into a dropped root.
  uint32_t TopicOfEntity(uint32_t entity) const {
    return entity_topic_[entity];
  }

  // Root topic above the entity; kNoTopic if dropped.
  uint32_t RootTopicOfEntity(uint32_t entity) const;

  // Per-entity root-topic label (dense ids); entities in dropped roots
  // each get a fresh singleton label so metrics remain well defined.
  std::vector<uint32_t> RootLabels() const;

 private:
  // Reconstruction path for the TSV loader (taxonomy_io.h).
  friend util::Result<Taxonomy> TaxonomyFromTopics(std::vector<Topic>,
                                                   size_t);

  std::vector<Topic> topics_;
  std::vector<uint32_t> roots_;
  std::vector<uint32_t> entity_topic_;
};

}  // namespace shoal::core

#endif  // SHOAL_CORE_TAXONOMY_H_
