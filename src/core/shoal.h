#ifndef SHOAL_CORE_SHOAL_H_
#define SHOAL_CORE_SHOAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/category_correlation.h"
#include "core/entity_graph.h"
#include "core/parallel_hac.h"
#include "core/query_search.h"
#include "core/taxonomy.h"
#include "core/topic_describer.h"
#include "graph/bipartite_graph.h"
#include "text/vocabulary.h"
#include "text/word2vec.h"
#include "util/json.h"
#include "util/result.h"

namespace shoal::core {

// Everything the SHOAL pipeline consumes, expressed in neutral terms so
// the core library does not depend on the synthetic data generator:
// a query-item bipartite graph plus vocab-aligned text for both sides
// and the ontology category of each entity.
struct ShoalInput {
  const graph::BipartiteGraph* query_item_graph = nullptr;
  const std::vector<std::vector<uint32_t>>* entity_title_words = nullptr;
  const std::vector<uint32_t>* entity_categories = nullptr;
  const std::vector<std::vector<uint32_t>>* query_words = nullptr;
  const std::vector<std::string>* query_texts = nullptr;
  const text::Vocabulary* vocab = nullptr;
};

struct ShoalOptions {
  text::Word2VecOptions word2vec;
  EntityGraphOptions entity_graph;
  ParallelHacOptions hac;
  TaxonomyOptions taxonomy;
  DescriberOptions describer;
  CategoryCorrelationOptions correlation;
  QueryTopicIndex::Options search;
  // One knob for the pipeline's deterministic parallel stages: when
  // > 0, overrides the entity-graph and parallel-HAC thread counts
  // (both produce identical results at any thread count). 0 leaves the
  // per-stage settings untouched. Deliberately does NOT touch
  // word2vec.num_threads — Hogwild training races by design, so
  // raising it sacrifices run-to-run reproducibility; opt in through
  // the word2vec options directly.
  size_t num_threads = 0;
  // Called once with the freshly built entity graph, before HAC starts.
  // The checkpoint subsystem (src/ckpt) installs a snapshot writer here;
  // a failing hook aborts the build. HAC-round checkpointing is
  // configured separately through hac.checkpoint_hook /
  // hac.checkpoint_every.
  std::function<util::Status(const graph::WeightedGraph&)>
      entity_graph_checkpoint_hook;
};

// Restored pipeline state handed to BuildShoal to skip already-completed
// stages. `entity_graph` (when present) replaces the word2vec +
// entity-graph stages; `hac` (when present) continues or skips HAC.
// Assembled from on-disk snapshots by ckpt::ResumeShoal.
struct ShoalResumeState {
  bool has_entity_graph = false;
  graph::WeightedGraph entity_graph;
  std::optional<HacResumeState> hac;
};

// Pipeline timings and sizes, one entry per stage.
struct ShoalBuildStats {
  double word2vec_seconds = 0.0;
  double entity_graph_seconds = 0.0;
  double hac_seconds = 0.0;
  double taxonomy_seconds = 0.0;
  double describe_seconds = 0.0;
  double correlation_seconds = 0.0;
  EntityGraphStats entity_graph;
  ParallelHacStats hac;
  size_t num_topics = 0;
  size_t num_root_topics = 0;

  // Machine-readable snapshot (nested objects for entity_graph / hac,
  // including the per-round merge trace) so perf trajectories can be
  // diffed across PRs; see bench_scalability and `shoal_cli build
  // --metrics-out`.
  util::JsonValue ToJson() const;
  std::string ToJsonString(int indent = 2) const;
};

// The built SHOAL artefact: the hierarchical topic taxonomy with
// descriptions, the mined category correlations, and a query->topic
// search index (demo scenario A/B).
class ShoalModel {
 public:
  const Taxonomy& taxonomy() const { return taxonomy_; }
  const CategoryCorrelation& correlations() const { return correlations_; }
  const QueryTopicIndex& search_index() const { return *search_index_; }
  const Dendrogram& dendrogram() const { return *dendrogram_; }
  const graph::WeightedGraph& entity_graph() const { return entity_graph_; }
  const ShoalBuildStats& stats() const { return stats_; }

  // Top-k topics for a free-text query (scenario A).
  std::vector<QueryTopicIndex::Hit> SearchTopics(
      const std::string& query_text, size_t k) const {
    return search_index_->Search(query_text, k);
  }

 private:
  friend util::Result<ShoalModel> BuildShoal(const ShoalInput&,
                                             const ShoalOptions&,
                                             ShoalResumeState*);
  Taxonomy taxonomy_;
  CategoryCorrelation correlations_;
  std::shared_ptr<QueryTopicIndex> search_index_;
  std::shared_ptr<Dendrogram> dendrogram_;
  graph::WeightedGraph entity_graph_;
  ShoalBuildStats stats_;
};

// Runs the full pipeline of Sec 2: word2vec training -> item entity
// graph -> Parallel HAC -> taxonomy extraction -> topic description ->
// category correlation -> search index.
//
// When `resume` is non-null, completed stages recorded in it are skipped
// and HAC continues from the restored round; the restored state is
// consumed (moved from). The downstream stages are deterministic
// functions of the dendrogram, so a resumed build's taxonomy is
// byte-identical to an uninterrupted one's.
util::Result<ShoalModel> BuildShoal(const ShoalInput& input,
                                    const ShoalOptions& options,
                                    ShoalResumeState* resume = nullptr);

}  // namespace shoal::core

#endif  // SHOAL_CORE_SHOAL_H_
