#include "core/hac_common.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace shoal::core {

const char* LinkageRuleName(LinkageRule rule) {
  switch (rule) {
    case LinkageRule::kSqrtNormalized:
      return "sqrt_normalized";
    case LinkageRule::kArithmeticMean:
      return "arithmetic_mean";
    case LinkageRule::kMax:
      return "max";
    case LinkageRule::kMin:
      return "min";
  }
  return "unknown";
}

double MergedSimilarity(LinkageRule rule, double s_ac, double s_bc,
                        uint32_t n_a, uint32_t n_b) {
  switch (rule) {
    case LinkageRule::kSqrtNormalized: {
      double ra = std::sqrt(static_cast<double>(n_a));
      double rb = std::sqrt(static_cast<double>(n_b));
      return (ra * s_ac + rb * s_bc) / (ra + rb);
    }
    case LinkageRule::kArithmeticMean: {
      double na = static_cast<double>(n_a);
      double nb = static_cast<double>(n_b);
      return (na * s_ac + nb * s_bc) / (na + nb);
    }
    case LinkageRule::kMax:
      return std::max(s_ac, s_bc);
    case LinkageRule::kMin:
      return std::min(s_ac, s_bc);
  }
  return 0.0;
}

bool EdgeBeats(uint32_t cu, uint32_t cv, double cs, uint32_t iu, uint32_t iv,
               double is) {
  if (cs != is) return cs > is;
  uint32_t cmin = std::min(cu, cv);
  uint32_t cmax = std::max(cu, cv);
  uint32_t imin = std::min(iu, iv);
  uint32_t imax = std::max(iu, iv);
  if (cmin != imin) return cmin < imin;
  return cmax < imax;
}

namespace {

// Union of two id-sorted rows with the linkage rule applied per entry:
// the Eq. 4 update as a two-pointer sorted merge (missing side = 0).
// `visit(c, value)` is called in ascending id order for every neighbour
// of a or b except the pair itself.
template <typename Visit>
void MergeRows(const std::vector<ClusterEdge>& ra,
               const std::vector<ClusterEdge>& rb, uint32_t a, uint32_t b,
               uint32_t n_a, uint32_t n_b, LinkageRule rule, Visit&& visit) {
  size_t i = 0;
  size_t j = 0;
  const size_t na = ra.size();
  const size_t nb = rb.size();
  while (i < na || j < nb) {
    const uint32_t ca = i < na ? ra[i].id : kNoNode;
    const uint32_t cb = j < nb ? rb[j].id : kNoNode;
    uint32_t c;
    double s_ac = 0.0;
    double s_bc = 0.0;
    if (ca <= cb) {
      c = ca;
      s_ac = ra[i].similarity;
      ++i;
      if (cb == ca) {
        s_bc = rb[j].similarity;
        ++j;
      }
    } else {
      c = cb;
      s_bc = rb[j].similarity;
      ++j;
    }
    if (c == a || c == b) continue;
    visit(c, MergedSimilarity(rule, s_ac, s_bc, n_a, n_b));
  }
}

}  // namespace

ClusterGraph::ClusterGraph(const graph::WeightedGraph& base,
                           double track_threshold)
    : track_threshold_(track_threshold) {
  const size_t n = base.num_vertices();
  rows_.resize(n);
  sizes_.assign(n, 1);
  active_.assign(n, 1);
  mergeable_count_.assign(n, 0);
  strong_.resize(n);
  num_active_ = n;
  for (graph::VertexId u = 0; u < n; ++u) {
    const auto& neighbors = base.Neighbors(u);
    auto& row = rows_[u];
    row.reserve(neighbors.size());
    for (const graph::Edge& e : neighbors) {
      row.push_back(ClusterEdge{e.to, e.weight});
      if (track_threshold_ > 0.0 && e.weight >= track_threshold_) {
        ++mergeable_count_[u];
      }
    }
    std::sort(row.begin(), row.end(),
              [](const ClusterEdge& x, const ClusterEdge& y) {
                return x.id < y.id;
              });
    if (track_threshold_ > 0.0) {
      auto& strong = strong_[u];
      strong.reserve(mergeable_count_[u]);
      for (const ClusterEdge& e : row) {
        if (e.similarity >= track_threshold_) strong.push_back(e.id);
      }
      if (mergeable_count_[u] > 0) frontier_.push_back(u);
    }
  }
}

ClusterGraphState ClusterGraph::ExportState() const {
  ClusterGraphState state;
  state.rows = rows_;
  state.sizes = sizes_;
  state.active = active_;
  state.mergeable_count = mergeable_count_;
  state.frontier = frontier_;
  state.track_threshold = track_threshold_;
  return state;
}

util::Result<ClusterGraph> ClusterGraph::FromState(ClusterGraphState state) {
  const size_t n = state.rows.size();
  if (state.sizes.size() != n || state.active.size() != n ||
      state.mergeable_count.size() != n) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "cluster state vectors disagree on node count: rows=%zu sizes=%zu "
        "active=%zu mergeable=%zu",
        n, state.sizes.size(), state.active.size(),
        state.mergeable_count.size()));
  }
  size_t num_active = 0;
  for (uint32_t c = 0; c < n; ++c) {
    if (state.active[c] > 1) {
      return util::Status::InvalidArgument(
          util::StringPrintf("cluster %u has non-boolean liveness", c));
    }
    if (state.active[c]) {
      ++num_active;
    } else if (!state.rows[c].empty()) {
      return util::Status::InvalidArgument(
          util::StringPrintf("retired cluster %u has a non-empty row", c));
    }
    uint32_t prev = kNoNode;
    uint32_t strong = 0;
    for (const ClusterEdge& e : state.rows[c]) {
      if (e.id >= n || e.id == c) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "cluster %u has an edge to invalid cluster %u", c, e.id));
      }
      if (prev != kNoNode && e.id <= prev) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "cluster %u adjacency row is not id-sorted", c));
      }
      prev = e.id;
      if (state.track_threshold > 0.0 &&
          e.similarity >= state.track_threshold) {
        ++strong;
      }
    }
    if (state.track_threshold > 0.0 && state.active[c] &&
        strong != state.mergeable_count[c]) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "cluster %u mergeable count %u does not match its row (%u strong "
          "edges)",
          c, state.mergeable_count[c], strong));
    }
  }
  // The frontier must be ascending and a superset of the mergeable set
  // (MergeableClusters() relies on both).
  uint32_t prev = kNoNode;
  std::vector<uint8_t> in_frontier(n, 0);
  for (uint32_t c : state.frontier) {
    if (c >= n) {
      return util::Status::InvalidArgument(
          util::StringPrintf("frontier names unknown cluster %u", c));
    }
    if (prev != kNoNode && c <= prev) {
      return util::Status::InvalidArgument(
          "frontier is not strictly ascending");
    }
    prev = c;
    in_frontier[c] = 1;
  }
  for (uint32_t c = 0; c < n; ++c) {
    if (state.active[c] && state.mergeable_count[c] > 0 && !in_frontier[c]) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "mergeable cluster %u is missing from the frontier", c));
    }
  }

  ClusterGraph graph;
  graph.rows_ = std::move(state.rows);
  graph.sizes_ = std::move(state.sizes);
  graph.active_ = std::move(state.active);
  graph.mergeable_count_ = std::move(state.mergeable_count);
  graph.frontier_ = std::move(state.frontier);
  graph.track_threshold_ = state.track_threshold;
  graph.num_active_ = num_active;
  // The strong-neighbour lists are derived state: rebuild rather than
  // serialize, so the snapshot format stays unchanged.
  graph.strong_.resize(graph.rows_.size());
  if (graph.track_threshold_ > 0.0) {
    for (uint32_t c = 0; c < graph.rows_.size(); ++c) {
      if (!graph.active_[c]) continue;
      auto& strong = graph.strong_[c];
      strong.reserve(graph.mergeable_count_[c]);
      for (const ClusterEdge& e : graph.rows_[c]) {
        if (e.similarity >= graph.track_threshold_) strong.push_back(e.id);
      }
    }
  }
  return graph;
}

std::vector<uint32_t> ClusterGraph::ActiveClusters() const {
  std::vector<uint32_t> out;
  out.reserve(num_active_);
  for (uint32_t c = 0; c < active_.size(); ++c) {
    if (active_[c]) out.push_back(c);
  }
  return out;
}

std::vector<uint32_t> ClusterGraph::MergeableClusters() {
  size_t keep = 0;
  for (uint32_t c : frontier_) {
    if (active_[c] && mergeable_count_[c] > 0) frontier_[keep++] = c;
  }
  frontier_.resize(keep);
  return frontier_;
}

const ClusterEdge* ClusterGraph::FindEdge(uint32_t a, uint32_t b) const {
  const auto& row = rows_[a];
  auto it = std::lower_bound(row.begin(), row.end(), b,
                             [](const ClusterEdge& e, uint32_t id) {
                               return e.id < id;
                             });
  if (it == row.end() || it->id != b) return nullptr;
  return &*it;
}

void ClusterGraph::RetireCluster(uint32_t c) {
  std::vector<ClusterEdge>().swap(rows_[c]);
  std::vector<uint32_t>().swap(strong_[c]);
  active_[c] = 0;
  mergeable_count_[c] = 0;
}

util::Status ClusterGraph::Merge(uint32_t a, uint32_t b, uint32_t new_id,
                                 LinkageRule rule) {
  if (a >= active_.size() || b >= active_.size() || !active_[a] ||
      !active_[b]) {
    return util::Status::FailedPrecondition(
        util::StringPrintf("merge of inactive clusters (%u,%u)", a, b));
  }
  if (a == b) {
    return util::Status::InvalidArgument("cannot merge cluster with itself");
  }
  if (new_id != rows_.size()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "new_id %u must be the next node id %zu", new_id, rows_.size()));
  }

  const uint32_t n_a = sizes_[a];
  const uint32_t n_b = sizes_[b];
  std::vector<ClusterEdge> merged;
  merged.reserve(rows_[a].size() + rows_[b].size());
  MergeRows(rows_[a], rows_[b], a, b, n_a, n_b, rule,
            [&merged](uint32_t c, double s) {
              merged.push_back(ClusterEdge{c, s});
            });

  // Rewire neighbours from a/b to the new cluster, keeping the
  // mergeable-edge counts in sync (old edges to a/b leave, the new edge
  // to the merged cluster arrives at the sorted row's tail because
  // new_id is the largest id).
  const bool track = track_threshold_ > 0.0;
  uint32_t new_count = 0;
  for (const ClusterEdge& e : merged) {
    auto& row = rows_[e.id];
    auto dead = std::remove_if(
        row.begin(), row.end(), [&](const ClusterEdge& re) {
          if (re.id != a && re.id != b) return false;
          if (track && re.similarity >= track_threshold_) {
            --mergeable_count_[e.id];
          }
          return true;
        });
    row.erase(dead, row.end());
    row.push_back(ClusterEdge{new_id, e.similarity});
    if (track) {
      auto& strong = strong_[e.id];
      strong.erase(std::remove_if(strong.begin(), strong.end(),
                                  [&](uint32_t id) {
                                    return id == a || id == b;
                                  }),
                   strong.end());
    }
    if (track && e.similarity >= track_threshold_) {
      strong_[e.id].push_back(new_id);
      ++mergeable_count_[e.id];
      ++new_count;
    }
  }

  if (track) {
    std::vector<uint32_t> strong;
    strong.reserve(new_count);
    for (const ClusterEdge& e : merged) {
      if (e.similarity >= track_threshold_) strong.push_back(e.id);
    }
    strong_.push_back(std::move(strong));
  } else {
    strong_.emplace_back();
  }
  rows_.push_back(std::move(merged));
  sizes_.push_back(n_a + n_b);
  active_.push_back(1);
  mergeable_count_.push_back(new_count);
  if (track && new_count > 0) frontier_.push_back(new_id);
  RetireCluster(a);
  RetireCluster(b);
  --num_active_;  // two removed, one added
  return util::Status::OK();
}

util::Status ClusterGraph::ValidateMatching(
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    uint32_t first_new_id) {
  if (first_new_id != rows_.size()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "first_new_id %u must be the next node id %zu", first_new_id,
        rows_.size()));
  }
  match_slot_.resize(rows_.size(), kUnmatched);
  util::Status status = util::Status::OK();
  size_t marked = 0;
  for (uint32_t m = 0; m < pairs.size(); ++m) {
    const auto [a, b] = pairs[m];
    if (a >= active_.size() || b >= active_.size() || !active_[a] ||
        !active_[b]) {
      status = util::Status::FailedPrecondition(
          util::StringPrintf("merge of inactive clusters (%u,%u)", a, b));
      break;
    }
    if (a == b) {
      status =
          util::Status::InvalidArgument("cannot merge cluster with itself");
      break;
    }
    if (match_slot_[a] != kUnmatched || match_slot_[b] != kUnmatched) {
      status = util::Status::FailedPrecondition(util::StringPrintf(
          "edge (%u,%u) shares an endpoint with another matched edge — "
          "local maximal edges must form a matching",
          a, b));
      break;
    }
    match_slot_[a] = m;
    match_slot_[b] = m;
    marked = m + 1;
  }
  for (uint32_t m = 0; m < marked; ++m) {
    match_slot_[pairs[m].first] = kUnmatched;
    match_slot_[pairs[m].second] = kUnmatched;
  }
  return status;
}

util::Status ClusterGraph::MergeBatch(
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs,
    uint32_t first_new_id, LinkageRule rule, util::ThreadPool* pool) {
  if (pairs.empty()) return util::Status::OK();
  // Everything is validated before any mutation so a bad matching leaves
  // the graph (and therefore the caller's dendrogram) untouched.
  SHOAL_RETURN_IF_ERROR(ValidateMatching(pairs, first_new_id));
  const size_t num_merges = pairs.size();
  for (uint32_t m = 0; m < num_merges; ++m) {
    match_slot_[pairs[m].first] = m;
    match_slot_[pairs[m].second] = m;
  }
  const bool track = track_threshold_ > 0.0;

  // Phase 1 — merged rows, computed in parallel against the pre-round
  // state. The matching is vertex-disjoint so row reads never race.
  // Neighbours that are themselves endpoints of a *later* pair k > m are
  // recorded as cross contributions: the serial ordering applies pair
  // m's linkage weights first and pair k's second, so the earlier pair
  // owns the inner MergedSimilarity application.
  struct CrossContrib {
    uint32_t pair;   // the other (later) pair index
    uint8_t side;    // 0: neighbour is pairs[pair].first, 1: .second
    double value;    // inner linkage value, this pair's sizes
  };
  std::vector<std::vector<ClusterEdge>> merged_rows(num_merges);
  std::vector<std::vector<CrossContrib>> contribs(num_merges);
  auto scan_pair = [&](size_t m) {
    const auto [a, b] = pairs[m];
    auto& out = merged_rows[m];
    out.reserve(rows_[a].size() + rows_[b].size());
    auto& cx = contribs[m];
    MergeRows(rows_[a], rows_[b], a, b, sizes_[a], sizes_[b], rule,
              [&](uint32_t c, double s) {
                const uint32_t k = match_slot_[c];
                if (k == kUnmatched) {
                  out.push_back(ClusterEdge{c, s});
                } else if (k > m) {
                  cx.push_back(CrossContrib{
                      k, static_cast<uint8_t>(c == pairs[k].first ? 0 : 1),
                      s});
                }
                // k == m is the partner (excluded); k < m is owned by
                // pair k's scan.
              });
  };
  if (pool != nullptr && num_merges > 1) {
    pool->ParallelForChunked(num_merges,
                             [&](size_t begin, size_t end, size_t /*w*/) {
                               for (size_t m = begin; m < end; ++m) {
                                 scan_pair(m);
                               }
                             });
  } else {
    for (size_t m = 0; m < num_merges; ++m) scan_pair(m);
  }

  // Phase 2 — resolve cross-pair similarities. For pairs m < k the
  // serial result is MergedSimilarity over the two inner values with
  // pair k's sizes, first argument on pairs[k].first's side.
  std::vector<std::vector<ClusterEdge>> cross(num_merges);
  for (uint32_t m = 0; m < num_merges; ++m) {
    auto& cx = contribs[m];
    std::sort(cx.begin(), cx.end(),
              [](const CrossContrib& x, const CrossContrib& y) {
                return std::tie(x.pair, x.side) < std::tie(y.pair, y.side);
              });
    for (size_t i = 0; i < cx.size();) {
      const uint32_t k = cx[i].pair;
      double first_side = 0.0;
      double second_side = 0.0;
      for (; i < cx.size() && cx[i].pair == k; ++i) {
        (cx[i].side == 0 ? first_side : second_side) = cx[i].value;
      }
      const double s = MergedSimilarity(rule, first_side, second_side,
                                        sizes_[pairs[k].first],
                                        sizes_[pairs[k].second]);
      cross[m].push_back(ClusterEdge{k, s});
      cross[k].push_back(ClusterEdge{m, s});
    }
  }
  for (uint32_t m = 0; m < num_merges; ++m) {
    auto& cr = cross[m];
    std::sort(cr.begin(), cr.end(),
              [](const ClusterEdge& x, const ClusterEdge& y) {
                return x.id < y.id;
              });
    for (const ClusterEdge& e : cr) {
      merged_rows[m].push_back(ClusterEdge{first_new_id + e.id,
                                           e.similarity});
    }
  }

  // Phase 3 — neighbour patches as a deterministic cluster-id-ordered
  // reduction: every (neighbour, pair, similarity) triple, stably sorted
  // by neighbour id (pairs stay ascending within a neighbour, so the
  // appended entries keep rows id-sorted). Groups touch disjoint rows
  // and can be applied in parallel.
  struct Patch {
    uint32_t c;
    uint32_t pair;
    double similarity;
  };
  std::vector<Patch> patches;
  for (uint32_t m = 0; m < num_merges; ++m) {
    for (const ClusterEdge& e : merged_rows[m]) {
      if (e.id >= first_new_id) break;  // cross entries live at the tail
      patches.push_back(Patch{e.id, m, e.similarity});
    }
  }
  std::stable_sort(patches.begin(), patches.end(),
                   [](const Patch& x, const Patch& y) { return x.c < y.c; });
  std::vector<size_t> group_starts;
  for (size_t i = 0; i < patches.size(); ++i) {
    if (i == 0 || patches[i].c != patches[i - 1].c) group_starts.push_back(i);
  }
  group_starts.push_back(patches.size());
  auto apply_group = [&](size_t g) {
    const size_t begin = group_starts[g];
    const size_t end = group_starts[g + 1];
    const uint32_t c = patches[begin].c;
    auto& row = rows_[c];
    // The only entries the batch can retire in a surviving row are
    // endpoints of the pairs that patch it (every merged row emits a
    // patch for each surviving union neighbour, so a row adjacent to a
    // pair is always in that pair's group). Rows are id-sorted: locate
    // the few dead entries by binary search and compact once from the
    // first hit, instead of running a predicate over the whole row.
    constexpr size_t kMaxGroupSearch = 32;  // beyond this, a scan is cheaper
    uint32_t dead_pos[2 * kMaxGroupSearch];
    uint32_t dead_strong[2 * kMaxGroupSearch];
    size_t num_dead = 0;
    size_t num_dead_strong = 0;
    const bool overflow = end - begin > kMaxGroupSearch;
    if (!overflow) {
      for (size_t i = begin; i < end; ++i) {
        for (const uint32_t id : {pairs[patches[i].pair].first,
                                  pairs[patches[i].pair].second}) {
          const auto it = std::lower_bound(
              row.begin(), row.end(), id,
              [](const ClusterEdge& e, uint32_t key) { return e.id < key; });
          if (it != row.end() && it->id == id) {
            dead_pos[num_dead++] = static_cast<uint32_t>(it - row.begin());
            if (track && it->similarity >= track_threshold_) {
              dead_strong[num_dead_strong++] = id;
            }
          }
        }
      }
    }
    if (overflow) {
      auto dead = std::remove_if(
          row.begin(), row.end(), [&](const ClusterEdge& re) {
            if (match_slot_[re.id] == kUnmatched) return false;
            if (track && re.similarity >= track_threshold_) {
              --mergeable_count_[c];
            }
            return true;
          });
      row.erase(dead, row.end());
      if (track) {
        auto& strong = strong_[c];
        strong.erase(std::remove_if(strong.begin(), strong.end(),
                                    [&](uint32_t id) {
                                      return match_slot_[id] != kUnmatched;
                                    }),
                     strong.end());
      }
    } else if (num_dead > 0) {
      std::sort(dead_pos, dead_pos + num_dead);
      size_t w = dead_pos[0];
      size_t d = 0;
      for (size_t r = dead_pos[0]; r < row.size(); ++r) {
        if (d < num_dead && r == dead_pos[d]) {
          if (track && row[r].similarity >= track_threshold_) {
            --mergeable_count_[c];
          }
          ++d;
          continue;
        }
        row[w++] = row[r];
      }
      row.resize(w);
      if (num_dead_strong > 0) {
        auto& strong = strong_[c];
        for (size_t d2 = 0; d2 < num_dead_strong; ++d2) {
          const auto it = std::lower_bound(strong.begin(), strong.end(),
                                           dead_strong[d2]);
          strong.erase(it);  // guaranteed present: the row entry was strong
        }
      }
    }
    for (size_t i = begin; i < end; ++i) {
      row.push_back(
          ClusterEdge{first_new_id + patches[i].pair, patches[i].similarity});
      if (track && patches[i].similarity >= track_threshold_) {
        strong_[c].push_back(first_new_id + patches[i].pair);
        ++mergeable_count_[c];
      }
    }
  };
  const size_t num_groups = group_starts.size() - 1;
  if (pool != nullptr && num_groups > 1) {
    pool->ParallelForChunked(num_groups,
                             [&](size_t begin, size_t end, size_t /*w*/) {
                               for (size_t g = begin; g < end; ++g) {
                                 apply_group(g);
                               }
                             });
  } else {
    for (size_t g = 0; g < num_groups; ++g) apply_group(g);
  }

  // Phase 4 — commit the new clusters and retire the merged ones.
  for (uint32_t m = 0; m < num_merges; ++m) {
    const auto [a, b] = pairs[m];
    uint32_t new_count = 0;
    if (track) {
      for (const ClusterEdge& e : merged_rows[m]) {
        if (e.similarity >= track_threshold_) ++new_count;
      }
      std::vector<uint32_t> strong;
      strong.reserve(new_count);
      for (const ClusterEdge& e : merged_rows[m]) {
        if (e.similarity >= track_threshold_) strong.push_back(e.id);
      }
      strong_.push_back(std::move(strong));
    } else {
      strong_.emplace_back();
    }
    rows_.push_back(std::move(merged_rows[m]));
    sizes_.push_back(sizes_[a] + sizes_[b]);
    active_.push_back(1);
    mergeable_count_.push_back(new_count);
    if (track && new_count > 0) {
      frontier_.push_back(first_new_id + m);
    }
  }
  for (const auto& [a, b] : pairs) {
    match_slot_[a] = kUnmatched;
    match_slot_[b] = kUnmatched;
    RetireCluster(a);
    RetireCluster(b);
  }
  match_slot_.resize(rows_.size(), kUnmatched);
  num_active_ -= num_merges;
  return util::Status::OK();
}

ClusterGraph::BestEdge ClusterGraph::GlobalBestEdge() const {
  BestEdge best;
  for (uint32_t c = 0; c < active_.size(); ++c) {
    if (!active_[c]) continue;
    for (const ClusterEdge& e : rows_[c]) {
      if (e.id < c) continue;  // visit each edge once
      if (best.similarity < 0.0 ||
          EdgeBeats(c, e.id, e.similarity, best.u, best.v,
                    best.similarity)) {
        best = BestEdge{c, e.id, e.similarity};
      }
    }
  }
  return best;
}

}  // namespace shoal::core
