#include "core/hac_common.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace shoal::core {

const char* LinkageRuleName(LinkageRule rule) {
  switch (rule) {
    case LinkageRule::kSqrtNormalized:
      return "sqrt_normalized";
    case LinkageRule::kArithmeticMean:
      return "arithmetic_mean";
    case LinkageRule::kMax:
      return "max";
    case LinkageRule::kMin:
      return "min";
  }
  return "unknown";
}

double MergedSimilarity(LinkageRule rule, double s_ac, double s_bc,
                        uint32_t n_a, uint32_t n_b) {
  switch (rule) {
    case LinkageRule::kSqrtNormalized: {
      double ra = std::sqrt(static_cast<double>(n_a));
      double rb = std::sqrt(static_cast<double>(n_b));
      return (ra * s_ac + rb * s_bc) / (ra + rb);
    }
    case LinkageRule::kArithmeticMean: {
      double na = static_cast<double>(n_a);
      double nb = static_cast<double>(n_b);
      return (na * s_ac + nb * s_bc) / (na + nb);
    }
    case LinkageRule::kMax:
      return std::max(s_ac, s_bc);
    case LinkageRule::kMin:
      return std::min(s_ac, s_bc);
  }
  return 0.0;
}

bool EdgeBeats(uint32_t cu, uint32_t cv, double cs, uint32_t iu, uint32_t iv,
               double is) {
  if (cs != is) return cs > is;
  uint32_t cmin = std::min(cu, cv);
  uint32_t cmax = std::max(cu, cv);
  uint32_t imin = std::min(iu, iv);
  uint32_t imax = std::max(iu, iv);
  if (cmin != imin) return cmin < imin;
  return cmax < imax;
}

ClusterGraph::ClusterGraph(const graph::WeightedGraph& base,
                           double track_threshold)
    : track_threshold_(track_threshold) {
  const size_t n = base.num_vertices();
  adjacency_.resize(n);
  sizes_.assign(n, 1);
  active_.assign(n, 1);
  mergeable_count_.assign(n, 0);
  num_active_ = n;
  for (graph::VertexId u = 0; u < n; ++u) {
    for (const graph::Edge& e : base.Neighbors(u)) {
      adjacency_[u].emplace(e.to, e.weight);
      if (track_threshold_ > 0.0 && e.weight >= track_threshold_) {
        ++mergeable_count_[u];
      }
    }
  }
}

std::vector<uint32_t> ClusterGraph::ActiveClusters() const {
  std::vector<uint32_t> out;
  out.reserve(num_active_);
  for (uint32_t c = 0; c < active_.size(); ++c) {
    if (active_[c]) out.push_back(c);
  }
  return out;
}

std::vector<uint32_t> ClusterGraph::MergeableClusters() const {
  std::vector<uint32_t> out;
  for (uint32_t c = 0; c < active_.size(); ++c) {
    if (active_[c] && mergeable_count_[c] > 0) out.push_back(c);
  }
  return out;
}

util::Status ClusterGraph::Merge(uint32_t a, uint32_t b, uint32_t new_id,
                                 LinkageRule rule) {
  if (a >= active_.size() || b >= active_.size() || !active_[a] ||
      !active_[b]) {
    return util::Status::FailedPrecondition(
        util::StringPrintf("merge of inactive clusters (%u,%u)", a, b));
  }
  if (a == b) {
    return util::Status::InvalidArgument("cannot merge cluster with itself");
  }
  if (new_id != adjacency_.size()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "new_id %u must be the next node id %zu", new_id, adjacency_.size()));
  }

  const uint32_t n_a = sizes_[a];
  const uint32_t n_b = sizes_[b];

  // Union of the two neighbourhoods (excluding the merging pair), with
  // missing similarities treated as 0 per Eq. 4.
  std::unordered_map<uint32_t, double> merged;
  merged.reserve(adjacency_[a].size() + adjacency_[b].size());
  for (const auto& [c, s_ac] : adjacency_[a]) {
    if (c == b) continue;
    double s_bc = 0.0;
    if (auto it = adjacency_[b].find(c); it != adjacency_[b].end()) {
      s_bc = it->second;
    }
    merged.emplace(c, MergedSimilarity(rule, s_ac, s_bc, n_a, n_b));
  }
  for (const auto& [c, s_bc] : adjacency_[b]) {
    if (c == a || merged.contains(c)) continue;
    merged.emplace(c, MergedSimilarity(rule, 0.0, s_bc, n_a, n_b));
  }

  // Rewire neighbours from a/b to the new cluster, keeping the
  // mergeable-edge counts in sync (old edges to a/b leave, the new edge
  // to the merged cluster arrives).
  const bool track = track_threshold_ > 0.0;
  uint32_t new_count = 0;
  for (const auto& [c, s] : merged) {
    auto& adj_c = adjacency_[c];
    if (track) {
      if (auto it = adj_c.find(a);
          it != adj_c.end() && it->second >= track_threshold_) {
        --mergeable_count_[c];
      }
      if (auto it = adj_c.find(b);
          it != adj_c.end() && it->second >= track_threshold_) {
        --mergeable_count_[c];
      }
      if (s >= track_threshold_) {
        ++mergeable_count_[c];
        ++new_count;
      }
    }
    adj_c.erase(a);
    adj_c.erase(b);
    adj_c.emplace(new_id, s);
  }

  adjacency_.push_back(std::move(merged));
  sizes_.push_back(n_a + n_b);
  active_.push_back(1);
  mergeable_count_.push_back(new_count);
  adjacency_[a].clear();
  adjacency_[b].clear();
  active_[a] = 0;
  active_[b] = 0;
  mergeable_count_[a] = 0;
  mergeable_count_[b] = 0;
  --num_active_;  // two removed, one added
  return util::Status::OK();
}

ClusterGraph::BestEdge ClusterGraph::GlobalBestEdge() const {
  BestEdge best;
  for (uint32_t c = 0; c < active_.size(); ++c) {
    if (!active_[c]) continue;
    for (const auto& [d, s] : adjacency_[c]) {
      if (d < c) continue;  // visit each edge once
      if (best.similarity < 0.0 ||
          EdgeBeats(c, d, s, best.u, best.v, best.similarity)) {
        best = BestEdge{c, d, s};
      }
    }
  }
  return best;
}

}  // namespace shoal::core
