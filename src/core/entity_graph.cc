#include "core/entity_graph.h"

#include <algorithm>
#include <unordered_set>

#include "core/similarity.h"
#include "util/string_util.h"

namespace shoal::core {

util::Result<graph::WeightedGraph> BuildEntityGraph(
    const graph::BipartiteGraph& query_item_graph,
    const std::vector<std::vector<uint32_t>>& title_words,
    const text::EmbeddingTable& word_vectors,
    const EntityGraphOptions& options, EntityGraphStats* stats) {
  const size_t num_entities = query_item_graph.num_right();
  if (title_words.size() != num_entities) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "title_words size %zu != entity count %zu", title_words.size(),
        num_entities));
  }
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return util::Status::InvalidArgument("alpha must be in [0,1]");
  }

  EntityGraphStats local_stats;

  // Per-entity sorted query sets (Eq. 1 inputs).
  std::vector<std::vector<uint32_t>> queries_of(num_entities);
  for (uint32_t e = 0; e < num_entities; ++e) {
    queries_of[e] = query_item_graph.QueriesOfItem(e);
  }

  // Per-entity content profiles (Eq. 2, factorised).
  std::vector<ContentProfile> profiles(num_entities);
  for (uint32_t e = 0; e < num_entities; ++e) {
    profiles[e] = BuildContentProfile(word_vectors, title_words[e]);
  }

  // Candidate pairs: co-clicked under at least one query.
  std::unordered_set<uint64_t> candidates;
  for (uint32_t q = 0; q < query_item_graph.num_left(); ++q) {
    const auto& links = query_item_graph.LeftNeighbors(q);
    size_t fanout = links.size();
    if (fanout > options.max_items_per_query) {
      ++local_stats.capped_queries;
      fanout = options.max_items_per_query;
    }
    for (size_t i = 0; i < fanout; ++i) {
      for (size_t j = i + 1; j < fanout; ++j) {
        uint32_t a = links[i].id;
        uint32_t b = links[j].id;
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        candidates.insert((static_cast<uint64_t>(a) << 32) | b);
      }
    }
  }
  local_stats.candidate_pairs = candidates.size();

  // Score candidates and collect edges above the threshold.
  struct Scored {
    uint32_t u;
    uint32_t v;
    double s;
  };
  std::vector<Scored> edges;
  edges.reserve(candidates.size() / 4 + 1);
  for (uint64_t key : candidates) {
    uint32_t u = static_cast<uint32_t>(key >> 32);
    uint32_t v = static_cast<uint32_t>(key & 0xffffffffULL);
    double sq = QueryJaccard(queries_of[u], queries_of[v]);
    double sc = ContentSimilarity(profiles[u], profiles[v]);
    double s = CombinedSimilarity(sq, sc, options.alpha);
    ++local_stats.scored_pairs;
    if (s >= options.similarity_threshold) edges.push_back({u, v, s});
  }

  // Degree cap: keep each entity's strongest edges only ("one item entity
  // should have only a few neighbor entities", Sec 2.2). An edge survives
  // if it ranks within the cap for *either* endpoint, so the graph stays
  // connected along strong paths.
  std::vector<size_t> degree(num_entities, 0);
  std::sort(edges.begin(), edges.end(),
            [](const Scored& a, const Scored& b) { return a.s > b.s; });
  graph::WeightedGraph entity_graph(num_entities);
  for (const Scored& e : edges) {
    if (degree[e.u] >= options.max_degree &&
        degree[e.v] >= options.max_degree) {
      continue;
    }
    SHOAL_RETURN_IF_ERROR(entity_graph.AddEdge(e.u, e.v, e.s));
    ++degree[e.u];
    ++degree[e.v];
  }
  local_stats.kept_edges = entity_graph.num_edges();

  if (stats != nullptr) *stats = local_stats;
  return entity_graph;
}

}  // namespace shoal::core
