#include "core/entity_graph.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <unordered_set>

#include "core/lsh_index.h"
#include "core/minhash.h"
#include "core/similarity.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bounded_queue.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace shoal::core {
namespace {

using graph::BipartiteGraph;

uint64_t PairKey(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

// One shard's worth of candidate generation: queries [begin, end).
void CollectShardCandidates(const BipartiteGraph& query_item_graph,
                            size_t begin, size_t end, size_t cap,
                            std::unordered_set<uint64_t>* pairs,
                            size_t* capped_queries) {
  for (size_t q = begin; q < end; ++q) {
    bool capped = false;
    std::vector<uint32_t> items = CappedQueryItems(
        query_item_graph.LeftNeighbors(static_cast<uint32_t>(q)), cap,
        &capped);
    if (capped) ++*capped_queries;
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        if (items[i] == items[j]) continue;
        pairs->insert(PairKey(items[i], items[j]));
      }
    }
  }
}

// One producer batch of the streaming LSH pipeline: the entities of a
// contiguous range that had a non-empty shingle set, with their band
// keys laid out back to back (`bands` keys per entity). Signatures
// themselves never leave the producer — only the folded band keys
// travel, so the n × (bands·rows) signature matrix is never
// materialized.
struct BandKeyBatch {
  std::vector<uint32_t> entities;
  std::vector<uint64_t> band_keys;
};

}  // namespace

std::vector<uint32_t> CappedQueryItems(
    const std::vector<BipartiteGraph::Link>& links, size_t cap,
    bool* capped) {
  std::vector<uint32_t> items;
  if (links.size() <= cap) {
    *capped = false;
    items.reserve(links.size());
    for (const auto& link : links) items.push_back(link.id);
    return items;
  }
  *capped = true;
  std::vector<BipartiteGraph::Link> by_weight(links);
  std::partial_sort(by_weight.begin(), by_weight.begin() + cap,
                    by_weight.end(),
                    [](const BipartiteGraph::Link& a,
                       const BipartiteGraph::Link& b) {
                      if (a.count != b.count) return a.count > b.count;
                      return a.id < b.id;
                    });
  items.reserve(cap);
  for (size_t i = 0; i < cap; ++i) items.push_back(by_weight[i].id);
  return items;
}

util::Result<graph::WeightedGraph> ApplyDegreeCap(
    std::vector<ScoredEdge> edges, size_t num_entities, size_t max_degree) {
  std::sort(edges.begin(), edges.end(),
            [](const ScoredEdge& a, const ScoredEdge& b) {
              if (a.s != b.s) return a.s > b.s;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  std::vector<size_t> degree(num_entities, 0);
  graph::WeightedGraph entity_graph(num_entities);
  for (const ScoredEdge& e : edges) {
    if (degree[e.u] >= max_degree && degree[e.v] >= max_degree) {
      continue;
    }
    SHOAL_RETURN_IF_ERROR(entity_graph.AddEdge(e.u, e.v, e.s));
    ++degree[e.u];
    ++degree[e.v];
  }
  return entity_graph;
}

std::vector<uint64_t> BuildLshCandidatePairs(
    const std::vector<std::vector<uint32_t>>& queries_of,
    const std::vector<std::vector<uint32_t>>& title_words,
    const EntityGraphLshOptions& options, util::ThreadPool* pool,
    EntityGraphStats* stats) {
  const MinHasher hasher(options.minhash);
  const size_t bands = hasher.bands();
  const size_t num_entities = queries_of.size();
  const size_t batch_entities = std::max<size_t>(1, options.batch_entities);

  util::Stopwatch sign_timer;
  obs::ScopedSpan sign_span("entity_graph.lsh.sign");

  // Signs entities [begin, end), appending full batches through `push`.
  // A pure function of the inputs: which thread signs an entity never
  // changes its band keys.
  const auto sign_range = [&](size_t begin, size_t end,
                              const std::function<void(BandKeyBatch&&)>&
                                  push) {
    std::vector<uint64_t> shingles;
    std::vector<uint64_t> signature;
    std::vector<uint64_t> band_keys;
    BandKeyBatch batch;
    for (size_t e = begin; e < end; ++e) {
      shingles.clear();
      AppendQueryShingles(queries_of[e], &shingles);
      AppendTitleShingles(title_words[e], options.title_shingle_len,
                          &shingles);
      if (!hasher.BandKeys(shingles, &signature, &band_keys)) continue;
      batch.entities.push_back(static_cast<uint32_t>(e));
      batch.band_keys.insert(batch.band_keys.end(), band_keys.begin(),
                             band_keys.end());
      if (batch.entities.size() >= batch_entities) {
        push(std::move(batch));
        batch = BandKeyBatch{};
      }
    }
    if (!batch.entities.empty()) push(std::move(batch));
  };

  LshIndex index(bands);
  size_t signed_entities = 0;
  const auto insert_batch = [&](const BandKeyBatch& batch) {
    for (size_t i = 0; i < batch.entities.size(); ++i) {
      index.Insert(batch.entities[i], batch.band_keys.data() + i * bands);
    }
    signed_entities += batch.entities.size();
  };

  if (pool != nullptr && num_entities > batch_entities) {
    // Producer/consumer over a bounded queue: pool workers sign
    // fixed-size entity ranges and stream band-key batches to the
    // calling thread, which is the single bucket-insert consumer.
    // Backpressure (queue_capacity slots) bounds the in-flight batches
    // regardless of how far the producers run ahead. Producers
    // decrement the remaining-counter only after their last Push, so
    // Close() cannot drop a batch.
    util::BoundedQueue<BandKeyBatch> queue(
        std::max<size_t>(1, options.queue_capacity));
    const size_t num_ranges =
        (num_entities + batch_entities - 1) / batch_entities;
    std::atomic<size_t> remaining{num_ranges};
    for (size_t r = 0; r < num_ranges; ++r) {
      const size_t begin = r * batch_entities;
      const size_t end = std::min(num_entities, begin + batch_entities);
      pool->Submit([&, begin, end] {
        sign_range(begin, end,
                   [&](BandKeyBatch&& batch) { queue.Push(std::move(batch)); });
        if (remaining.fetch_sub(1) == 1) queue.Close();
      });
    }
    BandKeyBatch batch;
    while (queue.Pop(&batch)) insert_batch(batch);
    pool->Wait();
  } else {
    sign_range(0, num_entities,
               [&](BandKeyBatch&& batch) { insert_batch(batch); });
  }
  const double signature_seconds = sign_timer.ElapsedSeconds();
  sign_span.AddArg("signed", static_cast<double>(signed_entities));
  sign_span.End();

  obs::ScopedSpan emit_span("entity_graph.lsh.emit");
  LshStats lsh_stats;
  std::vector<uint64_t> pairs =
      index.CandidatePairs(options.max_bucket, pool, &lsh_stats);
  emit_span.AddArg("pairs", static_cast<double>(pairs.size()));
  emit_span.End();

  if (stats != nullptr) {
    stats->lsh_signed_entities = signed_entities;
    stats->lsh_buckets = lsh_stats.buckets;
    stats->lsh_skipped_buckets = lsh_stats.skipped_buckets;
    stats->lsh_emitted_pairs = lsh_stats.emitted_pairs;
    stats->signature_seconds = signature_seconds;
  }
  return pairs;
}

util::Result<graph::WeightedGraph> BuildEntityGraph(
    const graph::BipartiteGraph& query_item_graph,
    const std::vector<std::vector<uint32_t>>& title_words,
    const text::EmbeddingTable& word_vectors,
    const EntityGraphOptions& options, EntityGraphStats* stats) {
  const size_t num_entities = query_item_graph.num_right();
  if (title_words.size() != num_entities) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "title_words size %zu != entity count %zu", title_words.size(),
        num_entities));
  }
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return util::Status::InvalidArgument("alpha must be in [0,1]");
  }

  EntityGraphStats local_stats;
  util::Stopwatch stage_timer;

  // Workers: num_threads == 1 is the serial reference path (no pool);
  // 0 means hardware concurrency. All paths reduce shards in a fixed
  // order, so the result does not depend on the thread count.
  // Clamp absurd requests (e.g. a -1 cast to size_t) instead of letting
  // ThreadPool throw trying to spawn them; no-exceptions library code.
  size_t num_threads = std::min<size_t>(options.num_threads, 256);
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  std::unique_ptr<util::ThreadPool> pool;
  if (num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(num_threads);
  }
  // Runs fn(begin, end, shard) over [0, n) — one shard inline when
  // serial, one shard per worker on the pool otherwise. `shard` is a
  // dense index < max_shards().
  const size_t max_shards = pool ? pool->num_threads() : 1;
  const auto for_shards =
      [&](size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
        if (pool) {
          pool->ParallelForChunked(n, fn);
        } else {
          fn(0, n, 0);
        }
      };

  // --- Stage 1: per-entity query sets ----------------------------------
  // Needed ahead of candidate generation: exact rescoring reads them for
  // Eq. 1 and the LSH path shingles them. Each worker writes only its
  // own entities' slots.
  obs::ScopedSpan query_sets_span("entity_graph.query_sets");
  std::vector<std::vector<uint32_t>> queries_of(num_entities);
  for_shards(num_entities, [&](size_t begin, size_t end, size_t /*shard*/) {
    for (size_t e = begin; e < end; ++e) {
      queries_of[e] = query_item_graph.QueriesOfItem(static_cast<uint32_t>(e));
    }
  });
  local_stats.profile_seconds = stage_timer.ElapsedSeconds();
  query_sets_span.End();

  // --- Stage 2: candidate pairs ----------------------------------------
  // Either strategy produces one sorted, duplicate-free key vector:
  // kExact merges per-shard hash sets of co-click pairs; kMinHashLsh
  // streams MinHash band keys into LSH buckets and collects bucket
  // pairs. Sorting makes the scoring order (and hence the whole build)
  // deterministic regardless of strategy, thread count, or the order
  // buckets emitted candidates.
  stage_timer.Restart();
  obs::ScopedSpan candidate_span("entity_graph.candidates");
  std::vector<uint64_t> candidates;
  if (options.candidate_strategy == CandidateStrategy::kMinHashLsh) {
    candidates = BuildLshCandidatePairs(queries_of, title_words,
                                        options.lsh, pool.get(),
                                        &local_stats);
  } else {
    std::vector<std::unordered_set<uint64_t>> shard_pairs(max_shards);
    std::vector<size_t> shard_capped(max_shards, 0);
    for_shards(query_item_graph.num_left(),
               [&](size_t begin, size_t end, size_t shard) {
                 SHOAL_TRACE_SPAN("entity_graph.candidate_shard");
                 CollectShardCandidates(query_item_graph, begin, end,
                                        options.max_items_per_query,
                                        &shard_pairs[shard],
                                        &shard_capped[shard]);
               });
    size_t total = 0;
    for (const auto& s : shard_pairs) total += s.size();
    candidates.reserve(total);
    for (auto& s : shard_pairs) {
      candidates.insert(candidates.end(), s.begin(), s.end());
      s.clear();
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (size_t c : shard_capped) local_stats.capped_queries += c;
  }
  local_stats.candidate_pairs = candidates.size();
  local_stats.candidate_seconds = stage_timer.ElapsedSeconds();
  candidate_span.AddArg("pairs",
                        static_cast<double>(local_stats.candidate_pairs));
  candidate_span.End();

  // --- Stage 3: content profiles (Eq. 2 inputs) ------------------------
  stage_timer.Restart();
  obs::ScopedSpan profile_span("entity_graph.profiles");
  std::vector<ContentProfile> profiles =
      BuildContentProfiles(word_vectors, title_words, pool.get());
  local_stats.profile_seconds += stage_timer.ElapsedSeconds();
  profile_span.End();

  // --- Stage 4: score candidates (Eq. 3), keep those above threshold --
  // Shards scan disjoint ranges of the sorted key vector and emit local
  // edge lists; concatenating them in shard order reproduces exactly the
  // serial scan order over the sorted keys.
  stage_timer.Restart();
  obs::ScopedSpan scoring_span("entity_graph.scoring");
  std::vector<std::vector<ScoredEdge>> shard_edges(max_shards);
  for_shards(candidates.size(), [&](size_t begin, size_t end, size_t shard) {
    obs::ScopedSpan shard_span("entity_graph.score_shard");
    shard_span.AddArg("shard", static_cast<double>(shard));
    shard_span.AddArg("pairs", static_cast<double>(end - begin));
    std::vector<ScoredEdge>& out = shard_edges[shard];
    out.reserve((end - begin) / 4 + 1);
    for (size_t i = begin; i < end; ++i) {
      const uint64_t key = candidates[i];
      const uint32_t u = static_cast<uint32_t>(key >> 32);
      const uint32_t v = static_cast<uint32_t>(key & 0xffffffffULL);
      const double sq = QueryJaccard(queries_of[u], queries_of[v]);
      const double sc = ContentSimilarity(profiles[u], profiles[v]);
      const double s = CombinedSimilarity(sq, sc, options.alpha);
      if (s >= options.similarity_threshold) out.push_back({u, v, s});
    }
  });
  local_stats.scored_pairs = candidates.size();
  std::vector<ScoredEdge> edges;
  {
    size_t total = 0;
    for (const auto& s : shard_edges) total += s.size();
    edges.reserve(total);
    for (auto& s : shard_edges) {
      edges.insert(edges.end(), s.begin(), s.end());
      s.clear();
      s.shrink_to_fit();
    }
  }
  local_stats.scoring_seconds = stage_timer.ElapsedSeconds();
  scoring_span.AddArg("kept", static_cast<double>(edges.size()));
  scoring_span.End();

  // --- Stage 5: degree cap ---------------------------------------------
  // Keep each entity's strongest edges only ("one item entity should
  // have only a few neighbor entities", Sec 2.2). An edge survives if it
  // ranks within the cap for *either* endpoint, so the graph stays
  // connected along strong paths. The (u, v) tie-break pins the greedy
  // order for equal similarities.
  stage_timer.Restart();
  SHOAL_TRACE_SPAN("entity_graph.degree_cap");
  auto capped_graph =
      ApplyDegreeCap(std::move(edges), num_entities, options.max_degree);
  if (!capped_graph.ok()) return capped_graph.status();
  graph::WeightedGraph entity_graph = std::move(capped_graph).value();
  local_stats.kept_edges = entity_graph.num_edges();
  local_stats.degree_cap_seconds = stage_timer.ElapsedSeconds();

  if (stats != nullptr) *stats = local_stats;
  if (obs::MetricsRegistry::Global().enabled()) {
    auto& metrics = obs::MetricsRegistry::Global();
    metrics.GetGauge("entity_graph.candidate_pairs")
        .Set(static_cast<double>(local_stats.candidate_pairs));
    metrics.GetGauge("entity_graph.kept_edges")
        .Set(static_cast<double>(local_stats.kept_edges));
    metrics.GetCounter("entity_graph.capped_queries")
        .Increment(local_stats.capped_queries);
    if (options.candidate_strategy == CandidateStrategy::kMinHashLsh) {
      metrics.GetGauge("entity_graph.lsh.candidate_pairs")
          .Set(static_cast<double>(local_stats.candidate_pairs));
      metrics.GetGauge("entity_graph.lsh.signed_entities")
          .Set(static_cast<double>(local_stats.lsh_signed_entities));
      metrics.GetGauge("entity_graph.lsh.buckets")
          .Set(static_cast<double>(local_stats.lsh_buckets));
      metrics.GetGauge("entity_graph.lsh.skipped_buckets")
          .Set(static_cast<double>(local_stats.lsh_skipped_buckets));
      metrics.GetGauge("entity_graph.lsh.emitted_pairs")
          .Set(static_cast<double>(local_stats.lsh_emitted_pairs));
    }
    if (pool != nullptr) {
      const util::ThreadPoolStats pool_stats = pool->GetStats();
      metrics.GetGauge("entity_graph.pool.queue_depth")
          .Set(static_cast<double>(pool_stats.queue_depth));
      metrics.GetGauge("entity_graph.pool.peak_queue_depth")
          .Set(static_cast<double>(pool_stats.peak_queue_depth));
      metrics.GetGauge("entity_graph.pool.tasks_executed")
          .Set(static_cast<double>(pool_stats.tasks_executed));
      metrics.GetHistogram("entity_graph.pool.task_seconds")
          .Record(pool_stats.tasks_executed > 0
                      ? pool_stats.total_task_seconds /
                            static_cast<double>(pool_stats.tasks_executed)
                      : 0.0);
    }
  }
  return entity_graph;
}

}  // namespace shoal::core
