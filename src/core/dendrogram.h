#ifndef SHOAL_CORE_DENDROGRAM_H_
#define SHOAL_CORE_DENDROGRAM_H_

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace shoal::core {

inline constexpr uint32_t kNoNode = static_cast<uint32_t>(-1);

// Binary merge tree produced by (parallel or sequential) HAC. Leaves are
// the original item entities [0, num_leaves); every merge appends an
// internal node. Multiple roots are expected: clustering stops when all
// remaining similarities fall below the threshold, leaving one root per
// final cluster (these become SHOAL's *root topics*).
class Dendrogram {
 public:
  struct Node {
    uint32_t id = kNoNode;
    uint32_t parent = kNoNode;
    uint32_t left = kNoNode;    // kNoNode for leaves
    uint32_t right = kNoNode;
    uint32_t size = 1;          // leaves under this node
    double merge_similarity = 0.0;  // similarity at which children merged
  };

  explicit Dendrogram(size_t num_leaves);
  // Empty dendrogram; placeholder for resume/checkpoint plumbing.
  Dendrogram() : Dendrogram(0) {}

  size_t num_leaves() const { return num_leaves_; }
  size_t num_nodes() const { return nodes_.size(); }
  const Node& node(uint32_t id) const { return nodes_[id]; }

  bool IsLeaf(uint32_t id) const { return id < num_leaves_; }
  bool IsRoot(uint32_t id) const { return nodes_[id].parent == kNoNode; }

  // Records the merge of two current roots; returns the new node id.
  // Errors if either argument is not currently a root.
  util::Result<uint32_t> Merge(uint32_t a, uint32_t b, double similarity);

  // Current roots in ascending id order.
  std::vector<uint32_t> Roots() const;

  // All leaf ids under `id` (entity members of the cluster).
  std::vector<uint32_t> LeavesUnder(uint32_t id) const;

  // Cluster label per leaf: the root above each leaf, relabelled densely
  // to [0, num_roots).
  std::vector<uint32_t> FlatClusters() const;

  // Cluster labels obtained by *cutting* the tree: a node is a cluster
  // root if its merge similarity >= min_similarity but its parent's is
  // below (or it has no parent). Leaves not merged at that level are
  // singleton clusters.
  std::vector<uint32_t> CutAt(double min_similarity) const;

  // Total number of merges performed.
  size_t num_merges() const { return nodes_.size() - num_leaves_; }

 private:
  size_t num_leaves_;
  std::vector<Node> nodes_;
};

}  // namespace shoal::core

#endif  // SHOAL_CORE_DENDROGRAM_H_
