#ifndef SHOAL_CORE_QUERY_SEARCH_H_
#define SHOAL_CORE_QUERY_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/taxonomy.h"
#include "text/bm25.h"
#include "text/vocabulary.h"
#include "util/result.h"

namespace shoal::core {

// Query -> topic retrieval backing the demo's scenario (A): free-text
// queries are matched against per-topic pseudo-documents (concatenated
// member titles plus the topic's representative queries) with BM25.
class QueryTopicIndex {
 public:
  struct Options {
    text::Bm25Index::Options bm25;
    // Index root topics only, or every topic (enables sub-topic search
    // for scenario (B)).
    bool roots_only = false;
  };

  // `vocab` must be the vocabulary the title/query word ids refer to;
  // it is retained by pointer and must outlive the index.
  static util::Result<QueryTopicIndex> Build(
      const Taxonomy& taxonomy,
      const std::vector<std::vector<uint32_t>>& entity_title_words,
      const text::Vocabulary* vocab, const Options& options);

  struct Hit {
    uint32_t topic = kNoTopic;
    double score = 0.0;
  };

  // Top-k topics for a free-text query. Unknown words are ignored; a
  // query with no known words returns an empty list.
  std::vector<Hit> Search(const std::string& query_text, size_t k) const;

 private:
  QueryTopicIndex() = default;

  text::Bm25Index bm25_;
  std::vector<uint32_t> doc_topic_;  // BM25 doc id -> topic id
  const text::Vocabulary* vocab_ = nullptr;
};

}  // namespace shoal::core

#endif  // SHOAL_CORE_QUERY_SEARCH_H_
