#include "core/category_correlation.h"

#include <algorithm>

namespace shoal::core {

CategoryCorrelation CategoryCorrelation::Mine(
    const Taxonomy& taxonomy, const CategoryCorrelationOptions& options) {
  CategoryCorrelation result;

  // Raw co-occurrence counts over root topics (Eq. 5).
  std::unordered_map<uint64_t, uint32_t> counts;
  for (uint32_t root : taxonomy.roots()) {
    const Topic& topic = taxonomy.topic(root);
    std::vector<uint32_t> cats;
    for (const auto& [cat, count] : topic.categories) {
      if (count >= options.min_category_count) cats.push_back(cat);
    }
    std::sort(cats.begin(), cats.end());
    for (size_t i = 0; i < cats.size(); ++i) {
      for (size_t j = i + 1; j < cats.size(); ++j) {
        ++counts[Key(cats[i], cats[j])];
      }
    }
  }

  // Prune by the strength threshold ("> min_strength" per the paper).
  for (const auto& [key, strength] : counts) {
    if (strength <= options.min_strength) continue;
    uint32_t c1 = static_cast<uint32_t>(key >> 32);
    uint32_t c2 = static_cast<uint32_t>(key & 0xffffffffULL);
    result.strength_.emplace(key, strength);
    result.related_[c1].emplace_back(c2, strength);
    result.related_[c2].emplace_back(c1, strength);
    result.pairs_.push_back(Pair{c1, c2, strength});
  }
  for (auto& [c, list] : result.related_) {
    std::sort(list.begin(), list.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
  }
  std::sort(result.pairs_.begin(), result.pairs_.end(),
            [](const Pair& a, const Pair& b) {
              if (a.strength != b.strength) return a.strength > b.strength;
              if (a.c1 != b.c1) return a.c1 < b.c1;
              return a.c2 < b.c2;
            });
  return result;
}

uint32_t CategoryCorrelation::Strength(uint32_t c1, uint32_t c2) const {
  auto it = strength_.find(Key(c1, c2));
  return it == strength_.end() ? 0 : it->second;
}

std::vector<std::pair<uint32_t, uint32_t>> CategoryCorrelation::Related(
    uint32_t c) const {
  auto it = related_.find(c);
  return it == related_.end()
             ? std::vector<std::pair<uint32_t, uint32_t>>{}
             : it->second;
}

}  // namespace shoal::core
