#ifndef SHOAL_CORE_LSH_INDEX_H_
#define SHOAL_CORE_LSH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_pool.h"

namespace shoal::core {

// Counters the LSH candidate stage reports up through
// EntityGraphStats and the entity_graph.lsh.* metrics.
struct LshStats {
  size_t signed_entities = 0;    // entities with a non-empty shingle set
  size_t buckets = 0;            // buckets with >= 2 members, all bands
  size_t skipped_buckets = 0;    // buckets larger than max_bucket
  size_t emitted_pairs = 0;      // bucket collisions before dedup
  size_t candidate_pairs = 0;    // unique pairs after the global sort
};

// Banded LSH bucket index: band b maps a band key (the folded MinHash
// rows, see MinHasher::BandKey) to the entities that produced it. Two
// entities become a candidate pair iff the *first* band where their
// keys agree holds a bucket of size within `max_bucket` (with
// max_bucket == 0, exactly: iff they share at least one band). Pinning
// the decision to the first matching band makes the union of all
// bands' emissions duplicate-free by construction — no global dedup
// pass — and only drops pairs whose first collision is a degenerate
// flood bucket, which recur in equally degenerate buckets elsewhere.
//
// Layout: one flat row of band keys per inserted entity (`bands` keys
// back to back). Buckets are never stored — CandidatePairs sorts a
// transient (key, entity) array per band and scans the runs, which
// beats hash-map buckets by a wide margin at the 100k+ tiers and keeps
// Insert a plain copy.
//
// Determinism: a bucket's membership is a pure set — which entities
// hash to the key — so bucket sizes, the skip decision, and the
// candidate *set* never depend on insertion order. Candidate pairs are
// emitted once (at the first band where the pair collides) and globally
// sorted; only that sorted vector escapes this class.
class LshIndex {
 public:
  explicit LshIndex(size_t bands);

  size_t num_bands() const { return num_bands_; }

  // Registers one entity's band keys (`band_keys[b]` for band b).
  // Single-writer, at most once per entity: the streaming pipeline
  // funnels every signature batch through one consumer, so Insert is
  // not synchronized.
  void Insert(uint32_t entity, const uint64_t* band_keys);

  // Emits the ascending `(u << 32) | v`-packed candidate pairs under
  // the first-matching-band rule above. Oversized buckets (degenerate
  // collisions — e.g. the near-universal shingle of a boilerplate
  // title) are skipped and counted, mirroring the head-query cap of
  // the exact path. When `pool` is non-null the bands are scanned in
  // parallel; the result is identical either way.
  std::vector<uint64_t> CandidatePairs(size_t max_bucket,
                                       util::ThreadPool* pool,
                                       LshStats* stats) const;

  // Sorted bucket sizes of one band, for tests and diagnostics.
  std::vector<size_t> BandBucketSizes(size_t band) const;

 private:
  size_t num_bands_;
  // keys_[e * num_bands_ + b] is entity e's key in band b; slots of
  // never-inserted entities are uninitialized and never read, because
  // every scan iterates `inserted_`.
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> inserted_;
};

}  // namespace shoal::core

#endif  // SHOAL_CORE_LSH_INDEX_H_
