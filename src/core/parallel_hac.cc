#include "core/parallel_hac.h"

#include <algorithm>
#include <unordered_map>

#include "engine/bsp_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace shoal::core {

namespace {

// Best edge a vertex has seen during diffusion. Ids are *cluster* ids.
struct BestEdge {
  uint32_t u = kNoNode;
  uint32_t v = kNoNode;
  double similarity = -1.0;

  bool valid() const { return similarity >= 0.0; }
  bool operator==(const BestEdge&) const = default;
};

// Per-vertex diffusion state: the best edge seen so far, plus the last
// value broadcast to neighbours (so unchanged values are not re-sent).
struct DiffusionState {
  BestEdge best;
  BestEdge sent;
};

// Keeps `acc` as the winner under the deterministic edge order.
void FoldMax(BestEdge& acc, const BestEdge& other) {
  if (!other.valid()) return;
  if (!acc.valid() ||
      EdgeBeats(other.u, other.v, other.similarity, acc.u, acc.v,
                acc.similarity)) {
    acc = other;
  }
}

}  // namespace

util::Result<Dendrogram> ParallelHac(const graph::WeightedGraph& graph,
                                     const ParallelHacOptions& options,
                                     ParallelHacStats* stats) {
  if (options.hac.threshold <= 0.0) {
    return util::Status::InvalidArgument("threshold must be positive");
  }
  if (options.diffusion_iterations == 0) {
    return util::Status::InvalidArgument(
        "diffusion_iterations must be >= 1");
  }

  Dendrogram dendrogram(graph.num_vertices());
  const double threshold = options.hac.threshold;
  ClusterGraph clusters(graph, /*track_threshold=*/threshold);
  ParallelHacStats local_stats;
  // Observability handles; recording only writes side buffers, so the
  // dendrogram is byte-identical with instrumentation on or off.
  const bool metrics_on = obs::MetricsRegistry::Global().enabled();

  for (size_t round = 0; round < options.max_rounds; ++round) {
    obs::ScopedSpan round_span("hac.round");
    round_span.AddArg("round", static_cast<double>(round));
    // --- snapshot the *mergeable frontier*: only clusters that still
    // have an edge >= threshold participate in this round's diffusion.
    // Late rounds involve a shrinking fraction of the graph, so the
    // per-round cost tracks the remaining work instead of O(V + E).
    std::vector<uint32_t> active = clusters.MergeableClusters();
    const size_t n = active.size();
    if (n < 2) break;
    round_span.AddArg("active_clusters", static_cast<double>(n));
    std::unordered_map<uint32_t, uint32_t> compact;  // cluster id -> [0,n)
    compact.reserve(n);
    for (uint32_t i = 0; i < n; ++i) compact.emplace(active[i], i);

    std::vector<std::vector<std::pair<uint32_t, double>>> snapshot(n);
    {
      SHOAL_TRACE_SPAN("hac.snapshot");
      for (uint32_t i = 0; i < n; ++i) {
        for (const auto& [c, s] : clusters.Neighbors(active[i])) {
          if (s < threshold) continue;
          // Both endpoints of a mergeable edge are mergeable clusters,
          // so the lookup always succeeds.
          snapshot[i].emplace_back(compact.at(c), s);
        }
      }
    }

    // --- diffusion on the BSP engine -------------------------------------
    // Superstep 0: every vertex with a mergeable edge proposes its best
    // incident edge to its neighbours. Supersteps 1..k-1: fold received
    // proposals into the running best and forward improvements. After the
    // final superstep each vertex knows the best edge within its
    // k-hop neighbourhood (restricted to mergeable edges).
    using Engine = engine::BspEngine<DiffusionState, BestEdge>;
    Engine::Options engine_options;
    engine_options.num_partitions = options.num_partitions;
    engine_options.num_threads = options.num_threads;
    // k message exchanges need k+1 supersteps (send on 0..k-1, final fold
    // on superstep k).
    engine_options.max_supersteps = options.diffusion_iterations + 1;
    Engine engine(n, engine_options);
    engine.SetCombiner(
        [](BestEdge& acc, const BestEdge& incoming) { FoldMax(acc, incoming); });

    const size_t last_send_superstep = options.diffusion_iterations - 1;
    obs::ScopedSpan diffusion_span("hac.diffusion");
    auto status = engine.Run([&](Engine::Context& ctx, uint32_t v,
                                 DiffusionState& state,
                                 const std::vector<BestEdge>& messages) {
      if (ctx.superstep() == 0) {
        // Best incident edge, expressed in original cluster ids and
        // normalised to u < v so both endpoints describe it identically.
        for (const auto& [to, s] : snapshot[v]) {
          uint32_t a = std::min(active[v], active[to]);
          uint32_t b = std::max(active[v], active[to]);
          FoldMax(state.best, BestEdge{a, b, s});
        }
      }
      for (const BestEdge& m : messages) FoldMax(state.best, m);
      if (ctx.superstep() > last_send_superstep || snapshot[v].empty()) {
        ctx.VoteToHalt();
        return;
      }
      // Broadcast only improvements; neighbours already hold anything
      // sent before, so unchanged values would be wasted messages.
      if (state.best.valid() && !(state.best == state.sent)) {
        for (const auto& [to, s] : snapshot[v]) {
          (void)s;
          ctx.SendMessage(to, state.best);
        }
        state.sent = state.best;
      }
      ctx.VoteToHalt();  // reactivated by incoming messages
    });
    if (!status.ok()) return status;
    local_stats.total_messages += engine.total_messages();
    local_stats.total_supersteps += engine.superstep();
    diffusion_span.AddArg("supersteps",
                          static_cast<double>(engine.superstep()));
    diffusion_span.AddArg("messages",
                          static_cast<double>(engine.total_messages()));
    diffusion_span.End();

    // --- collect local maximal edges: both endpoints agree ----------------
    // Each vertex's value is the best edge in its k-hop neighbourhood;
    // edge (a,b) is locally maximal iff it is the best for both a and b.
    std::vector<std::pair<uint32_t, uint32_t>> to_merge;
    std::vector<double> merge_similarity;
    for (uint32_t i = 0; i < n; ++i) {
      const BestEdge& mine = engine.VertexValue(i).best;
      if (!mine.valid()) continue;
      // Edges are normalised (u < v); the smaller endpoint reports, which
      // also deduplicates each agreeing pair.
      if (mine.u != active[i]) continue;
      uint32_t j = compact.at(mine.v);
      const BestEdge& theirs = engine.VertexValue(j).best;
      if (theirs.valid() && theirs.u == mine.u && theirs.v == mine.v) {
        to_merge.emplace_back(mine.u, mine.v);
        merge_similarity.push_back(mine.similarity);
      }
    }
    if (to_merge.empty()) break;

    // --- parallel merge phase ---------------------------------------------
    // Locally maximal edges form a matching (each vertex names a unique
    // best edge), so the merges are independent; applying them within one
    // round is the "distributed merging" step.
    {
      SHOAL_TRACE_SPAN("hac.merge");
      for (size_t m = 0; m < to_merge.size(); ++m) {
        auto [a, b] = to_merge[m];
        auto merged = dendrogram.Merge(a, b, merge_similarity[m]);
        if (!merged.ok()) return merged.status();
        SHOAL_RETURN_IF_ERROR(
            clusters.Merge(a, b, merged.value(), options.hac.linkage));
      }
    }
    local_stats.total_merges += to_merge.size();
    local_stats.merges_per_round.push_back(to_merge.size());
    ++local_stats.rounds;
    round_span.AddArg("merges", static_cast<double>(to_merge.size()));
    if (metrics_on) {
      auto& metrics = obs::MetricsRegistry::Global();
      metrics.GetCounter("hac.rounds").Increment();
      metrics.GetCounter("hac.merges").Increment(to_merge.size());
      metrics.GetHistogram("hac.round.merges")
          .Record(static_cast<double>(to_merge.size()));
      metrics.GetHistogram("hac.round.active_clusters")
          .Record(static_cast<double>(n));
      metrics.GetHistogram("hac.round.messages")
          .Record(static_cast<double>(engine.total_messages()));
    }
  }

  if (stats != nullptr) *stats = local_stats;
  if (metrics_on) {
    auto& metrics = obs::MetricsRegistry::Global();
    metrics.GetCounter("hac.runs").Increment();
    metrics.GetCounter("hac.messages").Increment(local_stats.total_messages);
    metrics.GetCounter("hac.supersteps")
        .Increment(local_stats.total_supersteps);
  }
  return dendrogram;
}

}  // namespace shoal::core
