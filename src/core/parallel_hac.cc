#include "core/parallel_hac.h"

#include <algorithm>
#include <utility>

#include "engine/bsp_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace shoal::core {

namespace {

// Best edge a vertex has seen during diffusion. Ids are *cluster* ids.
struct BestEdge {
  uint32_t u = kNoNode;
  uint32_t v = kNoNode;
  double similarity = -1.0;

  bool valid() const { return similarity >= 0.0; }
  bool operator==(const BestEdge&) const = default;
};

// Per-vertex diffusion state: the best edge seen so far, plus the last
// value broadcast to neighbours (so unchanged values are not re-sent).
struct DiffusionState {
  BestEdge best;
  BestEdge sent;
};

// Keeps `acc` as the winner under the deterministic edge order.
void FoldMax(BestEdge& acc, const BestEdge& other) {
  if (!other.valid()) return;
  if (!acc.valid() ||
      EdgeBeats(other.u, other.v, other.similarity, acc.u, acc.v,
                acc.similarity)) {
    acc = other;
  }
}

// Flat CSR snapshot of the mergeable frontier's adjacency, rebuilt into
// the same buffers every round: snapshot targets are compact indices
// [0, n) into the round's frontier, so the diffusion kernel runs on
// dense, cache-friendly spans instead of per-cluster hash maps.
struct FrontierSnapshot {
  std::vector<size_t> offsets;                         // n + 1
  std::vector<std::pair<uint32_t, double>> entries;    // (compact id, sim)

  std::pair<const std::pair<uint32_t, double>*,
            const std::pair<uint32_t, double>*>
  Row(uint32_t i) const {
    return {entries.data() + offsets[i], entries.data() + offsets[i + 1]};
  }
};

// Validates the option fields shared by fresh and resumed runs.
util::Status ValidateOptions(const ParallelHacOptions& options) {
  if (options.hac.threshold <= 0.0) {
    return util::Status::InvalidArgument("threshold must be positive");
  }
  if (options.diffusion_iterations == 0) {
    return util::Status::InvalidArgument(
        "diffusion_iterations must be >= 1");
  }
  if (options.checkpoint_every > 0 && !options.checkpoint_hook) {
    return util::Status::InvalidArgument(
        "checkpoint_every set without a checkpoint_hook");
  }
  return util::Status::OK();
}

// The round loop shared by ParallelHac and ResumeParallelHac. Mutates
// `clusters`/`dendrogram` in place and accumulates into `local_stats`
// (non-zero on resume); the loop itself reads no state outside those
// three, which is what makes a restored run bit-identical to an
// uninterrupted one.
util::Status RunRounds(const ParallelHacOptions& options,
                       ClusterGraph& clusters, Dendrogram& dendrogram,
                       ParallelHacStats& local_stats) {
  const double threshold = options.hac.threshold;
  // Observability handles; recording only writes side buffers, so the
  // dendrogram is byte-identical with instrumentation on or off.
  const bool metrics_on = obs::MetricsRegistry::Global().enabled();

  // One worker pool for the whole run, shared by the snapshot build,
  // every round's BSP engine, and the batch merge — without it each
  // round would spawn and join a fresh set of threads.
  util::ThreadPool pool(std::max<size_t>(1, options.num_threads));

  // Dense cluster-id -> compact-frontier-index map, sized once for every
  // id HAC can ever create (leaves + one internal node per merge); only
  // slots named by the current frontier are ever read.
  const size_t num_leaves = dendrogram.num_leaves();
  std::vector<uint32_t> compact(num_leaves > 0 ? 2 * num_leaves - 1 : 0, 0);
  FrontierSnapshot snapshot;
  std::vector<std::pair<uint32_t, uint32_t>> to_merge;
  std::vector<double> merge_similarity;

  // A completed round increments local_stats.rounds, so the loop index
  // always equals the number of rounds finished so far — including on
  // resume, where the restored stats make the counter pick up exactly
  // where the interrupted run stopped.
  for (size_t round = local_stats.rounds; round < options.max_rounds;
       ++round) {
    SHOAL_RETURN_IF_ERROR(util::FaultInjector::Global().OnHacRound(round));
    obs::ScopedSpan round_span("hac.round");
    round_span.AddArg("round", static_cast<double>(round));
    // --- snapshot the *mergeable frontier*: only clusters that still
    // have an edge >= threshold participate in this round's diffusion.
    // Late rounds involve a shrinking fraction of the graph, so the
    // per-round cost tracks the remaining work instead of O(V + E).
    std::vector<uint32_t> active = clusters.MergeableClusters();
    const size_t n = active.size();
    if (n < 2) break;
    round_span.AddArg("active_clusters", static_cast<double>(n));
    for (uint32_t i = 0; i < n; ++i) compact[active[i]] = i;

    {
      SHOAL_TRACE_SPAN("hac.snapshot");
      // Count, prefix-sum, then fill — each frontier cluster's span is
      // independent, so both passes parallelize without contention.
      snapshot.offsets.assign(n + 1, 0);
      pool.ParallelForChunked(n, [&](size_t begin, size_t end, size_t /*w*/) {
        for (size_t i = begin; i < end; ++i) {
          size_t count = 0;
          for (const ClusterEdge& e : clusters.Neighbors(active[i])) {
            if (e.similarity >= threshold) ++count;
          }
          snapshot.offsets[i + 1] = count;
        }
      });
      for (size_t i = 0; i < n; ++i) {
        snapshot.offsets[i + 1] += snapshot.offsets[i];
      }
      snapshot.entries.resize(snapshot.offsets[n]);
      pool.ParallelForChunked(n, [&](size_t begin, size_t end, size_t /*w*/) {
        for (size_t i = begin; i < end; ++i) {
          size_t at = snapshot.offsets[i];
          for (const ClusterEdge& e : clusters.Neighbors(active[i])) {
            if (e.similarity < threshold) continue;
            // Both endpoints of a mergeable edge are mergeable clusters,
            // so the compact slot is always valid.
            snapshot.entries[at++] = {compact[e.id], e.similarity};
          }
        }
      });
    }

    // --- diffusion on the BSP engine -------------------------------------
    // Superstep 0: every vertex with a mergeable edge proposes its best
    // incident edge to its neighbours. Supersteps 1..k-1: fold received
    // proposals into the running best and forward improvements. After the
    // final superstep each vertex knows the best edge within its
    // k-hop neighbourhood (restricted to mergeable edges).
    using Engine = engine::BspEngine<DiffusionState, BestEdge>;
    Engine::Options engine_options;
    engine_options.num_partitions = options.num_partitions;
    engine_options.num_threads = options.num_threads;
    engine_options.pool = &pool;
    // k message exchanges need k+1 supersteps (send on 0..k-1, final fold
    // on superstep k).
    engine_options.max_supersteps = options.diffusion_iterations + 1;
    Engine engine(n, engine_options);
    engine.SetCombiner(
        [](BestEdge& acc, const BestEdge& incoming) { FoldMax(acc, incoming); });

    const size_t last_send_superstep = options.diffusion_iterations - 1;
    obs::ScopedSpan diffusion_span("hac.diffusion");
    auto status = engine.Run([&](Engine::Context& ctx, uint32_t v,
                                 DiffusionState& state,
                                 const std::vector<BestEdge>& messages) {
      auto [row, row_end] = snapshot.Row(v);
      if (ctx.superstep() == 0) {
        // Best incident edge, expressed in original cluster ids and
        // normalised to u < v so both endpoints describe it identically.
        for (auto* e = row; e != row_end; ++e) {
          uint32_t a = std::min(active[v], active[e->first]);
          uint32_t b = std::max(active[v], active[e->first]);
          FoldMax(state.best, BestEdge{a, b, e->second});
        }
      }
      for (const BestEdge& m : messages) FoldMax(state.best, m);
      if (ctx.superstep() > last_send_superstep || row == row_end) {
        ctx.VoteToHalt();
        return;
      }
      // Broadcast only improvements; neighbours already hold anything
      // sent before, so unchanged values would be wasted messages.
      if (state.best.valid() && !(state.best == state.sent)) {
        for (auto* e = row; e != row_end; ++e) {
          ctx.SendMessage(e->first, state.best);
        }
        state.sent = state.best;
      }
      ctx.VoteToHalt();  // reactivated by incoming messages
    });
    if (!status.ok()) return status;
    local_stats.total_messages += engine.total_messages();
    local_stats.total_supersteps += engine.superstep();
    diffusion_span.AddArg("supersteps",
                          static_cast<double>(engine.superstep()));
    diffusion_span.AddArg("messages",
                          static_cast<double>(engine.total_messages()));
    diffusion_span.End();

    // --- collect local maximal edges: both endpoints agree ----------------
    // Each vertex's value is the best edge in its k-hop neighbourhood;
    // edge (a,b) is locally maximal iff it is the best for both a and b.
    to_merge.clear();
    merge_similarity.clear();
    for (uint32_t i = 0; i < n; ++i) {
      const BestEdge& mine = engine.VertexValue(i).best;
      if (!mine.valid()) continue;
      // Edges are normalised (u < v); the smaller endpoint reports, which
      // also deduplicates each agreeing pair.
      if (mine.u != active[i]) continue;
      const BestEdge& theirs = engine.VertexValue(compact[mine.v]).best;
      if (theirs.valid() && theirs.u == mine.u && theirs.v == mine.v) {
        to_merge.emplace_back(mine.u, mine.v);
        merge_similarity.push_back(mine.similarity);
      }
    }
    if (to_merge.empty()) break;

    // --- parallel merge phase ---------------------------------------------
    // Locally maximal edges form a matching (each vertex names a unique
    // best edge), so the merged rows are computed concurrently and the
    // neighbour patches applied in a deterministic id-ordered reduction;
    // MergeBatch validates the whole matching before mutating anything,
    // so a corrupt round can never leave the dendrogram and the cluster
    // graph divergent.
    {
      SHOAL_TRACE_SPAN("hac.merge");
      const uint32_t first_new_id =
          static_cast<uint32_t>(dendrogram.num_nodes());
      SHOAL_RETURN_IF_ERROR(
          clusters.MergeBatch(to_merge, first_new_id, options.hac.linkage,
                              &pool));
      for (size_t m = 0; m < to_merge.size(); ++m) {
        auto merged = dendrogram.Merge(to_merge[m].first, to_merge[m].second,
                                       merge_similarity[m]);
        if (!merged.ok()) return merged.status();
      }
    }
    local_stats.total_merges += to_merge.size();
    local_stats.merges_per_round.push_back(to_merge.size());
    ++local_stats.rounds;
    round_span.AddArg("merges", static_cast<double>(to_merge.size()));
    if (metrics_on) {
      auto& metrics = obs::MetricsRegistry::Global();
      metrics.GetCounter("hac.rounds").Increment();
      metrics.GetCounter("hac.merges").Increment(to_merge.size());
      metrics.GetHistogram("hac.round.merges")
          .Record(static_cast<double>(to_merge.size()));
      metrics.GetHistogram("hac.round.active_clusters")
          .Record(static_cast<double>(n));
      metrics.GetHistogram("hac.round.messages")
          .Record(static_cast<double>(engine.total_messages()));
    }
    if (options.checkpoint_every > 0 &&
        local_stats.rounds % options.checkpoint_every == 0) {
      SHOAL_TRACE_SPAN("hac.checkpoint");
      SHOAL_RETURN_IF_ERROR(options.checkpoint_hook(
          HacProgress{&clusters, &dendrogram, local_stats.rounds,
                      /*finished=*/false, &local_stats}));
    }
  }

  if (options.checkpoint_hook) {
    SHOAL_TRACE_SPAN("hac.checkpoint");
    SHOAL_RETURN_IF_ERROR(options.checkpoint_hook(
        HacProgress{&clusters, &dendrogram, local_stats.rounds,
                    /*finished=*/true, &local_stats}));
  }
  if (metrics_on) {
    auto& metrics = obs::MetricsRegistry::Global();
    metrics.GetCounter("hac.runs").Increment();
    metrics.GetCounter("hac.messages").Increment(local_stats.total_messages);
    metrics.GetCounter("hac.supersteps")
        .Increment(local_stats.total_supersteps);
  }
  return util::Status::OK();
}

}  // namespace

util::Result<Dendrogram> ParallelHac(const graph::WeightedGraph& graph,
                                     const ParallelHacOptions& options,
                                     ParallelHacStats* stats) {
  SHOAL_RETURN_IF_ERROR(ValidateOptions(options));
  Dendrogram dendrogram(graph.num_vertices());
  ClusterGraph clusters(graph, /*track_threshold=*/options.hac.threshold);
  ParallelHacStats local_stats;
  SHOAL_RETURN_IF_ERROR(
      RunRounds(options, clusters, dendrogram, local_stats));
  if (stats != nullptr) *stats = local_stats;
  return dendrogram;
}

util::Result<Dendrogram> ResumeParallelHac(const ParallelHacOptions& options,
                                           HacResumeState state,
                                           ParallelHacStats* stats) {
  SHOAL_RETURN_IF_ERROR(ValidateOptions(options));
  if (state.clusters.track_threshold() != options.hac.threshold) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "resume state was captured with threshold %g but the run is "
        "configured with %g; resuming would not reproduce the "
        "uninterrupted dendrogram",
        state.clusters.track_threshold(), options.hac.threshold));
  }
  if (state.clusters.num_nodes() != state.dendrogram.num_nodes()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "resume state is inconsistent: cluster graph has %zu nodes, "
        "dendrogram has %zu",
        state.clusters.num_nodes(), state.dendrogram.num_nodes()));
  }
  if (state.rounds_done != state.stats.rounds) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "resume state is inconsistent: rounds_done=%zu but stats record "
        "%zu rounds",
        state.rounds_done, state.stats.rounds));
  }
  SHOAL_RETURN_IF_ERROR(RunRounds(options, state.clusters, state.dendrogram,
                                  state.stats));
  if (stats != nullptr) *stats = state.stats;
  return std::move(state.dendrogram);
}

}  // namespace shoal::core
