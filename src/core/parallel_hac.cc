#include "core/parallel_hac.h"

#include <algorithm>
#include <utility>

#include "engine/bsp_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace shoal::core {

namespace {

// Best edge a vertex has seen during diffusion. Ids are *cluster* ids.
struct BestEdge {
  uint32_t u = kNoNode;
  uint32_t v = kNoNode;
  double similarity = -1.0;

  bool valid() const { return similarity >= 0.0; }
  bool operator==(const BestEdge&) const = default;
};

// True when `x` beats `y` under the deterministic edge order (an invalid
// edge never beats, a valid edge always beats an invalid one).
bool Beats(const BestEdge& x, const BestEdge& y) {
  if (!x.valid()) return false;
  if (!y.valid()) return true;
  return EdgeBeats(x.u, x.v, x.similarity, y.u, y.v, y.similarity);
}

// Keeps `acc` as the winner under the deterministic edge order.
void FoldMax(BestEdge& acc, const BestEdge& other) {
  if (Beats(other, acc)) acc = other;
}

// Validates the option fields shared by fresh and resumed runs.
util::Status ValidateOptions(const ParallelHacOptions& options) {
  if (options.hac.threshold <= 0.0) {
    return util::Status::InvalidArgument("threshold must be positive");
  }
  if (options.diffusion_iterations == 0) {
    // Guards the k - 1 "last send superstep" arithmetic below from
    // size_t underflow, and k = 0 diffusion is meaningless anyway: a
    // vertex that exchanges no proposals can never agree with a partner.
    return util::Status::InvalidArgument(
        "diffusion_iterations must be >= 1");
  }
  if (options.checkpoint_every > 0 && !options.checkpoint_hook) {
    return util::Status::InvalidArgument(
        "checkpoint_every set without a checkpoint_hook");
  }
  return util::Status::OK();
}

// Per-round bookkeeping shared by both diffusion modes: apply the round's
// matching to the cluster graph and dendrogram, accumulate stats, and
// fire the periodic checkpoint hook.
util::Status CommitRound(
    const ParallelHacOptions& options, ClusterGraph& clusters,
    Dendrogram& dendrogram, ParallelHacStats& local_stats,
    const std::vector<std::pair<uint32_t, uint32_t>>& to_merge,
    const std::vector<double>& merge_similarity, util::ThreadPool& pool,
    uint64_t round_messages, size_t active_clusters,
    obs::ScopedSpan& round_span) {
  {
    SHOAL_TRACE_SPAN("hac.merge");
    const uint32_t first_new_id =
        static_cast<uint32_t>(dendrogram.num_nodes());
    SHOAL_RETURN_IF_ERROR(clusters.MergeBatch(to_merge, first_new_id,
                                              options.hac.linkage, &pool));
    for (size_t m = 0; m < to_merge.size(); ++m) {
      auto merged = dendrogram.Merge(to_merge[m].first, to_merge[m].second,
                                     merge_similarity[m]);
      if (!merged.ok()) return merged.status();
    }
  }
  local_stats.total_merges += to_merge.size();
  local_stats.merges_per_round.push_back(to_merge.size());
  ++local_stats.rounds;
  round_span.AddArg("merges", static_cast<double>(to_merge.size()));
  if (obs::MetricsRegistry::Global().enabled()) {
    auto& metrics = obs::MetricsRegistry::Global();
    metrics.GetCounter("hac.rounds").Increment();
    metrics.GetCounter("hac.merges").Increment(to_merge.size());
    metrics.GetHistogram("hac.round.merges")
        .Record(static_cast<double>(to_merge.size()));
    metrics.GetHistogram("hac.round.active_clusters")
        .Record(static_cast<double>(active_clusters));
    metrics.GetHistogram("hac.round.messages")
        .Record(static_cast<double>(round_messages));
  }
  if (options.checkpoint_every > 0 &&
      local_stats.rounds % options.checkpoint_every == 0) {
    SHOAL_TRACE_SPAN("hac.checkpoint");
    SHOAL_RETURN_IF_ERROR(options.checkpoint_hook(
        HacProgress{&clusters, &dendrogram, local_stats.rounds,
                    /*finished=*/false, &local_stats}));
  }
  return util::Status::OK();
}

// Final checkpoint-hook invocation and run-level metrics, shared by both
// diffusion modes.
util::Status FinishRun(const ParallelHacOptions& options,
                       ClusterGraph& clusters, Dendrogram& dendrogram,
                       ParallelHacStats& local_stats) {
  if (options.checkpoint_hook) {
    SHOAL_TRACE_SPAN("hac.checkpoint");
    SHOAL_RETURN_IF_ERROR(options.checkpoint_hook(
        HacProgress{&clusters, &dendrogram, local_stats.rounds,
                    /*finished=*/true, &local_stats}));
  }
  if (obs::MetricsRegistry::Global().enabled()) {
    auto& metrics = obs::MetricsRegistry::Global();
    metrics.GetCounter("hac.runs").Increment();
    metrics.GetCounter("hac.messages").Increment(local_stats.total_messages);
    metrics.GetCounter("hac.supersteps")
        .Increment(local_stats.total_supersteps);
  }
  return util::Status::OK();
}

// ---------------------------------------------------------------------------
// Legacy full-broadcast diffusion (DiffusionMode::kFullBroadcast)
// ---------------------------------------------------------------------------

// Per-vertex diffusion state: the best edge seen so far, plus the last
// value broadcast to neighbours (so unchanged values are not re-sent).
struct DiffusionState {
  BestEdge best;
  BestEdge sent;
};

// Flat CSR snapshot of the mergeable frontier's adjacency, rebuilt into
// the same buffers every round: snapshot targets are compact indices
// [0, n) into the round's frontier, so the diffusion kernel runs on
// dense, cache-friendly spans instead of per-cluster hash maps.
struct FrontierSnapshot {
  std::vector<size_t> offsets;                         // n + 1
  std::vector<std::pair<uint32_t, double>> entries;    // (compact id, sim)

  std::pair<const std::pair<uint32_t, double>*,
            const std::pair<uint32_t, double>*>
  Row(uint32_t i) const {
    return {entries.data() + offsets[i], entries.data() + offsets[i + 1]};
  }
};

// The reference round loop: per-round frontier snapshot, fresh engine,
// full re-broadcast of every vertex's best edge. Kept as the oracle the
// delta path is tested against (the two must produce byte-identical
// dendrograms) and as the simplest statement of the algorithm.
util::Status RunRoundsFullBroadcast(const ParallelHacOptions& options,
                                    ClusterGraph& clusters,
                                    Dendrogram& dendrogram,
                                    ParallelHacStats& local_stats) {
  const double threshold = options.hac.threshold;

  // One worker pool for the whole run, shared by the snapshot build,
  // every round's BSP engine, and the batch merge — without it each
  // round would spawn and join a fresh set of threads.
  util::ThreadPool pool(std::max<size_t>(1, options.num_threads));

  // Dense cluster-id -> compact-frontier-index map, sized once for every
  // id HAC can ever create (leaves + one internal node per merge); only
  // slots named by the current frontier are ever read.
  const size_t num_leaves = dendrogram.num_leaves();
  std::vector<uint32_t> compact(num_leaves > 0 ? 2 * num_leaves - 1 : 0, 0);
  FrontierSnapshot snapshot;
  std::vector<size_t> chunk_sums;
  std::vector<std::pair<uint32_t, uint32_t>> to_merge;
  std::vector<double> merge_similarity;

  // A completed round increments local_stats.rounds, so the loop index
  // always equals the number of rounds finished so far — including on
  // resume, where the restored stats make the counter pick up exactly
  // where the interrupted run stopped.
  for (size_t round = local_stats.rounds; round < options.max_rounds;
       ++round) {
    SHOAL_RETURN_IF_ERROR(util::FaultInjector::Global().OnHacRound(round));
    obs::ScopedSpan round_span("hac.round");
    round_span.AddArg("round", static_cast<double>(round));
    // --- snapshot the *mergeable frontier*: only clusters that still
    // have an edge >= threshold participate in this round's diffusion.
    // Late rounds involve a shrinking fraction of the graph, so the
    // per-round cost tracks the remaining work instead of O(V + E).
    std::vector<uint32_t> active = clusters.MergeableClusters();
    const size_t n = active.size();
    if (n < 2) break;
    round_span.AddArg("active_clusters", static_cast<double>(n));
    for (uint32_t i = 0; i < n; ++i) compact[active[i]] = i;

    {
      SHOAL_TRACE_SPAN("hac.snapshot");
      // Count, prefix-sum, then fill — each frontier cluster's span is
      // independent, so all three passes parallelize without contention.
      // The prefix sum is folded into the counting pass: each chunk
      // records its total, a serial scan over the O(threads) chunk
      // totals assigns chunk bases, and the fill-offset pass turns the
      // per-row counts into absolute offsets. Chunk boundaries are a
      // pure function of (n, pool size), so offsets are identical to a
      // serial scan's.
      const size_t num_chunks = std::min(n, pool.num_threads());
      snapshot.offsets.assign(n + 1, 0);
      chunk_sums.assign(num_chunks + 1, 0);
      pool.ParallelForChunked(n, [&](size_t begin, size_t end, size_t c) {
        size_t sum = 0;
        for (size_t i = begin; i < end; ++i) {
          size_t count = 0;
          for (const ClusterEdge& e : clusters.Neighbors(active[i])) {
            if (e.similarity >= threshold) ++count;
          }
          snapshot.offsets[i + 1] = count;
          sum += count;
        }
        chunk_sums[c + 1] = sum;
      });
      for (size_t c = 0; c < num_chunks; ++c) {
        chunk_sums[c + 1] += chunk_sums[c];
      }
      pool.ParallelForChunked(n, [&](size_t begin, size_t end, size_t c) {
        size_t running = chunk_sums[c];
        for (size_t i = begin; i < end; ++i) {
          running += snapshot.offsets[i + 1];
          snapshot.offsets[i + 1] = running;
        }
      });
      snapshot.entries.resize(snapshot.offsets[n]);
      pool.ParallelForChunked(n, [&](size_t begin, size_t end, size_t /*c*/) {
        for (size_t i = begin; i < end; ++i) {
          size_t at = snapshot.offsets[i];
          for (const ClusterEdge& e : clusters.Neighbors(active[i])) {
            if (e.similarity < threshold) continue;
            // Both endpoints of a mergeable edge are mergeable clusters,
            // so the compact slot is always valid.
            snapshot.entries[at++] = {compact[e.id], e.similarity};
          }
        }
      });
    }

    // --- diffusion on the BSP engine -------------------------------------
    // Superstep 0: every vertex with a mergeable edge proposes its best
    // incident edge to its neighbours. Supersteps 1..k-1: fold received
    // proposals into the running best and forward improvements. After the
    // final superstep each vertex knows the best edge within its
    // k-hop neighbourhood (restricted to mergeable edges).
    using Engine = engine::BspEngine<DiffusionState, BestEdge>;
    Engine::Options engine_options;
    engine_options.num_partitions = options.num_partitions;
    engine_options.num_threads = options.num_threads;
    engine_options.pool = &pool;
    // k message exchanges need k+1 supersteps (send on 0..k-1, final fold
    // on superstep k).
    engine_options.max_supersteps = options.diffusion_iterations + 1;
    Engine engine(n, engine_options);
    engine.SetCombiner(
        [](BestEdge& acc, const BestEdge& incoming) { FoldMax(acc, incoming); });

    const size_t last_send_superstep = options.diffusion_iterations - 1;
    obs::ScopedSpan diffusion_span("hac.diffusion");
    auto status = engine.Run([&](Engine::Context& ctx, uint32_t v,
                                 DiffusionState& state,
                                 const std::vector<BestEdge>& messages) {
      auto [row, row_end] = snapshot.Row(v);
      if (ctx.superstep() == 0) {
        // Best incident edge, expressed in original cluster ids and
        // normalised to u < v so both endpoints describe it identically.
        for (auto* e = row; e != row_end; ++e) {
          uint32_t a = std::min(active[v], active[e->first]);
          uint32_t b = std::max(active[v], active[e->first]);
          FoldMax(state.best, BestEdge{a, b, e->second});
        }
      }
      for (const BestEdge& m : messages) FoldMax(state.best, m);
      if (ctx.superstep() > last_send_superstep || row == row_end) {
        ctx.VoteToHalt();
        return;
      }
      // Broadcast only improvements; neighbours already hold anything
      // sent before, so unchanged values would be wasted messages.
      if (state.best.valid() && !(state.best == state.sent)) {
        for (auto* e = row; e != row_end; ++e) {
          ctx.SendMessage(e->first, state.best);
        }
        state.sent = state.best;
      }
      ctx.VoteToHalt();  // reactivated by incoming messages
    });
    if (!status.ok()) return status;
    local_stats.total_messages += engine.total_messages();
    local_stats.total_supersteps += engine.superstep();
    diffusion_span.AddArg("supersteps",
                          static_cast<double>(engine.superstep()));
    diffusion_span.AddArg("messages",
                          static_cast<double>(engine.total_messages()));
    diffusion_span.End();

    // --- collect local maximal edges: both endpoints agree ----------------
    // Each vertex's value is the best edge in its k-hop neighbourhood;
    // edge (a,b) is locally maximal iff it is the best for both a and b.
    to_merge.clear();
    merge_similarity.clear();
    for (uint32_t i = 0; i < n; ++i) {
      const BestEdge& mine = engine.VertexValue(i).best;
      if (!mine.valid()) continue;
      // Edges are normalised (u < v); the smaller endpoint reports, which
      // also deduplicates each agreeing pair.
      if (mine.u != active[i]) continue;
      const BestEdge& theirs = engine.VertexValue(compact[mine.v]).best;
      if (theirs.valid() && theirs.u == mine.u && theirs.v == mine.v) {
        to_merge.emplace_back(mine.u, mine.v);
        merge_similarity.push_back(mine.similarity);
      }
    }
    if (to_merge.empty()) break;

    SHOAL_RETURN_IF_ERROR(CommitRound(options, clusters, dendrogram,
                                      local_stats, to_merge, merge_similarity,
                                      pool, engine.total_messages(), n,
                                      round_span));
  }

  return FinishRun(options, clusters, dendrogram, local_stats);
}

// ---------------------------------------------------------------------------
// Delta diffusion (DiffusionMode::kDelta)
// ---------------------------------------------------------------------------
//
// The message-economy rework (DESIGN.md §8). One engine lives across all
// rounds, addressed by cluster id over the full id space [0, 2V-1), and
// per-vertex adjacency state persists between rounds with only the rows
// dirtied by a merge batch rebuilt. Three suppression levers cut the
// full-broadcast flood:
//
//   1. *Delta sends.* Each fanout slot remembers the strongest proposal
//      ever pushed along that edge direction. A vertex re-sends only
//      when its current best strictly beats what the recipient already
//      knows, so a quiescent neighbourhood exchanges zero messages.
//   2. *Source-side pruning.* Proposals are built exclusively from
//      edges at or above the merge threshold (sub-threshold edges never
//      enter lb/fanout state), and the known-value check doubles as a
//      combiner-aware send filter against the receiver's best.
//   3. *Top-k fanout.* Slots cover only the `fanout_cap` strongest
//      mergeable neighbours.
//
// All three under-propagate: a vertex's diffused value B(v) can fall
// short of the true best edge in its k-hop neighbourhood. The design
// invariant that keeps the matching exact is the sandwich
//
//     lb(v)  <=  B(v)  <=  max { lb(u) : u within k mergeable hops }
//
// (lower bound because every round reseeds B(v) = lb(v); upper bound
// because messages only ever carry some vertex's lb along mergeable
// edges within one round's k supersteps). For a true locally-maximal
// edge (a,b) both sides of the sandwich collapse to (a,b), so the
// mutual-agreement scan can only *over*-report: candidates are a
// superset of the true matching. The serial verification pass then
// applies the exact ball-k condition to every candidate, which removes
// exactly the spurious ones — hence byte-identical dendrograms at any
// fanout cap, including 0-message quiescent rounds.

// A capped outgoing-adjacency slot: the neighbour, the edge similarity
// (kept so rebuilds can re-rank), and the strongest proposal this vertex
// has pushed to — or received from — that neighbour. `known` is the
// per-edge-direction suppression state: sends along this direction are
// skipped while `known` is alive and at least as good as the sender's
// current best.
struct FanoutSlot {
  uint32_t nbr = kNoNode;
  double similarity = 0.0;
  BestEdge known;
};

struct DeltaMessage {
  BestEdge edge;
  uint32_t src = kNoNode;
};

// Engine vertex value: the round-local diffused best edge, stamped with
// the round that wrote it. The stamp is what makes sparse seeding sound:
// a vertex woken mid-round by a message finds a stale stamp and resets
// itself to its current local best before folding anything, so values
// from earlier rounds — possibly dead, possibly no longer within k
// mergeable hops — can never propagate or veto a merge.
struct DeltaValue {
  BestEdge edge;
  size_t stamp = 0;
};

// Cached refutation of a candidate pair: `blocker` is an edge that beats
// `pair` and was reachable through the live `witness` chain (anchor
// endpoint -> ... -> vertex whose lb the blocker was). Mergeable edges
// between live clusters are immutable and a linkage update never raises
// a similarity above the max of its inputs, so while every witness
// vertex and both blocker endpoints stay alive the refutation remains
// valid — re-rejecting a persistent spurious candidate is O(|witness|)
// instead of a fresh neighbourhood scan.
struct RejectionCache {
  BestEdge pair;
  BestEdge blocker;
  std::vector<uint32_t> witness;
};

// All cross-round diffusion state for the delta path, indexed by cluster
// id (dendrogram node id). Allocated once per run.
class DeltaFrontier {
 public:
  // Trust states of the cached closed-neighbourhood top-2 (see M1()).
  enum : uint8_t { kM1Full = 0, kM1Stale = 1, kM1Top = 2 };

  DeltaFrontier(size_t num_ids, ClusterGraph& clusters, double threshold,
                size_t fanout_cap)
      : clusters_(clusters),
        threshold_(threshold),
        fanout_cap_(fanout_cap),
        lb_(num_ids),
        fanout_(num_ids),
        m1_(num_ids),
        m1_src_(num_ids, kNoNode),
        m2_(num_ids),
        m2_src_(num_ids, kNoNode),
        m1_stale_(num_ids, kM1Stale),
        blocked_(num_ids),
        parked_(num_ids, 0),
        watch_(num_ids),
        floor_(num_ids, -1.0),
        holders_(num_ids),
        bfs_stamp_(num_ids, 0) {}

  bool Alive(const BestEdge& e) const {
    return e.valid() && clusters_.IsActive(e.u) && clusters_.IsActive(e.v);
  }

  // True when w is a mergeable neighbour of x (a member of the M1
  // closed neighbourhood besides x itself). O(log deg) on the id-sorted
  // adjacency row.
  bool IsMergeableMember(uint32_t x, uint32_t w) const {
    const ClusterEdge* e = clusters_.FindEdge(x, w);
    return e != nullptr && e->similarity >= threshold_;
  }

  const BestEdge& lb(uint32_t v) const { return lb_[v]; }
  std::vector<FanoutSlot>& fanout(uint32_t v) { return fanout_[v]; }

  // Rebuilds lb(v) and the fanout slots from v's current adjacency row.
  // With `preserve_known` the per-direction suppression state of slots
  // whose neighbour survives is carried over (a rebuild must not make a
  // vertex forget what it already told a still-living neighbour — that
  // would re-flood, not break correctness). Thread-safe across distinct
  // vertices: only v's own slots are touched.
  void RebuildRow(uint32_t v, bool preserve_known) {
    auto& slots = fanout_[v];
    const bool restore = preserve_known && !slots.empty();
    if (restore) {
      // Post-merge maintenance is serial, so one scratch buffer suffices;
      // swapping avoids allocating anything on this per-round hot path.
      scratch_.swap(slots);
    }
    slots.clear();
    floor_[v] = -1.0;
    BestEdge lb;
    // Rows keep sub-threshold edges (the linkage rule needs them), but
    // only the mergeable ones matter here: the maintained per-cluster
    // count lets the scan stop once it has seen them all, which skips
    // the long weak tails that accumulate as linkage decays.
    size_t remaining = clusters_.MergeableEdgeCount(v);
    for (const ClusterEdge& e : clusters_.Neighbors(v)) {
      if (remaining == 0) break;
      if (e.similarity < threshold_) continue;
      --remaining;
      FoldMax(lb, BestEdge{std::min(v, e.id), std::max(v, e.id),
                           e.similarity});
      InsertSlot(v, e.id, e.similarity);
    }
    lb_[v] = lb;
    if (restore) {
      for (FanoutSlot& s : slots) {
        for (const FanoutSlot& old : scratch_) {
          if (old.nbr == s.nbr) {
            s.known = old.known;
            break;
          }
        }
      }
    }
  }

  // Incremental registration of a newly created mergeable edge (v, c).
  // Exact only when v's cached row is otherwise current — i.e. the
  // caller already repaired the batch's deaths via PatchRowForDeaths
  // (or RebuildRow). New ids are allocated above every existing id, so
  // the stable insertion keeps the (similarity desc, id asc) slot order
  // a full rebuild would produce.
  void AddMergeableEdge(uint32_t v, uint32_t c, double sim) {
    FoldMax(lb_[v], BestEdge{std::min(v, c), std::max(v, c), sim});
    if (InsertSlot(v, c, sim)) holders_[c].push_back(v);
  }

  // Surgical repair of v's cached row after a merge batch retired some
  // of its neighbours, in O(cap) with no adjacency scan. Every mergeable
  // edge of v outside the slots has similarity <= floor_[v] (the
  // strongest edge ever evicted from or refused a slot), and merges
  // never touch similarities between surviving clusters; so when the
  // best surviving slot strictly beats the floor it is the exact row
  // maximum, and the shrunken slot list remains a valid — merely
  // smaller — top-k (exactness never depended on the cap). A dead lb
  // always names a dead slot (the best edge is always slot material),
  // so the no-deaths case needs no lb repair. When the floor is in
  // reach — the survivors no longer provably dominate the dominated
  // remainder — returns false and the caller falls back to RebuildRow.
  bool PatchRowForDeaths(uint32_t v) {
    auto& slots = fanout_[v];
    const size_t before = slots.size();
    size_t w = 0;
    for (size_t i = 0; i < before; ++i) {
      if (clusters_.IsActive(slots[i].nbr)) {
        if (w != i) slots[w] = slots[i];
        ++w;
      }
    }
    if (w == before) return true;  // nothing died; lb is a slot, so alive
    slots.resize(w);
    if (w == 0) {
      if (floor_[v] >= 0.0) return false;  // dominated edges may survive
      lb_[v] = BestEdge{};
      return true;
    }
    // Slots are (similarity desc, pair asc): the front is the Beats-max
    // of the survivors. Strict: an outside edge tying the floor could
    // still win on pair order.
    if (slots[0].similarity <= floor_[v]) return false;
    lb_[v] = BestEdge{std::min(v, slots[0].nbr), std::max(v, slots[0].nbr),
                      slots[0].similarity};
    return true;
  }

  // Folds a finalized lb change of v into the cached closed-
  // neighbourhood top-2 entries that could have derived from it, in
  // place. Each case keeps the invariants stated at M1(): the top entry
  // stays the exact live maximum, and the runner-up stays exact
  // whenever the state says it is; any transition whose ordering cannot
  // be proven from the cached values degrades conservatively (to kM1Top
  // when only the runner-up is lost, to kM1Stale when the top itself
  // is). Exact as long as every lb mutation of a round flows through
  // here in record order (later folds for the same vertex carry its
  // newer lb).
  void OnLbChange(uint32_t v) {
    const BestEdge after = lb_[v];
    const auto fold = [&](uint32_t x) {
      uint8_t& st = m1_stale_[x];
      if (st == kM1Stale) return;  // already due a full rescan
      if (m1_src_[x] == v) {
        if (m1_[x] == after) return;
        if (!Beats(m1_[x], after)) {
          // The max rose — always onto a *different* edge. The old
          // edge's other endpoint w is pinned while that edge lives:
          // lb(w) >= the edge it is incident to, and lb(w) <= the old
          // max when w is a member — so if w is a live member, lb(w)
          // *equals* the old max and (old max, w) is the exact new
          // runner-up. Otherwise no member holds the old edge and the
          // existing runner-up is still exact. Either way the entry
          // stays full.
          const BestEdge old = m1_[x];
          m1_[x] = after;
          if (old.valid()) {
            const uint32_t w = (old.u == v) ? old.v : old.u;
            if (w == x || (clusters_.IsActive(w) && IsMergeableMember(x, w))) {
              m2_[x] = old;
              m2_src_[x] = w;
              st = kM1Full;
            }
          }
          return;
        }
        // The argmax dropped, which (similarities being immutable) means
        // its old lb edge died: no live member still holds that edge.
        // The runner-up — when exact and alive — bounds every surviving
        // member, so it either stays behind the new value or takes over
        // the top; v's new value is not a proven runner-up in the latter
        // case, so it is dropped rather than kept as an unordered hint.
        if (st == kM1Full && (!m2_[x].valid() || Alive(m2_[x]))) {
          if (Beats(m2_[x], after)) {
            m1_[x] = m2_[x];
            m1_src_[x] = m2_src_[x];
            m2_[x] = BestEdge{};
            m2_src_[x] = kNoNode;
            st = kM1Top;
          } else if (m2_[x] == after) {
            // Same edge seen through its other endpoint: it cannot be
            // its own runner-up.
            m1_[x] = after;
            m1_src_[x] = v;
            m2_[x] = BestEdge{};
            m2_src_[x] = kNoNode;
            st = kM1Top;
          } else {
            m1_[x] = after;  // still >= runner-up >= every other member
          }
        } else {
          st = kM1Stale;  // no trustworthy runner-up to compare against
        }
        return;
      }
      if (st == kM1Full && m2_src_[x] == v) {
        if (m2_[x] == after) return;
        if (Beats(after, m1_[x])) {  // runner-up overtook the top
          m2_[x] = m1_[x];
          m2_src_[x] = m1_src_[x];
          m1_[x] = after;
          m1_src_[x] = v;
          if (!m2_[x].valid() || !Alive(m2_[x])) {
            m2_[x] = BestEdge{};  // a dead edge cannot vouch for the rest
            m2_src_[x] = kNoNode;
            st = kM1Top;
          }
        } else if (!Beats(m2_[x], after)) {
          m2_[x] = after;  // rose within the gap: still >= the others
        } else {
          m2_[x] = BestEdge{};  // dropped below its old self: rank unknown
          m2_src_[x] = kNoNode;
          st = kM1Top;
        }
        return;
      }
      // v holds neither entry.
      if (Beats(after, m1_[x])) {
        // The displaced top bounds every member, so while it is alive it
        // is the exact runner-up (a strict beat is a different edge) —
        // this also repairs kM1Top entries back to full. A dead
        // displaced top says nothing about the survivors: keep whatever
        // runner-up knowledge the entry already had.
        if (!m1_[x].valid() || Alive(m1_[x])) {
          m2_[x] = m1_[x];
          m2_src_[x] = m1_[x].valid() ? m1_src_[x] : kNoNode;
          st = kM1Full;
        }
        m1_[x] = after;
        m1_src_[x] = v;
      } else if (st == kM1Full && !(after == m1_[x]) &&
                 Beats(after, m2_[x])) {
        m2_[x] = after;
        m2_src_[x] = v;
      }
    };
    fold(v);
    for (const uint32_t y : clusters_.StrongNeighbors(v)) fold(y);
  }

  // Exact check of the paper's local-maximality condition for candidate
  // pair (a, b) with similarity edge `edge`: is there any mergeable edge
  // incident to the k-hop mergeable neighbourhood of {a, b} that beats
  // it? Serial by design — candidates are few and the M1 cache keeps
  // each check to O(deg) lookups — and deterministic: BFS order follows
  // the id-sorted adjacency rows. On a hit, fills `cache` so later
  // rounds can re-reject the same pair in O(|witness|).
  bool FindBlocker(uint32_t a, uint32_t b, const BestEdge& edge, size_t k,
                   RejectionCache& cache) {
    // max lb over ball_k({a,b}) == max M1 over ball_{k-1}({a,b}): BFS to
    // depth k-1 and consult the cached closed-neighbourhood maximum at
    // each visited vertex.
    ++bfs_round_;
    bfs_nodes_.clear();
    bfs_nodes_.push_back({a, -1, 0});
    bfs_stamp_[a] = bfs_round_;
    if (b != a && bfs_stamp_[b] != bfs_round_) {
      bfs_nodes_.push_back({b, -1, 0});
      bfs_stamp_[b] = bfs_round_;
    }
    for (size_t head = 0; head < bfs_nodes_.size(); ++head) {
      const BfsNode node = bfs_nodes_[head];
      const BestEdge& m1 = M1(node.v);
      if (Beats(m1, edge)) {
        cache.pair = edge;
        cache.blocker = m1;
        cache.witness.clear();
        cache.witness.push_back(m1_src_[node.v]);
        for (int32_t at = static_cast<int32_t>(head); at >= 0;
             at = bfs_nodes_[at].parent) {
          cache.witness.push_back(bfs_nodes_[at].v);
        }
        return true;
      }
      if (node.depth + 1 >= k) continue;
      for (const uint32_t y : clusters_.StrongNeighbors(node.v)) {
        if (bfs_stamp_[y] == bfs_round_) continue;
        bfs_stamp_[y] = bfs_round_;
        bfs_nodes_.push_back({y, static_cast<int32_t>(head), node.depth + 1});
      }
    }
    return false;
  }

  // True while a cached refutation of `pair` is still conclusive.
  bool StillBlocked(const RejectionCache& cache, const BestEdge& pair) const {
    if (!(cache.pair == pair) || !Alive(cache.blocker)) return false;
    for (uint32_t w : cache.witness) {
      if (!clusters_.IsActive(w)) return false;
    }
    return true;
  }

  RejectionCache& blocked(uint32_t v) { return blocked_[v]; }

  // --- parking -----------------------------------------------------------
  // A pair whose rejection cache is alive stays blocked until one of the
  // watched vertices (witness chain or blocker endpoint) dies — edges
  // between live clusters are immutable, so nothing else can re-enable
  // it. Parking takes such pairs out of the per-round work list
  // entirely; the watch lists wake them on exactly the deaths that can
  // invalidate the refutation. A parked pair can never merge away in
  // the meantime: its endpoints' only mutual pair is the parked one.

  // True while v's parked state refers to its current pair, i.e. the
  // pair must stay out of the evaluation list.
  bool ParkedFor(uint32_t v) const {
    return parked_[v] && blocked_[v].pair == lb_[v];
  }

  // Parks the pair keyed by its smaller endpoint `a`. Watchers are
  // registered only for a freshly computed cache; a still-valid old
  // cache re-parks without re-registering (its entries are still in the
  // watch lists — they are cleared only when a watched vertex dies).
  void Park(uint32_t a, bool register_watchers) {
    parked_[a] = 1;
    if (!register_watchers) return;
    const RejectionCache& cache = blocked_[a];
    for (uint32_t w : cache.witness) watch_[w].push_back(a);
    watch_[cache.blocker.u].push_back(a);
    watch_[cache.blocker.v].push_back(a);
  }

  // Called for every cluster retired by a merge batch: wakes the parked
  // pairs watching it (their refutation may no longer hold) and appends
  // their keys to `out` for re-evaluation. Stale entries — pairs that
  // were already unparked or re-parked under a different cache — cost
  // one spurious re-check at most.
  void WakeWatchers(uint32_t dead, std::vector<uint32_t>& out) {
    for (uint32_t a : watch_[dead]) {
      if (parked_[a]) {
        parked_[a] = 0;
        out.push_back(a);
      }
    }
    watch_[dead].clear();
    watch_[dead].shrink_to_fit();
  }

 private:
  struct BfsNode {
    uint32_t v;
    int32_t parent;  // index into bfs_nodes_, -1 for the two anchors
    size_t depth;
  };

  // Closed-neighbourhood maximum: max lb over v and its mergeable
  // neighbours, with the exact runner-up alongside. States:
  //   kM1Full  — m1_ is the exact live maximum and m2_ the exact
  //              runner-up over the remaining members (invalid when
  //              there is none);
  //   kM1Top   — m1_ is still the exact maximum but the runner-up has
  //              been consumed or invalidated;
  //   kM1Stale — nothing is trusted; the next consult rescans.
  // Every cached value is some member's lb and therefore incident to
  // that member, so a member's death self-invalidates the entry it
  // sourced. That was by far the dominant rescan trigger (merges kill
  // two vertices whose lbs seed most of their neighbourhoods' maxima);
  // keeping the runner-up turns the common case into an O(1) promotion:
  // an exact runner-up that is still alive bounds every other live
  // member and is current (all lb changes fold eagerly), so it *is* the
  // new maximum.
  const BestEdge& M1(uint32_t v) {
    for (;;) {
      if (m1_stale_[v] == kM1Stale) {
        RescanM1(v);
        return m1_[v];
      }
      if (!m1_[v].valid() || Alive(m1_[v])) return m1_[v];
      if (m1_stale_[v] == kM1Full && m2_[v].valid() && Alive(m2_[v])) {
        m1_[v] = m2_[v];
        m1_src_[v] = m2_src_[v];
        m2_[v] = BestEdge{};
        m2_src_[v] = kNoNode;
        m1_stale_[v] = kM1Top;
        return m1_[v];
      }
      m1_stale_[v] = kM1Stale;
    }
  }

  // Exact top-2 recomputation over v's live closed neighbourhood, with
  // the runner-up restricted to members whose lb is a *different edge*
  // than the maximum's. Two members often share one edge — its two
  // endpoints — and merges retire exactly such pairs, so a value-ranked
  // runner-up would usually die together with the maximum; the
  // edge-disjoint runner-up is the one that survives the death of the
  // top edge and makes the O(1) promotion in M1() fire. Ties resolve to
  // the first holder in ascending row order (v itself first), matching
  // what the incremental folds produce.
  void RescanM1(uint32_t v) {
    BestEdge e1 = lb_[v];
    BestEdge e2;
    uint32_t s1 = v;
    uint32_t s2 = kNoNode;
    for (const uint32_t y : clusters_.StrongNeighbors(v)) {
      const BestEdge& cand = lb_[y];
      if (Beats(cand, e1)) {
        // A strict beat is a different edge, so the displaced maximum
        // is runner-up eligible — and beats the old runner-up.
        e2 = e1;
        s2 = s1;
        e1 = cand;
        s1 = y;
      } else if (!(cand == e1) && Beats(cand, e2)) {
        e2 = cand;
        s2 = y;
      }
    }
    m1_[v] = e1;
    m1_src_[v] = s1;
    m2_[v] = e2;
    m2_src_[v] = e2.valid() ? s2 : kNoNode;
    m1_stale_[v] = kM1Full;
  }

  // Keeps v's slots sorted by (similarity desc, id asc) and capped. Rows
  // are scanned in ascending id order, so the stable "no swap on equal
  // similarity" rule realises the ties-to-smaller-id order. An edge that
  // is refused a slot or evicted by the cap raises the row's floor: it
  // still exists in the graph, and PatchRowForDeaths may only trust the
  // surviving slots while they strictly beat everything pushed out.
  bool InsertSlot(uint32_t v, uint32_t id, double sim) {
    auto& slots = fanout_[v];
    size_t pos = slots.size();
    while (pos > 0 && slots[pos - 1].similarity < sim) --pos;
    if (fanout_cap_ > 0 && slots.size() == fanout_cap_) {
      if (pos == slots.size()) {
        floor_[v] = std::max(floor_[v], sim);
        return false;
      }
      floor_[v] = std::max(floor_[v], slots.back().similarity);
      slots.pop_back();
    }
    slots.insert(slots.begin() + pos, FanoutSlot{id, sim, {}});
    return true;
  }

  // Reverse slot index: holders_[c] lists every vertex that has (or
  // once had) c seated in its fanout slots — a small superset of the
  // rows a death of c can invalidate, so post-merge repair visits slot
  // holders instead of whole adjacency rows. Entries are appended on
  // seat and never removed on eviction (PatchRowForDeaths on a row that
  // no longer names the dead id is a cheap no-op); a retired id's list
  // is drained once and freed.
 public:
  void RecordHolders(uint32_t v) {
    for (const FanoutSlot& s : fanout_[v]) holders_[s.nbr].push_back(v);
  }
  void DrainHolders(uint32_t dead, std::vector<uint32_t>& out) {
    auto& h = holders_[dead];
    out.insert(out.end(), h.begin(), h.end());
    std::vector<uint32_t>().swap(h);
  }

 private:
  ClusterGraph& clusters_;
  const double threshold_;
  const size_t fanout_cap_;
  std::vector<BestEdge> lb_;
  std::vector<std::vector<FanoutSlot>> fanout_;
  std::vector<BestEdge> m1_;
  std::vector<uint32_t> m1_src_;
  std::vector<BestEdge> m2_;
  std::vector<uint32_t> m2_src_;
  std::vector<uint8_t> m1_stale_;
  std::vector<RejectionCache> blocked_;
  std::vector<uint8_t> parked_;
  std::vector<std::vector<uint32_t>> watch_;
  // Max similarity ever pushed out of (or refused) v's slots: an upper
  // bound on every mergeable edge of v not currently holding a slot.
  std::vector<double> floor_;
  // See RecordHolders: who seats (or seated) each id in their slots.
  std::vector<std::vector<uint32_t>> holders_;
  std::vector<uint32_t> bfs_stamp_;
  uint32_t bfs_round_ = 0;
  std::vector<BfsNode> bfs_nodes_;
  std::vector<FanoutSlot> scratch_;  // RebuildRow reuse (serial path only)
};

util::Status RunRoundsDelta(const ParallelHacOptions& options,
                            ClusterGraph& clusters, Dendrogram& dendrogram,
                            ParallelHacStats& local_stats) {
  const double threshold = options.hac.threshold;
  const size_t k = options.diffusion_iterations;
  util::ThreadPool pool(std::max<size_t>(1, options.num_threads));

  const size_t num_leaves = dendrogram.num_leaves();
  const size_t num_ids = num_leaves > 0 ? 2 * num_leaves - 1 : 0;

  // The engine is hoisted out of the round loop and addressed directly
  // by cluster id, so rounds pay for their frontier, not for O(V)
  // construction. Vertex values are each cluster's diffused best edge,
  // stamped per round (see DeltaValue).
  using Engine = engine::BspEngine<DeltaValue, DeltaMessage>;
  Engine::Options engine_options;
  engine_options.num_partitions = options.num_partitions;
  engine_options.num_threads = options.num_threads;
  engine_options.pool = &pool;
  engine_options.max_supersteps = k + 1;
  Engine engine(num_ids, engine_options);
  engine.SetCombiner([](DeltaMessage& acc, const DeltaMessage& incoming) {
    if (Beats(incoming.edge, acc.edge)) {
      acc = incoming;
    } else if (incoming.edge == acc.edge && incoming.src < acc.src) {
      acc.src = incoming.src;  // deterministic tie, order-independent
    }
  });

  DeltaFrontier frontier(num_ids, clusters, threshold, options.fanout_cap);
  bool initialized = false;

  std::vector<std::pair<uint32_t, uint32_t>> to_merge;
  std::vector<double> merge_similarity;
  std::vector<uint32_t> dirty;
  struct LbChange {
    uint32_t v;
    BestEdge before;
    BestEdge after;
  };
  std::vector<LbChange> lb_changes;
  // Ascending smaller endpoints of the current mutually-best pairs —
  // the only pairs diffusion can ever nominate: an engine agreement
  // B(a) == (a,b) == B(b) forces lb(a) == (a,b) == lb(b), because B is
  // the fold of the vertex's own lb with received values and no edge
  // incident to a vertex can beat that vertex's lb. Maintaining the set
  // incrementally (mutuality only flips where an lb changed or an
  // endpoint died) replaces the per-round O(frontier) agreement scan
  // with an O(changes) update — the step that makes round cost track
  // merge activity instead of frontier size.
  std::vector<uint32_t> candidates;
  std::vector<uint32_t> affected;
  std::vector<uint32_t> seed;
  std::vector<uint32_t> rebuild_cands;
  std::vector<uint32_t> scratch_ids;

  std::vector<uint32_t> parked_events;

  auto mutual = [&](uint32_t v) {
    if (!clusters.IsActive(v)) return false;
    const BestEdge& e = frontier.lb(v);
    return e.valid() && e.u == v && frontier.lb(e.v) == e;
  };
  // Belongs in the per-round evaluation list: mutual and not parked
  // behind a still-valid refutation.
  auto evaluable = [&](uint32_t v) {
    return mutual(v) && !frontier.ParkedFor(v);
  };
  const auto push_endpoints = [](std::vector<uint32_t>& out,
                                 const BestEdge& e) {
    if (e.valid()) {
      out.push_back(e.u);
      out.push_back(e.v);
    }
  };

  for (size_t round = local_stats.rounds; round < options.max_rounds;
       ++round) {
    SHOAL_RETURN_IF_ERROR(util::FaultInjector::Global().OnHacRound(round));
    obs::ScopedSpan round_span("hac.round");
    round_span.AddArg("round", static_cast<double>(round));
    if (clusters.num_active() < 2) break;
    round_span.AddArg("active_clusters",
                      static_cast<double>(clusters.num_active()));
    const size_t stamp = round + 1;  // 0 marks never-seeded engine values

    if (!initialized) {
      // Fresh run or resume: build every frontier row once, in parallel
      // (each vertex writes only its own slots), derive the mutual-pair
      // set with one full scan, and flood-seed the first diffusion.
      // Resume takes the same path — diffusion state is derived, not
      // checkpointed, and the exact verification makes the dendrogram
      // independent of it.
      SHOAL_TRACE_SPAN("hac.delta_init");
      std::vector<uint32_t> active = clusters.MergeableClusters();
      if (active.size() < 2) break;
      pool.ParallelForChunked(
          active.size(), [&](size_t begin, size_t end, size_t /*c*/) {
            for (size_t i = begin; i < end; ++i) {
              frontier.RebuildRow(active[i], /*preserve_known=*/false);
            }
          });
      // Holder registration is serial: a row's slots name other vertices'
      // lists, which the parallel rebuild above must not touch.
      for (uint32_t v : active) frontier.RecordHolders(v);
      candidates.clear();
      for (uint32_t v : active) {
        if (evaluable(v)) candidates.push_back(v);
      }
      dirty.clear();
      parked_events.clear();
      seed = std::move(active);
      initialized = true;
    } else {
      // Fold last round's lb flips and merge deaths into the mutual
      // set: a single merged walk over the (sorted) event vertices and
      // the previous set, re-testing mutuality only at event vertices.
      std::sort(affected.begin(), affected.end());
      affected.erase(std::unique(affected.begin(), affected.end()),
                     affected.end());
      scratch_ids.clear();
      size_t ci = 0;
      for (uint32_t v : affected) {
        while (ci < candidates.size() && candidates[ci] < v) {
          scratch_ids.push_back(candidates[ci++]);
        }
        if (ci < candidates.size() && candidates[ci] == v) ++ci;
        if (evaluable(v)) scratch_ids.push_back(v);
      }
      while (ci < candidates.size()) {
        scratch_ids.push_back(candidates[ci++]);
      }
      candidates.swap(scratch_ids);

      // Pure delta protocol: a vertex speaks only when its best edge
      // changed since it last spoke — the merge batch either rebuilt it
      // to a different maximum or handed it a stronger fresh edge. A
      // vertex in steady state has nothing to announce: its lb is
      // unchanged and already known to its whole fanout.
      seed.clear();
      for (const LbChange& ch : lb_changes) seed.push_back(ch.v);
      std::sort(seed.begin(), seed.end());
      seed.erase(std::unique(seed.begin(), seed.end()), seed.end());
    }

    // Every vertex the round touches re-derives its diffusion value from
    // its current lb via the stamp check in the compute function (rather
    // than letting diffused values persist across rounds) — merges can
    // drop linkage similarities below the threshold and disconnect old
    // propagation paths, so a held-over value could exceed the true
    // k-hop maximum and misreport the neighbourhood.
    round_span.AddArg("seeded", static_cast<double>(seed.size()));
    round_span.AddArg("candidate_pairs",
                      static_cast<double>(candidates.size()));
    engine.SeedFrontier(seed);

    obs::ScopedSpan diffusion_span("hac.diffusion");
    auto status = engine.Run([&](Engine::Context& ctx, uint32_t v,
                                 DeltaValue& value,
                                 const std::vector<DeltaMessage>& messages) {
      if (value.stamp != stamp) {
        value = DeltaValue{frontier.lb(v), stamp};
      }
      BestEdge& best = value.edge;
      auto& slots = frontier.fanout(v);
      for (const DeltaMessage& m : messages) {
        const bool improves = Beats(m.edge, best);
        if (improves) best = m.edge;
        if (improves || m.edge == best) {
          // The sender holds this value; remember that so we never echo
          // it (or anything weaker) back along that direction.
          for (FanoutSlot& s : slots) {
            if (s.nbr != m.src) continue;
            if (Beats(m.edge, s.known)) s.known = m.edge;
            break;
          }
        }
      }
      if (best.valid() && ctx.superstep() < k) {
        for (FanoutSlot& s : slots) {
          // Delta + pruning: send only what the receiver cannot already
          // know to be dominated. A known value whose endpoints died is
          // no longer evidence the receiver holds anything — resend.
          if (s.known.valid() && frontier.Alive(s.known) &&
              !Beats(best, s.known)) {
            continue;
          }
          ctx.SendMessage(s.nbr, DeltaMessage{best, v});
          s.known = best;
        }
      }
      ctx.VoteToHalt();  // reactivated by incoming messages
    });
    if (!status.ok()) return status;
    const uint64_t round_messages = engine.total_messages();
    local_stats.total_messages += round_messages;
    local_stats.total_supersteps += engine.superstep();
    diffusion_span.AddArg("supersteps",
                          static_cast<double>(engine.superstep()));
    diffusion_span.AddArg("messages", static_cast<double>(round_messages));
    diffusion_span.End();

    // --- candidate evaluation + exact verification ------------------------
    // Mutual agreement only nominates: the pair merges iff no mergeable
    // edge within k hops of either endpoint beats it. The ball-k check
    // (or a still-live cached refutation) decides that exactly — it is
    // the serial equivalent of the full-broadcast diffusion veto, which
    // delivers precisely the ball-k maximum to each endpoint — and the
    // ascending walk assigns merge ids in the same order a full frontier
    // scan would, so the matching (and the dendrogram) is byte-identical
    // to the broadcast path. Every rejected pair parks behind its
    // refutation: nothing can re-enable it until a watched vertex dies,
    // so it costs nothing per round while it waits.
    to_merge.clear();
    merge_similarity.clear();
    for (uint32_t a : candidates) {
      const BestEdge pair = frontier.lb(a);
      ++local_stats.total_candidates;
      RejectionCache& cache = frontier.blocked(a);
      if (frontier.StillBlocked(cache, pair)) {
        ++local_stats.total_rejected;
        // The cached refutation is still live, so the pair stays blocked
        // until one of its witnesses dies; the watchers registered when
        // the cache was filled are still in place.
        frontier.Park(a, /*register_watchers=*/false);
        parked_events.push_back(a);
        continue;
      }
      if (frontier.FindBlocker(a, pair.v, pair, k, cache)) {
        ++local_stats.total_rejected;
        // Blocked pairs cannot change state while blocker and witness
        // chain stay alive (edges between live clusters are immutable,
        // linkage never raises a similarity): park the pair and skip it
        // until a watched vertex is retired by a merge.
        frontier.Park(a, /*register_watchers=*/true);
        parked_events.push_back(a);
        continue;
      }
      to_merge.emplace_back(pair.u, pair.v);
      merge_similarity.push_back(pair.similarity);
    }
    if (to_merge.empty()) break;

    // Every vertex whose cached lb/fanout might reference a dying
    // cluster seated that cluster in a slot at some point, so the
    // reverse slot index names them all directly — no adjacency-row
    // scans of the retiring endpoints.
    rebuild_cands.clear();
    for (const auto& [a, b] : to_merge) {
      frontier.DrainHolders(a, rebuild_cands);
      frontier.DrainHolders(b, rebuild_cands);
    }
    std::sort(rebuild_cands.begin(), rebuild_cands.end());
    rebuild_cands.erase(
        std::unique(rebuild_cands.begin(), rebuild_cands.end()),
        rebuild_cands.end());

    const size_t active_before = clusters.num_active();
    const uint32_t first_new_id = static_cast<uint32_t>(dendrogram.num_nodes());
    SHOAL_RETURN_IF_ERROR(CommitRound(options, clusters, dendrogram,
                                      local_stats, to_merge, merge_similarity,
                                      pool, round_messages, active_before,
                                      round_span));

    // --- incremental maintenance: touch only what the batch changed -------
    // Serial: the touched set is O(merges * mergeable degree), tiny next
    // to a frontier pass.
    {
      SHOAL_TRACE_SPAN("hac.delta_update");
      const uint32_t end_id = static_cast<uint32_t>(dendrogram.num_nodes());
      lb_changes.clear();
      // Repair every survivor adjacent to a retired endpoint in O(cap);
      // only the rare undecidable row (a capped fanout wiped out whole)
      // falls back to an adjacency rescan.
      dirty.clear();
      for (uint32_t v : rebuild_cands) {
        if (!clusters.IsActive(v)) continue;
        const BestEdge before = frontier.lb(v);
        if (frontier.PatchRowForDeaths(v)) {
          if (!(frontier.lb(v) == before)) {
            lb_changes.push_back({v, before, frontier.lb(v)});
          }
        } else {
          dirty.push_back(v);
        }
      }
      std::sort(dirty.begin(), dirty.end());
      dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
      for (uint32_t v : dirty) {
        const BestEdge before = frontier.lb(v);
        frontier.RebuildRow(v, /*preserve_known=*/true);
        frontier.RecordHolders(v);
        if (!(frontier.lb(v) == before)) {
          lb_changes.push_back({v, before, frontier.lb(v)});
        }
      }
      // One pass over each new cluster's mergeable edges builds its own
      // row (the same fold + stable insert a rebuild would run) and
      // hands the reverse edge to each surviving old neighbour, whose
      // just-repaired row takes the O(cap) incremental insert — unless
      // it fell back to a full rescan above, which already saw the edge.
      // An edge between two new clusters is registered once from each
      // side as their rows are built.
      for (uint32_t c = first_new_id; c < end_id; ++c) {
        size_t remaining = clusters.MergeableEdgeCount(c);
        for (const ClusterEdge& e : clusters.Neighbors(c)) {
          if (remaining == 0) break;
          if (e.similarity < threshold) continue;
          --remaining;
          frontier.AddMergeableEdge(c, e.id, e.similarity);
          if (e.id >= first_new_id) continue;
          if (std::binary_search(dirty.begin(), dirty.end(), e.id)) continue;
          const BestEdge before = frontier.lb(e.id);
          frontier.AddMergeableEdge(e.id, c, e.similarity);
          if (!(frontier.lb(e.id) == before)) {
            lb_changes.push_back({e.id, before, frontier.lb(e.id)});
          }
        }
        if (frontier.lb(c).valid()) {
          lb_changes.push_back({c, BestEdge{}, frontier.lb(c)});
        }
      }
      // A changed lb invalidates the cached closed-neighbourhood maxima
      // that may have folded it (deaths need no marking: an M1 sourced
      // from a dead vertex is incident to it and self-invalidates), and
      // names every vertex whose pair mutuality can have flipped — the
      // event set the next round folds into the candidate list.
      affected.clear();
      for (const auto& [a, b] : to_merge) {
        affected.push_back(a);
        affected.push_back(b);
        // A retired watched vertex voids its parked refutations; the
        // woken pairs rejoin the affected walk and are re-verified.
        frontier.WakeWatchers(a, affected);
        frontier.WakeWatchers(b, affected);
      }
      // Freshly parked pairs must pass through the next round's walk so
      // the merged candidate scan drops them (evaluable() is false while
      // parked). Losing this on the zero-merge break is fine — the run
      // has ended.
      affected.insert(affected.end(), parked_events.begin(),
                      parked_events.end());
      parked_events.clear();
      for (const LbChange& ch : lb_changes) {
        frontier.OnLbChange(ch.v);
        affected.push_back(ch.v);
        push_endpoints(affected, ch.before);
        push_endpoints(affected, ch.after);
      }
    }
  }

  return FinishRun(options, clusters, dendrogram, local_stats);
}

util::Status RunRounds(const ParallelHacOptions& options,
                       ClusterGraph& clusters, Dendrogram& dendrogram,
                       ParallelHacStats& local_stats) {
  if (options.diffusion_mode == DiffusionMode::kFullBroadcast) {
    return RunRoundsFullBroadcast(options, clusters, dendrogram, local_stats);
  }
  return RunRoundsDelta(options, clusters, dendrogram, local_stats);
}

}  // namespace

util::Result<Dendrogram> ParallelHac(const graph::WeightedGraph& graph,
                                     const ParallelHacOptions& options,
                                     ParallelHacStats* stats) {
  SHOAL_RETURN_IF_ERROR(ValidateOptions(options));
  Dendrogram dendrogram(graph.num_vertices());
  ClusterGraph clusters(graph, /*track_threshold=*/options.hac.threshold);
  ParallelHacStats local_stats;
  SHOAL_RETURN_IF_ERROR(
      RunRounds(options, clusters, dendrogram, local_stats));
  if (stats != nullptr) *stats = local_stats;
  return dendrogram;
}

util::Result<Dendrogram> ResumeParallelHac(const ParallelHacOptions& options,
                                           HacResumeState state,
                                           ParallelHacStats* stats) {
  SHOAL_RETURN_IF_ERROR(ValidateOptions(options));
  if (state.clusters.track_threshold() != options.hac.threshold) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "resume state was captured with threshold %g but the run is "
        "configured with %g; resuming would not reproduce the "
        "uninterrupted dendrogram",
        state.clusters.track_threshold(), options.hac.threshold));
  }
  if (state.clusters.num_nodes() != state.dendrogram.num_nodes()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "resume state is inconsistent: cluster graph has %zu nodes, "
        "dendrogram has %zu",
        state.clusters.num_nodes(), state.dendrogram.num_nodes()));
  }
  if (state.rounds_done != state.stats.rounds) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "resume state is inconsistent: rounds_done=%zu but stats record "
        "%zu rounds",
        state.rounds_done, state.stats.rounds));
  }
  SHOAL_RETURN_IF_ERROR(RunRounds(options, state.clusters, state.dendrogram,
                                  state.stats));
  if (stats != nullptr) *stats = state.stats;
  return std::move(state.dendrogram);
}

}  // namespace shoal::core
