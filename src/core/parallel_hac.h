#ifndef SHOAL_CORE_PARALLEL_HAC_H_
#define SHOAL_CORE_PARALLEL_HAC_H_

#include <cstdint>
#include <vector>

#include "core/dendrogram.h"
#include "core/hac_common.h"
#include "graph/weighted_graph.h"
#include "util/result.h"

namespace shoal::core {

// Parallel Hierarchical Agglomerative Clustering (Sec 2.2) — the paper's
// contribution. Each *round*:
//
//   1. Graph diffusion on the BSP engine: for `diffusion_iterations`
//      supersteps every cluster exchanges the best edge it knows with
//      its neighbours. An edge survives as a *local maximal edge* when
//      both endpoints still consider it the best edge they have seen.
//   2. All local maximal edges (a matching, hence conflict-free) are
//      merged in parallel; similarities to the merged cluster follow the
//      linkage rule (Eq. 4 by default).
//
// Rounds repeat until no remaining similarity reaches the threshold.
// Fewer diffusion iterations -> more local maxima -> more merges per
// round -> higher parallel degree (the trade-off of Figure 3); the paper
// fixes diffusion_iterations = 2.
struct ParallelHacOptions {
  HacOptions hac;
  size_t diffusion_iterations = 2;
  size_t num_partitions = 8;
  size_t num_threads = 2;
  size_t max_rounds = 100000;
};

struct ParallelHacStats {
  size_t rounds = 0;
  size_t total_merges = 0;
  uint64_t total_messages = 0;    // BSP messages across all rounds
  size_t total_supersteps = 0;
  // Local maximal edges found (== merges) in each round; the parallel
  // degree trace reported by bench_diffusion.
  std::vector<size_t> merges_per_round;
};

util::Result<Dendrogram> ParallelHac(const graph::WeightedGraph& graph,
                                     const ParallelHacOptions& options,
                                     ParallelHacStats* stats = nullptr);

}  // namespace shoal::core

#endif  // SHOAL_CORE_PARALLEL_HAC_H_
