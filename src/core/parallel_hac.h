#ifndef SHOAL_CORE_PARALLEL_HAC_H_
#define SHOAL_CORE_PARALLEL_HAC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dendrogram.h"
#include "core/hac_common.h"
#include "graph/weighted_graph.h"
#include "util/result.h"

namespace shoal::core {

struct ParallelHacStats;

// Read-only view of an in-flight HAC run handed to the checkpoint hook
// after a round's merges are fully applied (cluster graph and dendrogram
// are mutually consistent at that instant). `finished` marks the one
// extra invocation after the final round, so a consumer can persist the
// completed dendrogram and a later resume skips HAC entirely.
struct HacProgress {
  const ClusterGraph* clusters = nullptr;
  const Dendrogram* dendrogram = nullptr;
  size_t rounds_done = 0;
  bool finished = false;
  const ParallelHacStats* stats = nullptr;
};

// Parallel Hierarchical Agglomerative Clustering (Sec 2.2) — the paper's
// contribution. Each *round*:
//
//   1. Graph diffusion on the BSP engine: for `diffusion_iterations`
//      supersteps every cluster exchanges the best edge it knows with
//      its neighbours. An edge survives as a *local maximal edge* when
//      both endpoints still consider it the best edge they have seen.
//   2. All local maximal edges (a matching, hence conflict-free) are
//      merged in parallel; similarities to the merged cluster follow the
//      linkage rule (Eq. 4 by default).
//
// Rounds repeat until no remaining similarity reaches the threshold.
// Fewer diffusion iterations -> more local maxima -> more merges per
// round -> higher parallel degree (the trade-off of Figure 3); the paper
// fixes diffusion_iterations = 2.
//
// How a round's best-edge proposals travel over the BSP engine. Both
// modes produce byte-identical dendrograms (the delta path backstops its
// message suppression with an exact neighbourhood check, DESIGN.md §8);
// they differ only in message volume and per-round setup cost.
enum class DiffusionMode {
  // Incremental (default): one engine reused across rounds, proposals
  // sent only to the top-`fanout_cap` strongest neighbours and only when
  // the recipient is not already known to hold a value at least as good
  // (per-edge-direction last-sent tracking). Candidate pairs that the
  // reduced message flow fails to suppress are rejected by an exact
  // serial verification pass, so the matching — and the dendrogram — is
  // identical to full broadcast.
  kDelta,
  // Legacy reference path: per-round CSR snapshot of the mergeable
  // frontier and a fresh engine per round; every vertex broadcasts each
  // improvement to all mergeable neighbours. O(E) messages per round.
  kFullBroadcast,
};

struct ParallelHacOptions {
  HacOptions hac;
  size_t diffusion_iterations = 2;
  size_t num_partitions = 8;
  size_t num_threads = 2;
  size_t max_rounds = 100000;
  DiffusionMode diffusion_mode = DiffusionMode::kDelta;
  // Delta mode only: each vertex exchanges proposals with at most this
  // many of its strongest mergeable neighbours (by similarity, ties to
  // the smaller id). 0 means unlimited. Exactness does not depend on the
  // cap — dropped propagation is caught by verification — so this purely
  // trades message volume against verification work. The default keeps
  // only the best edge per vertex: a cap sweep (1/2/4/8) on the
  // bench_scalability graphs showed cap 1 at or below every other
  // setting on wall-clock while sending ~17x fewer messages than cap 8.
  size_t fanout_cap = 1;
  // Invoke `checkpoint_hook` after every `checkpoint_every`-th completed
  // round (0 disables periodic calls). When a hook is set it is also
  // called once after the final round with HacProgress::finished = true.
  // A failing hook aborts the run with its Status; the hook must not
  // mutate the run (it sees const views).
  size_t checkpoint_every = 0;
  std::function<util::Status(const HacProgress&)> checkpoint_hook;
};

struct ParallelHacStats {
  size_t rounds = 0;
  size_t total_merges = 0;
  uint64_t total_messages = 0;    // BSP messages across all rounds
  size_t total_supersteps = 0;
  // Local maximal edges found (== merges) in each round; the parallel
  // degree trace reported by bench_diffusion.
  std::vector<size_t> merges_per_round;
  // Delta-mode telemetry: mutually-best pairs evaluated across all
  // rounds, and how many of those were rejected — by the exact ball-k
  // verification or by a still-live cached refutation. A rejected pair
  // parks until a watched vertex dies and is only re-counted when it is
  // re-evaluated, so these count *evaluations*, not pair-rounds;
  // total_candidates - total_rejected == total_merges. Always zero in
  // full-broadcast mode. Diagnostic only: not part of the checkpoint
  // image, so a resumed run restarts these counters.
  uint64_t total_candidates = 0;
  uint64_t total_rejected = 0;
};

util::Result<Dendrogram> ParallelHac(const graph::WeightedGraph& graph,
                                     const ParallelHacOptions& options,
                                     ParallelHacStats* stats = nullptr);

// Mid-run image of a parallel HAC: everything the round loop needs to
// continue, with no reference back to the original entity graph (the
// ClusterGraph is self-contained). Produced by the checkpoint subsystem
// from a HacProgress snapshot.
struct HacResumeState {
  ClusterGraph clusters;
  Dendrogram dendrogram;
  size_t rounds_done = 0;
  // Cumulative stats of the interrupted run up to `rounds_done`, so the
  // resumed run's final stats match the uninterrupted run's.
  ParallelHacStats stats;
};

// Continues an interrupted run from `state`. The round loop is the same
// code path as ParallelHac, and the restored frontier/adjacency state is
// bit-exact, so the resumed run produces a dendrogram byte-identical to
// the uninterrupted one — at any thread or partition count. Fails with
// InvalidArgument when `state` is inconsistent or was captured under a
// different threshold than `options.hac.threshold`.
util::Result<Dendrogram> ResumeParallelHac(const ParallelHacOptions& options,
                                           HacResumeState state,
                                           ParallelHacStats* stats = nullptr);

}  // namespace shoal::core

#endif  // SHOAL_CORE_PARALLEL_HAC_H_
