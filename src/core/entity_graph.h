#ifndef SHOAL_CORE_ENTITY_GRAPH_H_
#define SHOAL_CORE_ENTITY_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/weighted_graph.h"
#include "text/embedding.h"
#include "util/result.h"

namespace shoal::core {

// Builds the item entity graph G(V, E, S) of Sec 2.1.
//
// Candidate pairs come from the query-item bipartite graph: two entities
// are compared only if at least one query links to both (entities with
// disjoint query sets have Sq = 0, and the paper filters low-S edges
// anyway). Head queries are capped to `max_items_per_query` to avoid a
// quadratic blow-up on navigational queries — a standard production
// guard that only drops pairs whose Jaccard contribution is tiny.
struct EntityGraphOptions {
  double alpha = 0.7;            // Eq. 3 mix (paper's demo value)
  double similarity_threshold = 0.35;  // sparsification (Challenge 1)
  size_t max_items_per_query = 256;
  size_t max_degree = 64;        // keep only the best edges per entity
};

struct EntityGraphStats {
  size_t candidate_pairs = 0;
  size_t scored_pairs = 0;
  size_t kept_edges = 0;
  size_t capped_queries = 0;
};

// `title_words[i]` are the title token ids of entity i; `word_vectors`
// is the trained word2vec table indexed by those ids. The bipartite
// graph's right side must have exactly `title_words.size()` vertices.
util::Result<graph::WeightedGraph> BuildEntityGraph(
    const graph::BipartiteGraph& query_item_graph,
    const std::vector<std::vector<uint32_t>>& title_words,
    const text::EmbeddingTable& word_vectors,
    const EntityGraphOptions& options, EntityGraphStats* stats = nullptr);

}  // namespace shoal::core

#endif  // SHOAL_CORE_ENTITY_GRAPH_H_
