#ifndef SHOAL_CORE_ENTITY_GRAPH_H_
#define SHOAL_CORE_ENTITY_GRAPH_H_

#include <cstdint>
#include <vector>

#include "core/minhash.h"
#include "graph/bipartite_graph.h"
#include "graph/weighted_graph.h"
#include "text/embedding.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace shoal::core {

// How candidate pairs are generated before exact Eq. 1-3 rescoring.
//
//   kExact      — every pair of entities co-clicked under at least one
//                 query (the reference path; cost grows with the square
//                 of per-query fanout and is the scaling wall before
//                 the paper's 200M-entity regime).
//   kMinHashLsh — streaming MinHash signatures over query sets (Eq. 1
//                 signal) and title token shingles (Eq. 2 signal),
//                 banded LSH buckets emit candidates, exact rescoring
//                 keeps precision. Sub-quadratic; recall vs the exact
//                 graph is measured and CI-gated (bench_scalability
//                 --candidate_strategy=lsh, perf_diff --mode recall).
enum class CandidateStrategy { kExact, kMinHashLsh };

// Knobs of the kMinHashLsh pipeline (DESIGN.md §6.1). With b bands of
// r rows, a pair whose shingle-set Jaccard is j collides somewhere
// with probability 1 - (1 - j^r)^b.
struct EntityGraphLshOptions {
  MinHashConfig minhash;        // bands / rows / hash seed
  // Title token n-gram length for the Eq. 2 content shingles.
  size_t title_shingle_len = 2;
  // Buckets larger than this are skipped (degenerate collisions);
  // 0 = unlimited.
  size_t max_bucket = 1024;
  // Streaming granularity: entities per producer batch and queue slots
  // between the signature producers and the bucket-insert consumer.
  size_t batch_entities = 2048;
  size_t queue_capacity = 16;
};

// Builds the item entity graph G(V, E, S) of Sec 2.1.
//
// Candidate pairs come from the query-item bipartite graph: two entities
// are compared only if at least one query links to both (entities with
// disjoint query sets have Sq = 0, and the paper filters low-S edges
// anyway). Head queries are capped to `max_items_per_query` to avoid a
// quadratic blow-up on navigational queries — a standard production
// guard. Capped queries keep their top-N links by click weight (ties
// broken toward the smaller item id), so the strongest co-click edges
// survive the cap regardless of link storage order.
struct EntityGraphOptions {
  double alpha = 0.7;            // Eq. 3 mix (paper's demo value)
  double similarity_threshold = 0.35;  // sparsification (Challenge 1)
  size_t max_items_per_query = 256;
  size_t max_degree = 64;        // keep only the best edges per entity
  // Worker threads for candidate generation, profile building, and
  // scoring. 1 (the default) runs the single-shard serial reference
  // path; 0 means hardware concurrency. Every setting produces the
  // same edge set, weights, and stats (timings aside): shards merge
  // through a sorted deterministic reduction, and the degree cap
  // orders edges by (similarity desc, u, v).
  size_t num_threads = 1;
  // Candidate generation strategy; kMinHashLsh keeps the same
  // determinism contract (candidates are deduped and sorted before
  // rescoring, so the graph is byte-identical at any thread count).
  CandidateStrategy candidate_strategy = CandidateStrategy::kExact;
  EntityGraphLshOptions lsh;
};

struct EntityGraphStats {
  size_t candidate_pairs = 0;  // deduped candidates, either strategy
  size_t scored_pairs = 0;
  size_t kept_edges = 0;
  size_t capped_queries = 0;
  // LSH candidate stage (CandidateStrategy::kMinHashLsh runs only).
  size_t lsh_signed_entities = 0;   // entities with a non-empty shingle set
  size_t lsh_buckets = 0;           // >= 2-member buckets across bands
  size_t lsh_skipped_buckets = 0;   // over max_bucket, dropped
  size_t lsh_emitted_pairs = 0;     // bucket pair emissions before dedup
  // Per-stage wall-clock, for scaling curves (bench_scalability).
  double candidate_seconds = 0.0;   // pair generation + merge (either path)
  double signature_seconds = 0.0;   // MinHash signing share of the above
  double profile_seconds = 0.0;     // query sets + content profiles
  double scoring_seconds = 0.0;     // Eq. 1-3 over candidate pairs
  double degree_cap_seconds = 0.0;  // sort + greedy degree cap
};

// One scored candidate edge (u < v), the unit of the pre-degree-cap
// edge store. BuildEntityGraph produces these internally; the
// incremental maintenance path (src/daemon) keeps a standing set of
// them between sliding-window updates.
struct ScoredEdge {
  uint32_t u = 0;
  uint32_t v = 0;
  double s = 0.0;

  bool operator==(const ScoredEdge&) const = default;
};

// Item ids a query contributes to candidate generation. Over-cap
// queries keep the top-`cap` links by click weight (ties toward the
// smaller item id) instead of the first `cap` in storage order, so a
// strong co-click link stored late in the adjacency list still
// generates its pairs. The selected *set* depends only on the
// (id, count) multiset, never on link storage order — the property the
// incremental path relies on to reproduce candidacy from its own
// aggregate counts.
std::vector<uint32_t> CappedQueryItems(
    const std::vector<graph::BipartiteGraph::Link>& links, size_t cap,
    bool* capped);

// Stage 5 of BuildEntityGraph, exposed so the incremental maintenance
// path can finalize its standing edge store through the exact same
// pass: sort by (similarity desc, u, v) and greedily keep edges while
// either endpoint is under `max_degree`. Consumes `edges` (sorted in
// place). Pure function of the edge multiset — byte-identical output
// for any input order.
util::Result<graph::WeightedGraph> ApplyDegreeCap(
    std::vector<ScoredEdge> edges, size_t num_entities, size_t max_degree);

// The kMinHashLsh candidate stage, exposed for tests and diagnostics:
// returns the deduped, ascending `(u << 32) | v`-packed pairs that
// BuildEntityGraph would rescore. `queries_of[e]` are the sorted query
// ids of entity e (see BipartiteGraph::QueriesOfItem). `pool` may be
// null (serial reference path); the result is identical either way.
std::vector<uint64_t> BuildLshCandidatePairs(
    const std::vector<std::vector<uint32_t>>& queries_of,
    const std::vector<std::vector<uint32_t>>& title_words,
    const EntityGraphLshOptions& options, util::ThreadPool* pool,
    EntityGraphStats* stats = nullptr);

// `title_words[i]` are the title token ids of entity i; `word_vectors`
// is the trained word2vec table indexed by those ids. The bipartite
// graph's right side must have exactly `title_words.size()` vertices.
util::Result<graph::WeightedGraph> BuildEntityGraph(
    const graph::BipartiteGraph& query_item_graph,
    const std::vector<std::vector<uint32_t>>& title_words,
    const text::EmbeddingTable& word_vectors,
    const EntityGraphOptions& options, EntityGraphStats* stats = nullptr);

}  // namespace shoal::core

#endif  // SHOAL_CORE_ENTITY_GRAPH_H_
