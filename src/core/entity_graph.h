#ifndef SHOAL_CORE_ENTITY_GRAPH_H_
#define SHOAL_CORE_ENTITY_GRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/weighted_graph.h"
#include "text/embedding.h"
#include "util/result.h"

namespace shoal::core {

// Builds the item entity graph G(V, E, S) of Sec 2.1.
//
// Candidate pairs come from the query-item bipartite graph: two entities
// are compared only if at least one query links to both (entities with
// disjoint query sets have Sq = 0, and the paper filters low-S edges
// anyway). Head queries are capped to `max_items_per_query` to avoid a
// quadratic blow-up on navigational queries — a standard production
// guard. Capped queries keep their top-N links by click weight (ties
// broken toward the smaller item id), so the strongest co-click edges
// survive the cap regardless of link storage order.
struct EntityGraphOptions {
  double alpha = 0.7;            // Eq. 3 mix (paper's demo value)
  double similarity_threshold = 0.35;  // sparsification (Challenge 1)
  size_t max_items_per_query = 256;
  size_t max_degree = 64;        // keep only the best edges per entity
  // Worker threads for candidate generation, profile building, and
  // scoring. 1 (the default) runs the single-shard serial reference
  // path; 0 means hardware concurrency. Every setting produces the
  // same edge set, weights, and stats (timings aside): shards merge
  // through a sorted deterministic reduction, and the degree cap
  // orders edges by (similarity desc, u, v).
  size_t num_threads = 1;
};

struct EntityGraphStats {
  size_t candidate_pairs = 0;
  size_t scored_pairs = 0;
  size_t kept_edges = 0;
  size_t capped_queries = 0;
  // Per-stage wall-clock, for scaling curves (bench_scalability).
  double candidate_seconds = 0.0;   // co-click pair generation + merge
  double profile_seconds = 0.0;     // query sets + content profiles
  double scoring_seconds = 0.0;     // Eq. 1-3 over candidate pairs
  double degree_cap_seconds = 0.0;  // sort + greedy degree cap
};

// `title_words[i]` are the title token ids of entity i; `word_vectors`
// is the trained word2vec table indexed by those ids. The bipartite
// graph's right side must have exactly `title_words.size()` vertices.
util::Result<graph::WeightedGraph> BuildEntityGraph(
    const graph::BipartiteGraph& query_item_graph,
    const std::vector<std::vector<uint32_t>>& title_words,
    const text::EmbeddingTable& word_vectors,
    const EntityGraphOptions& options, EntityGraphStats* stats = nullptr);

}  // namespace shoal::core

#endif  // SHOAL_CORE_ENTITY_GRAPH_H_
