#include "core/taxonomy.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace shoal::core {

namespace {

// Aggregates category counts for a member list, descending by count.
std::vector<std::pair<uint32_t, size_t>> CountCategories(
    const std::vector<uint32_t>& entities,
    const std::vector<uint32_t>& entity_categories) {
  std::unordered_map<uint32_t, size_t> counts;
  for (uint32_t e : entities) {
    if (e < entity_categories.size()) ++counts[entity_categories[e]];
  }
  std::vector<std::pair<uint32_t, size_t>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace

Taxonomy Taxonomy::Build(const Dendrogram& dendrogram,
                         const std::vector<uint32_t>& entity_categories,
                         const TaxonomyOptions& options) {
  Taxonomy taxonomy;
  taxonomy.entity_topic_.assign(dendrogram.num_leaves(), kNoTopic);

  // Work item: dendrogram node to consider, plus the taxonomy parent
  // under which a qualifying node should hang.
  struct Work {
    uint32_t node;
    uint32_t parent_topic;
    uint32_t level;
  };
  std::deque<Work> queue;
  for (uint32_t root : dendrogram.Roots()) {
    if (dendrogram.node(root).size < options.min_root_size) continue;
    queue.push_back(Work{root, kNoTopic, 0});
  }

  while (!queue.empty()) {
    Work work = queue.front();
    queue.pop_front();
    const auto& node = dendrogram.node(work.node);

    const bool qualifies = node.size >= options.min_topic_size &&
                           !dendrogram.IsLeaf(work.node);
    if (!qualifies && work.parent_topic != kNoTopic) {
      // Fold this subtree's entities into the nearest qualifying
      // ancestor (they are already members there; nothing to do).
      continue;
    }
    if (!qualifies && work.parent_topic == kNoTopic) {
      continue;  // tiny root already filtered by min_root_size or a leaf
    }

    Topic topic;
    topic.id = static_cast<uint32_t>(taxonomy.topics_.size());
    topic.dendro_node = work.node;
    topic.parent = work.parent_topic;
    topic.level = work.level;
    topic.entities = dendrogram.LeavesUnder(work.node);
    topic.categories = CountCategories(topic.entities, entity_categories);
    taxonomy.topics_.push_back(topic);
    const uint32_t topic_id = topic.id;

    if (work.parent_topic == kNoTopic) {
      taxonomy.roots_.push_back(topic_id);
    } else {
      taxonomy.topics_[work.parent_topic].children.push_back(topic_id);
    }
    // The deepest topic wins for entity->topic; children overwrite later.
    for (uint32_t e : taxonomy.topics_[topic_id].entities) {
      taxonomy.entity_topic_[e] = topic_id;
    }

    // Children: descend both branches looking for qualifying nodes.
    std::deque<uint32_t> descend{dendrogram.node(work.node).left,
                                 dendrogram.node(work.node).right};
    while (!descend.empty()) {
      uint32_t child = descend.front();
      descend.pop_front();
      if (child == kNoNode) continue;
      const auto& child_node = dendrogram.node(child);
      if (!dendrogram.IsLeaf(child) &&
          child_node.size >= options.min_topic_size) {
        queue.push_back(Work{child, topic_id, work.level + 1});
      } else if (!dendrogram.IsLeaf(child)) {
        descend.push_back(child_node.left);
        descend.push_back(child_node.right);
      }
    }
  }

  // BFS order guarantees parents were processed before children, but the
  // "deepest topic wins" rule needs children to overwrite parents —
  // re-apply by increasing level.
  std::vector<uint32_t> order(taxonomy.topics_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return taxonomy.topics_[a].level < taxonomy.topics_[b].level;
  });
  for (uint32_t t : order) {
    for (uint32_t e : taxonomy.topics_[t].entities) {
      taxonomy.entity_topic_[e] = t;
    }
  }
  return taxonomy;
}

uint32_t Taxonomy::RootTopicOfEntity(uint32_t entity) const {
  uint32_t t = entity_topic_[entity];
  if (t == kNoTopic) return kNoTopic;
  while (topics_[t].parent != kNoTopic) t = topics_[t].parent;
  return t;
}

std::vector<uint32_t> Taxonomy::RootLabels() const {
  std::vector<uint32_t> labels(entity_topic_.size());
  std::unordered_map<uint32_t, uint32_t> root_ids;
  uint32_t next = 0;
  for (uint32_t root : roots_) root_ids.emplace(root, next++);
  for (uint32_t e = 0; e < entity_topic_.size(); ++e) {
    uint32_t root = RootTopicOfEntity(e);
    labels[e] = root == kNoTopic ? next++ : root_ids.at(root);
  }
  return labels;
}

}  // namespace shoal::core
