#ifndef SHOAL_GRAPH_BIPARTITE_GRAPH_H_
#define SHOAL_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace shoal::graph {

// Query-item bipartite graph (Figure 2 of the paper). Left vertices are
// queries, right vertices are item entities. Each edge carries a count
// (how many times the query led to a click on the item within the
// sliding window).
class BipartiteGraph {
 public:
  BipartiteGraph(size_t num_left, size_t num_right);

  size_t num_left() const { return left_adj_.size(); }
  size_t num_right() const { return right_adj_.size(); }
  size_t num_edges() const { return num_edges_; }

  // Adds `count` to the (query, item) edge, creating it if needed.
  util::Status AddInteraction(uint32_t left, uint32_t right,
                              uint32_t count = 1);

  struct Link {
    uint32_t id;        // vertex on the other side
    uint32_t count;     // interaction count
  };

  const std::vector<Link>& LeftNeighbors(uint32_t left) const {
    return left_adj_[left];
  }
  const std::vector<Link>& RightNeighbors(uint32_t right) const {
    return right_adj_[right];
  }

  // Sorted query ids associated with an item (right vertex). Used by the
  // Jaccard similarity (Eq. 1).
  std::vector<uint32_t> QueriesOfItem(uint32_t right) const;

  // Total interaction count over all edges.
  uint64_t total_interactions() const { return total_interactions_; }

 private:
  std::vector<std::vector<Link>> left_adj_;
  std::vector<std::vector<Link>> right_adj_;
  size_t num_edges_ = 0;
  uint64_t total_interactions_ = 0;
};

}  // namespace shoal::graph

#endif  // SHOAL_GRAPH_BIPARTITE_GRAPH_H_
