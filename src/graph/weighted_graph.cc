#include "graph/weighted_graph.h"

#include <algorithm>

#include "util/string_util.h"

namespace shoal::graph {

void WeightedGraph::Resize(size_t num_vertices) {
  if (num_vertices > adjacency_.size()) {
    adjacency_.resize(num_vertices);
    weighted_degree_.resize(num_vertices, 0.0);
  }
}

util::Status WeightedGraph::AddEdge(VertexId u, VertexId v, double weight) {
  if (u == v) {
    return util::Status::InvalidArgument(
        util::StringPrintf("self-loop on vertex %u", u));
  }
  if (u >= num_vertices() || v >= num_vertices()) {
    return util::Status::OutOfRange(
        util::StringPrintf("edge (%u,%u) outside vertex range [0,%zu)", u, v,
                           num_vertices()));
  }
  uint64_t key = Key(std::min(u, v), std::max(u, v));
  if (edge_index_.contains(key)) {
    return util::Status::AlreadyExists(
        util::StringPrintf("edge (%u,%u) already present", u, v));
  }
  edge_index_.emplace(key, weight);
  adjacency_[u].push_back(Edge{v, weight});
  adjacency_[v].push_back(Edge{u, weight});
  weighted_degree_[u] += weight;
  weighted_degree_[v] += weight;
  total_weight_ += weight;
  ++num_edges_;
  return util::Status::OK();
}

util::Status WeightedGraph::AddOrUpdateEdge(VertexId u, VertexId v,
                                            double weight) {
  if (u == v) {
    return util::Status::InvalidArgument(
        util::StringPrintf("self-loop on vertex %u", u));
  }
  if (u >= num_vertices() || v >= num_vertices()) {
    return util::Status::OutOfRange(
        util::StringPrintf("edge (%u,%u) outside vertex range [0,%zu)", u, v,
                           num_vertices()));
  }
  uint64_t key = Key(std::min(u, v), std::max(u, v));
  auto it = edge_index_.find(key);
  if (it == edge_index_.end()) return AddEdge(u, v, weight);
  double old = it->second;
  it->second = weight;
  for (Edge& e : adjacency_[u]) {
    if (e.to == v) e.weight = weight;
  }
  for (Edge& e : adjacency_[v]) {
    if (e.to == u) e.weight = weight;
  }
  weighted_degree_[u] += weight - old;
  weighted_degree_[v] += weight - old;
  total_weight_ += weight - old;
  return util::Status::OK();
}

bool WeightedGraph::HasEdge(VertexId u, VertexId v) const {
  if (u == v || u >= num_vertices() || v >= num_vertices()) return false;
  return edge_index_.contains(Key(std::min(u, v), std::max(u, v)));
}

double WeightedGraph::EdgeWeight(VertexId u, VertexId v) const {
  if (u == v || u >= num_vertices() || v >= num_vertices()) return 0.0;
  auto it = edge_index_.find(Key(std::min(u, v), std::max(u, v)));
  return it == edge_index_.end() ? 0.0 : it->second;
}

size_t WeightedGraph::SparsifyBelow(double threshold) {
  size_t removed = 0;
  for (VertexId u = 0; u < num_vertices(); ++u) {
    auto& adj = adjacency_[u];
    auto keep_end = std::remove_if(adj.begin(), adj.end(), [&](const Edge& e) {
      return e.weight < threshold;
    });
    adj.erase(keep_end, adj.end());
  }
  for (auto it = edge_index_.begin(); it != edge_index_.end();) {
    if (it->second < threshold) {
      VertexId u = static_cast<VertexId>(it->first >> 32);
      VertexId v = static_cast<VertexId>(it->first & 0xffffffffULL);
      weighted_degree_[u] -= it->second;
      weighted_degree_[v] -= it->second;
      total_weight_ -= it->second;
      it = edge_index_.erase(it);
      ++removed;
      --num_edges_;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<WeightedGraph::FullEdge> WeightedGraph::AllEdges() const {
  std::vector<FullEdge> out;
  out.reserve(num_edges_);
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (const Edge& e : adjacency_[u]) {
      if (e.to > u) out.push_back(FullEdge{u, e.to, e.weight});
    }
  }
  return out;
}

}  // namespace shoal::graph
