#ifndef SHOAL_GRAPH_WEIGHTED_GRAPH_H_
#define SHOAL_GRAPH_WEIGHTED_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace shoal::graph {

using VertexId = uint32_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

struct Edge {
  VertexId to = kInvalidVertex;
  double weight = 0.0;

  bool operator==(const Edge&) const = default;
};

// Undirected weighted graph over vertices [0, num_vertices). Backed by
// per-vertex adjacency vectors plus a hash index for O(1) weight lookup.
// This is the *static* input structure; the HAC cluster graph in
// shoal::core keeps its own mutable overlay.
class WeightedGraph {
 public:
  WeightedGraph() = default;
  explicit WeightedGraph(size_t num_vertices) { Resize(num_vertices); }

  // Grows the vertex set to `num_vertices` (never shrinks).
  void Resize(size_t num_vertices);

  size_t num_vertices() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }

  // Adds an undirected edge. Self-loops and duplicate edges are rejected.
  util::Status AddEdge(VertexId u, VertexId v, double weight);

  // Adds the edge or overwrites its weight if present. Self-loops rejected.
  util::Status AddOrUpdateEdge(VertexId u, VertexId v, double weight);

  bool HasEdge(VertexId u, VertexId v) const;

  // Weight of edge (u, v), or 0.0 when absent — matching the paper's
  // convention "S(A,C) = 0 if the similarity between A and C is
  // unavailable" (Eq. 4).
  double EdgeWeight(VertexId u, VertexId v) const;

  const std::vector<Edge>& Neighbors(VertexId u) const {
    return adjacency_[u];
  }

  size_t Degree(VertexId u) const { return adjacency_[u].size(); }

  // Sum of weights of edges incident to u.
  double WeightedDegree(VertexId u) const { return weighted_degree_[u]; }

  // Sum of all edge weights (each undirected edge counted once).
  double TotalEdgeWeight() const { return total_weight_; }

  // Removes edges with weight < threshold. Returns the number removed.
  size_t SparsifyBelow(double threshold);

  // All edges, each reported once with to > from.
  struct FullEdge {
    VertexId u;
    VertexId v;
    double weight;
  };
  std::vector<FullEdge> AllEdges() const;

 private:
  static uint64_t Key(VertexId u, VertexId v) {
    return (static_cast<uint64_t>(u) << 32) | v;
  }

  std::vector<std::vector<Edge>> adjacency_;
  std::vector<double> weighted_degree_;
  std::unordered_map<uint64_t, double> edge_index_;  // key: (min,max)
  size_t num_edges_ = 0;
  double total_weight_ = 0.0;
};

}  // namespace shoal::graph

#endif  // SHOAL_GRAPH_WEIGHTED_GRAPH_H_
