#ifndef SHOAL_GRAPH_GRAPH_IO_H_
#define SHOAL_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/weighted_graph.h"
#include "util/result.h"

namespace shoal::graph {

// Persists a graph as "u <TAB> v <TAB> weight" lines with a header
// comment carrying the vertex count; loads the same format.
util::Status SaveGraphTsv(const WeightedGraph& graph,
                          const std::string& path);
util::Result<WeightedGraph> LoadGraphTsv(const std::string& path);

}  // namespace shoal::graph

#endif  // SHOAL_GRAPH_GRAPH_IO_H_
