#include "graph/components.h"

#include <deque>

namespace shoal::graph {

std::vector<uint32_t> ConnectedComponents(const WeightedGraph& graph,
                                          size_t* num_components) {
  const size_t n = graph.num_vertices();
  std::vector<uint32_t> label(n, kInvalidVertex);
  uint32_t next_label = 0;
  std::deque<VertexId> frontier;
  for (VertexId start = 0; start < n; ++start) {
    if (label[start] != kInvalidVertex) continue;
    label[start] = next_label;
    frontier.push_back(start);
    while (!frontier.empty()) {
      VertexId u = frontier.front();
      frontier.pop_front();
      for (const Edge& e : graph.Neighbors(u)) {
        if (label[e.to] == kInvalidVertex) {
          label[e.to] = next_label;
          frontier.push_back(e.to);
        }
      }
    }
    ++next_label;
  }
  if (num_components != nullptr) *num_components = next_label;
  return label;
}

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_components_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
}

uint32_t UnionFind::Find(uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

uint32_t UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return ra;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_components_;
  return ra;
}

}  // namespace shoal::graph
