#ifndef SHOAL_GRAPH_GENERATORS_H_
#define SHOAL_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.h"
#include "util/random.h"
#include "util/result.h"

namespace shoal::graph {

// Planted-partition (stochastic block model) parameters. Within-cluster
// edges appear with probability `p_in` and weight drawn from
// N(mu_in, sigma), cross-cluster edges with probability `p_out` and weight
// N(mu_out, sigma); weights are clamped to (0, 1].
struct PlantedPartitionOptions {
  size_t num_vertices = 1000;
  size_t num_clusters = 10;
  double p_in = 0.3;
  double p_out = 0.01;
  double mu_in = 0.8;
  double mu_out = 0.2;
  double sigma = 0.05;
  uint64_t seed = 42;
};

struct PlantedPartitionResult {
  WeightedGraph graph;
  std::vector<uint32_t> ground_truth;  // planted cluster per vertex
};

// Generates a planted-partition graph; used by HAC/modularity tests and
// the scalability benches as a controllable stand-in for an entity graph.
util::Result<PlantedPartitionResult> GeneratePlantedPartition(
    const PlantedPartitionOptions& options);

// Erdos-Renyi G(n, p) with Uniform(0,1] weights.
util::Result<WeightedGraph> GenerateErdosRenyi(size_t num_vertices, double p,
                                               uint64_t seed);

// Path graph 0-1-2-...-(n-1) with constant weight.
WeightedGraph GeneratePath(size_t num_vertices, double weight = 1.0);

}  // namespace shoal::graph

#endif  // SHOAL_GRAPH_GENERATORS_H_
