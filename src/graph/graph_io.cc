#include "graph/graph_io.h"

#include <cstdlib>
#include <fstream>

#include "util/atomic_file.h"
#include "util/string_util.h"

namespace shoal::graph {

util::Status SaveGraphTsv(const WeightedGraph& graph,
                          const std::string& path) {
  std::string out = "# shoal-graph v1 vertices=" +
                    std::to_string(graph.num_vertices()) + "\n";
  for (const auto& e : graph.AllEdges()) {
    out += util::StringPrintf("%u\t%u\t%.9g\n", e.u, e.v, e.weight);
  }
  return util::AtomicWriteFile(path, out);
}

util::Result<WeightedGraph> LoadGraphTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return util::Status::IoError("empty graph file: " + path);
  }
  size_t pos = line.find("vertices=");
  if (!line.starts_with("# shoal-graph") || pos == std::string::npos) {
    return util::Status::InvalidArgument("missing shoal-graph header: " +
                                         path);
  }
  size_t num_vertices = std::strtoull(line.c_str() + pos + 9, nullptr, 10);
  WeightedGraph graph(num_vertices);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto fields = util::Split(line, '\t');
    if (fields.size() != 3) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "%s:%zu: expected 3 fields, got %zu", path.c_str(), line_no,
          fields.size()));
    }
    VertexId u = static_cast<VertexId>(std::strtoul(fields[0].c_str(),
                                                    nullptr, 10));
    VertexId v = static_cast<VertexId>(std::strtoul(fields[1].c_str(),
                                                    nullptr, 10));
    double w = std::strtod(fields[2].c_str(), nullptr);
    auto status = graph.AddEdge(u, v, w);
    if (!status.ok()) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "%s:%zu: %s", path.c_str(), line_no,
          status.ToString().c_str()));
    }
  }
  return graph;
}

}  // namespace shoal::graph
