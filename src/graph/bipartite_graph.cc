#include "graph/bipartite_graph.h"

#include <algorithm>

#include "util/string_util.h"

namespace shoal::graph {

BipartiteGraph::BipartiteGraph(size_t num_left, size_t num_right)
    : left_adj_(num_left), right_adj_(num_right) {}

util::Status BipartiteGraph::AddInteraction(uint32_t left, uint32_t right,
                                            uint32_t count) {
  if (left >= num_left() || right >= num_right()) {
    return util::Status::OutOfRange(
        util::StringPrintf("interaction (%u,%u) outside (%zu,%zu)", left,
                           right, num_left(), num_right()));
  }
  if (count == 0) {
    return util::Status::InvalidArgument("interaction count must be > 0");
  }
  auto& links = left_adj_[left];
  auto it = std::find_if(links.begin(), links.end(),
                         [right](const Link& l) { return l.id == right; });
  if (it != links.end()) {
    it->count += count;
    auto& rlinks = right_adj_[right];
    auto rit = std::find_if(rlinks.begin(), rlinks.end(),
                            [left](const Link& l) { return l.id == left; });
    rit->count += count;
  } else {
    links.push_back(Link{right, count});
    right_adj_[right].push_back(Link{left, count});
    ++num_edges_;
  }
  total_interactions_ += count;
  return util::Status::OK();
}

std::vector<uint32_t> BipartiteGraph::QueriesOfItem(uint32_t right) const {
  std::vector<uint32_t> out;
  out.reserve(right_adj_[right].size());
  for (const Link& l : right_adj_[right]) out.push_back(l.id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace shoal::graph
