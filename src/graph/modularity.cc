#include "graph/modularity.h"

#include <unordered_map>

#include "util/string_util.h"

namespace shoal::graph {

util::Result<double> Modularity(const WeightedGraph& graph,
                                const std::vector<uint32_t>& community) {
  if (community.size() != graph.num_vertices()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "community size %zu != vertex count %zu", community.size(),
        graph.num_vertices()));
  }
  const double two_m = 2.0 * graph.TotalEdgeWeight();
  if (two_m <= 0.0) {
    return util::Status::FailedPrecondition(
        "modularity undefined on a graph with no edge weight");
  }

  // Q = sum_c [ in_c / 2m - (deg_c / 2m)^2 ], with in_c counting both
  // directions of each intra-community edge.
  std::unordered_map<uint32_t, double> internal;   // 2 * intra weight
  std::unordered_map<uint32_t, double> degree_sum; // sum of weighted degrees
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    degree_sum[community[u]] += graph.WeightedDegree(u);
    for (const Edge& e : graph.Neighbors(u)) {
      if (community[e.to] == community[u]) internal[community[u]] += e.weight;
    }
  }
  double q = 0.0;
  for (const auto& [c, deg] : degree_sum) {
    double in_c = 0.0;
    if (auto it = internal.find(c); it != internal.end()) in_c = it->second;
    double frac_deg = deg / two_m;
    q += in_c / two_m - frac_deg * frac_deg;
  }
  return q;
}

}  // namespace shoal::graph
