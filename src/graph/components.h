#ifndef SHOAL_GRAPH_COMPONENTS_H_
#define SHOAL_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/weighted_graph.h"

namespace shoal::graph {

// Connected components via BFS. Returns a label in [0, num_components)
// per vertex; labels are assigned in order of discovery.
std::vector<uint32_t> ConnectedComponents(const WeightedGraph& graph,
                                          size_t* num_components = nullptr);

// Union-find with path halving and union by size. Used by the parallel
// merge step of Parallel HAC and exposed for tests.
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  uint32_t Find(uint32_t x);
  // Returns the new root. If already united, returns the common root.
  uint32_t Union(uint32_t a, uint32_t b);
  bool Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }
  size_t ComponentSize(uint32_t x) { return size_[Find(x)]; }
  size_t num_components() const { return num_components_; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_components_;
};

}  // namespace shoal::graph

#endif  // SHOAL_GRAPH_COMPONENTS_H_
