#ifndef SHOAL_GRAPH_MODULARITY_H_
#define SHOAL_GRAPH_MODULARITY_H_

#include <vector>

#include "graph/weighted_graph.h"
#include "util/result.h"

namespace shoal::graph {

// Newman-Girvan modularity of a vertex partition (the paper's
// "benchmarking metric" for Parallel HAC, citing [2]):
//
//   Q = (1 / 2m) * sum_ij [ A_ij - k_i * k_j / 2m ] * delta(c_i, c_j)
//
// computed on the weighted graph, where m is the total edge weight, A_ij
// the weight of edge (i, j) and k_i the weighted degree. Q is in
// [-0.5, 1]; values above ~0.3 indicate significant community structure.
//
// `community` maps each vertex to its cluster id. Errors when the size
// does not match the graph or the graph has no edges.
util::Result<double> Modularity(const WeightedGraph& graph,
                                const std::vector<uint32_t>& community);

}  // namespace shoal::graph

#endif  // SHOAL_GRAPH_MODULARITY_H_
