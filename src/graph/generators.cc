#include "graph/generators.h"

#include <algorithm>
#include <cmath>

namespace shoal::graph {

namespace {

double ClampWeight(double w) { return std::clamp(w, 1e-6, 1.0); }

}  // namespace

util::Result<PlantedPartitionResult> GeneratePlantedPartition(
    const PlantedPartitionOptions& options) {
  if (options.num_clusters == 0 ||
      options.num_clusters > options.num_vertices) {
    return util::Status::InvalidArgument(
        "num_clusters must be in [1, num_vertices]");
  }
  if (options.p_in < 0 || options.p_in > 1 || options.p_out < 0 ||
      options.p_out > 1) {
    return util::Status::InvalidArgument("probabilities must be in [0,1]");
  }
  util::Rng rng(options.seed);
  PlantedPartitionResult result;
  result.graph.Resize(options.num_vertices);
  result.ground_truth.resize(options.num_vertices);
  for (size_t v = 0; v < options.num_vertices; ++v) {
    result.ground_truth[v] =
        static_cast<uint32_t>(v % options.num_clusters);
  }

  // Sampling every pair is O(n^2); acceptable for the sizes we test, and
  // the scalability bench uses the geometric-skip variant below for the
  // sparse cross-cluster part when p_out is tiny.
  for (VertexId u = 0; u < options.num_vertices; ++u) {
    for (VertexId v = u + 1; v < options.num_vertices; ++v) {
      bool same = result.ground_truth[u] == result.ground_truth[v];
      double p = same ? options.p_in : options.p_out;
      if (p <= 0.0) continue;
      if (rng.UniformDouble() < p) {
        double mu = same ? options.mu_in : options.mu_out;
        double w = ClampWeight(rng.Gaussian(mu, options.sigma));
        // Pair (u,v) visited once, so the edge cannot already exist.
        (void)result.graph.AddEdge(u, v, w);
      }
    }
  }
  return result;
}

util::Result<WeightedGraph> GenerateErdosRenyi(size_t num_vertices, double p,
                                               uint64_t seed) {
  if (p < 0.0 || p > 1.0) {
    return util::Status::InvalidArgument("p must be in [0,1]");
  }
  util::Rng rng(seed);
  WeightedGraph graph(num_vertices);
  if (p == 0.0 || num_vertices < 2) return graph;
  // Geometric skipping over the upper-triangular pair sequence: O(edges).
  const double log1mp = std::log(1.0 - p);
  uint64_t total_pairs = static_cast<uint64_t>(num_vertices) *
                         (num_vertices - 1) / 2;
  uint64_t idx = 0;
  while (true) {
    double r = rng.UniformDouble();
    uint64_t skip =
        p >= 1.0 ? 0
                 : static_cast<uint64_t>(std::log(1.0 - r) / log1mp);
    idx += skip;
    if (idx >= total_pairs) break;
    // Map linear index -> (u, v) in the upper triangle.
    uint64_t u = 0;
    uint64_t remaining = idx;
    uint64_t row_len = num_vertices - 1;
    while (remaining >= row_len) {
      remaining -= row_len;
      ++u;
      --row_len;
    }
    uint64_t v = u + 1 + remaining;
    (void)graph.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                        ClampWeight(rng.UniformDouble()));
    ++idx;
  }
  return graph;
}

WeightedGraph GeneratePath(size_t num_vertices, double weight) {
  WeightedGraph graph(num_vertices);
  for (VertexId u = 0; u + 1 < num_vertices; ++u) {
    (void)graph.AddEdge(u, u + 1, weight);
  }
  return graph;
}

}  // namespace shoal::graph
