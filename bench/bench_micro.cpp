// M1: google-benchmark microbenchmarks for the kernels the pipeline
// spends its time in — similarity computation, BM25 scoring, word2vec
// training throughput, BSP superstep overhead, graph mutation, and
// union-find.

#include <benchmark/benchmark.h>

#include "core/hac_common.h"
#include "core/similarity.h"
#include "engine/bsp_engine.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "text/bm25.h"
#include "text/word2vec.h"
#include "util/random.h"

namespace {

using namespace shoal;

void BM_QueryJaccard(benchmark::State& state) {
  const size_t set_size = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
  for (size_t i = 0; i < set_size; ++i) {
    a.push_back(static_cast<uint32_t>(rng.Uniform(set_size * 4)));
    b.push_back(static_cast<uint32_t>(rng.Uniform(set_size * 4)));
  }
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::QueryJaccard(a, b));
  }
}
BENCHMARK(BM_QueryJaccard)->Arg(16)->Arg(64)->Arg(256);

void BM_ContentSimilarity(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  text::EmbeddingTable table(100, dim);
  util::Rng rng(2);
  for (size_t r = 0; r < table.rows(); ++r) {
    for (size_t d = 0; d < dim; ++d) {
      table.Row(r)[d] = static_cast<float>(rng.Gaussian());
    }
  }
  std::vector<uint32_t> words_u = {1, 2, 3, 4, 5, 6};
  std::vector<uint32_t> words_v = {7, 8, 9, 10};
  auto u = core::BuildContentProfile(table, words_u);
  auto v = core::BuildContentProfile(table, words_v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ContentSimilarity(u, v));
  }
}
BENCHMARK(BM_ContentSimilarity)->Arg(16)->Arg(32)->Arg(64);

void BM_BuildContentProfile(benchmark::State& state) {
  const size_t title_len = static_cast<size_t>(state.range(0));
  text::EmbeddingTable table(1000, 32);
  util::Rng rng(3);
  for (size_t r = 0; r < table.rows(); ++r) {
    for (size_t d = 0; d < 32; ++d) {
      table.Row(r)[d] = static_cast<float>(rng.Gaussian());
    }
  }
  std::vector<uint32_t> words;
  for (size_t i = 0; i < title_len; ++i) {
    words.push_back(static_cast<uint32_t>(rng.Uniform(1000)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildContentProfile(table, words));
  }
}
BENCHMARK(BM_BuildContentProfile)->Arg(8)->Arg(32);

void BM_Bm25ScoreAll(benchmark::State& state) {
  const size_t num_docs = static_cast<size_t>(state.range(0));
  util::Rng rng(4);
  text::Bm25Index index;
  for (size_t d = 0; d < num_docs; ++d) {
    std::vector<uint32_t> doc;
    for (size_t t = 0; t < 200; ++t) {
      doc.push_back(static_cast<uint32_t>(rng.Uniform(5000)));
    }
    index.AddDocument(doc);
  }
  std::vector<uint32_t> query = {17, 42, 99};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.ScoreAll(query));
  }
}
BENCHMARK(BM_Bm25ScoreAll)->Arg(64)->Arg(512);

void BM_Word2VecEpoch(benchmark::State& state) {
  const size_t sentences = static_cast<size_t>(state.range(0));
  text::Vocabulary vocab;
  util::Rng rng(5);
  for (size_t w = 0; w < 500; ++w) {
    vocab.AddWord("w" + std::to_string(w), 1 + rng.Uniform(50));
  }
  std::vector<std::vector<uint32_t>> corpus;
  for (size_t s = 0; s < sentences; ++s) {
    std::vector<uint32_t> sentence;
    for (size_t t = 0; t < 10; ++t) {
      sentence.push_back(static_cast<uint32_t>(rng.Uniform(500)));
    }
    corpus.push_back(std::move(sentence));
  }
  text::Word2VecOptions options;
  options.dim = 32;
  options.epochs = 1;
  for (auto _ : state) {
    auto model = text::Word2Vec::Train(vocab, corpus, options);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sentences));
}
BENCHMARK(BM_Word2VecEpoch)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_BspSuperstep(benchmark::State& state) {
  const size_t vertices = static_cast<size_t>(state.range(0));
  using Engine = engine::BspEngine<int, int>;
  for (auto _ : state) {
    Engine::Options options;
    options.num_partitions = 8;
    options.num_threads = 2;
    options.max_supersteps = 4;
    Engine engine(vertices, options);
    auto status = engine.Run([vertices](Engine::Context& ctx, uint32_t v,
                                        int& value,
                                        const std::vector<int>& messages) {
      for (int m : messages) value += m;
      if (ctx.superstep() < 3) {
        ctx.SendMessage((v + 1) % vertices, 1);
      }
      ctx.VoteToHalt();
    });
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(vertices) * 4);
}
BENCHMARK(BM_BspSuperstep)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_GraphEdgeInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(6);
  for (auto _ : state) {
    graph::WeightedGraph g(n);
    for (size_t e = 0; e < n * 4; ++e) {
      uint32_t u = static_cast<uint32_t>(rng.Uniform(n));
      uint32_t v = static_cast<uint32_t>(rng.Uniform(n));
      if (u != v) (void)g.AddOrUpdateEdge(u, v, 0.5);
    }
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 4);
}
BENCHMARK(BM_GraphEdgeInsert)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_UnionFind(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  util::Rng rng(7);
  for (auto _ : state) {
    graph::UnionFind uf(n);
    for (size_t i = 0; i < n; ++i) {
      uf.Union(static_cast<uint32_t>(rng.Uniform(n)),
               static_cast<uint32_t>(rng.Uniform(n)));
    }
    benchmark::DoNotOptimize(uf.num_components());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_UnionFind)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_MergedSimilarity(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::MergedSimilarity(
        core::LinkageRule::kSqrtNormalized, 0.7, 0.4, 17, 5));
  }
}
BENCHMARK(BM_MergedSimilarity);

}  // namespace

BENCHMARK_MAIN();
