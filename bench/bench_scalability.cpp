// E2 (Sec 2.2): scalability. The paper reports that Parallel HAC on the
// distributed platform clusters 200M entities within 4 hours, while
// naive HAC cannot scale (Challenge 2). This bench measures, at laptop
// scale, Parallel HAC vs the exact sequential baseline on the same
// entity graphs: wall-clock, rounds vs merges, and throughput; plus the
// effect of worker threads on the BSP engine.

#include "bench_common.h"
#include "core/sequential_hac.h"
#include "eval/cluster_metrics.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("sizes", "500,1000,2000,4000,8000",
                  "entity counts to sweep");
  flags.AddString("threads", "1,2,4", "worker thread counts");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader(
      "E2 bench_scalability",
      "Parallel HAC generates the taxonomy for 200M entities within 4h on "
      "ODPS; naive HAC does not scale (one merge per scan)");

  std::printf(
      "%-10s %-10s %-12s %-12s %-12s %-14s %-12s %-8s\n", "entities",
      "edges", "par_time_s", "seq_time_s", "par_rounds",
      "merges(par/seq)", "rounds/merges", "NMI_gap");
  for (const std::string& size_text :
       util::Split(flags.GetString("sizes"), ',')) {
    size_t entities = std::strtoull(size_text.c_str(), nullptr, 10);
    auto workload = bench::BuildWorkload(
        bench::ScaledDataset(entities,
                             static_cast<uint64_t>(flags.GetInt64("seed"))),
        core::ShoalOptions{});
    const auto& graph = workload.model.entity_graph();

    // Parallel HAC (re-run standalone so timing excludes the pipeline).
    core::ParallelHacOptions par_options;
    par_options.num_threads = 2;
    par_options.num_partitions = 8;
    core::ParallelHacStats par_stats;
    util::Stopwatch par_timer;
    auto par = core::ParallelHac(graph, par_options, &par_stats);
    double par_seconds = par_timer.ElapsedSeconds();
    SHOAL_CHECK(par.ok()) << par.status().ToString();

    // Exact sequential baseline.
    core::SequentialHacStats seq_stats;
    util::Stopwatch seq_timer;
    auto seq = core::SequentialHac(graph, core::HacOptions{}, &seq_stats);
    double seq_seconds = seq_timer.ElapsedSeconds();
    SHOAL_CHECK(seq.ok()) << seq.status().ToString();

    auto nmi_par = eval::NormalizedMutualInformation(
        par->FlatClusters(), workload.dataset.EntityIntentLabels());
    auto nmi_seq = eval::NormalizedMutualInformation(
        seq->FlatClusters(), workload.dataset.EntityIntentLabels());
    SHOAL_CHECK(nmi_par.ok() && nmi_seq.ok());

    std::printf(
        "%-10zu %-10zu %-12.3f %-12.3f %-12zu %zu/%-10zu %-12.3f %+-8.3f\n",
        entities, graph.num_edges(), par_seconds, seq_seconds,
        par_stats.rounds, par_stats.total_merges, seq_stats.merges,
        static_cast<double>(par_stats.rounds) /
            std::max<size_t>(1, par_stats.total_merges),
        nmi_par.value() - nmi_seq.value());
  }

  std::printf("\nworker-thread scaling at 4000 entities:\n");
  std::printf("%-10s %-12s %-12s %-14s\n", "threads", "time_s", "rounds",
              "msgs");
  {
    auto workload = bench::BuildWorkload(
        bench::ScaledDataset(4000,
                             static_cast<uint64_t>(flags.GetInt64("seed"))),
        core::ShoalOptions{});
    for (const std::string& thread_text :
         util::Split(flags.GetString("threads"), ',')) {
      size_t threads = std::strtoull(thread_text.c_str(), nullptr, 10);
      core::ParallelHacOptions options;
      options.num_threads = threads;
      options.num_partitions = std::max<size_t>(8, threads * 4);
      core::ParallelHacStats stats;
      util::Stopwatch timer;
      auto d = core::ParallelHac(workload.model.entity_graph(), options,
                                 &stats);
      SHOAL_CHECK(d.ok()) << d.status().ToString();
      std::printf("%-10zu %-12.3f %-12zu %-14llu\n", threads,
                  timer.ElapsedSeconds(), stats.rounds,
                  static_cast<unsigned long long>(stats.total_messages));
    }
  }
  std::printf(
      "\nnote: the paper's 200M/4h figure is a 100+ node ODPS deployment;\n"
      "the reproduction checks the *shape*, not absolute wall-clock:\n"
      "  (1) parallel quality == exact greedy quality (NMI_gap ~ 0);\n"
      "  (2) rounds << merges: sequential HAC's critical path is one\n"
      "      strictly-serial heap operation per merge, while Parallel\n"
      "      HAC's is one BSP round for *many* merges — the quantity\n"
      "      that distribution divides by machine count.\n"
      "On one in-process machine the BSP simulation pays its message\n"
      "overhead without the cluster, so par_time_s > seq_time_s here.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
