// E2 (Sec 2.2): scalability. The paper reports that Parallel HAC on the
// distributed platform clusters 200M entities within 4 hours, while
// naive HAC cannot scale (Challenge 2). This bench measures, at laptop
// scale, Parallel HAC vs the exact sequential baseline on the same
// entity graphs: wall-clock, rounds vs merges, and throughput; plus the
// effect of worker threads on the BSP engine.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/entity_graph.h"
#include "core/sequential_hac.h"
#include "eval/cluster_metrics.h"
#include "text/word2vec.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/random.h"

namespace {

using namespace shoal;

// Sorted (u << 32) | v keys of a graph's edge set, for recall overlap.
std::vector<uint64_t> EdgeKeys(const graph::WeightedGraph& g) {
  std::vector<uint64_t> keys;
  keys.reserve(g.num_edges());
  for (const auto& e : g.AllEdges()) {
    keys.push_back((static_cast<uint64_t>(e.u) << 32) | e.v);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --candidate_strategy=lsh: exact vs MinHash/LSH candidate generation on
// the same planted workloads — candidate-stage wall-clock, edge overlap
// (recall; exact rescoring means LSH loses edges but never invents
// them), and the thread-count byte-identity contract. Word vectors are
// a deterministic pseudo-random table rather than a word2vec run: both
// strategies score with the same vectors, and the stage under test is
// candidate generation, not embedding training. Skips the HAC sweeps —
// the JSON this writes (BENCH_lsh.json) is the baseline for the CI
// lsh-recall-gate (perf_diff --mode recall / --mode identity).
int RunLshCompare(const util::FlagParser& flags,
                  const std::vector<size_t>& sizes) {
  bench::PrintHeader(
      "E2 bench_scalability --candidate_strategy=lsh",
      "streaming MinHash/LSH candidate generation vs the exact co-click "
      "path: sub-quadratic wall-clock, CI-gated recall");

  util::JsonValue json_sizes = util::JsonValue::Array();
  std::printf("%-10s %-12s %-12s %-10s %-12s %-12s %-10s %-8s\n",
              "entities", "exact_cand_s", "lsh_cand_s", "speedup",
              "exact_edges", "lsh_edges", "recall", "thr_id");
  for (size_t entities : sizes) {
    auto dataset = data::GenerateDataset(bench::ScaledDataset(
        entities, static_cast<uint64_t>(flags.GetInt64("seed"))));
    SHOAL_CHECK(dataset.ok()) << dataset.status().ToString();
    auto bundle = data::MakeShoalInput(*dataset);
    // Deterministic stand-in vectors (SplitMix64, no platform-dependent
    // distributions), identical for both strategies.
    const size_t vocab = dataset->lexicon.vocab().size();
    text::EmbeddingTable vectors(vocab, 8);
    uint64_t state = static_cast<uint64_t>(flags.GetInt64("seed")) ^
                     0x1c5ba1f00dULL;
    for (size_t v = 0; v < vocab; ++v) {
      for (size_t d = 0; d < 8; ++d) {
        const uint64_t bits = util::SplitMix64(state);
        vectors.Row(v)[d] =
            static_cast<float>(bits >> 40) / 8388608.0f - 1.0f;
      }
    }

    core::EntityGraphOptions exact_options;
    core::EntityGraphStats exact_stats;
    auto exact = core::BuildEntityGraph(bundle.query_item_graph,
                                        bundle.entity_title_words, vectors,
                                        exact_options, &exact_stats);
    SHOAL_CHECK(exact.ok()) << exact.status().ToString();

    core::EntityGraphOptions lsh_options;
    lsh_options.candidate_strategy = core::CandidateStrategy::kMinHashLsh;
    lsh_options.lsh.minhash.bands =
        static_cast<size_t>(flags.GetInt64("lsh_bands"));
    lsh_options.lsh.minhash.rows =
        static_cast<size_t>(flags.GetInt64("lsh_rows"));
    core::EntityGraphStats lsh_stats;
    auto lsh = core::BuildEntityGraph(bundle.query_item_graph,
                                      bundle.entity_title_words, vectors,
                                      lsh_options, &lsh_stats);
    SHOAL_CHECK(lsh.ok()) << lsh.status().ToString();

    const auto exact_keys = EdgeKeys(*exact);
    const auto lsh_keys = EdgeKeys(*lsh);
    std::vector<uint64_t> common;
    std::set_intersection(exact_keys.begin(), exact_keys.end(),
                          lsh_keys.begin(), lsh_keys.end(),
                          std::back_inserter(common));
    const double recall =
        exact_keys.empty()
            ? 1.0
            : static_cast<double>(common.size()) /
                  static_cast<double>(exact_keys.size());

    // Byte-identity across the CI thread matrix: every thread count must
    // reproduce the single-thread LSH graph bit for bit.
    bool thread_identical = true;
    for (size_t threads : {2u, 4u, 8u}) {
      lsh_options.num_threads = threads;
      auto g = core::BuildEntityGraph(bundle.query_item_graph,
                                      bundle.entity_title_words, vectors,
                                      lsh_options, nullptr);
      SHOAL_CHECK(g.ok()) << g.status().ToString();
      const auto base_edges = lsh->AllEdges();
      const auto edges = g->AllEdges();
      if (edges.size() != base_edges.size()) {
        thread_identical = false;
        continue;
      }
      for (size_t i = 0; i < edges.size(); ++i) {
        if (edges[i].u != base_edges[i].u ||
            edges[i].v != base_edges[i].v ||
            edges[i].weight != base_edges[i].weight) {
          thread_identical = false;
          break;
        }
      }
    }

    const double speedup =
        lsh_stats.candidate_seconds > 0.0
            ? exact_stats.candidate_seconds / lsh_stats.candidate_seconds
            : 0.0;
    std::printf("%-10zu %-12.3f %-12.3f %-10.2f %-12zu %-12zu %-10.4f "
                "%-8s\n",
                entities, exact_stats.candidate_seconds,
                lsh_stats.candidate_seconds, speedup, exact_keys.size(),
                lsh_keys.size(), recall,
                thread_identical ? "yes" : "NO");

    util::JsonValue row = util::JsonValue::Object();
    row.Set("entities",
            util::JsonValue::Number(static_cast<double>(entities)));
    row.Set("exact_candidate_seconds",
            util::JsonValue::Number(exact_stats.candidate_seconds));
    row.Set("lsh_candidate_seconds",
            util::JsonValue::Number(lsh_stats.candidate_seconds));
    row.Set("lsh_signature_seconds",
            util::JsonValue::Number(lsh_stats.signature_seconds));
    row.Set("candidate_speedup", util::JsonValue::Number(speedup));
    row.Set("exact_candidate_pairs",
            util::JsonValue::Number(
                static_cast<double>(exact_stats.candidate_pairs)));
    row.Set("lsh_candidate_pairs",
            util::JsonValue::Number(
                static_cast<double>(lsh_stats.candidate_pairs)));
    row.Set("exact_edges", util::JsonValue::Number(
                               static_cast<double>(exact_keys.size())));
    row.Set("lsh_edges", util::JsonValue::Number(
                             static_cast<double>(lsh_keys.size())));
    row.Set("common_edges", util::JsonValue::Number(
                                static_cast<double>(common.size())));
    row.Set("lsh_recall", util::JsonValue::Number(recall));
    row.Set("thread_identical",
            util::JsonValue::Number(thread_identical ? 1.0 : 0.0));
    json_sizes.Append(std::move(row));
  }

  if (!flags.GetString("json_out").empty()) {
    util::JsonValue json = util::JsonValue::Object();
    json.Set("bench", util::JsonValue::Str("bench_scalability"));
    json.Set("mode", util::JsonValue::Str("lsh"));
    json.Set("seed", util::JsonValue::Number(
                         static_cast<double>(flags.GetInt64("seed"))));
    json.Set("hardware_threads",
             util::JsonValue::Number(static_cast<double>(
                 std::thread::hardware_concurrency())));
    json.Set("sizes", std::move(json_sizes));
    auto write_status =
        util::WriteJsonFile(flags.GetString("json_out"), json);
    SHOAL_CHECK(write_status.ok()) << write_status.ToString();
    std::printf("\nwrote %s\n", flags.GetString("json_out").c_str());
  }

  std::printf(
      "\nnote: LSH candidates are exactly rescored (Eq. 1-3), so the LSH\n"
      "graph trades recall (CI floor 0.95, perf_diff --mode recall) for a\n"
      "candidate stage that scales with emitted collisions instead of the\n"
      "square of per-query fanout; thr_id checks the byte-identity\n"
      "contract across {2,4,8} worker threads against 1.\n");
  bench::FinishObs(flags);
  return 0;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("sizes", "500,1000,2000,4000,8000",
                  "entity counts to sweep");
  flags.AddString("threads", "1,2,4", "worker thread counts");
  flags.AddString("graph_threads", "1,2,4,8",
                  "thread counts for the entity-graph stage sweep");
  flags.AddInt64("seed", 2019, "random seed");
  flags.AddString("diffusion", "delta",
                  "HAC diffusion mode: 'delta' (incremental, default) or "
                  "'full' (legacy full-broadcast reference path)");
  flags.AddString("candidate_strategy", "exact",
                  "'exact' runs the HAC scalability sweeps; 'lsh' instead "
                  "compares exact vs MinHash/LSH candidate generation "
                  "(wall-clock, recall, thread identity) at each size");
  flags.AddInt64("lsh_bands",
                 static_cast<int64_t>(core::MinHashConfig().bands),
                 "LSH bands (candidate_strategy=lsh)");
  flags.AddInt64("lsh_rows",
                 static_cast<int64_t>(core::MinHashConfig().rows),
                 "MinHash rows per band (candidate_strategy=lsh)");
  flags.AddBool("json_stats", false,
                "print each pipeline run's ShoalBuildStats as JSON");
  flags.AddString("json_out", "",
                  "write HAC perf metrics (sizes table + thread sweep) to "
                  "this JSON file, e.g. BENCH_hac.json");
  bench::AddObsFlags(flags);
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;
  bench::InitObsFromFlags(flags);

  // The one place --sizes is parsed: the sizes table, its JSON rows, and
  // the stage-scaling section below all iterate this vector.
  std::vector<size_t> sizes;
  for (const std::string& size_text :
       util::Split(flags.GetString("sizes"), ',')) {
    sizes.push_back(std::strtoull(size_text.c_str(), nullptr, 10));
  }
  SHOAL_CHECK(!sizes.empty()) << "--sizes must name at least one size";

  const std::string& strategy = flags.GetString("candidate_strategy");
  SHOAL_CHECK(strategy == "exact" || strategy == "lsh")
      << "--candidate_strategy must be 'exact' or 'lsh'";
  if (strategy == "lsh") return RunLshCompare(flags, sizes);

  bench::PrintHeader(
      "E2 bench_scalability",
      "Parallel HAC generates the taxonomy for 200M entities within 4h on "
      "ODPS; naive HAC does not scale (one merge per scan)");

  const core::DiffusionMode diffusion_mode =
      flags.GetString("diffusion") == "full"
          ? core::DiffusionMode::kFullBroadcast
          : core::DiffusionMode::kDelta;

  util::JsonValue json = util::JsonValue::Object();
  util::JsonValue json_sizes = util::JsonValue::Array();
  util::JsonValue json_threads = util::JsonValue::Array();
  // Smallest size where parallel wall-clock is at or below sequential;
  // -1 when parallel never catches up. The headline number of the delta
  // diffusion rework: full broadcast never crossed over at these sizes.
  double crossover_entities = -1.0;

  std::printf(
      "%-10s %-10s %-12s %-12s %-12s %-14s %-14s %-8s\n", "entities",
      "edges", "par_time_s", "seq_time_s", "par_rounds",
      "merges(par/seq)", "msgs/merge", "NMI_gap");
  for (size_t entities : sizes) {
    auto workload = bench::BuildWorkload(
        bench::ScaledDataset(entities,
                             static_cast<uint64_t>(flags.GetInt64("seed"))),
        core::ShoalOptions{});
    const auto& graph = workload.model.entity_graph();

    // Parallel HAC (re-run standalone so timing excludes the pipeline).
    core::ParallelHacOptions par_options;
    par_options.num_threads = 2;
    par_options.num_partitions = 8;
    par_options.diffusion_mode = diffusion_mode;
    core::ParallelHacStats par_stats;
    util::Stopwatch par_timer;
    auto par = core::ParallelHac(graph, par_options, &par_stats);
    double par_seconds = par_timer.ElapsedSeconds();
    SHOAL_CHECK(par.ok()) << par.status().ToString();

    // Exact sequential baseline.
    core::SequentialHacStats seq_stats;
    util::Stopwatch seq_timer;
    auto seq = core::SequentialHac(graph, core::HacOptions{}, &seq_stats);
    double seq_seconds = seq_timer.ElapsedSeconds();
    SHOAL_CHECK(seq.ok()) << seq.status().ToString();

    auto nmi_par = eval::NormalizedMutualInformation(
        par->FlatClusters(), workload.dataset.EntityIntentLabels());
    auto nmi_seq = eval::NormalizedMutualInformation(
        seq->FlatClusters(), workload.dataset.EntityIntentLabels());
    SHOAL_CHECK(nmi_par.ok() && nmi_seq.ok());

    // Message economy: BSP messages spent per merge decision. The
    // identity-gated quantity in perf_diff --mode messages.
    const double messages_per_merge =
        static_cast<double>(par_stats.total_messages) /
        static_cast<double>(std::max<size_t>(1, par_stats.total_merges));
    if (crossover_entities < 0.0 && par_seconds <= seq_seconds) {
      crossover_entities = static_cast<double>(entities);
    }
    std::printf(
        "%-10zu %-10zu %-12.3f %-12.3f %-12zu %zu/%-10zu %-14.1f %+-8.3f\n",
        entities, graph.num_edges(), par_seconds, seq_seconds,
        par_stats.rounds, par_stats.total_merges, seq_stats.merges,
        messages_per_merge, nmi_par.value() - nmi_seq.value());
    {
      util::JsonValue row = util::JsonValue::Object();
      row.Set("entities", util::JsonValue::Number(
                              static_cast<double>(entities)));
      row.Set("edges", util::JsonValue::Number(
                           static_cast<double>(graph.num_edges())));
      row.Set("par_seconds", util::JsonValue::Number(par_seconds));
      row.Set("seq_seconds", util::JsonValue::Number(seq_seconds));
      row.Set("rounds", util::JsonValue::Number(
                            static_cast<double>(par_stats.rounds)));
      row.Set("merges", util::JsonValue::Number(
                            static_cast<double>(par_stats.total_merges)));
      row.Set("messages",
              util::JsonValue::Number(
                  static_cast<double>(par_stats.total_messages)));
      row.Set("supersteps",
              util::JsonValue::Number(
                  static_cast<double>(par_stats.total_supersteps)));
      row.Set("messages_per_merge",
              util::JsonValue::Number(messages_per_merge));
      row.Set("nmi_gap",
              util::JsonValue::Number(nmi_par.value() - nmi_seq.value()));
      json_sizes.Append(std::move(row));
    }
    if (flags.GetBool("json_stats")) {
      std::printf("build_stats[%zu] = %s\n", entities,
                  workload.model.stats().ToJsonString(/*indent=*/-1).c_str());
    }
  }

  std::printf("\nworker-thread scaling at 4000 entities:\n");
  std::printf("%-10s %-12s %-12s %-14s\n", "threads", "time_s", "rounds",
              "msgs");
  {
    auto workload = bench::BuildWorkload(
        bench::ScaledDataset(4000,
                             static_cast<uint64_t>(flags.GetInt64("seed"))),
        core::ShoalOptions{});
    for (const std::string& thread_text :
         util::Split(flags.GetString("threads"), ',')) {
      size_t threads = std::strtoull(thread_text.c_str(), nullptr, 10);
      core::ParallelHacOptions options;
      options.num_threads = threads;
      options.num_partitions = std::max<size_t>(8, threads * 4);
      options.diffusion_mode = diffusion_mode;
      core::ParallelHacStats stats;
      util::Stopwatch timer;
      auto d = core::ParallelHac(workload.model.entity_graph(), options,
                                 &stats);
      SHOAL_CHECK(d.ok()) << d.status().ToString();
      double seconds = timer.ElapsedSeconds();
      std::printf("%-10zu %-12.3f %-12zu %-14llu\n", threads, seconds,
                  stats.rounds,
                  static_cast<unsigned long long>(stats.total_messages));
      util::JsonValue row = util::JsonValue::Object();
      row.Set("threads",
              util::JsonValue::Number(static_cast<double>(threads)));
      row.Set("seconds", util::JsonValue::Number(seconds));
      row.Set("rounds", util::JsonValue::Number(
                            static_cast<double>(stats.rounds)));
      row.Set("messages", util::JsonValue::Number(
                              static_cast<double>(stats.total_messages)));
      row.Set("messages_per_merge",
              util::JsonValue::Number(
                  static_cast<double>(stats.total_messages) /
                  static_cast<double>(
                      std::max<size_t>(1, stats.total_merges))));
      json_threads.Append(std::move(row));
    }
  }
  // Entity-graph construction is the most expensive offline stage before
  // HAC; its builder shards candidate generation, profiles, and scoring
  // over a thread pool with a deterministic reduction, so the edge set
  // must be byte-identical at every thread count while each stage's
  // wall-clock drops with cores.
  {
    const size_t entities = *std::max_element(sizes.begin(), sizes.end());
    std::printf(
        "\nentity-graph build stage scaling at %zu entities "
        "(%u hardware threads — speedups flatten once the thread count "
        "passes the core count):\n",
        entities, std::thread::hardware_concurrency());
    auto dataset = data::GenerateDataset(bench::ScaledDataset(
        entities, static_cast<uint64_t>(flags.GetInt64("seed"))));
    SHOAL_CHECK(dataset.ok()) << dataset.status().ToString();
    auto bundle = data::MakeShoalInput(*dataset);
    auto corpus = data::BuildTrainingCorpus(*dataset);
    auto w2v = text::Word2Vec::Train(dataset->lexicon.vocab(), corpus,
                                     text::Word2VecOptions{});
    SHOAL_CHECK(w2v.ok()) << w2v.status().ToString();

    std::printf("%-8s %-12s %-12s %-12s %-12s %-10s %-10s %-10s\n",
                "threads", "cand_s", "profile_s", "score_s", "cap_s",
                "total_s", "speedup", "score_x");
    std::vector<graph::WeightedGraph::FullEdge> reference_edges;
    core::EntityGraphStats serial_stats;
    double serial_total = 0.0;
    for (const std::string& thread_text :
         util::Split(flags.GetString("graph_threads"), ',')) {
      size_t threads = std::strtoull(thread_text.c_str(), nullptr, 10);
      core::EntityGraphOptions options;
      options.num_threads = threads;
      core::EntityGraphStats stats;
      util::Stopwatch timer;
      auto g = core::BuildEntityGraph(bundle.query_item_graph,
                                      bundle.entity_title_words,
                                      w2v->vectors(), options, &stats);
      double total = timer.ElapsedSeconds();
      SHOAL_CHECK(g.ok()) << g.status().ToString();
      if (threads == 1) {
        reference_edges = g->AllEdges();
        serial_stats = stats;
        serial_total = total;
      } else if (!reference_edges.empty()) {
        auto edges = g->AllEdges();
        SHOAL_CHECK(edges.size() == reference_edges.size())
            << "parallel edge count diverged from serial";
        for (size_t i = 0; i < edges.size(); ++i) {
          SHOAL_CHECK(edges[i].u == reference_edges[i].u &&
                      edges[i].v == reference_edges[i].v &&
                      edges[i].weight == reference_edges[i].weight)
              << "parallel edge " << i << " diverged from serial";
        }
      }
      std::printf("%-8zu %-12.4f %-12.4f %-12.4f %-12.4f %-10.4f "
                  "%-10.2f %-10.2f\n",
                  threads, stats.candidate_seconds, stats.profile_seconds,
                  stats.scoring_seconds, stats.degree_cap_seconds, total,
                  serial_total > 0.0 ? serial_total / total : 1.0,
                  stats.scoring_seconds > 0.0
                      ? serial_stats.scoring_seconds / stats.scoring_seconds
                      : 0.0);
    }
    std::printf("(speedup = serial total / total; score_x = serial scoring "
                "/ scoring; edge sets verified byte-identical)\n");
  }

  if (!flags.GetString("json_out").empty()) {
    json.Set("bench", util::JsonValue::Str("bench_scalability"));
    json.Set("seed", util::JsonValue::Number(
                         static_cast<double>(flags.GetInt64("seed"))));
    json.Set("hardware_threads",
             util::JsonValue::Number(static_cast<double>(
                 std::thread::hardware_concurrency())));
    json.Set("diffusion", util::JsonValue::Str(
                              flags.GetString("diffusion")));
    json.Set("crossover_entities",
             util::JsonValue::Number(crossover_entities));
    json.Set("sizes", std::move(json_sizes));
    json.Set("thread_sweep", std::move(json_threads));
    auto write_status =
        util::WriteJsonFile(flags.GetString("json_out"), json);
    SHOAL_CHECK(write_status.ok()) << write_status.ToString();
    std::printf("\nwrote %s\n", flags.GetString("json_out").c_str());
  }

  if (crossover_entities >= 0.0) {
    std::printf("\nparallel/sequential crossover: %.0f entities\n",
                crossover_entities);
  } else {
    std::printf("\nparallel/sequential crossover: none at these sizes\n");
  }
  std::printf(
      "\nnote: the paper's 200M/4h figure is a 100+ node ODPS deployment;\n"
      "the reproduction checks the *shape*, not absolute wall-clock:\n"
      "  (1) parallel quality == exact greedy quality (NMI_gap ~ 0);\n"
      "  (2) rounds << merges: sequential HAC's critical path is one\n"
      "      strictly-serial heap operation per merge, while Parallel\n"
      "      HAC's is one BSP round for *many* merges — the quantity\n"
      "      that distribution divides by machine count.\n"
      "  (3) message economy: delta diffusion sends only changed\n"
      "      proposals to neighbours that lack them (msgs/merge above);\n"
      "      --diffusion=full replays the legacy broadcast flood for\n"
      "      comparison — byte-identical dendrograms, ~50x the messages.\n");
  bench::FinishObs(flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
