// E3 (Sec 2.2 + Figure 3): graph-diffusion trade-off. "The smaller the
// number of iterations of graph diffusion is, the larger the number of
// local maximal edges is, and the higher the degree of parallelization."
// The paper fixes the maximum number of iterations to 2. Sweeps k and
// reports first-round local maxima, total rounds, supersteps, messages,
// and resulting quality.

#include "bench_common.h"
#include "eval/cluster_metrics.h"
#include "graph/modularity.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 3000, "entity count");
  flags.AddString("iterations", "1,2,3,4", "diffusion iteration values");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader(
      "E3 bench_diffusion",
      "fewer diffusion iterations -> more local maximal edges -> higher "
      "parallel degree (Figure 3); SHOAL sets max iterations = 2");

  auto workload = bench::BuildWorkload(
      bench::ScaledDataset(
          static_cast<size_t>(flags.GetInt64("entities")),
          static_cast<uint64_t>(flags.GetInt64("seed"))),
      core::ShoalOptions{});
  const auto& graph = workload.model.entity_graph();
  std::printf("entity graph: %zu vertices, %zu edges\n\n",
              graph.num_vertices(), graph.num_edges());

  std::printf("%-6s %-16s %-10s %-12s %-12s %-10s %-12s %-8s\n", "k",
              "round1_merges", "rounds", "supersteps", "messages",
              "time_s", "modularity", "NMI");
  for (const std::string& k_text :
       util::Split(flags.GetString("iterations"), ',')) {
    size_t k = std::strtoull(k_text.c_str(), nullptr, 10);
    core::ParallelHacOptions options;
    options.diffusion_iterations = k;
    options.num_threads = 2;
    core::ParallelHacStats stats;
    util::Stopwatch timer;
    auto d = core::ParallelHac(graph, options, &stats);
    double seconds = timer.ElapsedSeconds();
    SHOAL_CHECK(d.ok()) << d.status().ToString();
    auto modularity = graph::Modularity(graph, d->FlatClusters());
    auto nmi = eval::NormalizedMutualInformation(
        d->FlatClusters(), workload.dataset.EntityIntentLabels());
    SHOAL_CHECK(modularity.ok() && nmi.ok());
    std::printf("%-6zu %-16zu %-10zu %-12zu %-12llu %-10.3f %-12.4f %-8.4f\n",
                k, stats.merges_per_round.empty()
                       ? 0
                       : stats.merges_per_round[0],
                stats.rounds, stats.total_supersteps,
                static_cast<unsigned long long>(stats.total_messages),
                seconds, modularity.value(), nmi.value());
  }
  std::printf(
      "\nexpected shape: round1_merges decreases monotonically in k while\n"
      "quality stays flat — matching the paper's choice of k = 2 as a\n"
      "parallelism/coordination sweet spot.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
