// E11 (Sec 3, deployment): "SHOAL is constructed from ... a sliding
// window containing search queries in the last seven days" and serves
// millions of searches per day — i.e. the taxonomy is rebuilt as the
// window slides. This bench slides a 7-day window one day at a time
// over a 14-day synthetic log and measures (a) rebuild cost and
// (b) taxonomy stability between consecutive days (NMI/ARI of the
// root-topic partitions) — a deployed system needs day-over-day
// continuity, not just one-shot quality.

#include "bench_common.h"
#include "eval/cluster_metrics.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 2000, "entity count");
  flags.AddInt64("days", 7, "window length in days");
  flags.AddInt64("steps", 6, "number of one-day slides");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader(
      "E11 bench_window",
      "SHOAL is built from a 7-day sliding window of search queries and "
      "redeployed as the window advances");

  const size_t entities = static_cast<size_t>(flags.GetInt64("entities"));
  const double window_days = static_cast<double>(flags.GetInt64("days"));
  const size_t steps = static_cast<size_t>(flags.GetInt64("steps"));

  auto data_options = bench::ScaledDataset(
      entities, static_cast<uint64_t>(flags.GetInt64("seed")));
  data_options.log_days = window_days + static_cast<double>(steps);
  data_options.num_clicks =
      static_cast<size_t>(static_cast<double>(data_options.num_clicks) *
                          data_options.log_days / 10.0);
  auto dataset = data::GenerateDataset(data_options);
  SHOAL_CHECK(dataset.ok()) << dataset.status().ToString();

  const uint64_t log_end = dataset->options.log_end_time_sec;
  const uint64_t day = 86400;

  std::printf("log: %zu clicks over %.0f days; window = %.0f days\n\n",
              dataset->clicks.size(), data_options.log_days, window_days);
  std::printf("%-6s %-12s %-8s %-10s %-12s %-12s %-8s\n", "day",
              "win_clicks", "roots", "build_s", "NMI_prev", "ARI_prev",
              "NMI_truth");

  std::vector<uint32_t> previous_labels;
  for (size_t step = 0; step <= steps; ++step) {
    uint64_t window_end =
        log_end - (steps - step) * day;
    uint64_t window_begin =
        window_end - static_cast<uint64_t>(window_days * day);

    data::ShoalInputBundle bundle;
    bundle.query_item_graph =
        data::BuildQueryItemGraph(*dataset, window_begin, window_end);
    for (const auto& entity : dataset->entities) {
      bundle.entity_title_words.push_back(entity.title_words);
      bundle.entity_categories.push_back(entity.category);
    }
    for (const auto& query : dataset->queries) {
      bundle.query_words.push_back(query.words);
      bundle.query_texts.push_back(query.text);
    }
    bundle.vocab = &dataset->lexicon.vocab();

    util::Stopwatch timer;
    auto model = core::BuildShoal(bundle.View(), core::ShoalOptions{});
    double seconds = timer.ElapsedSeconds();
    SHOAL_CHECK(model.ok()) << model.status().ToString();

    auto labels = model->taxonomy().RootLabels();
    auto nmi_truth = eval::NormalizedMutualInformation(
        labels, dataset->EntityIntentLabels());
    SHOAL_CHECK(nmi_truth.ok());
    std::string nmi_prev = "-";
    std::string ari_prev = "-";
    if (!previous_labels.empty()) {
      auto nmi = eval::NormalizedMutualInformation(labels, previous_labels);
      auto ari = eval::AdjustedRandIndex(labels, previous_labels);
      SHOAL_CHECK(nmi.ok() && ari.ok());
      nmi_prev = util::FormatDouble(nmi.value(), 4);
      ari_prev = util::FormatDouble(ari.value(), 4);
    }
    std::printf("%-6zu %-12llu %-8zu %-10.2f %-12s %-12s %-8.4f\n", step,
                static_cast<unsigned long long>(
                    bundle.query_item_graph.total_interactions()),
                model->taxonomy().roots().size(), seconds,
                nmi_prev.c_str(), ari_prev.c_str(), nmi_truth.value());
    previous_labels = std::move(labels);
  }
  std::printf(
      "\nexpected shape: consecutive-day taxonomies agree strongly\n"
      "(NMI_prev near 1) while each day's build stays within the window's\n"
      "click budget — the continuity a deployed taxonomy needs.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
