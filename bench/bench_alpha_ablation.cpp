// E7 (Eq. 3 ablation): the paper sets alpha = 0.7 for combining the
// query-driven and content-driven similarities. Sweeps alpha from 0
// (content only) to 1 (queries only) and scores the resulting taxonomy
// against the planted intents — the combined signal should beat either
// extreme ("SHOAL considers both structural and textual similarities").

#include "bench_common.h"
#include "eval/cluster_metrics.h"
#include "graph/modularity.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 2500, "entity count");
  flags.AddString("alphas", "0,0.2,0.4,0.5,0.6,0.7,0.8,0.9,1",
                  "alpha values");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader("E7 bench_alpha_ablation",
                     "overall similarity S = alpha*Sq + (1-alpha)*Sc with "
                     "alpha = 0.7 (Eq. 3)");

  std::printf("%-8s %-10s %-8s %-8s %-8s %-12s\n", "alpha", "edges",
              "roots", "NMI", "purity", "modularity");
  for (const std::string& alpha_text :
       util::Split(flags.GetString("alphas"), ',')) {
    double alpha = std::strtod(alpha_text.c_str(), nullptr);
    core::ShoalOptions options;
    options.entity_graph.alpha = alpha;
    auto workload = bench::BuildWorkload(
        bench::ScaledDataset(
            static_cast<size_t>(flags.GetInt64("entities")),
            static_cast<uint64_t>(flags.GetInt64("seed"))),
        options);
    auto labels = workload.model.taxonomy().RootLabels();
    auto truth = workload.dataset.EntityIntentLabels();
    auto nmi = eval::NormalizedMutualInformation(labels, truth);
    auto purity = eval::Purity(labels, truth);
    auto modularity =
        graph::Modularity(workload.model.entity_graph(), labels);
    SHOAL_CHECK(nmi.ok() && purity.ok());
    std::printf("%-8.2f %-10zu %-8zu %-8.4f %-8.4f %-12s\n", alpha,
                workload.model.entity_graph().num_edges(),
                workload.model.taxonomy().roots().size(), nmi.value(),
                purity.value(),
                modularity.ok()
                    ? util::FormatDouble(modularity.value(), 4).c_str()
                    : "n/a");
  }
  std::printf(
      "\nexpected shape: quality peaks at intermediate alpha (the paper "
      "uses 0.7)\nand degrades at both extremes.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
