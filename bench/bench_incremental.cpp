// Incremental maintenance bench (DESIGN.md §13): one daemon cycle vs a
// from-scratch rebuild of the same sliding window, on the planted
// multi-day drift workload.
//
// Per entity tier, the harness warms a TaxonomyDaemon through a full
// window, then measures the next day's incremental cycle against a
// from-scratch pipeline over the identical final window (entity graph +
// HAC + taxonomy + all descriptions + index compile/write; the static
// word2vec embedding and the day-file read are common to both worlds
// and excluded from both sides). It also reports:
//
//   * stability — of the previous cycle's topics with no member entity
//     incident to a changed standing-store edge, the fraction that
//     survive the cycle bit-identical (members, ranking scores,
//     description). The CI gate floors this at 0.95.
//   * speedup — full_rebuild_seconds / incremental_seconds, floored at
//     5x by the same gate.
//   * graph_identical — the incrementally maintained entity graph,
//     materialized, is byte-identical to a from-scratch build of the
//     window (weights compared bitwise).
//   * thread_identical — daemons at --det_threads thread counts publish
//     byte-identical final index files.
//
// The count leaves (delta entries, dirty entities, store edges, topic
// counts) are pure functions of the seeded workload and gate under
// perf_diff.py --mode identity; stability and speedup gate under
// --mode incremental (exit 6). The JSON this writes
// (BENCH_incremental.json) is the committed baseline for both gates.

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/entity_graph.h"
#include "core/parallel_hac.h"
#include "core/taxonomy.h"
#include "core/topic_describer.h"
#include "daemon/daemon.h"
#include "data/drift_log.h"
#include "serve/serving_index.h"
#include "util/tsv.h"

namespace shoal::bench {
namespace {

std::vector<size_t> ParseSizeList(const std::string& csv) {
  std::vector<size_t> out;
  for (const std::string& part : util::Split(csv, ',')) {
    out.push_back(static_cast<size_t>(std::stoull(part)));
  }
  return out;
}

data::DriftOptions TierWorkload(size_t entities, size_t window_days,
                                size_t measure_days, uint64_t seed) {
  data::DriftOptions options;
  options.catalog.num_entities = entities;
  options.catalog.num_queries = std::max<size_t>(200, entities * 3 / 4);
  // Keep ~60 entities per leaf intent as the tier grows (the
  // ScaledDataset convention of the other benches).
  options.catalog.num_root_intents = std::max<size_t>(4, entities / 180);
  options.catalog.children_per_root = 3;
  options.catalog.num_departments = std::max<size_t>(4, entities / 500);
  options.catalog.leaves_per_department = 8;
  options.catalog.seed = seed;
  options.num_days = window_days + measure_days;  // post-warmup days measure
  options.background_pairs = entities * 3;
  options.drift_clicks_per_day = std::max<size_t>(500, entities / 4);
  // Keep the drift concentrated on the day's hot intents: uniform noise
  // clicks manufacture co-click bridges between otherwise unrelated
  // intents, fusing the entity graph into components far larger than
  // the drift's true footprint — which is precisely the regime where
  // incremental maintenance has nothing to offer. Production drift is
  // head-heavy, not uniform.
  options.click_noise = 0.002;
  return options;
}

// One topic's identity-relevant content, captured before the measured
// cycle so stability can be judged by byte comparison afterwards.
struct TopicImage {
  std::vector<uint32_t> entities;  // sorted members
  std::vector<core::ScoredQuery> ranking;
  std::vector<std::string> description;
};

std::map<std::vector<uint32_t>, TopicImage> CaptureTopics(
    const core::Taxonomy& taxonomy,
    const std::vector<std::vector<core::ScoredQuery>>& rankings) {
  std::map<std::vector<uint32_t>, TopicImage> images;
  for (uint32_t t = 0; t < taxonomy.num_topics(); ++t) {
    TopicImage image;
    image.entities = taxonomy.topic(t).entities;
    std::sort(image.entities.begin(), image.entities.end());
    image.ranking = rankings[t];
    image.description = taxonomy.topic(t).description;
    images.emplace(image.entities, std::move(image));
  }
  return images;
}

bool SameRanking(const std::vector<core::ScoredQuery>& a,
                 const std::vector<core::ScoredQuery>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].query != b[i].query ||
        a[i].representativeness != b[i].representativeness ||
        a[i].popularity != b[i].popularity ||
        a[i].concentration != b[i].concentration) {
      return false;
    }
  }
  return true;
}

// Entities incident to any standing-store edge that changed between two
// store snapshots (added, removed, or reweighted) — the delta's actual
// footprint on the graph, independent of the daemon's own dirty-set
// bookkeeping.
std::set<uint32_t> StoreDirtyEntities(
    const std::vector<core::ScoredEdge>& before,
    const std::vector<core::ScoredEdge>& after) {
  std::map<std::pair<uint32_t, uint32_t>, double> old_edges;
  for (const auto& e : before) old_edges[{e.u, e.v}] = e.s;
  std::set<uint32_t> dirty;
  std::map<std::pair<uint32_t, uint32_t>, double> new_edges;
  for (const auto& e : after) new_edges[{e.u, e.v}] = e.s;
  for (const auto& [key, score] : new_edges) {
    auto it = old_edges.find(key);
    if (it == old_edges.end() || it->second != score) {
      dirty.insert(key.first);
      dirty.insert(key.second);
    }
  }
  for (const auto& [key, score] : old_edges) {
    if (!new_edges.count(key)) {
      dirty.insert(key.first);
      dirty.insert(key.second);
    }
  }
  return dirty;
}

bool SameWeightedGraph(const graph::WeightedGraph& a,
                       const graph::WeightedGraph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  auto ea = a.AllEdges();
  auto eb = b.AllEdges();
  for (size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].u != eb[i].u || ea[i].v != eb[i].v ||
        ea[i].weight != eb[i].weight) {
      return false;
    }
  }
  return true;
}

std::string FileBytes(const std::string& path) {
  auto read = util::ReadTextFile(path);
  SHOAL_CHECK(read.ok()) << read.status().ToString();
  return std::move(read).value();
}

// One measured incremental cycle (a post-warmup day sliding the window).
struct CycleResult {
  size_t day = 0;  // spool day index
  daemon::CycleReport report;
  size_t store_edges = 0;
  size_t dirty_entities = 0;
  size_t untouched_topics = 0;
  size_t stable_topics = 0;
  double stability = 1.0;
  double incremental_seconds = 0.0;
};

struct TierResult {
  size_t entities = 0;
  std::vector<CycleResult> cycles;
  // Gate values over the measured cycles: the median cycle time (noise
  // robustness) against one rebuild of the final window, and the worst
  // per-cycle stability.
  double stability = 1.0;
  double incremental_seconds = 0.0;
  double full_rebuild_seconds = 0.0;
  double rebuild_pre_describe_seconds = 0.0;
  double speedup = 0.0;
  bool graph_identical = false;
  bool thread_identical = true;
};

// Fresh daemon over `spool`, run through every spooled day. Returns the
// final published index bytes.
std::string RunAllDays(const daemon::DaemonOptions& options,
                       size_t expect_cycles) {
  auto created = daemon::TaxonomyDaemon::Create(options);
  SHOAL_CHECK(created.ok()) << created.status().ToString();
  auto& daemon = *created.value();
  size_t cycles = 0;
  while (true) {
    auto report = daemon.RunOnce();
    SHOAL_CHECK(report.ok()) << report.status().ToString();
    if (!report->has_value()) break;
    ++cycles;
  }
  SHOAL_CHECK(cycles == expect_cycles)
      << cycles << " cycles, expected " << expect_cycles;
  return FileBytes(options.index_path);
}

TierResult RunTier(size_t entities, size_t window_days, size_t measure_days,
                   uint64_t seed, const std::vector<size_t>& det_threads,
                   const std::string& work_dir) {
  namespace fs = std::filesystem;
  const std::string tier_dir =
      work_dir + "/tier_" + std::to_string(entities);
  fs::remove_all(tier_dir);
  const std::string spool = tier_dir + "/spool";
  fs::create_directories(spool);

  auto log = data::GenerateDriftLog(
      TierWorkload(entities, window_days, measure_days, seed));
  SHOAL_CHECK(log.ok()) << log.status().ToString();
  SHOAL_CHECK(data::ExportDriftCatalog(*log, spool).ok());
  for (size_t d = 0; d < log->days.size(); ++d) {
    SHOAL_CHECK(data::ExportDriftDay(*log, d, spool).ok());
  }

  daemon::DaemonOptions options;
  options.spool_dir = spool;
  options.index_path = tier_dir + "/published.idx";
  options.window_days = window_days;  // snapshotting off: neither world
                                      // checkpoints in this comparison
  auto created = daemon::TaxonomyDaemon::Create(options);
  SHOAL_CHECK(created.ok()) << created.status().ToString();
  auto& live = *created.value();

  // Warm up through the first full window (days 0..window-1).
  for (size_t d = 0; d < window_days; ++d) {
    auto report = live.RunOnce();
    SHOAL_CHECK(report.ok()) << report.status().ToString();
    SHOAL_CHECK(report->has_value());
  }
  // Measured cycles: every remaining day slides the window by one.
  TierResult result;
  result.entities = entities;
  const size_t num_days = log->days.size();
  for (size_t d = window_days; d < num_days; ++d) {
    auto store_before = live.graph().StoreEdges();
    auto topics_before = CaptureTopics(live.taxonomy(), live.rankings());

    CycleResult cycle;
    cycle.day = d;
    {
      auto report = live.RunOnce();
      SHOAL_CHECK(report.ok()) << report.status().ToString();
      SHOAL_CHECK(report->has_value());
      cycle.report = **report;
    }
    SHOAL_CHECK(!cycle.report.full_rebuild)
        << "measured cycle fell back to rebuild";
    cycle.incremental_seconds =
        cycle.report.graph_seconds + cycle.report.cluster_seconds +
        cycle.report.describe_seconds + cycle.report.publish_seconds;

    // Stability over the delta's store footprint.
    auto store_after = live.graph().StoreEdges();
    cycle.store_edges = store_after.size();
    auto dirty = StoreDirtyEntities(store_before, store_after);
    cycle.dirty_entities = dirty.size();
    auto topics_after = CaptureTopics(live.taxonomy(), live.rankings());
    for (const auto& [members, image] : topics_before) {
      bool untouched = true;
      for (uint32_t e : members) {
        if (dirty.count(e)) {
          untouched = false;
          break;
        }
      }
      if (!untouched) continue;
      ++cycle.untouched_topics;
      auto it = topics_after.find(members);
      if (it != topics_after.end() &&
          SameRanking(image.ranking, it->second.ranking) &&
          image.description == it->second.description) {
        ++cycle.stable_topics;
      }
    }
    cycle.stability =
        cycle.untouched_topics == 0
            ? 1.0
            : static_cast<double>(cycle.stable_topics) /
                  static_cast<double>(cycle.untouched_topics);
    result.cycles.push_back(std::move(cycle));
  }
  SHOAL_CHECK(!result.cycles.empty());
  std::vector<double> cycle_seconds;
  result.stability = 1.0;
  for (const auto& cycle : result.cycles) {
    cycle_seconds.push_back(cycle.incremental_seconds);
    result.stability = std::min(result.stability, cycle.stability);
  }
  std::sort(cycle_seconds.begin(), cycle_seconds.end());
  result.incremental_seconds = cycle_seconds[cycle_seconds.size() / 2];

  // From-scratch pipeline over the identical final window, timed over
  // the stages the incremental cycle replaces.
  graph::BipartiteGraph window_graph =
      data::BuildWindowGraph(*log, num_days - window_days, num_days);
  util::Stopwatch rebuild_watch;
  auto scratch_graph =
      core::BuildEntityGraph(window_graph, live.title_words(),
                             live.word_vectors(), options.entity_graph);
  SHOAL_CHECK(scratch_graph.ok()) << scratch_graph.status().ToString();
  auto scratch_dendrogram = core::ParallelHac(*scratch_graph, options.hac);
  SHOAL_CHECK(scratch_dendrogram.ok())
      << scratch_dendrogram.status().ToString();
  std::vector<uint32_t> categories;
  categories.reserve(live.catalog().items.size());
  for (const auto& item : live.catalog().items) {
    categories.push_back(item.category);
  }
  core::Taxonomy scratch_taxonomy = core::Taxonomy::Build(
      *scratch_dendrogram, categories, options.taxonomy);
  std::vector<std::vector<uint32_t>> query_words;
  std::vector<std::string> query_texts;
  for (const auto& query : live.catalog().queries) {
    query_words.push_back(query.words);
    query_texts.push_back(query.text);
  }
  core::DescriberInput describe_input;
  describe_input.taxonomy = &scratch_taxonomy;
  describe_input.query_item_graph = &window_graph;
  describe_input.query_words = &query_words;
  describe_input.query_texts = &query_texts;
  describe_input.entity_title_words = &live.title_words();
  std::vector<uint32_t> all_topics(scratch_taxonomy.num_topics());
  for (uint32_t t = 0; t < all_topics.size(); ++t) all_topics[t] = t;
  result.rebuild_pre_describe_seconds = rebuild_watch.ElapsedSeconds();
  auto scratch_rankings = core::TopicDescriber::DescribeTopics(
      scratch_taxonomy, describe_input, options.describer, all_topics);
  SHOAL_CHECK(scratch_rankings.ok()) << scratch_rankings.status().ToString();
  serve::CompileOptions compile_options;
  compile_options.version = result.cycles.back().report.published_version;
  compile_options.max_postings_per_query = options.max_postings_per_query;
  auto scratch_index =
      serve::BuildServingIndexData(scratch_taxonomy, *scratch_rankings,
                                   query_texts, &categories, compile_options);
  SHOAL_CHECK(scratch_index.ok()) << scratch_index.status().ToString();
  SHOAL_CHECK(serve::WriteServingIndexFile(tier_dir + "/scratch.idx",
                                           scratch_index.value())
                  .ok());
  result.full_rebuild_seconds = rebuild_watch.ElapsedSeconds();
  result.speedup = result.incremental_seconds > 0.0
                       ? result.full_rebuild_seconds /
                             result.incremental_seconds
                       : 0.0;

  // The maintained graph is the from-scratch graph, bit for bit.
  auto maintained = live.graph().Materialize();
  SHOAL_CHECK(maintained.ok()) << maintained.status().ToString();
  result.graph_identical = SameWeightedGraph(*scratch_graph, *maintained);

  // Thread determinism: fresh daemons at each --det_threads count
  // publish final index bytes identical to the measured daemon's.
  const std::string reference_bytes = FileBytes(options.index_path);
  for (size_t threads : det_threads) {
    daemon::DaemonOptions variant = options;
    variant.num_threads = threads;
    variant.index_path =
        tier_dir + "/published_t" + std::to_string(threads) + ".idx";
    if (RunAllDays(variant, num_days) != reference_bytes) {
      result.thread_identical = false;
      SHOAL_LOG(kError) << "published index at " << threads
                       << " threads diverged (tier " << entities << ")";
    }
  }

  fs::remove_all(tier_dir);
  return result;
}

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("sizes", "5000,20000", "entity tiers, comma separated");
  flags.AddInt64("window", 3, "sliding-window length in days");
  flags.AddInt64("measure_days", 3,
                 "post-warmup days measured; the gate takes the median "
                 "cycle time and the worst per-cycle stability");
  flags.AddInt64("seed", 2019, "workload seed");
  flags.AddString("det_threads", "2,4,8",
                  "extra thread counts for the byte-identity sweep");
  flags.AddString("json_out", "", "write machine-readable results here");
  AddObsFlags(flags);
  auto parsed = flags.Parse(argc, argv);
  SHOAL_CHECK(parsed.ok()) << parsed.ToString();
  if (flags.help_requested()) return 0;
  InitObsFromFlags(flags);

  PrintHeader("bench_incremental — daemon cycle vs full rebuild",
              "incremental window maintenance amortizes the rebuild: one "
              "day's delta re-clusters only dirty subtrees while untouched "
              "topics ride across bit-identical");

  const auto sizes = ParseSizeList(flags.GetString("sizes"));
  const auto det_threads = ParseSizeList(flags.GetString("det_threads"));
  const size_t window = static_cast<size_t>(flags.GetInt64("window"));
  const size_t measure_days =
      static_cast<size_t>(flags.GetInt64("measure_days"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "shoal_bench_incremental")
          .string();

  std::printf("%8s %10s %10s %8s %9s %7s %7s %6s %6s\n", "entities",
              "rebuild_s", "incr_s", "speedup", "stability", "dirty",
              "topics", "graph", "thr");
  util::JsonValue json_sizes = util::JsonValue::Array();
  bool all_identical = true;
  for (size_t entities : sizes) {
    TierResult r = RunTier(entities, window, measure_days, seed, det_threads,
                           work_dir);
    std::printf("%8zu %10.3f %10.3f %7.1fx %9.4f %7zu %7zu %6s %6s\n",
                r.entities, r.full_rebuild_seconds, r.incremental_seconds,
                r.speedup, r.stability, r.cycles.back().dirty_entities,
                r.cycles.back().report.num_topics,
                r.graph_identical ? "ok" : "DIFF",
                r.thread_identical ? "ok" : "DIFF");
    for (const auto& c : r.cycles) {
      std::printf("%8s  day %zu: graph=%.3fs splice=%.3fs describe=%.3fs "
                  "publish=%.3fs dirty_frac=%.4f stability=%.4f\n", "",
                  c.day, c.report.graph_seconds, c.report.cluster_seconds,
                  c.report.describe_seconds, c.report.publish_seconds,
                  c.report.dirty_fraction, c.stability);
    }
    all_identical = all_identical && r.graph_identical && r.thread_identical;

    util::JsonValue row = util::JsonValue::Object();
    row.Set("entities",
            util::JsonValue::Number(static_cast<double>(r.entities)));
    row.Set("full_rebuild_seconds",
            util::JsonValue::Number(r.full_rebuild_seconds));
    row.Set("incremental_seconds",
            util::JsonValue::Number(r.incremental_seconds));
    row.Set("speedup", util::JsonValue::Number(r.speedup));
    row.Set("stability", util::JsonValue::Number(r.stability));
    row.Set("graph_identical",
            util::JsonValue::Number(r.graph_identical ? 1.0 : 0.0));
    row.Set("thread_identical",
            util::JsonValue::Number(r.thread_identical ? 1.0 : 0.0));
    util::JsonValue json_cycles = util::JsonValue::Array();
    for (const auto& c : r.cycles) {
      util::JsonValue cycle = util::JsonValue::Object();
      cycle.Set("day", util::JsonValue::Number(static_cast<double>(c.day)));
      cycle.Set("incremental_seconds",
                util::JsonValue::Number(c.incremental_seconds));
      cycle.Set("stability", util::JsonValue::Number(c.stability));
      cycle.Set("dirty_fraction",
                util::JsonValue::Number(c.report.dirty_fraction));
      cycle.Set("delta_entries",
                util::JsonValue::Number(
                    static_cast<double>(c.report.delta.delta_entries)));
      cycle.Set("dirty_entities",
                util::JsonValue::Number(
                    static_cast<double>(c.dirty_entities)));
      cycle.Set("edges",
                util::JsonValue::Number(static_cast<double>(c.store_edges)));
      cycle.Set("num_topics",
                util::JsonValue::Number(
                    static_cast<double>(c.report.num_topics)));
      cycle.Set("touched_topics",
                util::JsonValue::Number(
                    static_cast<double>(c.report.touched_topics)));
      cycle.Set("carried_topics",
                util::JsonValue::Number(
                    static_cast<double>(c.report.carried_topics)));
      cycle.Set("untouched_topics",
                util::JsonValue::Number(
                    static_cast<double>(c.untouched_topics)));
      cycle.Set("stable_topics",
                util::JsonValue::Number(
                    static_cast<double>(c.stable_topics)));
      json_cycles.Append(std::move(cycle));
    }
    row.Set("cycles", std::move(json_cycles));
    json_sizes.Append(std::move(row));
  }

  if (!flags.GetString("json_out").empty()) {
    util::JsonValue json = util::JsonValue::Object();
    json.Set("bench", util::JsonValue::Str("bench_incremental"));
    json.Set("seed", util::JsonValue::Number(static_cast<double>(seed)));
    json.Set("window_days",
             util::JsonValue::Number(static_cast<double>(window)));
    json.Set("sizes", std::move(json_sizes));
    auto status =
        util::WriteJsonFile(flags.GetString("json_out"), json);
    SHOAL_CHECK(status.ok()) << status.ToString();
    std::printf("wrote %s\n", flags.GetString("json_out").c_str());
  }
  FinishObs(flags);
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace shoal::bench

int main(int argc, char** argv) { return shoal::bench::Run(argc, argv); }
