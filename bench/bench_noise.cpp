// E12 (robustness ablation): how gracefully does the pipeline degrade as
// the click log gets noisier? The paper's production log has organic
// noise (misclicks, exploration); the generator's `click_noise` knob
// sweeps it. Reports taxonomy quality and the expert-precision metric
// per noise level — the reproduction analogue of "how dirty can the log
// be before the 98% claim breaks".

#include "bench_common.h"
#include "eval/cluster_metrics.h"
#include "eval/precision_eval.h"
#include "graph/modularity.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddInt64("entities", 2000, "entity count");
  flags.AddString("noise", "0,0.05,0.1,0.2,0.3,0.4", "click-noise sweep");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader(
      "E12 bench_noise",
      "robustness ablation: taxonomy quality vs click-log noise (paper's "
      "log has organic misclick/exploration noise)");

  std::printf("%-8s %-10s %-8s %-8s %-8s %-12s %-12s\n", "noise", "edges",
              "roots", "NMI", "purity", "modularity", "precision");
  for (const std::string& noise_text :
       util::Split(flags.GetString("noise"), ',')) {
    double noise = std::strtod(noise_text.c_str(), nullptr);
    auto data_options = bench::ScaledDataset(
        static_cast<size_t>(flags.GetInt64("entities")),
        static_cast<uint64_t>(flags.GetInt64("seed")));
    data_options.click_noise = noise;
    auto workload =
        bench::BuildWorkload(data_options, core::ShoalOptions{});

    auto labels = workload.model.taxonomy().RootLabels();
    auto truth = workload.dataset.EntityIntentLabels();
    auto nmi = eval::NormalizedMutualInformation(labels, truth);
    auto purity = eval::Purity(labels, truth);
    auto modularity =
        graph::Modularity(workload.model.entity_graph(), labels);
    eval::PrecisionEvalOptions precision_options;
    precision_options.topics_to_sample = 1000;
    precision_options.items_per_topic = 100;
    auto precision = eval::EvaluatePlacementPrecision(
        workload.model.taxonomy(), truth, precision_options);
    SHOAL_CHECK(nmi.ok() && purity.ok() && precision.ok());
    std::printf("%-8.2f %-10zu %-8zu %-8.4f %-8.4f %-12s %-12.4f\n", noise,
                workload.model.entity_graph().num_edges(),
                workload.model.taxonomy().roots().size(), nmi.value(),
                purity.value(),
                modularity.ok()
                    ? util::FormatDouble(modularity.value(), 4).c_str()
                    : "n/a",
                precision->precision);
  }
  std::printf(
      "\nexpected shape: quality degrades smoothly — placement precision\n"
      "stays high well past realistic noise levels (~5-10%%), because the\n"
      "Jaccard coalition averages noise out across many queries.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
