#!/usr/bin/env python3
"""Exit-code contract tests for perf_diff.py, run via ctest.

The CI perf job depends on the split semantics: `--mode identity` is a
hard gate (exit 1 on any run-identity drift), `--mode timing` is
informational (exit 0 regardless of deltas, unless --fail_above).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

_SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "perf_diff.py")

_BASELINE = {
    "hac": {"rounds": 12, "merges": 340, "hac_seconds": 1.0},
    "crossover_entities": -1.0,
    "sweep": [
        {"entities": 500, "build_seconds": 0.5, "edges": 9000,
         "messages_per_merge": 4.7},
        {"entities": 1000, "build_seconds": 1.5, "edges": 21000,
         "messages_per_merge": 4.9},
    ],
}

# A BENCH_serving.json-shaped document: endpoint rows aligned by "name",
# with identity leaves (errors, index_version) next to timing leaves,
# plus the open-loop quantile section the latency mode gates.
_SERVING = {
    "bench": "bench_serving",
    "index_version": 1,
    "endpoints": [
        {"name": "/v1/query", "errors": 0, "qps": 50000.0, "p50_us": 20.0,
         "p90_us": 31.0, "p99_us": 40.0, "p999_us": 55.0},
        {"name": "/healthz", "errors": 0, "qps": 90000.0, "p50_us": 8.0,
         "p90_us": 12.0, "p99_us": 15.0, "p999_us": 19.0},
    ],
    "open_loop": {
        "rate_per_sec": 2000.0, "duration_sec": 5.0, "connections": 4,
        "requests": 10000, "errors": 0, "achieved_rps": 1998.0,
        "p50_us": 120.0, "p90_us": 340.0, "p99_us": 900.0,
        "p999_us": 2400.0, "max_us": 3100.0,
    },
}


# A BENCH_lsh.json-shaped document: per-size LSH-vs-exact rows with the
# lsh_recall leaves the recall mode gates and the deterministic counter
# leaves the identity mode pins.
_LSH = {
    "bench": "bench_scalability",
    "mode": "lsh",
    "seed": 2019,
    "sizes": [
        {"entities": 2000, "exact_candidate_seconds": 0.16,
         "lsh_candidate_seconds": 0.015, "candidate_speedup": 10.4,
         "exact_candidate_pairs": 221000, "lsh_candidate_pairs": 195000,
         "exact_edges": 26624, "lsh_edges": 26557, "common_edges": 26557,
         "lsh_recall": 0.9975, "thread_identical": 1},
        {"entities": 4000, "exact_candidate_seconds": 0.35,
         "lsh_candidate_seconds": 0.038, "candidate_speedup": 9.2,
         "exact_candidate_pairs": 450000, "lsh_candidate_pairs": 401000,
         "exact_edges": 47985, "lsh_edges": 47772, "common_edges": 47772,
         "lsh_recall": 0.9956, "thread_identical": 1},
    ],
}


# A BENCH_incremental.json-shaped document: per-tier daemon-vs-rebuild
# rows with the stability/speedup leaves the incremental mode gates,
# per-cycle breakdowns keyed by "day", and the deterministic counter
# leaves the identity mode pins.
_INCREMENTAL = {
    "bench": "bench_incremental",
    "seed": 2019,
    "window_days": 3,
    "sizes": [
        {"entities": 5000, "full_rebuild_seconds": 1.1,
         "incremental_seconds": 0.28, "speedup": 3.9, "stability": 0.9995,
         "graph_identical": 1, "thread_identical": 1,
         "cycles": [
             {"day": 3, "incremental_seconds": 0.28, "stability": 0.9995,
              "delta_entries": 2344, "dirty_entities": 414,
              "num_topics": 2076, "touched_topics": 202,
              "carried_topics": 1874, "untouched_topics": 1875,
              "stable_topics": 1874},
             {"day": 4, "incremental_seconds": 0.27, "stability": 1.0,
              "delta_entries": 2310, "dirty_entities": 380,
              "num_topics": 2080, "touched_topics": 190,
              "carried_topics": 1890, "untouched_topics": 1890,
              "stable_topics": 1890},
         ]},
        {"entities": 20000, "full_rebuild_seconds": 5.1,
         "incremental_seconds": 0.75, "speedup": 6.8, "stability": 0.9777,
         "graph_identical": 1, "thread_identical": 1,
         "cycles": [
             {"day": 3, "incremental_seconds": 0.75, "stability": 0.9777,
              "delta_entries": 5600, "dirty_entities": 2100,
              "num_topics": 8300, "touched_topics": 900,
              "carried_topics": 7400, "untouched_topics": 7410,
              "stable_topics": 7245},
         ]},
    ],
}


def _with(base, **updates):
    doc = json.loads(json.dumps(base))
    for dotted, value in updates.items():
        node = doc
        *parents, leaf = dotted.split(".")
        for key in parents:
            node = node[int(key)] if key.isdigit() else node[key]
        node[leaf] = value
    return doc


class PerfDiffExitCodes(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory(prefix="shoal_perf_diff_")
        self.addCleanup(self._dir.cleanup)

    def _write(self, name, doc):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def _run(self, old, new, *flags):
        return subprocess.run(
            [sys.executable, _SCRIPT, self._write("old.json", old),
             self._write("new.json", new), *flags],
            capture_output=True, text=True)

    def test_identical_runs_pass_every_mode(self):
        for mode in ("all", "identity", "timing"):
            result = self._run(_BASELINE, _BASELINE, "--mode", mode)
            self.assertEqual(result.returncode, 0, result.stdout)

    def test_timing_drift_is_informational(self):
        slower = _with(_BASELINE, **{"hac.hac_seconds": 97.0,
                                     "sweep.0.build_seconds": 42.0})
        for mode in ("all", "identity", "timing"):
            result = self._run(_BASELINE, slower, "--mode", mode)
            self.assertEqual(result.returncode, 0, result.stdout)
        result = self._run(_BASELINE, slower, "--mode", "timing")
        self.assertIn("hac_seconds", result.stdout)

    def test_identity_drift_fails_identity_and_all(self):
        drifted = _with(_BASELINE, **{"hac.merges": 341})
        for mode, expected in (("identity", 1), ("all", 1), ("timing", 0)):
            result = self._run(_BASELINE, drifted, "--mode", mode)
            self.assertEqual(result.returncode, expected,
                             f"mode={mode}: {result.stdout}")
        result = self._run(_BASELINE, drifted, "--mode", "identity")
        self.assertIn("IDENTITY MISMATCH", result.stdout)
        self.assertIn("merges", result.stdout)

    def test_missing_identity_leaf_fails(self):
        pruned = json.loads(json.dumps(_BASELINE))
        del pruned["hac"]["rounds"]
        result = self._run(_BASELINE, pruned, "--mode", "identity")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("missing from candidate", result.stdout)

    def test_keyed_array_rows_align_despite_reordering(self):
        reordered = json.loads(json.dumps(_BASELINE))
        reordered["sweep"].reverse()
        result = self._run(_BASELINE, reordered, "--mode", "identity")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_fail_above_gates_timing_regressions(self):
        slower = _with(_BASELINE, **{"hac.hac_seconds": 2.0})
        ok = self._run(_BASELINE, slower, "--mode", "timing",
                       "--fail_above", "150")
        self.assertEqual(ok.returncode, 0, ok.stdout)
        bad = self._run(_BASELINE, slower, "--mode", "timing",
                        "--fail_above", "50")
        self.assertEqual(bad.returncode, 1, bad.stdout)
        self.assertIn("FAIL", bad.stdout)

    def test_serving_timing_drift_is_informational(self):
        slower = _with(_SERVING, **{"endpoints.0.qps": 20000.0,
                                    "endpoints.1.p99_us": 80.0})
        result = self._run(_SERVING, slower, "--mode", "identity")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_serving_errors_and_version_are_identity(self):
        erroring = _with(_SERVING, **{"endpoints.0.errors": 3})
        result = self._run(_SERVING, erroring, "--mode", "identity")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("errors", result.stdout)

        reversioned = _with(_SERVING, **{"index_version": 2})
        result = self._run(_SERVING, reversioned, "--mode", "identity")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("index_version", result.stdout)

    def test_serving_missing_endpoint_is_identity_failure(self):
        pruned = json.loads(json.dumps(_SERVING))
        del pruned["endpoints"][1]
        result = self._run(_SERVING, pruned, "--mode", "identity")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("healthz", result.stdout)

    def test_speedups_never_fail(self):
        faster = _with(_BASELINE, **{"hac.hac_seconds": 0.1})
        result = self._run(_BASELINE, faster, "--mode", "all",
                           "--fail_above", "5")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_message_economy_fields_are_identity(self):
        # messages_per_merge and crossover_entities join the hard gate:
        # both are deterministic functions of the run, so any drift is
        # an identity failure in the default CI comparison.
        chattier = _with(_BASELINE, **{"sweep.0.messages_per_merge": 9.4})
        result = self._run(_BASELINE, chattier, "--mode", "identity")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("messages_per_merge", result.stdout)

        crossed = _with(_BASELINE, **{"crossover_entities": 500.0})
        result = self._run(_BASELINE, crossed, "--mode", "identity")
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("crossover_entities", result.stdout)

    def test_messages_mode_gates_regressions_with_exit_3(self):
        # Equal or improved message economy passes...
        quieter = _with(_BASELINE, **{"sweep.0.messages_per_merge": 3.1})
        for candidate in (_BASELINE, quieter):
            result = self._run(_BASELINE, candidate, "--mode", "messages")
            self.assertEqual(result.returncode, 0, result.stdout)
        # ...growth beyond tolerance exits 3 (distinct from identity's 1).
        chattier = _with(_BASELINE, **{"sweep.0.messages_per_merge": 9.4})
        result = self._run(_BASELINE, chattier, "--mode", "messages")
        self.assertEqual(result.returncode, 3, result.stdout)
        self.assertIn("MESSAGE ECONOMY REGRESSION", result.stdout)

    def test_messages_mode_tolerance_allows_small_growth(self):
        slightly = _with(_BASELINE, **{"sweep.0.messages_per_merge": 4.8})
        ok = self._run(_BASELINE, slightly, "--mode", "messages",
                       "--messages_tolerance", "5")
        self.assertEqual(ok.returncode, 0, ok.stdout)
        bad = self._run(_BASELINE, slightly, "--mode", "messages",
                        "--messages_tolerance", "1")
        self.assertEqual(bad.returncode, 3, bad.stdout)

    def test_messages_mode_ignores_timing_and_counters(self):
        # Only messages_per_merge is gated: timing drift and even raw
        # counter drift (identity's job) do not trip the messages gate.
        drifted = _with(_BASELINE, **{"hac.hac_seconds": 42.0,
                                      "hac.merges": 341})
        result = self._run(_BASELINE, drifted, "--mode", "messages")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_messages_mode_missing_leaf_is_regression(self):
        pruned = json.loads(json.dumps(_BASELINE))
        del pruned["sweep"][0]["messages_per_merge"]
        result = self._run(_BASELINE, pruned, "--mode", "messages")
        self.assertEqual(result.returncode, 3, result.stdout)
        self.assertIn("missing from candidate", result.stdout)

    def test_latency_mode_values_are_informational(self):
        # Hardware-dependent quantile drift passes without a bound...
        slower = _with(_SERVING, **{"open_loop.p99_us": 5000.0,
                                    "endpoints.0.p999_us": 400.0})
        result = self._run(_SERVING, slower, "--mode", "latency")
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("p99_us", result.stdout)
        # ...and identity drift is not latency's job.
        drifted = _with(_SERVING, **{"endpoints.0.errors": 7})
        result = self._run(_SERVING, drifted, "--mode", "latency")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_latency_mode_missing_quantile_exits_4(self):
        pruned = json.loads(json.dumps(_SERVING))
        del pruned["open_loop"]["p999_us"]
        result = self._run(_SERVING, pruned, "--mode", "latency")
        self.assertEqual(result.returncode, 4, result.stdout)
        self.assertIn("LATENCY COVERAGE REGRESSION", result.stdout)
        self.assertIn("p999_us", result.stdout)

    def test_latency_mode_missing_section_exits_4(self):
        pruned = json.loads(json.dumps(_SERVING))
        del pruned["open_loop"]
        result = self._run(_SERVING, pruned, "--mode", "latency")
        self.assertEqual(result.returncode, 4, result.stdout)
        self.assertIn("missing from candidate", result.stdout)

    def test_latency_fail_above_gates_regressions(self):
        slower = _with(_SERVING, **{"open_loop.p99_us": 1350.0})  # +50%
        ok = self._run(_SERVING, slower, "--mode", "latency",
                       "--latency_fail_above", "100")
        self.assertEqual(ok.returncode, 0, ok.stdout)
        bad = self._run(_SERVING, slower, "--mode", "latency",
                        "--latency_fail_above", "25")
        self.assertEqual(bad.returncode, 4, bad.stdout)
        self.assertIn("LATENCY REGRESSION", bad.stdout)

    def test_latency_gate_quantiles_scopes_the_growth_gate(self):
        # Tail blows up, median holds: gating p50 only must pass...
        tail_blip = _with(_SERVING, **{"open_loop.p999_us": 99999.0})
        ok = self._run(_SERVING, tail_blip, "--mode", "latency",
                       "--latency_fail_above", "100",
                       "--latency_gate_quantiles", "p50_us")
        self.assertEqual(ok.returncode, 0, ok.stdout)
        # ...a median collapse must still fail...
        slow_p50 = _with(_SERVING, **{"open_loop.p50_us":
                                      _SERVING["open_loop"]["p50_us"] * 40})
        bad = self._run(_SERVING, slow_p50, "--mode", "latency",
                        "--latency_fail_above", "100",
                        "--latency_gate_quantiles", "p50_us")
        self.assertEqual(bad.returncode, 4, bad.stdout)
        self.assertIn("p50_us", bad.stdout)
        # ...and coverage still covers the ungated quantiles.
        pruned = json.loads(json.dumps(_SERVING))
        del pruned["open_loop"]["p999_us"]
        cov = self._run(_SERVING, pruned, "--mode", "latency",
                        "--latency_fail_above", "100",
                        "--latency_gate_quantiles", "p50_us")
        self.assertEqual(cov.returncode, 4, cov.stdout)
        self.assertIn("LATENCY COVERAGE REGRESSION", cov.stdout)

    def test_latency_floor_waives_subfloor_regressions(self):
        # +900% but still under the floor: runner noise, not a stall.
        blip = _with(_SERVING, **{"open_loop.p99_us":
                                  _SERVING["open_loop"]["p99_us"] * 10})
        ok = self._run(_SERVING, blip, "--mode", "latency",
                       "--latency_fail_above", "400",
                       "--latency_gate_quantiles", "p99_us",
                       "--latency_floor_us",
                       str(_SERVING["open_loop"]["p99_us"] * 20))
        self.assertEqual(ok.returncode, 0, ok.stdout)
        # The same growth past the floor fails.
        bad = self._run(_SERVING, blip, "--mode", "latency",
                        "--latency_fail_above", "400",
                        "--latency_gate_quantiles", "p99_us",
                        "--latency_floor_us",
                        str(_SERVING["open_loop"]["p99_us"] * 5))
        self.assertEqual(bad.returncode, 4, bad.stdout)
        self.assertIn("LATENCY REGRESSION", bad.stdout)

    def test_latency_mode_speedups_and_new_coverage_pass(self):
        faster = _with(_SERVING, **{"open_loop.p99_us": 10.0})
        faster["open_loop"]["p95_us"] = 9.0  # extra leaf, not gated
        result = self._run(_SERVING, faster, "--mode", "latency",
                           "--latency_fail_above", "5")
        self.assertEqual(result.returncode, 0, result.stdout)


    def test_recall_mode_passes_at_or_above_floor(self):
        result = self._run(_LSH, _LSH, "--mode", "recall")
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("lsh_recall", result.stdout)
        # Recall improvements pass too.
        better = _with(_LSH, **{"sizes.0.lsh_recall": 1.0})
        result = self._run(_LSH, better, "--mode", "recall")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_recall_below_floor_exits_5(self):
        starved = _with(_LSH, **{"sizes.1.lsh_recall": 0.82})
        result = self._run(_LSH, starved, "--mode", "recall")
        self.assertEqual(result.returncode, 5, result.stdout)
        self.assertIn("RECALL REGRESSION", result.stdout)
        self.assertIn("0.82", result.stdout)
        # The same value passes under an explicitly lowered floor.
        ok = self._run(_LSH, starved, "--mode", "recall",
                       "--min_recall", "0.8")
        self.assertEqual(ok.returncode, 0, ok.stdout)

    def test_recall_missing_coverage_exits_5(self):
        # Dropping a measured tier (or just its lsh_recall leaf) means
        # the bench silently stopped measuring — coverage failure.
        pruned = json.loads(json.dumps(_LSH))
        del pruned["sizes"][1]["lsh_recall"]
        result = self._run(_LSH, pruned, "--mode", "recall")
        self.assertEqual(result.returncode, 5, result.stdout)
        self.assertIn("missing from candidate", result.stdout)

    def test_recall_new_tier_is_floor_checked(self):
        # A tier the baseline lacks still has its floor enforced.
        grown = json.loads(json.dumps(_LSH))
        grown["sizes"].append(dict(grown["sizes"][1],
                                   entities=8000, lsh_recall=0.5))
        result = self._run(_LSH, grown, "--mode", "recall")
        self.assertEqual(result.returncode, 5, result.stdout)
        self.assertIn("8000", result.stdout)

    def test_recall_mode_ignores_timing_and_counters(self):
        # Counter drift is identity's job; timing drift is nobody's.
        drifted = _with(_LSH, **{"sizes.0.lsh_candidate_pairs": 1,
                                 "sizes.0.exact_candidate_seconds": 99.0})
        result = self._run(_LSH, drifted, "--mode", "recall")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_lsh_counters_and_thread_identity_are_identity(self):
        for leaf, value in (("sizes.0.lsh_candidate_pairs", 1),
                            ("sizes.0.exact_edges", 1),
                            ("sizes.1.thread_identical", 0)):
            drifted = _with(_LSH, **{leaf: value})
            result = self._run(_LSH, drifted, "--mode", "identity")
            self.assertEqual(result.returncode, 1,
                             f"{leaf}: {result.stdout}")

    def test_incremental_mode_passes_within_floors(self):
        result = self._run(_INCREMENTAL, _INCREMENTAL,
                           "--mode", "incremental")
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("stability", result.stdout)
        # Improvements pass too.
        better = _with(_INCREMENTAL, **{"sizes.1.speedup": 9.0,
                                        "sizes.1.stability": 1.0})
        result = self._run(_INCREMENTAL, better, "--mode", "incremental")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_incremental_stability_below_floor_exits_6(self):
        # Tier minimum and per-cycle stability leaves are both gated.
        for leaf in ("sizes.1.stability", "sizes.0.cycles.1.stability"):
            eroded = _with(_INCREMENTAL, **{leaf: 0.90})
            result = self._run(_INCREMENTAL, eroded, "--mode", "incremental")
            self.assertEqual(result.returncode, 6,
                             f"{leaf}: {result.stdout}")
            self.assertIn("INCREMENTAL REGRESSION", result.stdout)
        # The same value passes under an explicitly lowered floor.
        eroded = _with(_INCREMENTAL, **{"sizes.1.stability": 0.90})
        ok = self._run(_INCREMENTAL, eroded, "--mode", "incremental",
                       "--min_stability", "0.85")
        self.assertEqual(ok.returncode, 0, ok.stdout)

    def test_incremental_speedup_floor_gates_large_tiers_only(self):
        # The paper-scale tier is gated at --min_speedup...
        slowed = _with(_INCREMENTAL, **{"sizes.1.speedup": 3.0})
        result = self._run(_INCREMENTAL, slowed, "--mode", "incremental")
        self.assertEqual(result.returncode, 6, result.stdout)
        self.assertIn("speedup", result.stdout)
        # ...while the small tier, where fixed per-cycle costs dominate,
        # diffs informationally.
        small = _with(_INCREMENTAL, **{"sizes.0.speedup": 1.2})
        result = self._run(_INCREMENTAL, small, "--mode", "incremental")
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("informational", result.stdout)
        # Raising the gating threshold waives the large tier as well.
        waived = self._run(_INCREMENTAL, slowed, "--mode", "incremental",
                           "--speedup_min_entities", "50000")
        self.assertEqual(waived.returncode, 0, waived.stdout)

    def test_incremental_missing_coverage_exits_6(self):
        # Dropping a tier means the bench silently stopped measuring.
        pruned = json.loads(json.dumps(_INCREMENTAL))
        del pruned["sizes"][0]
        result = self._run(_INCREMENTAL, pruned, "--mode", "incremental")
        self.assertEqual(result.returncode, 6, result.stdout)
        self.assertIn("INCREMENTAL COVERAGE REGRESSION", result.stdout)
        # So does dropping a measured cycle's stability leaf.
        pruned = json.loads(json.dumps(_INCREMENTAL))
        del pruned["sizes"][0]["cycles"][1]["stability"]
        result = self._run(_INCREMENTAL, pruned, "--mode", "incremental")
        self.assertEqual(result.returncode, 6, result.stdout)
        self.assertIn("missing from candidate", result.stdout)

    def test_incremental_mode_ignores_timing_and_counters(self):
        # Counter drift is identity's job; wall-clock drift that leaves
        # the speedup ratio intact is nobody's.
        drifted = _with(_INCREMENTAL,
                        **{"sizes.0.cycles.0.delta_entries": 1,
                           "sizes.1.full_rebuild_seconds": 99.0})
        result = self._run(_INCREMENTAL, drifted, "--mode", "incremental")
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_incremental_counters_are_identity(self):
        for leaf, value in (("sizes.0.cycles.0.delta_entries", 1),
                            ("sizes.0.cycles.1.carried_topics", 2),
                            ("sizes.1.graph_identical", 0),
                            ("sizes.1.thread_identical", 0)):
            drifted = _with(_INCREMENTAL, **{leaf: value})
            result = self._run(_INCREMENTAL, drifted, "--mode", "identity")
            self.assertEqual(result.returncode, 1,
                             f"{leaf}: {result.stdout}")

    def test_incremental_cycle_rows_align_by_day_despite_reordering(self):
        reordered = json.loads(json.dumps(_INCREMENTAL))
        reordered["sizes"][0]["cycles"].reverse()
        result = self._run(_INCREMENTAL, reordered, "--mode", "identity")
        self.assertEqual(result.returncode, 0, result.stdout)


if __name__ == "__main__":
    unittest.main()
