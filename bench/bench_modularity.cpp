// E1 (Sec 2.2): "Parallel HAC consistently produces clusters with
// modularity > 0.3". Sweeps dataset size and similarity threshold and
// reports the Newman-Girvan modularity of the root-topic partition on
// the item entity graph, plus cluster quality against the planted
// intents.

#include "bench_common.h"
#include "eval/cluster_metrics.h"
#include "graph/modularity.h"
#include "util/flags.h"

namespace {

using namespace shoal;

int Run(int argc, char** argv) {
  util::FlagParser flags;
  flags.AddString("sizes", "500,1000,2000,4000", "entity counts to sweep");
  flags.AddInt64("seed", 2019, "random seed");
  auto status = flags.Parse(argc, argv);
  SHOAL_CHECK(status.ok()) << status.ToString();
  if (flags.help_requested()) return 0;

  bench::PrintHeader(
      "E1 bench_modularity",
      "Parallel HAC consistently produces clusters with modularity > 0.3");

  std::printf("%-10s %-10s %-8s %-12s %-8s %-8s %-8s %-6s\n", "entities",
              "edges", "roots", "modularity", "NMI", "purity", "time_s",
              ">0.3");
  for (const std::string& size_text : util::Split(flags.GetString("sizes"), ',')) {
    size_t entities = std::strtoull(size_text.c_str(), nullptr, 10);
    auto workload = bench::BuildWorkload(
        bench::ScaledDataset(entities,
                             static_cast<uint64_t>(flags.GetInt64("seed"))),
        core::ShoalOptions{});
    auto labels = workload.model.taxonomy().RootLabels();
    auto modularity =
        graph::Modularity(workload.model.entity_graph(), labels);
    SHOAL_CHECK(modularity.ok()) << modularity.status().ToString();
    auto nmi = eval::NormalizedMutualInformation(
        labels, workload.dataset.EntityIntentLabels());
    auto purity =
        eval::Purity(labels, workload.dataset.EntityIntentLabels());
    SHOAL_CHECK(nmi.ok() && purity.ok());
    std::printf("%-10zu %-10zu %-8zu %-12.4f %-8.4f %-8.4f %-8.2f %-6s\n",
                entities, workload.model.entity_graph().num_edges(),
                workload.model.taxonomy().roots().size(),
                modularity.value(), nmi.value(), purity.value(),
                workload.build_seconds,
                modularity.value() > 0.3 ? "yes" : "NO");
  }
  std::printf(
      "\nthreshold sweep at 2000 entities (sparsification vs quality):\n");
  std::printf("%-12s %-12s %-8s %-12s %-8s\n", "hac_thresh", "merges",
              "roots", "modularity", "NMI");
  for (double threshold : {0.45, 0.40, 0.35, 0.30, 0.25}) {
    core::ShoalOptions options;
    options.hac.hac.threshold = threshold;
    auto workload = bench::BuildWorkload(
        bench::ScaledDataset(2000,
                             static_cast<uint64_t>(flags.GetInt64("seed"))),
        options);
    auto labels = workload.model.taxonomy().RootLabels();
    auto modularity =
        graph::Modularity(workload.model.entity_graph(), labels);
    auto nmi = eval::NormalizedMutualInformation(
        labels, workload.dataset.EntityIntentLabels());
    SHOAL_CHECK(modularity.ok() && nmi.ok());
    std::printf("%-12.2f %-12zu %-8zu %-12.4f %-8.4f\n", threshold,
                workload.model.stats().hac.total_merges,
                workload.model.taxonomy().roots().size(),
                modularity.value(), nmi.value());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
